#!/usr/bin/env python3
"""Quickstart: characterize the SmartNIC's communication paths.

Builds the paper's testbed (Table 2), then asks the three questions the
study answers for every path: what latency, what peak throughput, and
where is the bottleneck.  Finishes with the offload advisor.

Run:  python examples/quickstart.py
"""

from repro import (
    Advisor,
    CommPath,
    Flow,
    LatencyModel,
    Opcode,
    Scenario,
    ThroughputSolver,
    WorkloadProfile,
    paper_testbed,
)
from repro.core.report import format_table
from repro.units import KB


def main() -> None:
    testbed = paper_testbed()
    latency = LatencyModel(testbed)
    solver = ThroughputSolver()

    print("=== Latency of a 64 B request (Fig 4 upper) ===")
    rows = []
    for path in CommPath:
        row = [path.label]
        for op in Opcode:
            row.append(f"{latency.latency(path, op, 64).total_us:.2f}")
        rows.append(row)
    print(format_table(["path", "READ us", "WRITE us", "SEND us"], rows))

    print("\n=== Peak throughput of 64 B requests (Fig 4 lower) ===")
    rows = []
    for path in CommPath:
        row = [path.label]
        requesters = 24 if path.intra_machine else 11
        for op in Opcode:
            result = solver.solve(Scenario(testbed, [
                Flow(path=path, op=op, payload=64, requesters=requesters)]))
            row.append(f"{result.mrps_of(0):.1f}")
        bottleneck = solver.solve(Scenario(testbed, [
            Flow(path=path, op=Opcode.READ, payload=64,
                 requesters=requesters)])).bottlenecks[0]
        row.append(bottleneck)
        rows.append(row)
    print(format_table(
        ["path", "READ M/s", "WRITE M/s", "SEND M/s", "READ bottleneck"],
        rows))

    print("\n=== Advisor: a uniform 256 B read-mostly workload ===")
    plan = Advisor(testbed).plan(WorkloadProfile(
        payload=256, read_fraction=0.9, working_set_bytes=8 << 30))
    print(f"one-sided traffic -> {plan.one_sided_path.label}")
    for advice in plan.advice:
        print(f"  [{advice.ref}] {advice.summary}")

    print("\n=== Advisor: 32 MB bulk transfers with host<->SoC staging ===")
    plan = Advisor(testbed).plan(WorkloadProfile(
        payload=32 << 20, working_set_bytes=2 << 30, host_soc_transfer=True))
    print(f"segment to {plan.segment_bytes} B; "
          f"path-3 budget {plan.path3_budget_gbps:.0f} Gbps")
    for advice in plan.advice:
        print(f"  [{advice.ref}] {advice.summary}")


if __name__ == "__main__":
    main()
