#!/usr/bin/env python3
"""Anomaly audit: scan a planned deployment for the paper's four hazards.

Describes a system's traffic as flows and runs every anomaly detector —
the checklist a SmartNIC deployment should pass before going live.

Run:  python examples/anomaly_audit.py
"""

from repro import CommPath, Flow, Opcode, detect_all, paper_testbed
from repro.core.report import format_table
from repro.units import MB

# A plausible-but-naive deployment: a KV cache in SoC memory with a hot
# keyset, bulk checkpoint transfers to the host, doorbell batching
# enabled everywhere "because batching is good".
WORKLOAD = [
    Flow(path=CommPath.SNIC2, op=Opcode.WRITE, payload=64,
         range_bytes=1536, label="hot-key cache updates"),
    Flow(path=CommPath.SNIC2, op=Opcode.READ, payload=16 * MB,
         label="bulk cache warmup reads"),
    Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=64, requesters=5,
         label="client lookups on host"),
    Flow(path=CommPath.SNIC3_H2S, op=Opcode.READ, payload=64,
         requesters=24, doorbell_batch=16, weight=0.2,
         label="host-side checkpoint pulls"),
]


def main() -> None:
    testbed = paper_testbed()
    report = detect_all(testbed, WORKLOAD)

    if report.clean:
        print("no anomalies detected")
        return

    rows = []
    for anomaly in report:
        flow_name = anomaly.flow.label if anomaly.flow else "(whole workload)"
        rows.append([anomaly.kind, flow_name,
                     f"{anomaly.severity:.0%}", anomaly.advice])
    print(format_table(
        ["anomaly", "flow", "throughput vs healthy", "remedy"], rows,
        title=f"Audit found {len(report)} anomalies"))

    print("\nDetails:")
    for anomaly in report:
        print(f"  - {anomaly.description}")


if __name__ == "__main__":
    main()
