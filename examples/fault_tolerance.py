#!/usr/bin/env python3
"""Fault injection, RC reliability, and graceful degradation.

Two demonstrations on the simulated testbed:

1. **Loss is absorbed by the transport.**  The same RC WRITE stream
   runs fault-free and under 2 % packet loss; retransmissions show up
   in the telemetry counters but the remote memory ends up identical —
   the application never notices.

2. **A SoC crash degrades, not breaks.**  A replicated KV store loses
   server 0's SoC mid-run; the shipper fails over from the offloaded
   path ③ pull to a host-side relay and replication keeps going in
   degraded mode.

Both runs are fully deterministic (seeded fault plans on a DES).

Run:  python examples/fault_tolerance.py
"""

from repro import paper_testbed
from repro.apps import ReplicatedKV
from repro.faults import FaultPlan, SocCrash
from repro.net.cluster import SimCluster
from repro.rdma import RdmaContext

ENTRIES = 100
SLOT = 64


def write_stream(loss_rate):
    """Run an RC WRITE stream under ``loss_rate``; return (memory, stats)."""
    cluster = SimCluster(paper_testbed(), n_clients=1)
    plan = FaultPlan.packet_loss("net.client0", loss_rate, seed=11)
    cluster.install_faults(plan)
    ctx = RdmaContext(cluster)
    local = ctx.reg_mr("client0", SLOT)
    remote = ctx.reg_mr("host", ENTRIES * SLOT)
    qp, _ = ctx.connect_rc("client0", "host")

    def driver():
        for i in range(ENTRIES):
            local.write_local(0, f"entry-{i:03d}".encode().ljust(SLOT, b"."))
            yield qp.post_write(i, local, remote, SLOT,
                                remote_offset=i * SLOT)

    cluster.sim.process(driver())
    cluster.sim.run()
    return remote.read_local(0, ENTRIES * SLOT), dict(cluster.stats)


def crash_failover():
    """Replicate through a mid-run SoC crash; return the store."""
    cluster = SimCluster(paper_testbed(), n_servers=2)
    plan = FaultPlan(faults=(SocCrash(server="server0", at=500_000),))
    cluster.install_faults(plan)
    ctx = RdmaContext(cluster)
    kv = ReplicatedKV(ctx, budget_gbps=0.5)
    for i in range(80):
        kv.put(f"user:{i}".encode(), f"value-{i:02d}".encode() * 93)
    settle = cluster.sim.process(kv.wait_replicated())
    cluster.sim.run()
    assert settle.ok
    return kv


def main() -> None:
    clean_mem, clean_stats = write_stream(0.0)
    lossy_mem, lossy_stats = write_stream(0.02)
    print(f"RC WRITE x{ENTRIES}, fault-free : "
          f"{clean_stats.get('rdma.retransmits', 0):.0f} retransmits, "
          f"{clean_stats.get('faults.injected', 0):.0f} faults injected")
    print(f"RC WRITE x{ENTRIES}, 2% loss    : "
          f"{lossy_stats.get('rdma.retransmits', 0):.0f} retransmits, "
          f"{lossy_stats.get('faults.injected', 0):.0f} faults injected")
    same = "identical" if clean_mem == lossy_mem else "DIVERGED"
    print(f"final remote memory           : {same}")
    print()

    kv = crash_failover()
    # The replica must agree with the primary on every key (both stores
    # share the fixed-bucket eviction behavior, so equality is the
    # invariant replication has to preserve).
    diverged = sum(
        1 for i in range(80)
        if kv.replica.get_local(f"user:{i}".encode())
        != kv.primary.get_local(f"user:{i}".encode()))
    print("SoC crash at t=500us mid-replication:")
    print(f"  failovers         : {kv.stats.failovers}")
    print(f"  applied           : {kv.stats.applied}/80, "
          f"{diverged} keys diverged from the primary")
    print(f"  degraded entries  : {len(kv.stats.degraded_lag)} "
          f"replicated after failover")
    print(f"  healthy lag mean  : {kv.stats.lag.mean / 1000:.1f} us")
    print(f"  degraded lag mean : "
          f"{kv.stats.degraded_lag.mean / 1000:.1f} us")


if __name__ == "__main__":
    main()
