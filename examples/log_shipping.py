#!/usr/bin/env python3
"""Log shipping under the §4 budget rule, measured on the simulation.

Clients stream WRITEs into a host log while an SoC-side shipper pulls
segments over path ③.  Compares an unthrottled shipper against one
budgeted at P − N (56 Gbps) — the client-visible cost of ignoring the
rule, end to end.

Run:  python examples/log_shipping.py
"""

from repro import paper_testbed
from repro.apps import LogShipper, WriterStats, client_writer
from repro.core.report import format_table
from repro.net.cluster import SimCluster
from repro.rdma import RdmaContext
from repro.units import KB, MB, to_gbps

LOG_BYTES = 16 * MB
WRITES = 60
WRITE_PAYLOAD = 64 * KB


def run(budget_gbps):
    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    host_log = ctx.reg_mr("host", LOG_BYTES)
    sim = cluster.sim

    stats = WriterStats()
    writer = sim.process(client_writer(ctx, "client0", host_log,
                                       payload=WRITE_PAYLOAD, count=WRITES,
                                       stats=stats))
    finished = {}
    writer.add_callback(lambda _e: finished.setdefault("at", sim.now))

    shipper = LogShipper(ctx, host_log, segment_bytes=1 * MB,
                         budget_gbps=budget_gbps)
    shipping = sim.process(shipper.ship(LOG_BYTES))
    sim.run()
    assert writer.ok and shipping.ok

    writer_gbps = to_gbps(stats.goodput(finished["at"]))
    ship_gbps = to_gbps(shipper.stats.goodput(sim.now))
    return writer_gbps, ship_gbps, shipper.stats.throttle_waits


def main() -> None:
    rows = []
    for label, budget in [("no shipper", None), ("budgeted 56 Gbps", 56.0),
                          ("budgeted 10 Gbps", 10.0),
                          ("unbudgeted", "unlimited")]:
        if label == "no shipper":
            cluster = SimCluster(paper_testbed())
            ctx = RdmaContext(cluster)
            host_log = ctx.reg_mr("host", LOG_BYTES)
            stats = WriterStats()
            proc = cluster.sim.process(client_writer(
                ctx, "client0", host_log, payload=WRITE_PAYLOAD,
                count=WRITES, stats=stats))
            cluster.sim.run()
            assert proc.ok
            rows.append([label, f"{to_gbps(stats.goodput(cluster.sim.now)):.1f}",
                         "-", "-"])
            continue
        writer_gbps, ship_gbps, waits = run(
            None if budget == "unlimited" else budget)
        rows.append([label, f"{writer_gbps:.1f}", f"{ship_gbps:.1f}",
                     str(waits)])
    print(format_table(
        ["shipper configuration", "client writes Gbps", "shipped Gbps",
         "throttle waits"],
        rows, title="S4 budget rule on the log-shipping pipeline"))


if __name__ == "__main__":
    main()
