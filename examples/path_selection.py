#!/usr/bin/env python3
"""Path selection: what the measurements mean for system designers.

Feeds a range of workload profiles to the advisor and shows how the
recommended communication path flips as skew, working-set size, payload
and traffic type change — the paper's takeaways, operationalized.

Run:  python examples/path_selection.py
"""

from repro import Advisor, WorkloadProfile, paper_testbed
from repro.core.report import format_table
from repro.units import GB, KB, MB

PROFILES = [
    ("uniform small reads", WorkloadProfile(
        payload=256, read_fraction=0.95, working_set_bytes=8 * GB)),
    ("skewed small writes", WorkloadProfile(
        payload=64, read_fraction=0.05, hot_range_bytes=1536,
        working_set_bytes=8 * GB)),
    ("huge working set", WorkloadProfile(
        payload=512, read_fraction=0.5, working_set_bytes=64 * GB)),
    ("RPC-heavy service", WorkloadProfile(
        payload=1 * KB, two_sided_fraction=0.8, working_set_bytes=4 * GB)),
    ("bulk staging pipeline", WorkloadProfile(
        payload=32 * MB, working_set_bytes=8 * GB, host_soc_transfer=True)),
]


def main() -> None:
    advisor = Advisor(paper_testbed())
    rows = []
    for name, profile in PROFILES:
        plan = advisor.plan(profile)
        segment = ("-" if plan.segment_bytes is None
                   else f"{plan.segment_bytes // MB} MB")
        budget = (f"{plan.path3_budget_gbps:.0f} Gbps"
                  if plan.path3_budget_gbps else "-")
        rows.append([name, plan.one_sided_path.label,
                     plan.two_sided_path.label, segment, budget,
                     ", ".join(plan.advice_refs())])
    print(format_table(
        ["workload", "one-sided", "two-sided", "segment", "path-3 budget",
         "advice applied"],
        rows, title="Offload plans per workload profile"))

    print("\nRationale for the bulk staging pipeline:")
    for advice in advisor.plan(PROFILES[-1][1]).advice:
        print(f"  [{advice.ref}] {advice.summary}")
        print(f"      {advice.rationale}")


if __name__ == "__main__":
    main()
