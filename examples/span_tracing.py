#!/usr/bin/env python3
"""Span tracing: watch one verb spend its nanoseconds, component by
component.

Runs a 4 KB WRITE on path ③ (host -> SoC through the SmartNIC's
internal fabric) under the tracer, prints the span tree and the
latency-attribution table, then contrasts the SmartNIC and RNIC
builds of path ① to show where the "performance tax" (§3.1) lives.
The Chrome-trace export at the end loads directly into
chrome://tracing or https://ui.perfetto.dev.

Run:  PYTHONPATH=src python examples/span_tracing.py
"""

import os
import tempfile

from repro.core.paths import CommPath, Opcode
from repro.trace import (
    Attribution,
    attribution_report,
    run_traced_verbs,
    span_tree_text,
    write_chrome_trace,
)


def main() -> None:
    print("=== Path 3 host->SoC WRITE, 4 KB: the span tree ===")
    tracer = run_traced_verbs(CommPath.SNIC3_H2S, Opcode.WRITE, 4096,
                              telemetry=True)
    trace = tracer.last()
    print(span_tree_text(trace.root))
    pcie1_ns = sum(s.self_time() for s in trace.spans()
                   if s.name.endswith("pcie1"))
    print(f"\nPCIe1 is crossed by both DMA legs: "
          f"{pcie1_ns:.0f} ns of {trace.duration:.0f} ns "
          f"({pcie1_ns / trace.duration:.0%}) — anomaly A2's hidden hop.")

    print("\n=== Where did the nanoseconds go ===")
    print(attribution_report(tracer.traces))

    print("\n=== SmartNIC vs RNIC on path 1 (the latency tax) ===")
    snic = run_traced_verbs(CommPath.SNIC1, Opcode.READ, 64)
    rnic = run_traced_verbs(CommPath.RNIC1, Opcode.READ, 64)
    devices = Attribution(snic.traces + rnic.traces).by_device()
    for device, group in devices.items():
        print(f"{device}: {group.total_ns:.0f} ns")
    tax = devices["snic"].total_ns / devices["rnic"].total_ns - 1
    print(f"latency tax: {tax:+.0%} (the switch hop + PCIe1 leg)")

    out = os.path.join(tempfile.gettempdir(), "repro_span_trace.json")
    write_chrome_trace(tracer.traces + snic.traces + rnic.traces, out)
    print(f"\nwrote Chrome trace to {out} "
          "(open in chrome://tracing or Perfetto)")


if __name__ == "__main__":
    main()
