#!/usr/bin/env python3
"""The Fig 1 scenario: KV-store gets, one-sided versus SoC-offloaded.

Runs both client strategies against the simulated cluster and reports
round trips and latency per get — the network-amplification argument
that motivates SmartNIC offloading.

Run:  python examples/kvstore_offload.py
"""

import random

from repro import paper_testbed
from repro.apps import KVServer, OffloadedKVClient, OneSidedKVClient
from repro.core.report import format_table
from repro.net.cluster import SimCluster
from repro.rdma import RdmaContext

N_KEYS = 200
N_GETS = 300


def populate(server: KVServer, rng: random.Random) -> list:
    keys = []
    for i in range(N_KEYS):
        key = f"user:{i}".encode()
        value = bytes(rng.randrange(256) for _ in range(rng.randrange(8, 64)))
        server.put(key, value)
        keys.append(key)
    return keys


def drive(cluster, client, keys, rng) -> None:
    def workload():
        for _ in range(N_GETS):
            key = rng.choice(keys)
            value = yield cluster.sim.process(client.get(key))
            assert value is not None or True  # collisions may evict

    cluster.sim.process(workload())
    cluster.sim.run()


def main() -> None:
    rng = random.Random(42)
    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)

    host_store = KVServer(ctx, "host", n_buckets=4096)
    soc_store = KVServer(ctx, "soc", n_buckets=4096)
    keys = populate(host_store, random.Random(7))
    populate(soc_store, random.Random(7))

    one_sided = OneSidedKVClient(ctx, "client0", host_store)
    offloaded = OffloadedKVClient(ctx, "client1", soc_store)

    drive(cluster, one_sided, keys, random.Random(1))
    drive(cluster, offloaded, keys, random.Random(1))

    rows = [
        ["one-sided (Fig 1a)", one_sided.stats.gets,
         f"{one_sided.stats.round_trips_per_get:.1f}",
         f"{one_sided.stats.latency.mean / 1000:.2f}",
         f"{one_sided.stats.latency.p99 / 1000:.2f}"],
        ["SoC-offloaded (Fig 1b)", offloaded.stats.gets,
         f"{offloaded.stats.round_trips_per_get:.1f}",
         f"{offloaded.stats.latency.mean / 1000:.2f}",
         f"{offloaded.stats.latency.p99 / 1000:.2f}"],
    ]
    print(format_table(
        ["strategy", "gets", "RTs/get", "mean us", "p99 us"], rows,
        title="KV get: network amplification vs offload"))

    speedup = one_sided.stats.latency.mean / offloaded.stats.latency.mean
    print(f"\noffloading removes the second round trip: "
          f"{speedup:.2f}x faster gets")


if __name__ == "__main__":
    main()
