#!/usr/bin/env python3
"""A replicated KV store across two SmartNIC servers.

Puts land on server 0's host; a SoC-offloaded shipper pulls them over a
budgeted path ③ and relays them to server 1's SoC, which serves reads
as single-RPC offloaded gets.  Reports replication lag per budget and
end-to-end read latency from the replica.

Run:  python examples/replicated_kv.py
"""

from repro import paper_testbed
from repro.apps import OffloadedKVClient, ReplicatedKV
from repro.core.report import format_table
from repro.net.cluster import SimCluster
from repro.rdma import RdmaContext

PUTS = 150
VALUE = b"x" * 4096


def run(budget_gbps):
    cluster = SimCluster(paper_testbed(), n_servers=2)
    ctx = RdmaContext(cluster)
    kv = ReplicatedKV(ctx, budget_gbps=budget_gbps)
    for i in range(PUTS):
        kv.put(f"user:{i}".encode(), VALUE)
    settle = cluster.sim.process(kv.wait_replicated())
    cluster.sim.run()
    assert settle.ok

    # Read back from the replica via an offloaded get.
    reader = OffloadedKVClient(ctx, "client0", kv.replica)
    got = {}
    proc = cluster.sim.process(reader.get(b"user:42"))
    proc.add_callback(lambda e: got.setdefault("v", e.value))
    cluster.sim.run()
    assert got["v"] == VALUE
    return kv.stats, reader.stats.latency.mean / 1000


def main() -> None:
    rows = []
    for label, budget in [("56 Gbps (P-N rule)", 56.0),
                          ("0.5 Gbps (starved)", 0.5),
                          ("unbudgeted", None)]:
        stats, read_us = run(budget)
        rows.append([label, stats.applied,
                     f"{stats.lag.mean / 1000:.1f}",
                     f"{stats.lag.p99 / 1000:.1f}", f"{read_us:.2f}"])
    print(format_table(
        ["path-3 budget", "replicated", "lag mean us", "lag p99 us",
         "replica get us"],
        rows, title=f"Replicating {PUTS} puts to a peer SmartNIC's SoC"))


if __name__ == "__main__":
    main()
