#!/usr/bin/env python3
"""Bulk host->SoC staging: measuring the advice on the live simulation.

Pulls the same region with different configurations — naive (huge
requests, no batching) versus advised (1 MB segments, SoC-side doorbell
batching) — and reports achieved goodput from the discrete-event run.

Run:  python examples/bulk_offload.py
"""

from repro import paper_testbed
from repro.apps import OffloadConfig, OffloadEngine
from repro.core.report import format_table
from repro.net.cluster import SimCluster
from repro.rdma import RdmaContext
from repro.units import KB, MB, to_gbps

TRANSFER = 32 * MB

CONFIGS = [
    ("tiny segments, no batching", OffloadConfig(
        segment_bytes=64 * KB, doorbell_batch=1, inflight=4)),
    ("tiny segments, DB batching", OffloadConfig(
        segment_bytes=64 * KB, doorbell_batch=16, inflight=16)),
    ("advised: 1 MB + DB batching", OffloadConfig(
        segment_bytes=1 * MB, doorbell_batch=16, inflight=16)),
    ("oversized 8 MB segments", OffloadConfig(
        segment_bytes=8 * MB, doorbell_batch=4, inflight=4)),
]


def main() -> None:
    rows = []
    for name, config in CONFIGS:
        cluster = SimCluster(paper_testbed())
        ctx = RdmaContext(cluster)
        host_mr = ctx.reg_mr("host", TRANSFER)
        soc_mr = ctx.reg_mr("soc", TRANSFER)
        host_mr.write_local(0, b"\xAB" * 4096)
        engine = OffloadEngine(ctx, config)
        proc = cluster.sim.process(engine.pull(host_mr, soc_mr, TRANSFER))
        cluster.sim.run()
        assert proc.ok and soc_mr.read_local(0, 4) == b"\xAB" * 4
        stats = engine.stats
        rows.append([name, stats.segments, stats.doorbells,
                     f"{stats.elapsed_ns / 1e6:.2f}",
                     f"{to_gbps(stats.goodput):.1f}"])
    print(format_table(
        ["configuration", "segments", "doorbells", "elapsed ms", "Gbps"],
        rows, title=f"Pulling {TRANSFER // MB} MB from host to SoC memory"))


if __name__ == "__main__":
    main()
