"""Shared fixtures and reporting helpers for the figure benchmarks.

Every ``bench_fig*.py`` regenerates one table or figure of the paper:
it computes the series, prints it in a paper-style table (visible with
``pytest benchmarks/ --benchmark-only -s`` or when running the module
directly), asserts the qualitative shape, and times the generation via
pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.net.topology import paper_testbed

# Sampling policy for the whole suite.  These benches exist to
# regenerate figures and track the cost trajectory, not to resolve
# nanosecond effects: a 0.25 s budget with a handful of rounds gives
# stable medians at a fraction of pytest-benchmark's 1 s default,
# which otherwise pins every test near max_time no matter how cheap
# the generation becomes.
BENCHMARK_OPTIONS = {"max_time": 0.25, "min_rounds": 3}


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.benchmark(**BENCHMARK_OPTIONS))


@pytest.fixture(scope="session")
def testbed():
    return paper_testbed()


def emit(text: str) -> None:
    """Print a report (visible with ``-s`` or in __main__ runs)."""
    print(text)
