"""Shared fixtures and reporting helpers for the figure benchmarks.

Every ``bench_fig*.py`` regenerates one table or figure of the paper:
it computes the series, prints it in a paper-style table (visible with
``pytest benchmarks/ --benchmark-only -s`` or when running the module
directly), asserts the qualitative shape, and times the generation via
pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.net.topology import paper_testbed


@pytest.fixture(scope="session")
def testbed():
    return paper_testbed()


def emit(text: str) -> None:
    """Print a report (visible with ``-s`` or in __main__ runs)."""
    print(text)
