"""Extension: latency-throughput curves per path (beyond the paper).

The paper reports the endpoints — unloaded latency (Fig 4 upper) and
peak throughput (Fig 4 lower).  This bench fills in the curve with the
M/D/1 queueing extension: mean latency versus offered load for 64 B
READs on each path, plus the provisioning knee (where latency doubles).
"""

import pytest

from repro.core.loaded import LoadedLatencyModel
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.core.throughput import Flow

from conftest import emit

PATHS = [CommPath.RNIC1, CommPath.SNIC1, CommPath.SNIC2]
UTILIZATIONS = [0.0, 0.5, 0.8, 0.9, 0.95]


def generate(testbed):
    model = LoadedLatencyModel(testbed)
    curves = {}
    knees = {}
    for path in PATHS:
        flow = Flow(path, Opcode.READ, 64, requesters=11)
        peak = model.peak(flow).rates[0]
        curves[path] = [model.latency_at(flow, u * peak)
                        for u in UTILIZATIONS]
        knees[path] = model.knee(flow)
    return curves, knees


def report(curves, knees) -> str:
    rows = []
    for path in PATHS:
        for point in curves[path]:
            rows.append([path.label, f"{point.utilization:.2f}",
                         f"{point.offered_mrps:.0f}",
                         f"{point.latency_us:.2f}",
                         f"{point.queueing_ns:.0f}"])
    table = format_table(
        ["path", "utilization", "offered M/s", "latency us", "queueing ns"],
        rows, title="Latency vs offered load, 64 B READ (M/D/1 extension)")
    knee_rows = [[p.label, f"{knees[p].utilization:.4f}",
                  f"{knees[p].offered_mrps:.0f}"] for p in PATHS]
    table2 = format_table(["path", "knee utilization", "knee M/s"],
                          knee_rows,
                          title="Provisioning knee (latency = 2x unloaded)")
    return table + "\n\n" + table2


def test_loaded_latency_curves(benchmark, testbed):
    curves, knees = benchmark(generate, testbed)
    emit("\n" + report(curves, knees))

    for path in PATHS:
        latencies = [p.latency_ns for p in curves[path]]
        assert latencies == sorted(latencies)      # monotone in load
        # ns-scale service vs us-scale latency: the curve stays flat
        # until deep saturation (RDMA's flat-then-cliff shape).
        assert curves[path][-2].latency_ns < 1.1 * curves[path][0].latency_ns
        assert knees[path].utilization > 0.99
    # The unloaded ordering survives at every load level.
    for i in range(len(UTILIZATIONS)):
        assert (curves[CommPath.RNIC1][i].latency_ns
                < curves[CommPath.SNIC2][i].latency_ns
                < curves[CommPath.SNIC1][i].latency_ns)


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(*generate(paper_testbed())))
