"""Fig 4 (upper): end-to-end latency per path, verb and payload.

Regenerates the latency curves for READ, WRITE and SEND/RECV on
RNIC ①, SNIC ①, SNIC ② and both directions of SNIC ③, and asserts the
paper's relative bands (SNIC ① pays 15-30 % on READ, 15-21 % on WRITE,
6-9 % on SEND; SNIC ② READ sits below SNIC ① but above RNIC ①).
"""

from repro.core.harness import LatencyBench
from repro.core.latency import LatencyModel
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.units import fmt_size
from repro.workloads import FIG4_PAYLOADS

from conftest import emit


def generate(testbed):
    model = LatencyModel(testbed)
    series = {}
    for op in Opcode:
        for path in CommPath:
            series[(op, path)] = [
                model.latency(path, op, payload).total_us
                for payload in FIG4_PAYLOADS
            ]
    return series


def report(series) -> str:
    blocks = []
    for op in Opcode:
        rows = []
        for i, payload in enumerate(FIG4_PAYLOADS):
            rows.append([fmt_size(payload)]
                        + [f"{series[(op, path)][i]:.2f}"
                           for path in CommPath])
        headers = ["payload"] + [p.label for p in CommPath]
        blocks.append(format_table(
            headers, rows, title=f"Fig 4 (upper) — {op.value.upper()} latency (us)"))
    return "\n\n".join(blocks)


def test_fig4_latency(benchmark, testbed):
    series = benchmark(generate, testbed)
    emit("\n" + report(series))

    def at(op, path, payload):
        return series[(op, path)][FIG4_PAYLOADS.index(payload)]

    for payload in (16, 64, 128):
        assert 1.15 <= (at(Opcode.READ, CommPath.SNIC1, payload)
                        / at(Opcode.READ, CommPath.RNIC1, payload)) <= 1.30
        assert 1.15 <= (at(Opcode.WRITE, CommPath.SNIC1, payload)
                        / at(Opcode.WRITE, CommPath.RNIC1, payload)) <= 1.21
        assert 1.06 <= (at(Opcode.SEND, CommPath.SNIC1, payload)
                        / at(Opcode.SEND, CommPath.RNIC1, payload)) <= 1.09
        # Path 2 READ: below path 1, above the RNIC baseline.
        assert (at(Opcode.READ, CommPath.RNIC1, payload)
                < at(Opcode.READ, CommPath.SNIC2, payload)
                < at(Opcode.READ, CommPath.SNIC1, payload))
        # Path 2 SEND: 21-30 % above path 1 (wimpy SoC).
        assert 1.21 <= (at(Opcode.SEND, CommPath.SNIC2, payload)
                        / at(Opcode.SEND, CommPath.SNIC1, payload)) <= 1.30
    # S2H posts slowest (Fig 10a shows up here as well).
    assert (at(Opcode.READ, CommPath.SNIC3_S2H, 64)
            > at(Opcode.READ, CommPath.SNIC3_H2S, 64))


def test_fig4_latency_des_cross_check(benchmark, testbed):
    """The DES replays of the responder DMA agree with Fig 3's shape."""
    bench = LatencyBench(testbed)

    def dma_pair():
        return (bench.simulate_dma_latency(CommPath.SNIC1, Opcode.READ, 64),
                bench.simulate_dma_latency(CommPath.SNIC1, Opcode.WRITE, 64))

    read_ns, write_ns = benchmark(dma_pair)
    emit(f"\nFig 3 cross-check — responder DMA: READ {read_ns:.0f} ns, "
         f"WRITE {write_ns:.0f} ns (READ crosses the fabric twice)")
    assert read_ns > 1.8 * write_ns


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(generate(paper_testbed())))
