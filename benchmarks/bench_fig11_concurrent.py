"""Fig 11: NIC-core saturation versus requester machines (0 B requests).

Regenerates both panels: READ (a) and WRITE (b) request rates for
SNIC ① alone, SNIC ② alone, and the two concurrent orders (①+② and
②+①), sweeping requester machines.  Asserts §4's findings: five
machines saturate a path, concurrency buys 4-13 % for READ (reserved
cores) and nearly nothing for WRITE, and the concurrent total sits far
below the 352 Mpps sum of separate peaks.
"""

import pytest

from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.workloads import FIG11_MACHINES

from conftest import emit

SATURATE = 5  # machines dedicated to the first path


def generate(testbed):
    solver = ThroughputSolver()
    series = {}
    for op in (Opcode.READ, Opcode.WRITE):
        alone1, alone2, combo12, combo21 = [], [], [], []
        for machines in FIG11_MACHINES:
            alone1.append(solver.solve(Scenario(testbed, [
                Flow(CommPath.SNIC1, op, 0, requesters=machines)])).total_mrps)
            alone2.append(solver.solve(Scenario(testbed, [
                Flow(CommPath.SNIC2, op, 0, requesters=machines)])).total_mrps)
            extra = max(0, machines - SATURATE)
            if extra:
                combo12.append(solver.solve(Scenario(testbed, [
                    Flow(CommPath.SNIC1, op, 0, requesters=SATURATE),
                    Flow(CommPath.SNIC2, op, 0, requesters=extra),
                ])).total_mrps)
                combo21.append(solver.solve(Scenario(testbed, [
                    Flow(CommPath.SNIC2, op, 0, requesters=SATURATE),
                    Flow(CommPath.SNIC1, op, 0, requesters=extra),
                ])).total_mrps)
            else:
                combo12.append(alone1[-1])
                combo21.append(alone2[-1])
        series[op] = {"SNIC1": alone1, "SNIC2": alone2,
                      "SNIC1+2": combo12, "SNIC2+1": combo21}
    return series


def report(series) -> str:
    blocks = []
    for op, panel in (("(a) READ", Opcode.READ), ("(b) WRITE", Opcode.WRITE)):
        data = series[panel]
        rows = []
        for i, machines in enumerate(FIG11_MACHINES):
            rows.append([machines] + [f"{data[key][i]:.0f}"
                                      for key in data])
        blocks.append(format_table(
            ["machines"] + list(data), rows,
            title=f"Fig 11 {op} — PCIe-free 0 B request rate (M reqs/s)"))
    return "\n\n".join(blocks)


def test_fig11_concurrent_paths(benchmark, testbed):
    series = benchmark(generate, testbed)
    emit("\n" + report(series))

    read = series[Opcode.READ]
    # Five machines saturate path 1 at 195 Mpps, path 2 at 157 Mpps.
    assert read["SNIC1"][SATURATE - 1] == pytest.approx(195, rel=0.01)
    assert read["SNIC1"][-1] == pytest.approx(195, rel=0.01)
    assert read["SNIC2"][-1] == pytest.approx(157, rel=0.01)
    # Concurrent use converges to 210 Mpps: +4-13 % over path 1 alone...
    assert read["SNIC1+2"][-1] == pytest.approx(210, rel=0.01)
    gain = read["SNIC1+2"][-1] / read["SNIC1"][-1]
    assert 1.04 <= gain <= 1.13
    # ... and both orders behave the same (S4).
    assert read["SNIC2+1"][-1] == pytest.approx(read["SNIC1+2"][-1], rel=0.02)
    # Far below the sum of separate peaks (352 Mpps).
    assert read["SNIC1"][-1] + read["SNIC2"][-1] == pytest.approx(352, rel=0.01)
    assert read["SNIC1+2"][-1] < 0.65 * 352

    write = series[Opcode.WRITE]
    # WRITE: "all results are almost the same".
    assert write["SNIC1+2"][-1] / write["SNIC1"][-1] <= 1.03


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(generate(paper_testbed())))
