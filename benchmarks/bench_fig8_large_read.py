"""Fig 8: bandwidth and PCIe packet rate for large requests (paths ①/②).

Regenerates both panels: (a) achieved bandwidth versus payload, and
(b) PCIe packets per second at the NIC's port, for READ and WRITE to
host and SoC memory.  Asserts the head-of-line collapse: SNIC ② READ
falls from ~186 Mpps to <=120 Mpps above 9 MB (Advice #2), while WRITEs
and the host path stay network-bound (~46.7 Mpps at 512 B TLPs).
"""

import pytest

from repro.core.harness import ThroughputBench
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.units import MB, fmt_size
from repro.workloads import FIG8_PAYLOADS

from conftest import emit


def generate(testbed):
    bench = ThroughputBench(testbed)
    bandwidth = {}
    pps = {}
    for op in (Opcode.READ, Opcode.WRITE):
        for path in (CommPath.SNIC1, CommPath.SNIC2):
            bandwidth[(op, path)] = bench.payload_sweep(
                path, op, FIG8_PAYLOADS, metric="gbps")
            pps[(op, path)] = bench.pps_sweep(
                path, op, FIG8_PAYLOADS, scope="nic")
    return bandwidth, pps


def report(bandwidth, pps) -> str:
    rows = []
    for payload in FIG8_PAYLOADS:
        rows.append([
            fmt_size(payload),
            f"{bandwidth[(Opcode.READ, CommPath.SNIC1)].value_at(payload):.0f}",
            f"{bandwidth[(Opcode.READ, CommPath.SNIC2)].value_at(payload):.0f}",
            f"{bandwidth[(Opcode.WRITE, CommPath.SNIC2)].value_at(payload):.0f}",
            f"{pps[(Opcode.READ, CommPath.SNIC1)].value_at(payload):.1f}",
            f"{pps[(Opcode.READ, CommPath.SNIC2)].value_at(payload):.0f}",
        ])
    return format_table(
        ["payload", "① R Gbps", "② R Gbps", "② W Gbps",
         "① R Mpps", "② R Mpps"],
        rows, title="Fig 8 — large requests: bandwidth (a) and PCIe pps (b)")


def test_fig8_large_read_collapse(benchmark, testbed):
    bandwidth, pps = benchmark(generate, testbed)
    emit("\n" + report(bandwidth, pps))

    read_soc_bw = bandwidth[(Opcode.READ, CommPath.SNIC2)]
    read_soc_pps = pps[(Opcode.READ, CommPath.SNIC2)]
    # Below the 9 MB threshold: network-bound, ~190 Gbps / ~186 Mpps.
    assert read_soc_bw.value_at(8 * MB) == pytest.approx(189, rel=0.02)
    assert read_soc_pps.value_at(8 * MB) == pytest.approx(186, rel=0.05)
    # Above: collapse to <= 120 Mpps and ~120 Gbps (Advice #2).
    assert read_soc_pps.value_at(16 * MB) <= 120
    assert read_soc_bw.value_at(16 * MB) == pytest.approx(119, rel=0.05)
    # WRITEs to the SoC are posted: no collapse.
    assert (bandwidth[(Opcode.WRITE, CommPath.SNIC2)].value_at(64 * MB)
            > 180)
    # The host path at 512 B TLPs: ~46.7 Mpps, network-bound 191 Gbps.
    assert pps[(Opcode.READ, CommPath.SNIC1)].value_at(16 * MB) == (
        pytest.approx(52, rel=0.05))  # 46.7 M data TLPs + read requests
    assert (bandwidth[(Opcode.READ, CommPath.SNIC1)].value_at(16 * MB)
            == pytest.approx(189, rel=0.02))


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(*generate(paper_testbed())))
