"""Sensitivity analysis: which conclusions depend on which constants.

DESIGN.md distinguishes paper-stated constants from calibrated ones
(docs/calibration.md).  This bench perturbs the load-bearing calibrated
constants by ±25 % and reports how the paper's qualitative conclusions
move — evidence that the *shape* results are robust to calibration
error even where absolute numbers shift.
"""

from dataclasses import replace

import pytest

from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.net.topology import Testbed, paper_testbed
from repro.nic.smartnic import SmartNIC
from repro.units import KB, MB

from conftest import emit

SOLVER = ThroughputSolver()


def _scaled_testbed(base: Testbed, factor: float, **which) -> Testbed:
    """Scale selected NICCoreSpec fields by ``factor``."""
    cores = base.snic.spec.cores
    overrides = {}
    if which.get("windows"):
        overrides["read_slots"] = max(1, round(cores.read_slots * factor))
        overrides["write_buffers"] = max(1, round(cores.write_buffers * factor))
    if which.get("pps"):
        overrides["pcie_pps"] = cores.pcie_pps * factor
        overrides["hol_pps"] = cores.hol_pps * factor
    if which.get("derates"):
        overrides["link_efficiency"] = min(1.0, cores.link_efficiency * factor)
        overrides["duplex_derate"] = min(1.0, cores.duplex_derate * factor)
    new_cores = replace(cores, **overrides)
    spec = replace(base.snic.spec, cores=new_cores)
    if which.get("switch"):
        spec = replace(spec, switch_derate=min(1.0, spec.switch_derate * factor))
    return replace(base, snic=SmartNIC(spec))


def _conclusions(testbed: Testbed) -> dict:
    """The qualitative claims, as booleans/ratios."""
    def peak(path, op, payload, **kw):
        return SOLVER.solve(Scenario(testbed, [
            Flow(path=path, op=op, payload=payload,
                 requesters=kw.pop("requesters", 11), **kw)]))

    read1 = peak(CommPath.SNIC1, Opcode.READ, 64).mrps_of(0)
    read2 = peak(CommPath.SNIC2, Opcode.READ, 64).mrps_of(0)
    rnic = peak(CommPath.RNIC1, Opcode.READ, 64).mrps_of(0)
    healthy = peak(CommPath.SNIC2, Opcode.READ, 8 * MB).gbps_of(0)
    collapsed = peak(CommPath.SNIC2, Opcode.READ, 16 * MB).gbps_of(0)
    path3 = peak(CommPath.SNIC3_S2H, Opcode.WRITE, 256 * KB,
                 requesters=8).gbps_of(0)
    skew = peak(CommPath.SNIC2, Opcode.WRITE, 64,
                range_bytes=1536).mrps_of(0)
    return {
        "path2_beats_path1": read2 / read1,
        "snic_tax": 1 - read1 / rnic,
        "hol_drop": 1 - collapsed / healthy,
        "path3_peak_gbps": path3,
        "skew_floor": skew,
    }


def generate(testbed):
    scenarios = {
        "baseline": testbed,
        "windows -25%": _scaled_testbed(testbed, 0.75, windows=True),
        "windows +25%": _scaled_testbed(testbed, 1.25, windows=True),
        "pps -25%": _scaled_testbed(testbed, 0.75, pps=True),
        "pps +25%": _scaled_testbed(testbed, 1.25, pps=True),
        "switch eff -5%": _scaled_testbed(testbed, 0.95, switch=True),
    }
    return {name: _conclusions(tb) for name, tb in scenarios.items()}


def report(results) -> str:
    metrics = list(next(iter(results.values())))
    rows = []
    for name, values in results.items():
        rows.append([name] + [f"{values[m]:.2f}" for m in metrics])
    return format_table(["scenario"] + metrics, rows,
                        title="Sensitivity of the paper's conclusions to "
                              "calibrated constants (+/-25 %)")


def test_conclusions_survive_calibration_error(benchmark, testbed):
    results = benchmark(generate, testbed)
    emit("\n" + report(results))

    for name, values in results.items():
        # Path 2 stays ahead of path 1 for small READs...
        assert values["path2_beats_path1"] > 1.0, name
        # ... the SmartNIC still pays a tax (its magnitude is the one
        # conclusion directly owned by the window constants, so it
        # shrinks when they grow — but never inverts) ...
        assert values["snic_tax"] > 0.0, name
        # ... the HOL cliff stays a cliff ...
        assert values["hol_drop"] > 0.2, name
        # ... path 3 still beats the ~190 Gbps network-bound paths
        # except when the switch efficiency itself is cut ...
        if "switch" not in name:
            assert values["path3_peak_gbps"] > 191, name
        # ... and the skew floor is untouched (it is paper-stated).
        assert values["skew_floor"] == pytest.approx(22.7, rel=0.01), name


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(generate(paper_testbed())))
