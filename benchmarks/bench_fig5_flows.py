"""Fig 5(b) and the §4 bandwidth-partitioning experiment.

Regenerates the peak-throughput bars for READ / WRITE / READ+WRITE
combinations on paths ①, ② and ③, and the §4 aggregate with a budgeted
path ③.  Asserts: opposite directions multiplex to ~364 Gbps on the
network paths, path ③ cannot exceed its single-direction ~204 Gbps, and
budgeting path ③ at P - N raises the aggregate.
"""

import pytest

from repro.core.flows import ConcurrencyAnalyzer
from repro.core.paths import CommPath
from repro.core.report import format_table

from conftest import emit

PATHS = [CommPath.SNIC1, CommPath.SNIC2, CommPath.SNIC3_S2H]
COMBOS = ["READ", "WRITE", "READ+WRITE"]


def generate(testbed):
    analyzer = ConcurrencyAnalyzer(testbed)
    bars = {path: {name: result.total_gbps
                   for name, result in
                   analyzer.direction_combinations(path).items()}
            for path in PATHS}
    budget = analyzer.path3_budget_gbps()
    aggregate = {
        "inter-machine only": analyzer.aggregate_with_budgeted_path3(0),
        f"+ path-3 at {budget:.0f} Gbps":
            analyzer.aggregate_with_budgeted_path3(budget),
        "+ path-3 unbudgeted":
            analyzer.aggregate_with_budgeted_path3(200.0),
    }
    return bars, budget, aggregate


def report(bars, budget, aggregate) -> str:
    rows = [[path.label] + [f"{bars[path][combo]:.0f}" for combo in COMBOS]
            for path in PATHS]
    table1 = format_table(["path"] + COMBOS, rows,
                          title="Fig 5(b) — peak bandwidth of flow "
                                "combinations, 4 KB payloads (Gbps)")
    rows2 = [[name, f"{result.total_gbps:.0f}"]
             for name, result in aggregate.items()]
    table2 = format_table(["scenario", "aggregate Gbps"], rows2,
                          title=f"S4 — budget rule: B(3) <= P - N "
                                f"= {budget:.0f} Gbps")
    return table1 + "\n\n" + table2


def test_fig5_flow_combinations(benchmark, testbed):
    bars, budget, aggregate = benchmark(generate, testbed)
    emit("\n" + report(bars, budget, aggregate))

    # Network paths: single direction ~190, READ+WRITE ~364 Gbps.
    assert bars[CommPath.SNIC1]["READ"] == pytest.approx(190, rel=0.02)
    assert bars[CommPath.SNIC1]["READ+WRITE"] == pytest.approx(364, rel=0.03)
    assert bars[CommPath.SNIC2]["READ+WRITE"] > 1.7 * bars[CommPath.SNIC2]["READ"]
    # Path 3: single direction ~204 Gbps and no doubling.
    s2h = bars[CommPath.SNIC3_S2H]
    assert max(s2h["READ"], s2h["WRITE"]) == pytest.approx(204, rel=0.03)
    assert s2h["READ+WRITE"] < 1.15 * max(s2h["READ"], s2h["WRITE"])
    # Budget rule: 56 Gbps of path 3 raises the aggregate; unbudgeted
    # path 3 eats into inter-machine bandwidth instead.
    assert budget == pytest.approx(56.0)
    plain = aggregate["inter-machine only"].total_gbps
    budgeted = aggregate[f"+ path-3 at {budget:.0f} Gbps"]
    assert budgeted.total_gbps > plain + 20
    unbudgeted = aggregate["+ path-3 unbudgeted"]
    inter_budgeted = budgeted.gbps_of(0) + budgeted.gbps_of(1)
    inter_unbudgeted = unbudgeted.gbps_of(0) + unbudgeted.gbps_of(1)
    assert inter_unbudgeted < inter_budgeted


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(*generate(paper_testbed())))
