"""§5 what-if benches: vendor suggestions and Bluefield-3 projection.

Not a paper figure — the paper's Discussion section makes three claims
without measurements; these benches quantify them with the same models:

* CCI on the SoC removes the Fig 7 write-skew anomaly,
* CXL for host<->SoC beats the RDMA path-③ ceiling and frees PCIe1,
* Bluefield-3 scales the constants 2x but keeps every anomaly.
"""

import pytest

from repro.core.flows import ConcurrencyAnalyzer
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.core.whatif import (
    CxlPath3Model,
    bluefield3_testbed,
    speed_ratios,
    with_cci_soc,
)
from repro.units import KB, MB, to_gbps

from conftest import emit

SOLVER = ThroughputSolver()


def peak(testbed, path, op, payload, **kw):
    return SOLVER.solve(Scenario(testbed, [
        Flow(path=path, op=op, payload=payload,
             requesters=kw.pop("requesters", 11), **kw)]))


def generate(testbed):
    cci = with_cci_soc(testbed)
    bf3 = bluefield3_testbed(testbed)
    cxl = CxlPath3Model(testbed.snic.spec)

    skew = {
        "BF2 (no CCI)": peak(testbed, CommPath.SNIC2, Opcode.WRITE, 64,
                             range_bytes=1536).mrps_of(0),
        "BF2 + CCI": peak(cci, CommPath.SNIC2, Opcode.WRITE, 64,
                          range_bytes=1536).mrps_of(0),
    }
    path3 = {
        "RDMA path-3 (today)": to_gbps(cxl.rdma_path3_bandwidth(256 * KB)),
        "CXL host<->SoC": to_gbps(cxl.bandwidth()),
    }
    bf3_rows = {
        "network Gbps (16 KB READ)": (
            peak(testbed, CommPath.SNIC1, Opcode.READ, 16 * KB).gbps_of(0),
            peak(bf3, CommPath.SNIC1, Opcode.READ, 16 * KB).gbps_of(0)),
        "path-3 budget Gbps": (
            ConcurrencyAnalyzer(testbed).path3_budget_gbps(),
            ConcurrencyAnalyzer(bf3).path3_budget_gbps()),
        "HOL-collapsed 16 MB READ Gbps": (
            peak(testbed, CommPath.SNIC2, Opcode.READ, 16 * MB).gbps_of(0),
            peak(bf3, CommPath.SNIC2, Opcode.READ, 16 * MB).gbps_of(0)),
        "skew floor M reqs/s": (
            peak(testbed, CommPath.SNIC2, Opcode.WRITE, 64,
                 range_bytes=1536).mrps_of(0),
            peak(bf3, CommPath.SNIC2, Opcode.WRITE, 64,
                 range_bytes=1536).mrps_of(0)),
    }
    return skew, path3, bf3_rows, speed_ratios(testbed, bf3)


def report(skew, path3, bf3_rows, ratios) -> str:
    t1 = format_table(["configuration", "narrow-range WRITE M/s"],
                      [[k, f"{v:.1f}"] for k, v in skew.items()],
                      title="S5 — CCI removes the write-skew anomaly")
    t2 = format_table(["transport", "host<->SoC Gbps"],
                      [[k, f"{v:.0f}"] for k, v in path3.items()],
                      title="S5 — CXL vs RDMA for path 3")
    t3 = format_table(["metric", "Bluefield-2", "Bluefield-3"],
                      [[k, f"{a:.1f}", f"{b:.1f}"]
                       for k, (a, b) in bf3_rows.items()],
                      title=f"S5 — Bluefield-3 projection "
                            f"(network x{ratios['network']:.0f}, "
                            f"PCIe x{ratios['pcie']:.0f})")
    return "\n\n".join([t1, t2, t3])


def test_whatif_nextgen(benchmark, testbed):
    skew, path3, bf3_rows, ratios = benchmark(generate, testbed)
    emit("\n" + report(skew, path3, bf3_rows, ratios))

    # CCI: the anomaly disappears (>3x the floor).
    assert skew["BF2 + CCI"] > 3 * skew["BF2 (no CCI)"]
    # CXL: beats today's ceiling.
    assert path3["CXL host<->SoC"] > path3["RDMA path-3 (today)"]
    # BF3: doubles the healthy numbers, keeps the anomalies.
    net_b2, net_b3 = bf3_rows["network Gbps (16 KB READ)"]
    assert net_b3 == pytest.approx(2 * net_b2, rel=0.02)
    floor_b2, floor_b3 = bf3_rows["skew floor M reqs/s"]
    assert floor_b3 == pytest.approx(floor_b2, rel=0.01)
    budget_b2, budget_b3 = bf3_rows["path-3 budget Gbps"]
    assert budget_b3 == pytest.approx(112.0)


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(*generate(paper_testbed())))
