"""Ablation: which modelled mechanism produces which paper result.

DESIGN.md names the causal mechanisms (MTU mismatch, missing DDIO,
outstanding-transaction windows, HOL collapse, PCIe1 double-crossing).
This bench disables each one in isolation and shows the paper result it
is responsible for disappearing — evidence that the reproductions are
emergent rather than hard-coded.
"""

from dataclasses import replace

import pytest

from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.hw.memory import DRAMConfig, MemorySubsystem
from repro.net.topology import Testbed, paper_testbed
from repro.nic.smartnic import SmartNIC
from repro.units import KB, MB, mpps

from conftest import emit

SOLVER = ThroughputSolver()


def peak(testbed, path, op, payload, requesters=11, **kw):
    return SOLVER.solve(Scenario(testbed, [
        Flow(path=path, op=op, payload=payload, requesters=requesters, **kw)]))


def _swap_snic(testbed: Testbed, spec, host_memory=None) -> Testbed:
    return replace(testbed, snic=SmartNIC(
        spec, host_memory=host_memory or testbed.snic.host_memory))


def ablate_soc_mtu(testbed: Testbed) -> Testbed:
    """Give the SoC endpoint the host's 512 B MTU."""
    return _swap_snic(testbed, replace(testbed.snic.spec, soc_mps=512))


def ablate_hol(testbed: Testbed) -> Testbed:
    """Disable head-of-line collapse (no threshold triggers)."""
    cores = replace(testbed.snic.spec.cores,
                    hol_threshold=1 << 60, hol_threshold_s2h=1 << 60)
    return _swap_snic(testbed, replace(testbed.snic.spec, cores=cores))


def ablate_stall_windows(testbed: Testbed) -> Testbed:
    """Make the outstanding-transaction windows effectively infinite."""
    cores = replace(testbed.snic.spec.cores,
                    read_slots=1 << 20, write_buffers=1 << 20)
    return _swap_snic(testbed, replace(testbed.snic.spec, cores=cores))


def ablate_bank_parallelism(testbed: Testbed) -> Testbed:
    """Give the SoC DRAM host-like bank counts (range-insensitive)."""
    old = testbed.snic.spec.soc_memory
    dram = replace(old.dram, bank_stripe=64)
    memory = MemorySubsystem(dram=dram, llc=old.llc, ddio=old.ddio,
                             name=old.name + "-nobankskew")
    return _swap_snic(testbed, replace(testbed.snic.spec, soc_memory=memory))


def generate(testbed):
    rows = []

    # Mechanism 1: the SoC's 128 B MTU is why path-3 peaks at ~204 Gbps
    # with 3x the TLPs; with a 512 B MTU the ceiling rises.
    base = peak(testbed, CommPath.SNIC3_S2H, Opcode.WRITE, 256 * KB,
                requesters=8).gbps_of(0)
    ablated = peak(ablate_soc_mtu(testbed), CommPath.SNIC3_S2H, Opcode.WRITE,
                   256 * KB, requesters=8).gbps_of(0)
    rows.append(("SoC 128 B MTU", "path-3 peak Gbps", base, ablated))

    # Mechanism 2: HOL collapse causes the Fig 8 cliff.
    base = peak(testbed, CommPath.SNIC2, Opcode.READ, 16 * MB).gbps_of(0)
    ablated = peak(ablate_hol(testbed), CommPath.SNIC2, Opcode.READ,
                   16 * MB).gbps_of(0)
    rows.append(("HOL collapse", "16 MB READ-to-SoC Gbps", base, ablated))

    # Mechanism 3: outstanding-transaction windows cause the S3.1
    # small-request tax.
    base = peak(testbed, CommPath.SNIC1, Opcode.READ, 64).mrps_of(0)
    ablated = peak(ablate_stall_windows(testbed), CommPath.SNIC1,
                   Opcode.READ, 64).mrps_of(0)
    rows.append(("stall windows", "SNIC1 64 B READ M/s", base, ablated))

    # Mechanism 4: bank-level parallelism causes the Fig 7 skew floor.
    base = peak(testbed, CommPath.SNIC2, Opcode.WRITE, 64,
                range_bytes=1536).mrps_of(0)
    ablated = peak(ablate_bank_parallelism(testbed), CommPath.SNIC2,
                   Opcode.WRITE, 64, range_bytes=1536).mrps_of(0)
    rows.append(("bank stripe skew", "narrow WRITE-to-SoC M/s",
                 base, ablated))
    return rows


def report(rows) -> str:
    return format_table(
        ["mechanism", "paper result it causes", "with", "ablated"],
        [[m, what, f"{a:.1f}", f"{b:.1f}"] for m, what, a, b in rows],
        title="Ablation — disabling each mechanism removes its anomaly")


def test_ablation_mechanisms(benchmark, testbed):
    rows = benchmark(generate, testbed)
    emit("\n" + report(rows))
    by_name = {m: (a, b) for m, _w, a, b in rows}

    with_mtu, without_mtu = by_name["SoC 128 B MTU"]
    assert without_mtu > 1.1 * with_mtu      # ceiling rises with 512 B MTU
    with_hol, without_hol = by_name["HOL collapse"]
    assert without_hol > 1.5 * with_hol      # the cliff disappears
    with_stall, without_stall = by_name["stall windows"]
    assert without_stall > 1.15 * with_stall # the S3.1 tax disappears
    with_banks, without_banks = by_name["bank stripe skew"]
    assert without_banks > 2 * with_banks    # the skew floor disappears


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(generate(paper_testbed())))
