"""§2.1 motivation numbers: host CPU occupation and network amplification.

Regenerates the two problems that motivate SmartNICs:

* **Issue #1** — a 24-core server saturates at ~87 Mpps of two-sided
  traffic while the NIC cores process >195 Mpps; scaling the network
  from 25 to 100 Gbps demands ~2.3x the CPU cores (the LineFS
  observation the paper cites).
* **Issue #2** — a one-sided KV get costs two READ round trips versus
  one RPC when the index lookup is offloaded (Fig 1), reproduced on the
  discrete-event cluster.
"""

import math

import pytest

from repro.apps.kvstore import KVServer, OffloadedKVClient, OneSidedKVClient
from repro.core.report import format_table
from repro.net.cluster import SimCluster
from repro.rdma import RdmaContext
from repro.units import gbps, to_mrps

from conftest import emit


def generate(testbed):
    host_mpps = to_mrps(testbed.host_cpu.echo_capacity())
    nic_mpps = to_mrps(testbed.snic.spec.cores.verb_rate_host_only)
    # Cores a LineFS-style file server needs: a bandwidth-independent
    # application baseline (metadata, journaling: ~2 cores) plus network
    # cores for 512 B messages at line rate.
    per_core = testbed.host_cpu.two_sided_per_core
    app_cores = 2
    cores_needed = {}
    for net_gbps in (25, 100):
        msgs_per_ns = gbps(net_gbps) / 512
        cores_needed[net_gbps] = app_cores + math.ceil(msgs_per_ns / per_core)
    return host_mpps, nic_mpps, cores_needed


def run_kv_comparison():
    from repro.net.topology import paper_testbed

    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    host_store = KVServer(ctx, "host")
    soc_store = KVServer(ctx, "soc")
    for store in (host_store, soc_store):
        store.put(b"key", b"value")
    one_sided = OneSidedKVClient(ctx, "client0", host_store)
    offloaded = OffloadedKVClient(ctx, "client1", soc_store)
    for client in (one_sided, offloaded):
        proc = cluster.sim.process(client.get(b"key"))
        cluster.sim.run()
        assert proc.value == b"value"
    return one_sided.stats, offloaded.stats


def report(host_mpps, nic_mpps, cores_needed, one_sided, offloaded) -> str:
    table1 = format_table(
        ["resource", "Mpps"],
        [["24-core host, two-sided echo", f"{host_mpps:.0f}"],
         ["NIC cores", f">={nic_mpps:.0f}"]],
        title="S2.1 Issue #1 — CPU occupation")
    ratio = cores_needed[100] / cores_needed[25]
    table2 = format_table(
        ["network", "cores needed (4 KB msgs)"],
        [[f"{g} Gbps", cores_needed[g]] for g in (25, 100)],
        title=f"S2.1 — CPU scaling with line rate ({ratio:.2f}x; "
              "LineFS reports 2.27x)")
    table3 = format_table(
        ["strategy", "round trips/get", "latency us"],
        [["one-sided (Fig 1a)", f"{one_sided.round_trips_per_get:.0f}",
          f"{one_sided.latency.mean / 1000:.2f}"],
         ["offloaded (Fig 1b)", f"{offloaded.round_trips_per_get:.0f}",
          f"{offloaded.latency.mean / 1000:.2f}"]],
        title="S2.1 Issue #2 — network amplification (Fig 1)")
    return "\n\n".join([table1, table2, table3])


def test_sec21_motivation(benchmark, testbed):
    host_mpps, nic_mpps, cores_needed = benchmark(generate, testbed)
    one_sided, offloaded = run_kv_comparison()
    emit("\n" + report(host_mpps, nic_mpps, cores_needed,
                       one_sided, offloaded))

    assert host_mpps == pytest.approx(87, rel=0.01)
    assert nic_mpps >= 195
    # LineFS: ~2.27x the cores from 25 to 100 Gbps (we land close).
    assert cores_needed[100] / cores_needed[25] == pytest.approx(2.3, abs=0.4)
    # Fig 1: the offloaded get halves the round trips and wins latency.
    assert one_sided.round_trips_per_get == 2
    assert offloaded.round_trips_per_get == 1
    assert offloaded.latency.mean < 0.75 * one_sided.latency.mean


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    host_mpps, nic_mpps, cores = generate(paper_testbed())
    one_sided, offloaded = run_kv_comparison()
    emit(report(host_mpps, nic_mpps, cores, one_sided, offloaded))
