"""Fig 9: host<->SoC transfers — bandwidth and PCIe packet rate.

Regenerates both panels for READ and WRITE in both directions of
path ③.  Asserts the paper's anchors: ~204 Gbps peak at 256 KB with
~320 M PCIe packets per second across the fabric (the 293 Mpps Table-3
floor plus control traffic), collapse to ~100 Gbps for large requests,
and S2H collapsing earlier than H2S.
"""

import pytest

from repro.core.harness import ThroughputBench
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.units import KB, MB, fmt_size
from repro.workloads import FIG9_PAYLOADS

from conftest import emit

# Paper direction convention: "S2H" moves data SoC -> host.  In verb
# terms that is a WRITE issued by the SoC (or a READ issued by the
# host); see EXPERIMENTS.md.
SERIES = {
    "S2H (soc WRITE)": (CommPath.SNIC3_S2H, Opcode.WRITE, 8),
    "S2H (host READ)": (CommPath.SNIC3_H2S, Opcode.READ, 24),
    "H2S (host WRITE)": (CommPath.SNIC3_H2S, Opcode.WRITE, 24),
    "H2S (soc READ)": (CommPath.SNIC3_S2H, Opcode.READ, 8),
}


def generate(testbed):
    bench = ThroughputBench(testbed)
    bandwidth = {}
    pps = {}
    for name, (path, op, threads) in SERIES.items():
        bandwidth[name] = bench.payload_sweep(path, op, FIG9_PAYLOADS,
                                              requesters=threads,
                                              metric="gbps")
        pps[name] = bench.pps_sweep(path, op, FIG9_PAYLOADS,
                                    requesters=threads, scope="fabric")
    return bandwidth, pps


def report(bandwidth, pps) -> str:
    rows = []
    for payload in FIG9_PAYLOADS:
        row = [fmt_size(payload)]
        for name in SERIES:
            row.append(f"{bandwidth[name].value_at(payload):.0f}")
        row.append(f"{pps['S2H (soc WRITE)'].value_at(payload):.0f}")
        rows.append(row)
    return format_table(
        ["payload"] + [f"{n} Gbps" for n in SERIES] + ["S2H Mpps"],
        rows, title="Fig 9 — host<->SoC bandwidth (a) and PCIe pps (b)")


def test_fig9_host_soc(benchmark, testbed):
    bandwidth, pps = benchmark(generate, testbed)
    emit("\n" + report(bandwidth, pps))

    s2h = bandwidth["S2H (soc WRITE)"]
    # Peak ~204 Gbps at 256 KB — above the 191 Gbps network paths.
    assert s2h.value_at(256 * KB) == pytest.approx(204, rel=0.01)
    # ... carrying ~320 Mpps across the internal fabric (Fig 9b).
    assert pps["S2H (soc WRITE)"].value_at(256 * KB) == pytest.approx(
        310, rel=0.05)
    # Large transfers collapse to ~100 Gbps in both directions.
    assert s2h.value_at(16 * MB) == pytest.approx(100, rel=0.15)
    assert bandwidth["H2S (host WRITE)"].value_at(16 * MB) == pytest.approx(
        100, rel=0.15)
    # S2H collapses earlier than H2S (its first leg reads SoC memory).
    assert (s2h.value_at(4 * MB)
            < 0.75 * bandwidth["H2S (host WRITE)"].value_at(4 * MB))


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(*generate(paper_testbed())))
