"""Validation: the Fig 7 floors from micro-architectural simulation.

The analytic skew model (Advice #1) assumes DRAM bank-level parallelism
and DDIO cache absorption.  This bench derives the same curves from the
cycle-level substrates instead — random access streams through
:class:`DramBankSim` (closed-page bank timing) and
:class:`SetAssociativeCache` (DDIO-way-restricted LLC) — and checks they
agree with the capacity formula the throughput solver uses.
"""

import random

import pytest

from repro.hw.memory import DramBankSim, SetAssociativeCache
from repro.core.report import format_table
from repro.units import KB, MB, fmt_size, to_mrps

RANGES = [1536, 6 * KB, 12 * KB, 48 * KB, 192 * KB]
ACCESSES = 4000


def _stream(seed, range_bytes, count):
    rng = random.Random(seed)
    return [rng.randrange(0, range_bytes, 64) for _ in range(count)]


# The access streams are seeded, so they are identical every round;
# drawing them once keeps the measured region about the memory
# substrates rather than the RNG.
_DRAM_STREAMS = {rb: _stream(7, rb, ACCESSES) for rb in RANGES}
_LLC_STREAM = _stream(3, 48 * KB, 30_000)


def generate(testbed):
    soc_dram = testbed.snic.spec.soc_memory.dram
    model = testbed.snic.spec.soc_memory
    rows = []
    for range_bytes in RANGES:
        addrs = _DRAM_STREAMS[range_bytes]
        measured = {}
        for op, is_write in (("read", False), ("write", True)):
            sim = DramBankSim(soc_dram)
            sim.run_stream(addrs, is_write=is_write, now=0.0)
            measured[op] = to_mrps(sim.measured_rate())
        analytic_w = to_mrps(model.dma_request_capacity("write", 0,
                                                        range_bytes))
        analytic_r = to_mrps(model.dma_request_capacity("read", 0,
                                                        range_bytes))
        rows.append((range_bytes, measured["read"], analytic_r,
                     measured["write"], analytic_w))

    # DDIO side: hit rate of a narrow DMA stream on the host LLC.
    llc = SetAssociativeCache(size=18 * MB, ways=16, ddio_ways=2)
    access = llc.access
    for i, addr in enumerate(_LLC_STREAM):
        access(addr, from_dma=True)
        if i == 5000:
            llc.stats.hits = llc.stats.misses = 0
    return rows, llc.stats.hit_rate


def report(rows, ddio_hit_rate) -> str:
    table = format_table(
        ["range", "READ sim M/s", "READ model M/s",
         "WRITE sim M/s", "WRITE model M/s"],
        [[fmt_size(r), f"{sr:.1f}", f"{ar:.1f}", f"{sw:.1f}", f"{aw:.1f}"]
         for r, sr, ar, sw, aw in rows],
        title="Fig 7 floors — bank-timing simulation vs analytic model "
              "(SoC DRAM, request-rate capacity)")
    return (table + f"\n\nhost LLC with DDIO: {ddio_hit_rate:.1%} hit rate "
            "for a 48 KB inbound-DMA stream (the flat host line)")


def test_memtiming_validates_fig7_model(benchmark, testbed):
    rows, ddio_hit_rate = benchmark(generate, testbed)
    emit_report = report(rows, ddio_hit_rate)
    from conftest import emit

    emit("\n" + emit_report)

    # The simulation sits at or below the analytic capacity (random
    # traffic leaves some bank imbalance the formula idealizes away).
    for range_bytes, sim_r, model_r, sim_w, model_w in rows:
        assert 0.6 * model_w <= sim_w <= 1.05 * model_w, range_bytes
        assert 0.6 * model_r <= sim_r <= 1.05 * model_r, range_bytes
    # The floors themselves.
    assert rows[0][3] == pytest.approx(22.7, rel=0.02)
    assert rows[0][1] == pytest.approx(50.0, rel=0.02)
    # DDIO absorbs the narrow stream entirely.
    assert ddio_hit_rate > 0.99


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    rows, hit = generate(paper_testbed())
    print(report(rows, hit))
