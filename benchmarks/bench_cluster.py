"""Cluster scheduling: adaptive placement + migration vs static round-robin.

Runs one rack scenario twice through :func:`repro.cluster.run_cluster`:

* **adaptive** — bin-packed placement against the Fig-11 concurrent
  budgets, with the :class:`~repro.cluster.ClusterScheduler` free to
  offload SLO-breaching machines over the LB fabric mid-run;
* **static** — budget-blind round-robin placement, no migration (the
  classic "spread by count, not by load" baseline).

The workload is adversarial for round-robin by construction: three
~80 Gbps write streams interleaved with light tenants, in an order
that round-robin stacks onto one machine while first-fit-decreasing
spreads them one per machine.  The stacked machine oversubscribes its
fabric and melts, so the static rack loses aggregate SLO-goodput —
the headline the cluster layer is asserted to win.
"""

import pytest

from repro.api.schema import ClusterScenario, MachineDoc, SchedulerDoc, TenantDoc
from repro.cluster import run_cluster
from repro.core.report import format_table
from repro.units import GB, MB

from conftest import emit

DURATION_NS = 300_000.0

_HEAVY = dict(payload=4096, interval_ns=410.0,
              requests=int(DURATION_NS / 410.0), read_fraction=0.0,
              slo_p99_ns=150_000.0, working_set_bytes=32 * GB,
              workers=16, queue_limit=32)
_LIGHT = dict(payload=512, interval_ns=4_000.0,
              requests=int(DURATION_NS / 4_000.0), read_fraction=1.0,
              slo_p99_ns=60_000.0, working_set_bytes=4 * MB)


def scenario() -> ClusterScenario:
    # Tenant order is the round-robin ring order: every third tenant is
    # heavy, and with three machines the cursor lands all three heavies
    # on the same one.  The bin-packer sorts by offered load first and
    # never does that.
    tenants = (
        TenantDoc(name="heavy0", **_HEAVY),
        TenantDoc(name="light0", **_LIGHT),
        TenantDoc(name="light1", **_LIGHT),
        TenantDoc(name="heavy1", **_HEAVY),
        TenantDoc(name="light2", **_LIGHT),
        TenantDoc(name="light3", **_LIGHT),
        TenantDoc(name="heavy2", **_HEAVY),
        TenantDoc(name="light4", **_LIGHT),
        TenantDoc(name="light5", **_LIGHT),
    )
    return ClusterScenario(
        name="rr-adversarial", duration_ns=DURATION_NS,
        machines=(MachineDoc(name="rack", count=3),),
        tenants=tenants,
        scheduler=SchedulerDoc(patience=1, cooldown_windows=2,
                               min_samples=1))


def generate(_testbed):
    doc = scenario()
    return {
        "adaptive": run_cluster(doc, jobs=1),
        "static": run_cluster(doc, jobs=1, placement="round-robin",
                              migrate=False),
    }


def report(results) -> str:
    rows = []
    for mode, rep in results.items():
        heavies = {n: m for n, m in rep.placement.items()
                   if n.startswith("heavy")}
        rows.append([
            mode,
            len(set(heavies.values())),
            f"{rep.total_slo_goodput_gbps:.1f}",
            f"{100 * rep.slo_attainment:.1f}%",
            sum(t.rejected for t in rep.tenants.values()),
            len(rep.cluster_decisions),
        ])
    return format_table(
        ["mode", "machines w/ heavies", "slo-gbps", "slo-att", "rej",
         "moves"],
        rows, title="Adaptive cluster scheduling vs static round-robin")


def test_adaptive_placement_beats_static_round_robin(benchmark, testbed):
    results = benchmark(generate, testbed)
    emit("\n" + report(results))
    adaptive, static = results["adaptive"], results["static"]

    # Round-robin really did stack the heavy streams on one machine
    # while the bin-packer spread them.
    static_heavies = {static.placement[f"heavy{i}"] for i in range(3)}
    adaptive_heavies = {adaptive.placement[f"heavy{i}"] for i in range(3)}
    assert len(static_heavies) == 1
    assert len(adaptive_heavies) == 3

    # The headline: adaptive placement wins aggregate SLO-goodput.
    assert (adaptive.total_slo_goodput_gbps
            > 1.1 * static.total_slo_goodput_gbps)
    assert adaptive.slo_attainment >= static.slo_attainment
    # The stacked machine visibly sheds load under round-robin
    # (admission control rejects what three stacked 80 Gbps streams
    # cannot carry); the spread rack serves everything within SLO.
    assert sum(t.rejected for t in static.tenants.values()) > 0
    assert sum(t.rejected for t in adaptive.tenants.values()) == 0
    for t in adaptive.tenants.values():
        assert t.slo_attainment == pytest.approx(1.0, abs=0.02)


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    results = generate(paper_testbed())
    print(report(results))
