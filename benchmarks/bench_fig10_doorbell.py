"""Fig 10: posting latency (a) and the effect of doorbell batching (b).

Panel (a): the unpipelined posting latency per requester — the SoC posts
slowest, the host (to the Bluefield NIC) next, clients fastest.
Panel (b): throughput versus doorbell batch size for path-③ posting —
2.7-4.6x at the SoC side for batches 16-80, and a 9/7/6 % *loss* at the
host side for batches 16/32/48 (Advice #4).
"""

import pytest

from repro.core.harness import ThroughputBench
from repro.core.latency import LatencyModel
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.workloads import FIG10_BATCHES

from conftest import emit


def generate(testbed):
    latency = LatencyModel(testbed)
    posting = {path: latency.posting_latency(path)
               for path in (CommPath.RNIC1, CommPath.SNIC1,
                            CommPath.SNIC3_H2S, CommPath.SNIC3_S2H)}
    bench = ThroughputBench(testbed)
    soc_side = bench.doorbell_sweep(CommPath.SNIC3_S2H, Opcode.READ, 0,
                                    FIG10_BATCHES, requesters=8)
    host_side = bench.doorbell_sweep(CommPath.SNIC3_H2S, Opcode.READ, 0,
                                     FIG10_BATCHES, requesters=24)
    return posting, soc_side, host_side


def report(posting, soc_side, host_side) -> str:
    rows_a = [[path.label, f"{ns:.0f}"] for path, ns in posting.items()]
    table_a = format_table(["requester", "posting latency ns"], rows_a,
                           title="Fig 10(a) — posting latency per requester")
    soc_base = soc_side.value_at(1)
    host_base = host_side.value_at(1)
    rows_b = []
    for batch in FIG10_BATCHES:
        rows_b.append([
            batch,
            f"{soc_side.value_at(batch):.1f}",
            f"{soc_side.value_at(batch) / soc_base:.2f}x",
            f"{host_side.value_at(batch):.1f}",
            f"{host_side.value_at(batch) / host_base:.2f}x",
        ])
    table_b = format_table(
        ["batch", "SoC-side M/s", "speedup", "host-side M/s", "speedup"],
        rows_b, title="Fig 10(b) — doorbell batching on path-3 posting")
    return table_a + "\n\n" + table_b


def test_fig10_doorbell(benchmark, testbed):
    posting, soc_side, host_side = benchmark(generate, testbed)
    emit("\n" + report(posting, soc_side, host_side))

    # (a) the SoC is the slowest poster (wimpy cores + MMIO).
    assert posting[CommPath.SNIC3_S2H] > posting[CommPath.SNIC3_H2S]
    assert posting[CommPath.SNIC3_S2H] > posting[CommPath.SNIC1]

    # (b) SoC side: 2.7x at 16 rising to 4.6x at 80.
    soc_base = soc_side.value_at(1)
    assert soc_side.value_at(16) / soc_base == pytest.approx(2.7, rel=0.02)
    assert soc_side.value_at(80) / soc_base == pytest.approx(4.6, rel=0.02)
    gains = [soc_side.value_at(b) for b in FIG10_BATCHES]
    assert all(b >= a for a, b in zip(gains, gains[1:]))

    # (b) host side: -9 %, -7 %, -6 % at 16/32/48.
    host_base = host_side.value_at(1)
    assert host_side.value_at(16) / host_base == pytest.approx(0.91, abs=0.01)
    assert host_side.value_at(32) / host_base == pytest.approx(0.93, abs=0.01)
    assert host_side.value_at(48) / host_base == pytest.approx(0.94, abs=0.01)


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(*generate(paper_testbed())))
