"""Online path scheduler: adaptive serving versus a static baseline.

Runs the four-tenant mixed workload (every paper path occupied) through
``run_serve`` twice — once with the :class:`PathScheduler` control loop
and once with the same initial placements pinned (no rate caps, no
migrations) — and asserts the §4 partitioning story: the uncapped bulk
host→SoC stream oversubscribes the shared PCIe fabric and melts the
network tenants' tails, while the adaptive run caps it at the
``P − N = 56 Gbps`` budget and keeps every tenant inside its SLO.
"""

import pytest

from repro.core.report import format_table
from repro.sched import mixed_tenant_workload, run_serve
from repro.units import fmt_ns

from conftest import emit

DURATION_NS = 800_000.0
PATH3_BUDGET_GBPS = 56.0  # P - N = 256 - 200 (S4's partitioning rule)


def generate(testbed):
    tenants = mixed_tenant_workload(duration_ns=DURATION_NS)
    return {
        "adaptive": run_serve(tenants, adaptive=True, testbed=testbed),
        "static": run_serve(tenants, adaptive=False, testbed=testbed),
    }


def report(results) -> str:
    rows = []
    for mode, rep in results.items():
        for t in rep.tenants.values():
            rows.append([mode, t.name, t.final_path, fmt_ns(t.p99_ns),
                         f"{t.slo_goodput_gbps:.1f}",
                         f"{100 * t.slo_attainment:.0f}%", t.rejected])
    summary = format_table(
        ["mode", "tenant", "path", "p99", "slo-gbps", "slo-att", "rej"],
        rows, title="Adaptive scheduling vs pinned static placements")
    totals = "\n".join(
        f"{mode}: aggregate SLO-goodput "
        f"{rep.total_slo_goodput_gbps:.1f} Gbps, worst p99 "
        f"{rep.worst_p99().fmt('ns', precision=0)}, path-3 delivered "
        f"{rep.path_gbps.get('snic-3-h2s', 0.0):.1f} Gbps"
        for mode, rep in results.items())
    return summary + "\n\n" + totals


def test_scheduler_beats_static(benchmark, testbed):
    results = benchmark(generate, testbed)
    emit("\n" + report(results))

    adaptive, static = results["adaptive"], results["static"]
    # The adaptive run strictly improves the headline metrics over the
    # static pin of the very same initial placements: aggregate useful
    # bandwidth, and every network tenant's tail (gamma's own tail
    # trades against its rate cap, but stays inside its SLO).
    assert (adaptive.total_slo_goodput_gbps
            > static.total_slo_goodput_gbps)
    for name in ("alpha", "beta", "delta"):
        assert adaptive.tenants[name].p99_ns < static.tenants[name].p99_ns
    # Nothing is lost and every tenant holds its SLO under the scheduler.
    assert adaptive.lost == 0
    for t in adaptive.tenants.values():
        assert t.slo_attainment == pytest.approx(1.0)
    # Static oversubscription shows: at least one tenant's tail blows
    # past its SLO (beta/delta's 25 us target).
    assert any(t.slo_attainment < 0.5 for t in static.tenants.values())
    # Steady-state path-3 bandwidth obeys the P - N partitioning rule:
    # delivered rate sits at (not merely below) the 56 Gbps budget.
    delivered = adaptive.path_gbps["snic-3-h2s"]
    assert 0.75 * PATH3_BUDGET_GBPS <= delivered <= 1.05 * PATH3_BUDGET_GBPS
    # The uncapped static run proves the cap was binding.
    assert static.path_gbps["snic-3-h2s"] > 1.3 * PATH3_BUDGET_GBPS


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(generate(paper_testbed())))
