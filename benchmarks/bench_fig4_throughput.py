"""Fig 4 (lower): peak throughput per path, verb and payload.

Regenerates the throughput curves (up to 11 requester machines for the
client paths, requester threads for path ③) and asserts the paper's
relative bands: SNIC ① loses 19-26 % (READ) / 15-22 % (WRITE) to
RNIC ① below 512 B; SNIC ② runs 1.08-1.48x SNIC ① for one-sided verbs
and drops ~64 % for SEND; everything converges to the network bound for
large payloads.
"""

from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.units import KB, fmt_size
from repro.workloads import FIG4_PAYLOADS

from conftest import emit


def generate(testbed):
    solver = ThroughputSolver()
    series = {}
    for op in Opcode:
        for path in CommPath:
            requesters = 24 if path.intra_machine else 11
            rates = []
            for payload in FIG4_PAYLOADS:
                result = solver.solve(Scenario(testbed, [
                    Flow(path=path, op=op, payload=payload,
                         requesters=requesters)]))
                rates.append(result.mrps_of(0))
            series[(op, path)] = rates
    return series


def report(series) -> str:
    blocks = []
    for op in Opcode:
        rows = []
        for i, payload in enumerate(FIG4_PAYLOADS):
            rows.append([fmt_size(payload)]
                        + [f"{series[(op, path)][i]:.1f}"
                           for path in CommPath])
        headers = ["payload"] + [p.label for p in CommPath]
        blocks.append(format_table(
            headers, rows,
            title=f"Fig 4 (lower) — {op.value.upper()} peak throughput (M reqs/s)"))
    return "\n\n".join(blocks)


def test_fig4_throughput(benchmark, testbed):
    series = benchmark(generate, testbed)
    emit("\n" + report(series))

    def at(op, path, payload):
        return series[(op, path)][FIG4_PAYLOADS.index(payload)]

    for payload in (16, 64, 128):
        assert 0.74 <= (at(Opcode.READ, CommPath.SNIC1, payload)
                        / at(Opcode.READ, CommPath.RNIC1, payload)) <= 0.82
        assert 1.08 <= (at(Opcode.READ, CommPath.SNIC2, payload)
                        / at(Opcode.READ, CommPath.SNIC1, payload)) <= 1.48
    for payload in (16, 64):  # the WRITE gap closes at the 128 B network knee
        assert 0.78 <= (at(Opcode.WRITE, CommPath.SNIC1, payload)
                        / at(Opcode.WRITE, CommPath.RNIC1, payload)) <= 0.85
        # SNIC2 READ observably above the RNIC baseline (S3.2).
        assert (at(Opcode.READ, CommPath.SNIC2, payload)
                > at(Opcode.READ, CommPath.RNIC1, payload))
        # SEND to the SoC drops hard (wimpy cores).
        assert (at(Opcode.SEND, CommPath.SNIC2, payload)
                < 0.45 * at(Opcode.SEND, CommPath.SNIC1, payload))
    # Path 3 small requests are requester-bound (51.2 / 29 M reqs/s).
    assert abs(at(Opcode.READ, CommPath.SNIC3_H2S, 64) - 51.2) < 1
    assert abs(at(Opcode.READ, CommPath.SNIC3_S2H, 64) - 29.0) < 1
    # Large payloads: network-bound, SNIC1 == RNIC1.
    import pytest

    big = 16 * KB
    assert (at(Opcode.READ, CommPath.SNIC1, big)
            == pytest.approx(at(Opcode.READ, CommPath.RNIC1, big), rel=0.02))


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(generate(paper_testbed())))
