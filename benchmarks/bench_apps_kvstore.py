"""Application-level benchmark: the Fig 1 KV store on the simulation.

Beyond the paper's microbenchmarks: drives the two get strategies —
one-sided READs against host memory versus a single RPC to the SoC-
resident store — across value sizes, measuring end-to-end latency and
closed-loop per-client throughput on the discrete-event cluster.
"""

import random

import pytest

from repro.apps.kvstore import KVServer, OffloadedKVClient, OneSidedKVClient
from repro.core.report import format_table
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.units import KB

from conftest import emit

VALUE_SIZES = [16, 256, 4 * KB]
GETS = 60


def run_strategy(strategy: str, value_size: int):
    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    node = "host" if strategy == "one-sided" else "soc"
    store = KVServer(ctx, node, n_buckets=4096, log_bytes=1 << 22)
    rng = random.Random(9)
    keys = []
    for i in range(100):
        key = f"k{i}".encode()
        store.put(key, bytes(value_size))
        keys.append(key)
    if strategy == "one-sided":
        client = OneSidedKVClient(ctx, "client0", store)
    else:
        client = OffloadedKVClient(ctx, "client0", store)

    def closed_loop():
        for _ in range(GETS):
            yield cluster.sim.process(client.get(rng.choice(keys)))

    start = cluster.sim.now
    driver = cluster.sim.process(closed_loop())
    cluster.sim.run()
    assert driver.ok
    elapsed = cluster.sim.now - start
    return {
        "mean_us": client.stats.latency.mean / 1000,
        "p99_us": client.stats.latency.p99 / 1000,
        "rts_per_get": client.stats.round_trips_per_get,
        "gets_per_ms": GETS / (elapsed / 1e6),
    }


def generate(testbed):
    results = {}
    for value_size in VALUE_SIZES:
        for strategy in ("one-sided", "offloaded"):
            results[(strategy, value_size)] = run_strategy(strategy,
                                                           value_size)
    return results


def report(results) -> str:
    rows = []
    for value_size in VALUE_SIZES:
        for strategy in ("one-sided", "offloaded"):
            r = results[(strategy, value_size)]
            rows.append([value_size, strategy, f"{r['rts_per_get']:.0f}",
                         f"{r['mean_us']:.2f}", f"{r['p99_us']:.2f}",
                         f"{r['gets_per_ms']:.0f}"])
    return format_table(
        ["value B", "strategy", "RTs/get", "mean us", "p99 us", "gets/ms"],
        rows, title="Fig 1 end-to-end — KV gets on the simulated cluster")


def test_kvstore_offload_wins_across_value_sizes(benchmark, testbed):
    results = benchmark(generate, testbed)
    emit("\n" + report(results))

    for value_size in VALUE_SIZES:
        one_sided = results[("one-sided", value_size)]
        offloaded = results[("offloaded", value_size)]
        # The offloaded store answers in one round trip; the one-sided
        # client needs two (a rare hash-collision miss costs only one).
        assert offloaded["rts_per_get"] == 1
        assert one_sided["rts_per_get"] > 1.9
        # ... which wins latency and closed-loop throughput.
        assert offloaded["mean_us"] < 0.80 * one_sided["mean_us"]
        assert offloaded["gets_per_ms"] > 1.2 * one_sided["gets_per_ms"]
    # Larger values stretch both strategies.
    assert (results[("one-sided", 4 * KB)]["mean_us"]
            > results[("one-sided", 16)]["mean_us"])


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(generate(paper_testbed())))
