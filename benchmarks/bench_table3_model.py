"""Table 3: the PCIe MTU and packet-count model, cross-checked.

Regenerates the table (TLPs per N-byte transfer on each path's links)
and validates the closed-form model two ways: against the paper's
worked example (293 Mpps for 200 Gbps SoC->host), and against the
discrete-event simulation's TLP counters (the simulated "hardware
counters").
"""

import pytest

from repro.core.packets import PacketCountModel
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.net.cluster import SimCluster
from repro.rdma import RdmaContext
from repro.units import KB, MB, fmt_size, gbps

from conftest import emit

SIZES = [4 * KB, 64 * KB, 1 * MB]


def generate(testbed):
    model = PacketCountModel(testbed.snic.spec)
    rows = []
    for nbytes in SIZES:
        for path in (CommPath.SNIC1, CommPath.SNIC2, CommPath.SNIC3_S2H):
            row = model.table3_row(path, nbytes)
            rows.append((fmt_size(nbytes), path.label,
                         row["pcie1"], row["pcie0"]))
    example = model.pps_for_bandwidth(CommPath.SNIC3_S2H, Opcode.WRITE,
                                      gbps(200), 4 * KB) * 1e3
    return rows, example


def des_counters(testbed_factory, nbytes):
    """Run one S2H WRITE on the DES and read the PCIe1 counters."""
    from repro.net.topology import paper_testbed

    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    soc_mr = ctx.reg_mr("soc", nbytes)
    host_mr = ctx.reg_mr("host", nbytes)
    qp, _ = ctx.connect_rc("soc", "host")
    qp.post_write(1, soc_mr, host_mr, nbytes)
    cluster.sim.run()
    return cluster.snic.pcie1.total_tlps, cluster.snic.pcie0.total_tlps


def report(rows, example) -> str:
    table = format_table(
        ["N", "path", "PCIe1 TLPs", "PCIe0 TLPs"],
        [list(r) for r in rows],
        title="Table 3 — data TLPs per transfer (host MTU 512 B, "
              "SoC MTU 128 B)")
    return (table + f"\n\nS3.3 worked example: 200 Gbps SoC->host requires "
            f"{example:.0f} Mpps (paper: >= 293 Mpps)")


def test_table3_model(benchmark, testbed):
    rows, example = benchmark(generate, testbed)
    emit("\n" + report(rows, example))

    as_dict = {(n, p): (p1, p0) for n, p, p1, p0 in rows}
    # ceil(N/512) on both links for path 1; ceil(N/128) on PCIe1 for
    # path 2; the sum for path 3.
    assert as_dict[("4KB", CommPath.SNIC1.label)] == (8, 8)
    assert as_dict[("4KB", CommPath.SNIC2.label)] == (32, 0)
    assert as_dict[("4KB", CommPath.SNIC3_S2H.label)] == (40, 8)
    assert example == pytest.approx(293, rel=0.01)


def test_table3_matches_des_hardware_counters(benchmark, testbed):
    nbytes = 64 * KB
    pcie1, pcie0 = benchmark(des_counters, None, nbytes)
    model = PacketCountModel(testbed.snic.spec)
    expected = model.counts(CommPath.SNIC3_S2H, Opcode.WRITE, nbytes)
    emit(f"\nDES counters for one {fmt_size(nbytes)} S2H WRITE: "
         f"PCIe1 {pcie1:.0f} TLPs (model {expected.pcie1_total}), "
         f"PCIe0 {pcie0:.0f} TLPs (model {expected.pcie0_total})")
    assert pcie1 == expected.pcie1_total
    assert pcie0 == expected.pcie0_total


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(*generate(paper_testbed())))
