"""Fig 7: one-sided throughput versus responder address range.

Regenerates the skewed-access study: READ and WRITE request rates
against SoC memory (SNIC ②, no DDIO) and host memory (SNIC ①, DDIO)
as the address range shrinks from 10 GB to 1.5 KB.  Asserts the paper's
floors — WRITE collapses to 22.7 M reqs/s and READ to 50 M reqs/s at
1.5 KB on the SoC — and the host's flat lines.

The paper ran this on the CLI machines (the footnote about DDIO), with
two requesters; we match that setup.
"""

import pytest

from repro.core.harness import ThroughputBench
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.units import KB, fmt_size
from repro.workloads import FIG7_RANGES

from conftest import emit

PAYLOAD = 64
REQUESTERS = 2  # calibrated to the paper's weaker Fig 7 setup


def generate(testbed):
    bench = ThroughputBench(testbed)
    series = {}
    for op in (Opcode.READ, Opcode.WRITE):
        for path in (CommPath.SNIC1, CommPath.SNIC2):
            sweep = bench.range_sweep(path, op, PAYLOAD, FIG7_RANGES,
                                      requesters=REQUESTERS)
            series[(op, path)] = sweep
    return series


def report(series) -> str:
    blocks = []
    for op in (Opcode.READ, Opcode.WRITE):
        rows = []
        for range_bytes in FIG7_RANGES:
            rows.append([
                fmt_size(range_bytes),
                f"{series[(op, CommPath.SNIC1)].value_at(range_bytes):.1f}",
                f"{series[(op, CommPath.SNIC2)].value_at(range_bytes):.1f}",
            ])
        blocks.append(format_table(
            ["range", "SNIC ① host+DDIO", "SNIC ② SoC no-DDIO"], rows,
            title=f"Fig 7 — {op.value.upper()} throughput vs address "
                  "range (M reqs/s)"))
    return "\n\n".join(blocks)


def test_fig7_skew(benchmark, testbed):
    series = benchmark(generate, testbed)
    emit("\n" + report(series))

    write_soc = series[(Opcode.WRITE, CommPath.SNIC2)]
    read_soc = series[(Opcode.READ, CommPath.SNIC2)]
    # Paper floors at 1.5 KB: 22.7 M (WRITE) and 50 M (READ).
    assert write_soc.value_at(1536) == pytest.approx(22.7, rel=0.01)
    assert read_soc.value_at(1536) == pytest.approx(50.0, rel=0.01)
    # Wide-range peaks recover (77.9 / 85 M in the paper's setup).
    assert write_soc.value_at(48 * KB) == pytest.approx(78, rel=0.02)
    assert read_soc.value_at(48 * KB) == pytest.approx(78, rel=0.02)
    # READ degrades less than WRITE (DRAM serves reads faster).
    assert (read_soc.value_at(1536) / read_soc.value_at(48 * KB)
            > write_soc.value_at(1536) / write_soc.value_at(48 * KB))
    # Host lines are flat thanks to DDIO.
    for op in (Opcode.READ, Opcode.WRITE):
        host = series[(op, CommPath.SNIC1)]
        assert host.value_at(1536) == pytest.approx(
            host.value_at(FIG7_RANGES[-1]), rel=0.01)
    # Monotone recovery as the range grows.
    values = write_soc.values()
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


if __name__ == "__main__":
    from repro.net.topology import paper_testbed

    emit(report(generate(paper_testbed())))
