"""The stable public surface: export snapshots and deprecation shims.

``repro`` and ``repro.api`` are the supported import points; this file
pins their exports so accidental additions/removals fail review, checks
the new spellings import cleanly under ``-W error::DeprecationWarning``
(the CI gate), and that the legacy ``repro.core.bench`` path still
works while warning exactly once per process.
"""

import os
import pathlib
import subprocess
import sys
import warnings

import repro
import repro.api

_SRC = str(pathlib.Path(repro.__file__).resolve().parents[1])

# Frozen snapshots: changing the public surface is an API decision,
# not a side effect — update these lists deliberately.
REPRO_EXPORTS = [
    "Advisor",
    "CommPath",
    "ConcurrencyAnalyzer",
    "Flow",
    "LatencyModel",
    "Opcode",
    "PacketCountModel",
    "RunOptions",
    "Scenario",
    "Session",
    "SolverResult",
    "Testbed",
    "ThroughputSolver",
    "WorkloadProfile",
    "__version__",
    "detect_all",
    "paper_testbed",
]

API_EXPORTS = ["ClusterScenario", "MachineDoc", "RunOptions",
               "SchedulerDoc", "Session", "TenantDoc"]


def test_repro_export_snapshot():
    assert sorted(repro.__all__) == REPRO_EXPORTS


def test_api_export_snapshot():
    assert sorted(repro.api.__all__) == API_EXPORTS


def test_every_export_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_new_spellings_are_warning_free():
    """The supported imports stay clean under -W error."""
    code = ("import repro, repro.api, repro.sched\n"
            "from repro import Session, RunOptions\n"
            "from repro.core.harness import LatencyBench, ThroughputBench\n")
    subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
        check=True, env={**os.environ, "PYTHONPATH": _SRC})


def test_bench_shim_warns_once_and_aliases_harness():
    for module in ("repro.core.bench",):
        sys.modules.pop(module, None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.core.bench as bench
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "repro.core.bench" in str(w.message)]
    assert len(deprecations) == 1
    # The second import hits the module cache: silent.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.core.bench  # noqa: F811
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
    # Old names are the same objects, not copies.
    from repro.core import harness

    assert bench.LatencyBench is harness.LatencyBench
    assert bench.ThroughputBench is harness.ThroughputBench
    assert bench.Sweep is harness.Sweep
    assert bench.Measurement is harness.Measurement
