"""Tests for the hardware-counter telemetry."""

import pytest

from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.telemetry import CounterSnapshot, Telemetry
from repro.units import KB, MB


def make(nic="snic"):
    cluster = SimCluster(paper_testbed(), nic=nic)
    return cluster, RdmaContext(cluster), Telemetry(cluster)


def test_snapshot_contains_link_counters():
    _cluster, _ctx, telemetry = make()
    snap = telemetry.snapshot()
    assert "pcie1.tlps" in snap.counters
    assert "pcie0.bytes" in snap.counters
    assert "net.server.tx_bytes" in snap.counters
    assert snap.timestamp == 0.0


def test_rnic_mode_snapshot():
    _cluster, _ctx, telemetry = make(nic="rnic")
    snap = telemetry.snapshot()
    assert "hostlink.tlps" in snap.counters
    assert "pcie1.tlps" not in snap.counters


def test_delta_tracks_a_transfer():
    cluster, ctx, telemetry = make()
    server = ctx.reg_mr("soc", 64 * KB)
    local = ctx.reg_mr("client0", 64 * KB)
    qp, _ = ctx.connect_rc("client0", "soc")
    before = telemetry.snapshot()
    qp.post_write(1, local, server, 4 * KB)
    cluster.sim.run()
    after = telemetry.snapshot()
    delta = after - before
    # 4 KB at the SoC's 128 B MTU: 32 TLPs toward the switch.
    assert delta.deltas["pcie1.tlps_to_nic"] == 32
    assert delta.deltas["pcie0.tlps"] == 0
    assert delta.deltas["net.client0.tx_bytes"] > 4 * KB


def test_rates_have_sane_units():
    cluster, ctx, telemetry = make()
    host_mr = ctx.reg_mr("host", 4 * MB)
    soc_mr = ctx.reg_mr("soc", 4 * MB)
    qp, _ = ctx.connect_rc("soc", "host")
    before = telemetry.snapshot()
    qp.post_write(1, soc_mr, host_mr, 4 * MB)
    cluster.sim.run()
    after = telemetry.snapshot()
    delta = after - before
    # A sustained S2H transfer: PCIe1 sees hundreds of Mpps-scale TLPs.
    assert delta.mpps("pcie1.tlps") > 50
    assert 10 < delta.gbps("pcie1.bytes") < 600
    assert delta.rate("missing-counter") == 0.0


def test_snapshot_order_enforced():
    cluster, ctx, telemetry = make()
    first = telemetry.snapshot()
    cluster.sim.timeout(10)
    cluster.sim.run()
    second = telemetry.snapshot()
    with pytest.raises(ValueError):
        _ = first - second
    assert (second - first).elapsed_ns == 10.0


def test_report_formats_rates():
    cluster, ctx, telemetry = make()
    server = ctx.reg_mr("host", 64 * KB)
    local = ctx.reg_mr("client0", 64 * KB)
    qp, _ = ctx.connect_rc("client0", "host")
    before = telemetry.snapshot()
    qp.post_read(1, local, server, 4 * KB)
    cluster.sim.run()
    report = telemetry.report(before, telemetry.snapshot())
    assert "Mpps" in report and "Gbps" in report
    assert "pcie1.tlps" in report


def test_zero_window_rates_are_zero():
    snap = CounterSnapshot(timestamp=5.0, counters={"x": 3})
    delta = snap - CounterSnapshot(timestamp=5.0, counters={"x": 1})
    assert delta.rate("x") == 0.0


def test_delta_with_counter_appearing_mid_run():
    # Counters like rdma.retransmits only exist after the first fault:
    # a key present only in the later snapshot must read as its value.
    before = CounterSnapshot(timestamp=0.0, counters={"a": 5.0})
    after = CounterSnapshot(timestamp=10.0,
                            counters={"a": 7.0, "rdma.retransmits": 3.0})
    delta = after - before
    assert delta.deltas == {"a": 2.0, "rdma.retransmits": 3.0}


def test_delta_with_counter_disappearing_mid_run():
    # A key present only in the earlier snapshot reads as a negative
    # movement, not a KeyError and not a silent drop.
    before = CounterSnapshot(timestamp=0.0, counters={"a": 5.0, "gone": 4.0})
    after = CounterSnapshot(timestamp=10.0, counters={"a": 5.0})
    delta = after - before
    assert delta.deltas == {"a": 0.0, "gone": -4.0}


def test_delta_keys_are_sorted_regardless_of_origin():
    before = CounterSnapshot(timestamp=0.0, counters={"z": 1.0, "m": 1.0})
    after = CounterSnapshot(timestamp=1.0, counters={"a": 2.0, "m": 3.0})
    delta = after - before
    assert list(delta.deltas) == ["a", "m", "z"]
    assert delta.deltas == {"a": 2.0, "m": 2.0, "z": -1.0}


def test_reversed_snapshot_order_error_names_both_timestamps():
    first = CounterSnapshot(timestamp=1.0, counters={})
    second = CounterSnapshot(timestamp=9.0, counters={})
    with pytest.raises(ValueError, match=r"9.*1|reversed"):
        _ = first - second
    # Equal timestamps are a legal (zero-width) window, not an error.
    assert (first - CounterSnapshot(timestamp=1.0,
                                    counters={})).elapsed_ns == 0.0
