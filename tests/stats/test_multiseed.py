"""Multi-seed regression pins on the paper's headline claims.

Two claims get the cross-seed treatment: the Fig-11 concurrent
partition (195/157 solo peaks, 210 Mrps together) must be exactly
reproducible — fresh testbeds, repeated evaluations, zero spread —
and the scheduler chapter's headline (adaptive beats static) must
hold in *every* seed, not just on average: a direction that flips
sign across seeds is noise wearing a conclusion's clothes.
"""

import pytest

from repro.core.flows import ConcurrencyAnalyzer
from repro.core.paths import Opcode
from repro.net.topology import paper_testbed
from repro.stats.kernels import mean_estimate
from repro.stats.replicate import replicate

DURATION_NS = 300_000.0
SEEDS = (0, 1, 2)

#: Fig 11: solo peaks and the concurrent aggregate (Mrps).
SOLO_MRPS = {"snic-1": 195.0, "snic-2": 157.0}
CONCURRENT_TOTAL_MRPS = 210.0


def _budgets():
    analyzer = ConcurrencyAnalyzer(paper_testbed())
    return {p.value: v
            for p, v in analyzer.concurrent_endpoint_budgets(
                Opcode.READ).items()}


def test_fig11_partition_is_exactly_reproducible():
    evaluations = [_budgets() for _ in range(3)]
    assert evaluations[0] == evaluations[1] == evaluations[2]
    total = mean_estimate([sum(b.values()) for b in evaluations])
    assert total.half_width == 0.0
    assert total.mean == pytest.approx(CONCURRENT_TOTAL_MRPS, rel=0.02)


def test_fig11_concurrent_shares_sit_below_solo_peaks():
    budgets = _budgets()
    for path, solo in SOLO_MRPS.items():
        assert budgets[path] < solo * 1.01, (
            f"{path} concurrent share {budgets[path]:.1f} Mrps books "
            f"more than its solo peak {solo:.0f} — the shared-core "
            "partition is broken")


def test_adaptive_beats_static_in_every_seed():
    adaptive = replicate("adaptive", seeds=SEEDS,
                         duration_ns=DURATION_NS)
    static = replicate("static", seeds=SEEDS, duration_ns=DURATION_NS)
    for seed, a, s in zip(SEEDS, adaptive.reports, static.reports):
        assert a.total_slo_goodput_gbps > s.total_slo_goodput_gbps, (
            f"seed {seed}: adaptive {a.total_slo_goodput_gbps:.1f} Gbps "
            f"<= static {s.total_slo_goodput_gbps:.1f} — the headline "
            "direction flipped under reseeding")


def test_adaptive_gap_survives_cross_seed_aggregation():
    adaptive = replicate("adaptive", seeds=SEEDS,
                         duration_ns=DURATION_NS)
    static = replicate("static", seeds=SEEDS, duration_ns=DURATION_NS)
    gap = adaptive.total_slo_goodput().mean - static.total_slo_goodput().mean
    assert gap > 0
    # The serving families are seed-invariant (docs/validation.md), so
    # the cross-seed interval must be degenerate — if spread appears
    # here, a seed started leaking into the serving path.
    assert adaptive.total_slo_goodput().half_width == 0.0
    assert static.total_slo_goodput().half_width == 0.0
