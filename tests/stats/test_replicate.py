"""Cross-seed replication: caching, pooling, and the estimates.

The pool path must produce the same reports as the serial path, the
cache must make a re-replication free, and the estimates must read the
window archive the serving layer now exports.
"""

import math

import pytest

from repro.stats.kernels import Estimate
from repro.stats.replicate import (
    METRICS,
    REPLICATE_CACHE,
    Replication,
    replicate,
    replicate_families,
    report_estimate,
)

DURATION_NS = 300_000.0


@pytest.fixture(scope="module")
def adaptive_rep():
    return replicate("adaptive", seeds=(0, 1, 2), duration_ns=DURATION_NS)


def test_one_report_per_seed(adaptive_rep):
    assert adaptive_rep.n == 3
    assert adaptive_rep.seeds == (0, 1, 2)
    assert len(adaptive_rep.reports) == 3
    assert adaptive_rep.tenant_names() == ("alpha", "beta", "delta",
                                           "gamma")


def test_replicate_accepts_count_or_sequence():
    by_count = replicate("adaptive", seeds=3, duration_ns=DURATION_NS)
    by_seq = replicate("adaptive", seeds=(0, 1, 2),
                       duration_ns=DURATION_NS)
    assert by_count.seeds == by_seq.seeds
    for a, b in zip(by_count.reports, by_seq.reports):
        assert a.total_slo_goodput_gbps == b.total_slo_goodput_gbps


def test_second_replication_is_cache_hits(adaptive_rep):
    hits_before = REPLICATE_CACHE.hits
    again = replicate("adaptive", seeds=(0, 1, 2),
                      duration_ns=DURATION_NS)
    assert REPLICATE_CACHE.hits >= hits_before + 3
    for a, b in zip(adaptive_rep.reports, again.reports):
        assert a is b   # literally the cached object


def test_pool_matches_serial(adaptive_rep):
    pooled = replicate("adaptive", seeds=(0, 1, 2),
                       duration_ns=DURATION_NS, jobs=2, use_cache=False)
    for serial, parallel in zip(adaptive_rep.reports, pooled.reports):
        for name in serial.tenants:
            a, b = serial.tenants[name], parallel.tenants[name]
            assert (a.completed, a.rejected, a.lost) == \
                (b.completed, b.rejected, b.lost)
            assert a.p99_ns == b.p99_ns


def test_estimates_cover_every_metric(adaptive_rep):
    for metric in METRICS:
        est = adaptive_rep.estimate("alpha", metric)
        assert isinstance(est, Estimate)
        assert est.n == 3
        assert math.isfinite(est.mean)
    with pytest.raises(ValueError):
        adaptive_rep.estimate("alpha", "no-such-metric")


def test_within_run_reads_the_window_archive(adaptive_rep):
    est = adaptive_rep.within_run("gamma", field="p99_ns")
    assert est.n >= 2
    assert est.mean > 0
    assert math.isfinite(est.half_width)


def test_report_estimate_empty_tenant_is_unbounded(adaptive_rep):
    est = report_estimate(adaptive_rep.reports[0], "no-such-tenant")
    assert est.n == 0 and math.isinf(est.half_width)


def test_invariants_qualify_the_seed(adaptive_rep):
    results = adaptive_rep.invariants()
    assert results
    assert all(r.ok for r in results)
    subjects = {r.subject for r in results}
    assert any(s.endswith("@seed0") for s in subjects)
    assert any(s.endswith("@seed2") for s in subjects)


def test_broken_counter_family_fails_loudly():
    rep = replicate("broken-counter", seeds=1, duration_ns=DURATION_NS)
    bad = [r for r in rep.invariants() if not r.ok]
    assert bad
    assert {r.name for r in bad} >= {"flow-conservation", "littles-law"}
    assert any(r.subject == "alpha@seed0" for r in bad)


def test_family_catalog_and_unknown_family():
    families = replicate_families(duration_ns=DURATION_NS)
    assert "adaptive" in families and "broken-counter" in families
    with pytest.raises(ValueError):
        replicate("no-such-family", seeds=1, duration_ns=DURATION_NS)
    with pytest.raises(ValueError):
        replicate("adaptive", seeds=0)


def test_replication_requires_matched_lengths(adaptive_rep):
    with pytest.raises(ValueError):
        Replication(family="adaptive", duration_ns=DURATION_NS,
                    engine="event", seeds=(0, 1),
                    reports=adaptive_rep.reports)
