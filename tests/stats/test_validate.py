"""``repro validate``: the report passes, fails, and stays byte-stable.

The three properties CI leans on: a healthy family grades all-PASS
with intervals in every value column; fixed seeds produce identical
report bytes; and the injected broken-counter family comes out FAILED
with the tripped invariant named — the harness can actually fail.
"""

import pytest

from repro.cli import main as cli_main
from repro.stats.validate import (
    FAIL,
    PASS,
    SERVING_FAMILIES,
    run_validation,
    validation_families,
)

DURATION_NS = 300_000.0


@pytest.fixture(scope="module")
def adaptive_report():
    return run_validation(families=["adaptive"], seeds=3,
                          duration_ns=DURATION_NS)


def test_healthy_family_grades_all_pass(adaptive_report):
    assert adaptive_report.rows
    assert adaptive_report.ok
    assert not adaptive_report.failures()
    checks = {row.check for row in adaptive_report.rows}
    # Measurement, invariant, and engine-agreement rows all present.
    assert "p99[alpha]" in checks
    assert "invariant:flow-conservation" in checks
    assert "engine:counts" in checks


def test_values_carry_intervals(adaptive_report):
    p99_rows = [r for r in adaptive_report.rows
                if r.check.startswith("p99[")]
    assert p99_rows
    for row in p99_rows:
        assert "±" in row.value


def test_markdown_is_byte_stable(adaptive_report):
    again = run_validation(families=["adaptive"], seeds=3,
                           duration_ns=DURATION_NS)
    assert again.to_markdown() == adaptive_report.to_markdown()
    assert again.to_json() == adaptive_report.to_json()
    md = adaptive_report.to_markdown()
    assert "All" in md and "checks passed." in md
    assert "| family | check | value | expected | verdict |" in md


def test_broken_counter_fails_naming_the_invariant():
    report = run_validation(families=["broken-counter"], seeds=1,
                            duration_ns=DURATION_NS)
    assert not report.ok
    failed = {row.check for row in report.failures()}
    assert "invariant:flow-conservation" in failed
    assert "invariant:littles-law" in failed
    md = report.to_markdown()
    assert "FAILED" in md
    assert "broken-counter/invariant:flow-conservation" in md


def test_all_excludes_the_injected_family():
    assert "broken-counter" not in validation_families()
    assert "broken-counter" in validation_families(include_injected=True)
    assert set(SERVING_FAMILIES) <= set(validation_families())


def test_unknown_family_is_rejected():
    with pytest.raises(ValueError, match="no-such-family"):
        run_validation(families=["no-such-family"])


def test_figure_families_pass():
    report = run_validation(families=["fig4-dma", "fig11-partition"])
    assert report.ok
    by_family = {row.family for row in report.rows}
    assert by_family == {"fig4-dma", "fig11-partition"}
    # The partition rows prove determinism: zero half-width required.
    partition = [r for r in report.rows if r.family == "fig11-partition"]
    assert all(r.verdict == PASS for r in partition)
    assert any("± 0.0" in r.value for r in partition)


def test_cli_pass_path_writes_report(tmp_path, capsys):
    out = tmp_path / "verification_report.md"
    code = cli_main(["validate", "--families", "adaptive",
                     "--seeds", "3", "--duration", str(DURATION_NS),
                     "--out", str(out), "--check"])
    assert code == 0
    text = out.read_text()
    assert "# Verification report" in text
    assert FAIL not in text.split("|")[0]  # no failures section
    assert "checks passed." in text
    assert "repro validate" in capsys.readouterr().out


def test_cli_broken_counter_exits_nonzero(capsys):
    code = cli_main(["validate", "--families", "broken-counter",
                     "--seeds", "1", "--duration", str(DURATION_NS)])
    assert code == 1
    err = capsys.readouterr().err
    assert "validation failed" in err
    assert "flow-conservation" in err


def test_cli_json_output(capsys):
    import json

    code = cli_main(["validate", "--families", "fig11-partition",
                     "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert all(row["verdict"] == PASS for row in payload["rows"])
