"""The statistical kernels against known values and stated laws.

The t quantiles are checked against the standard table, the estimators
against synthetic streams with known means, and the hypothesis
properties pin the laws the validation layer leans on: confidence
intervals cover the truth at roughly the nominal rate, half-widths
shrink as replication grows, and deterministic data yields exactly
zero width (the seed-invariance signature the reports rely on).
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.kernels import (
    Estimate,
    agreement,
    batch_means,
    mean_estimate,
    normal_ppf,
    quantile,
    student_t_cdf,
    student_t_ppf,
)

# -- Student-t quantiles vs the table -----------------------------------------

#: (df, two-sided 95% critical value) from any t table.
T_TABLE_95 = [(1, 12.706), (2, 4.303), (4, 2.776), (9, 2.262),
              (29, 2.045), (120, 1.980)]


@pytest.mark.parametrize("df,critical", T_TABLE_95)
def test_t_ppf_matches_table(df, critical):
    assert student_t_ppf(0.975, df) == pytest.approx(critical, abs=2e-3)


def test_t_ppf_large_df_is_normal():
    assert student_t_ppf(0.975, 1000) == pytest.approx(1.959964, abs=1e-3)
    assert normal_ppf(0.975) == pytest.approx(1.959964, abs=1e-4)


def test_t_cdf_symmetry_and_median():
    assert student_t_cdf(0.0, 7) == 0.5
    assert student_t_cdf(1.3, 7) + student_t_cdf(-1.3, 7) == \
        pytest.approx(1.0, abs=1e-12)


def test_t_ppf_inverts_cdf():
    for p in (0.6, 0.9, 0.975, 0.995):
        for df in (1, 3, 10, 50):
            t = student_t_ppf(p, df)
            assert student_t_cdf(t, df) == pytest.approx(p, abs=1e-9)


def test_t_rejects_bad_arguments():
    with pytest.raises(ValueError):
        student_t_ppf(0.0, 5)
    with pytest.raises(ValueError):
        student_t_ppf(0.5, 0)
    with pytest.raises(ValueError):
        normal_ppf(1.0)


# -- Estimate -----------------------------------------------------------------


def test_estimate_interval_algebra():
    est = Estimate(mean=10.0, half_width=2.0, n=5)
    assert est.lo == 8.0 and est.hi == 12.0
    assert est.contains(11.9) and not est.contains(12.1)
    assert est.overlaps(Estimate(mean=13.0, half_width=1.5, n=5))
    assert not est.overlaps(Estimate(mean=15.0, half_width=1.0, n=5))
    assert est.rel_half_width() == pytest.approx(0.2)
    assert est.fmt("Gbps") == "10.0 ± 2.0 Gbps"


def test_single_sample_bounds_nothing():
    est = mean_estimate([42.0])
    assert est.mean == 42.0 and math.isinf(est.half_width) and est.n == 1


def test_mean_estimate_known_interval():
    # x̄ = 3, s = 1.5811, t_{0.975,4} = 2.776: hw = 2.776·s/√5.
    est = mean_estimate([1.0, 2.0, 3.0, 4.0, 5.0])
    assert est.mean == pytest.approx(3.0)
    assert est.half_width == pytest.approx(2.776 * est.sd / math.sqrt(5),
                                           rel=1e-3)


def test_mean_estimate_rejects_empty():
    with pytest.raises(ValueError):
        mean_estimate([])
    with pytest.raises(ValueError):
        mean_estimate([1.0, 2.0], confidence=1.0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=30),
       st.integers(min_value=2, max_value=5))
def test_half_width_shrinks_with_replication(values, k):
    """More replicates of the same spread → a tighter interval."""
    base = mean_estimate(values)
    grown = mean_estimate(values * k)
    assert grown.mean == pytest.approx(base.mean, rel=1e-9, abs=1e-9)
    if base.sd == 0.0:
        assert grown.half_width == 0.0
    else:
        assert grown.half_width < base.half_width


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
       st.integers(min_value=2, max_value=40))
def test_deterministic_data_has_zero_width(value, n):
    est = mean_estimate([value] * n)
    assert est.half_width == 0.0
    assert est.mean == pytest.approx(value)


def test_coverage_is_roughly_nominal():
    """95% intervals over known-mean draws cover ≈ 95% of the time.

    300 experiments of n=10 unit-normal draws around mean 5.0, fixed
    RNG: the binomial 99.9% band around 0.95 is roughly [0.90, 0.99].
    """
    rng = random.Random(0xC0FFEE)
    covered = 0
    trials = 300
    for _ in range(trials):
        sample = [rng.gauss(5.0, 1.0) for _ in range(10)]
        covered += mean_estimate(sample, confidence=0.95).contains(5.0)
    assert 0.90 <= covered / trials <= 0.99


# -- batch means --------------------------------------------------------------


def test_batch_means_preserves_the_trimmed_mean():
    series = list(range(1, 41))
    est = batch_means(series, batches=10)
    assert est.n == 10
    assert est.mean == pytest.approx(sum(series) / len(series))


def test_batch_means_degrades_to_two_batches():
    est = batch_means([1.0, 2.0, 3.0], batches=10)
    assert est.n == 2


def test_batch_means_drops_front_remainder():
    # 11 points into 2 batches of 5: the lone front point is dropped.
    series = [1000.0] + [2.0] * 10
    est = batch_means(series, batches=2)
    assert est.mean == pytest.approx(2.0)


def test_batch_means_rejects_bad_input():
    with pytest.raises(ValueError):
        batch_means([])
    with pytest.raises(ValueError):
        batch_means([1.0, 2.0], batches=1)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=4, max_size=80))
def test_batch_means_interval_is_well_formed(series):
    est = batch_means(series)
    assert 2 <= est.n <= 10
    assert est.half_width >= 0.0
    assert min(series) - 1e-6 <= est.mean <= max(series) + 1e-6


# -- quantiles + agreement ----------------------------------------------------


def test_quantile_matches_serving_convention():
    values = list(range(100))
    # sorted[min(n-1, int(q*n))] — the TenantReport pick.
    assert quantile(values, 0.99) == 99
    assert quantile(values, 0.5) == 50
    assert quantile([7.0], 0.99) == 7.0
    with pytest.raises(ValueError):
        quantile([], 0.5)


def test_agreement_overlap_and_tolerance_fallback():
    a = Estimate(mean=100.0, half_width=5.0, n=4)
    ok, detail = agreement(a, Estimate(mean=104.0, half_width=2.0, n=4),
                           tolerance=0.01)
    assert ok and "overlap" in detail
    # Degenerate zero-width intervals: the relative-gap fallback.
    ok, _ = agreement(Estimate(100.0, 0.0, 3), Estimate(101.0, 0.0, 3),
                      tolerance=0.05)
    assert ok
    ok, detail = agreement(Estimate(100.0, 0.0, 3),
                           Estimate(130.0, 0.0, 3), tolerance=0.05)
    assert not ok and "disjoint" in detail
