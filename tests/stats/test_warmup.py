"""MSER warm-up truncation: the rules it must never break.

Whatever the input series, the cut is a multiple of the batch size,
never exceeds the configured fraction, and never consumes the whole
series; a cold-start transient is detected and removed, a stationary
series is left alone.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.warmup import apply_warmup, mser_truncation

_series = st.lists(st.floats(min_value=0.0, max_value=1e6,
                             allow_nan=False), min_size=0, max_size=120)


@settings(max_examples=100, deadline=None)
@given(_series, st.integers(min_value=1, max_value=10),
       st.floats(min_value=0.0, max_value=0.9))
def test_truncation_respects_the_cap(series, batch, max_fraction):
    result = mser_truncation(series, batch=batch,
                             max_fraction=max_fraction)
    assert result.truncate % batch == 0
    assert result.truncate <= max_fraction * len(series) + 1e-9
    assert result.truncate < max(len(series), 1)   # never everything
    warm, res2 = apply_warmup(series, batch=batch,
                              max_fraction=max_fraction)
    assert res2.truncate == result.truncate
    assert len(warm) == len(series) - result.truncate
    if series:
        assert warm        # at least one observation always survives


def test_step_transient_is_removed():
    # Ten cold windows at 100, forty steady windows at ~1.
    series = [100.0] * 10 + [1.0, 1.1, 0.9, 1.0] * 10
    warm, result = apply_warmup(series, batch=5)
    assert result.truncate >= 10
    assert max(warm) < 2.0
    assert result.fraction <= 0.5


def test_stationary_series_is_untouched():
    series = [5.0, 5.1, 4.9, 5.0] * 10
    result = mser_truncation(series, batch=5)
    assert result.truncate == 0


def test_constant_series_is_untouched():
    result = mser_truncation([3.0] * 50, batch=5)
    assert result.truncate == 0 and result.stat == 0.0


def test_short_series_returned_whole():
    result = mser_truncation([1.0, 2.0, 3.0], batch=5)
    assert result.truncate == 0 and result.total == 3


def test_cap_is_reported_when_it_binds():
    # The transient stretches past the allowed fraction: MSER would cut
    # deeper but the cap holds it, and says so.
    series = [100.0] * 30 + [1.0] * 10
    result = mser_truncation(series, batch=5, max_fraction=0.25)
    assert result.truncate <= 10
    assert result.capped


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        mser_truncation([1.0], batch=0)
    with pytest.raises(ValueError):
        mser_truncation([1.0], max_fraction=1.0)
