"""The invariant catalog: clean runs pass, tampered runs cannot.

The harness's value is the second half: a completion counter nudged
mid-run — the canonical silent-corruption bug — must trip both flow
conservation and Little's law, with the tenant named in the detail.
"""

import pytest

from repro.sched.serve import ServeSession, mixed_tenant_workload, run_serve
from repro.stats.invariants import check_report, violations

DURATION_NS = 300_000.0


@pytest.fixture(scope="module")
def clean_report():
    return run_serve(mixed_tenant_workload(duration_ns=DURATION_NS, seed=0),
                     adaptive=True)


@pytest.fixture(scope="module")
def tampered_report():
    session = ServeSession(
        mixed_tenant_workload(duration_ns=DURATION_NS, seed=0),
        adaptive=True)
    session.advance(DURATION_NS / 2)
    session.tracker.completed["alpha"] += 7
    session.run_to_completion()
    return session.finalize()


def test_clean_run_passes_every_invariant(clean_report):
    results = check_report(clean_report)
    assert results
    assert not violations(results)
    names = {r.name for r in results}
    assert names == {"flow-conservation", "littles-law", "utilization",
                     "sanity"}


def test_every_tenant_and_path_is_audited(clean_report):
    results = check_report(clean_report)
    conservation = [r for r in results if r.name == "flow-conservation"]
    assert {r.subject for r in conservation} == set(clean_report.tenants)
    utilization = [r for r in results if r.name == "utilization"]
    assert "network" in {r.subject for r in utilization}


def test_tampered_counter_trips_conservation_and_little(tampered_report):
    bad = violations(check_report(tampered_report))
    assert bad, "a mutated counter went undetected: the harness is blind"
    tripped = {r.name for r in bad}
    assert "flow-conservation" in tripped
    assert "littles-law" in tripped
    # The violation names the tenant whose counter drifted.
    assert any(r.subject == "alpha" for r in bad)
    # Untouched invariants stay quiet: the failure is specific.
    assert "utilization" not in tripped


def test_violation_detail_is_actionable(tampered_report):
    bad = violations(check_report(tampered_report))
    conservation = next(r for r in bad if r.name == "flow-conservation")
    assert "arrivals" in conservation.detail
    assert "VIOLATED" in str(conservation)


def test_utilization_respects_custom_testbed(clean_report):
    # The capacity bounds come from the testbed argument, defaulting to
    # the paper testbed; passing it explicitly is identical.
    from repro.net.topology import paper_testbed

    explicit = check_report(clean_report, testbed=paper_testbed())
    default = check_report(clean_report)
    assert [(r.name, r.subject, r.ok) for r in explicit] == \
        [(r.name, r.subject, r.ok) for r in default]
