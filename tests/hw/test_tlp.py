"""Unit and property tests for TLP segmentation math."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.hw.pcie import (
    TLP_HEADER_BYTES,
    TLP_READ_REQUEST_BYTES,
    Tlp,
    TlpKind,
    negotiate_mps,
    read_wire_cost,
    segment_count,
    segment_sizes,
    wire_bytes,
    write_wire_cost,
)
from repro.units import KB, MB


def test_tlp_wire_bytes():
    tlp = Tlp(TlpKind.MEM_WRITE, payload=128)
    assert tlp.wire_bytes == 128 + TLP_HEADER_BYTES


def test_tlp_negative_payload_rejected():
    with pytest.raises(ValueError):
        Tlp(TlpKind.MEM_WRITE, payload=-1)


def test_negotiate_mps_takes_minimum():
    # Host advertises 512 B, the SoC endpoint 128 B (Table 3).
    assert negotiate_mps(512, 128) == 128
    assert negotiate_mps(128, 512) == 128
    assert negotiate_mps(512, 512) == 512


def test_negotiate_mps_rejects_nonpositive():
    with pytest.raises(ValueError):
        negotiate_mps(0, 512)


def test_segment_count_matches_paper_table3():
    # Table 3: ceil(N / MTU); host 512 B, SoC 128 B.
    assert segment_count(4096, 512) == 8
    assert segment_count(4096, 128) == 32
    assert segment_count(1, 512) == 1
    assert segment_count(0, 512) == 0


def test_segment_count_paper_example_200gbps():
    # S3.3 Advice #3: 25 GB/s at 128 B -> ~195 M TLPs; at 512 B -> ~49 M.
    bytes_per_second = 25_000_000_000
    assert segment_count(bytes_per_second, 128) == pytest.approx(195e6, rel=0.01)
    assert segment_count(bytes_per_second, 512) == pytest.approx(49e6, rel=0.01)


def test_segment_sizes_sum_and_shape():
    sizes = segment_sizes(1000, 512)
    assert sizes == [512, 488]
    assert sum(sizes) == 1000


def test_wire_bytes_adds_header_per_tlp():
    assert wire_bytes(1024, 512) == 1024 + 2 * TLP_HEADER_BYTES


def test_write_wire_cost_is_posted():
    count, total = write_wire_cost(4 * KB, 512)
    assert count == 8
    assert total == 4 * KB + 8 * TLP_HEADER_BYTES


def test_read_wire_cost_zero_bytes_is_free():
    assert read_wire_cost(0, 512) == (0, 0, 0, 0)


def test_read_wire_cost_small_read():
    reqs, req_bytes, cpls, cpl_bytes = read_wire_cost(64, 512)
    assert reqs == 1
    assert req_bytes == TLP_READ_REQUEST_BYTES
    assert cpls == 1
    assert cpl_bytes == 64 + TLP_HEADER_BYTES


def test_read_wire_cost_large_read_chunks_requests():
    reqs, _, cpls, _ = read_wire_cost(1 * MB, 128, max_read_request=4096)
    assert reqs == 256            # 1 MB / 4 KB read requests
    assert cpls == 8192           # 1 MB / 128 B completions


@given(st.integers(min_value=0, max_value=64 * MB),
       st.sampled_from([128, 256, 512, 4096]))
def test_segment_count_is_ceil(nbytes, mps):
    assert segment_count(nbytes, mps) == math.ceil(nbytes / mps)


@given(st.integers(min_value=1, max_value=64 * MB),
       st.sampled_from([128, 256, 512, 4096]))
def test_segment_sizes_invariants(nbytes, mps):
    sizes = segment_sizes(nbytes, mps)
    assert sum(sizes) == nbytes
    assert all(0 < s <= mps for s in sizes)
    assert len(sizes) == segment_count(nbytes, mps)
    # Only the final TLP may be short.
    assert all(s == mps for s in sizes[:-1])


@given(st.integers(min_value=0, max_value=64 * MB))
def test_smaller_mtu_never_needs_fewer_tlps(nbytes):
    # The SoC's 128 B MTU always costs at least as many TLPs as 512 B —
    # the root cause of the Fig 8 collapse.
    assert segment_count(nbytes, 128) >= segment_count(nbytes, 512)


@given(st.integers(min_value=1, max_value=16 * MB),
       st.sampled_from([128, 512]))
def test_read_completions_dominate_requests(nbytes, mps):
    reqs, _, cpls, cpl_bytes = read_wire_cost(nbytes, mps)
    assert cpls >= reqs
    assert cpl_bytes > nbytes  # headers always add overhead
