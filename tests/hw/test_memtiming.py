"""Tests for the cache simulator and DRAM bank timing."""

import random

import pytest

from repro.hw.memory.cachesim import SetAssociativeCache
from repro.hw.memory.dram import DRAMConfig
from repro.hw.memory.dramsim import DramBankSim, DramTimingParams
from repro.units import KB, MB, to_mrps

# -- cache simulator -------------------------------------------------------------


def test_cache_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(size=0, ways=4)
    with pytest.raises(ValueError):
        SetAssociativeCache(size=1000, ways=4)  # not a multiple
    with pytest.raises(ValueError):
        SetAssociativeCache(size=4096, ways=4, ddio_ways=5)
    cache = SetAssociativeCache(size=4096, ways=4)
    with pytest.raises(ValueError):
        cache.access(-1)


def test_cache_hit_after_allocation():
    cache = SetAssociativeCache(size=8 * KB, ways=4)
    assert cache.access(0) is False   # cold miss
    assert cache.access(0) is True    # hit
    assert cache.access(32) is True   # same line
    assert cache.stats.hits == 2 and cache.stats.misses == 1


def test_cache_lru_eviction():
    # 4-way, single-set cache: line 64, size 256.
    cache = SetAssociativeCache(size=256, ways=4)
    lines = [i * 64 * cache.sets for i in range(4)]
    for addr in lines:
        cache.access(addr)
    cache.access(lines[0])              # refresh line 0
    cache.access(5 * 64 * cache.sets)   # evicts LRU = line 1
    assert cache.access(lines[0]) is True
    assert cache.access(lines[1]) is False  # was evicted


def test_ddio_ways_restrict_dma_allocations():
    # 8-way cache; DMA may only use 2 ways.
    cache = SetAssociativeCache(size=8 * 64, ways=8, ddio_ways=2)
    stride = 64 * cache.sets
    # A DMA working set of 4 lines in one set cannot all stay resident.
    for _ in range(3):
        for i in range(4):
            cache.access(i * stride, from_dma=True)
    assert cache.stats.hit_rate < 0.5
    # The same working set as CPU traffic fits (8 ways).
    cpu_cache = SetAssociativeCache(size=8 * 64, ways=8, ddio_ways=2)
    for _ in range(3):
        for i in range(4):
            cpu_cache.access(i * stride, from_dma=False)
    assert cpu_cache.stats.hit_rate > 0.6


def test_dma_lines_hit_for_cpu_and_vice_versa():
    cache = SetAssociativeCache(size=8 * KB, ways=8, ddio_ways=2)
    cache.access(0, from_dma=True)
    assert cache.access(0, from_dma=False) is True


def test_ddio_capacity():
    cache = SetAssociativeCache(size=16 * KB, ways=8, ddio_ways=2)
    assert cache.ddio_capacity == 16 * KB // 4


def test_small_dma_working_set_stays_hot():
    """Advice #1's host behaviour: a narrow DMA range lives in the DDIO
    ways and hits ~100 % after warmup."""
    cache = SetAssociativeCache(size=1 * MB, ways=16, ddio_ways=2)
    rng = random.Random(0)
    warm = 2000
    for i in range(10_000):
        addr = rng.randrange(0, 48 * KB, 64)
        hit = cache.access(addr, from_dma=True)
        if i == warm:
            cache.stats.hits = cache.stats.misses = 0
    assert cache.stats.hit_rate > 0.95


# -- DRAM bank timing -----------------------------------------------------------------

SOC_DRAM = DRAMConfig(name="soc", channels=2, peak_bandwidth=21.76,
                      write_bandwidth_factor=0.92)


def test_timing_validation():
    with pytest.raises(ValueError):
        DramTimingParams(read_cycle=0)
    sim = DramBankSim(SOC_DRAM)
    with pytest.raises(ValueError):
        sim.bank_of(-1)
    with pytest.raises(ValueError):
        sim.access(0, True, now=-1)


def test_bank_mapping_follows_stripe():
    sim = DramBankSim(SOC_DRAM)
    assert sim.bank_of(0) == 0
    assert sim.bank_of(4095) == 0
    assert sim.bank_of(4096) == 1
    assert sim.bank_of(4096 * SOC_DRAM.total_banks) == 0


def test_same_bank_serializes_at_the_row_cycle():
    sim = DramBankSim(SOC_DRAM)
    first = sim.access(0, is_write=True, now=0.0)
    second = sim.access(64, is_write=True, now=0.0)
    # Both in bank 0: the second waits a full write cycle.
    assert second - first == pytest.approx(44.0)


def test_different_banks_run_in_parallel():
    sim = DramBankSim(SOC_DRAM)
    a = sim.access(0, is_write=True, now=0.0)
    b = sim.access(4096, is_write=True, now=0.0)
    assert a == b  # no queueing across banks


def test_fig7_write_floor_emerges_from_bank_timing():
    """Random writes confined to 1.5 KB -> one bank -> ~22.7 M/s."""
    sim = DramBankSim(SOC_DRAM)
    rng = random.Random(1)
    for _ in range(2000):
        sim.access(rng.randrange(0, 1536, 64), is_write=True, now=0.0)
    assert to_mrps(sim.measured_rate()) == pytest.approx(22.7, rel=0.01)


def test_fig7_read_floor_emerges_from_bank_timing():
    sim = DramBankSim(SOC_DRAM)
    rng = random.Random(1)
    for _ in range(2000):
        sim.access(rng.randrange(0, 1536, 64), is_write=False, now=0.0)
    assert to_mrps(sim.measured_rate()) == pytest.approx(50.0, rel=0.01)


def test_wide_range_rate_scales_with_banks():
    wide = DramBankSim(SOC_DRAM)
    rng = random.Random(2)
    for _ in range(4000):
        wide.access(rng.randrange(0, 48 * KB, 64), is_write=True, now=0.0)
    narrow_rate = 22.7
    # 48 KB spans 12 of 32 bank stripes -> ~12x the single-bank rate.
    assert to_mrps(wide.measured_rate()) == pytest.approx(
        12 * narrow_rate, rel=0.10)
