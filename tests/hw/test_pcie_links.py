"""Tests for PCIe link specs, simulated links, switch, MMIO."""

import pytest

from repro.sim import Simulator
from repro.hw.pcie import (
    PCIE_GEN3,
    PCIE_GEN4,
    MMIOModel,
    PCIeGen,
    PCIeLink,
    PCIeLinkSpec,
    PCIeSwitch,
)
from repro.units import to_gbps


def test_gen4_x16_is_256_gbps():
    assert PCIE_GEN4.raw_gbps == 256.0
    assert to_gbps(PCIE_GEN4.bandwidth) == pytest.approx(256.0)


def test_gen3_x16_is_128_gbps():
    # The CLI machines' host link (Table 2).
    assert PCIE_GEN3.raw_gbps == 128.0


def test_effective_bandwidth_penalizes_small_mps():
    eff_128 = PCIE_GEN4.effective_bandwidth(128)
    eff_512 = PCIE_GEN4.effective_bandwidth(512)
    assert eff_128 < eff_512 < PCIE_GEN4.bandwidth
    # 128 B MPS: 128/152 ~ 84 % efficiency.
    assert to_gbps(eff_128) == pytest.approx(256 * 128 / 152, rel=1e-6)


def test_effective_bandwidth_validates_payload():
    with pytest.raises(ValueError):
        PCIE_GEN4.effective_bandwidth(0)


def test_spec_validation():
    with pytest.raises(ValueError):
        PCIeLinkSpec(PCIeGen.GEN4, lanes=3)
    with pytest.raises(ValueError):
        PCIeLinkSpec(PCIeGen.GEN4, lanes=16, mps=100)


def test_link_counts_tlps_per_direction():
    sim = Simulator()
    link = PCIeLink(sim, PCIE_GEN4, name="pcie1")
    link.send_tlp(512, forward=True)
    link.send_tlp(512, forward=True)
    link.send_tlp(128, forward=False)
    sim.run()
    assert link.tlps_fwd.total == 2
    assert link.tlps_rev.total == 1
    assert link.total_tlps == 3
    assert link.data_bytes_fwd.total == 1024
    assert link.data_bytes_rev.total == 128


def test_link_send_data_segments_at_mps():
    sim = Simulator()
    link = PCIeLink(sim, PCIE_GEN4)
    done = link.send_data(4096, mps=128)
    sim.run()
    assert done.processed
    assert link.tlps_fwd.total == 32


def test_link_zero_byte_data_sends_no_tlps():
    sim = Simulator()
    link = PCIeLink(sim, PCIE_GEN4, latency=10.0)
    done = link.send_data(0, mps=512)
    sim.run()
    assert done.processed
    assert link.total_tlps == 0
    assert sim.now == 10.0


def test_switch_forward_adds_hop_latency():
    sim = Simulator()
    switch = PCIeSwitch(sim, hop_latency=175.0)
    switch.add_port("nic")
    switch.add_port("host")
    done = switch.forward("nic", "host", payload=64)
    sim.run()
    assert done.processed
    assert sim.now == 175.0
    assert switch.port("nic").tlps_in.total == 1
    assert switch.port("host").tlps_out.total == 1


def test_switch_duplicate_port_rejected():
    switch = PCIeSwitch(Simulator())
    switch.add_port("x")
    with pytest.raises(ValueError):
        switch.add_port("x")


def test_switch_unknown_port_rejected():
    switch = PCIeSwitch(Simulator())
    with pytest.raises(KeyError):
        switch.port("nope")


def test_switch_negative_latency_rejected():
    with pytest.raises(ValueError):
        PCIeSwitch(Simulator(), hop_latency=-1)


def test_mmio_latency_grows_with_hops():
    mmio = MMIOModel(base=100.0, per_hop=175.0)
    assert mmio.write_latency(0) == 100.0
    assert mmio.write_latency(1) == 275.0
    assert mmio.write_latency(3) == 625.0


def test_mmio_validation():
    with pytest.raises(ValueError):
        MMIOModel(base=-1)
    with pytest.raises(ValueError):
        MMIOModel(base=10).write_latency(-1)
