"""Tests for the CPU models and their paper-facing aggregates."""

import pytest

from repro.hw import (
    ARM_CORTEX_A72,
    CLIENT_XEON_E5_2650,
    CPUSpec,
    HOST_XEON_GOLD_5317,
)
from repro.units import to_mrps, mrps


def test_core_counts_match_table2():
    assert HOST_XEON_GOLD_5317.total_cores == 24
    assert CLIENT_XEON_E5_2650.total_cores == 24
    assert ARM_CORTEX_A72.total_cores == 8


def test_host_two_sided_matches_sec21():
    # S2.1: a 24-core server reaches ~87 Mpps of two-sided traffic.
    assert to_mrps(HOST_XEON_GOLD_5317.echo_capacity()) == pytest.approx(87.0, rel=0.01)


def test_soc_echo_capacity_is_wimpy():
    # 8 A72 cores serve ~31 M msgs/s — the "up to 64 % drop" of S3.2.
    soc = to_mrps(ARM_CORTEX_A72.echo_capacity())
    host = to_mrps(HOST_XEON_GOLD_5317.echo_capacity())
    assert soc == pytest.approx(31.2, rel=0.01)
    assert soc < 0.4 * host


def test_client_issue_capacity_five_machines_saturate_nic():
    # S4: five CLI machines saturate the 195 Mpps of NIC cores.
    per_machine = to_mrps(CLIENT_XEON_E5_2650.issue_capacity())
    assert 195.0 / per_machine <= 5.0


def test_host_issue_capacity_matches_h2s():
    # S3.3: H2S READ reaches 51.2 M reqs/s, requester-bound.
    assert to_mrps(HOST_XEON_GOLD_5317.issue_capacity()) == pytest.approx(51.3, rel=0.01)


def test_soc_issue_capacity_matches_s2h():
    # S3.3: S2H READ reaches 29 M reqs/s, requester-bound.
    assert to_mrps(ARM_CORTEX_A72.issue_capacity()) == pytest.approx(29.0, rel=0.01)


def test_posting_latency_soc_is_highest():
    # Fig 10a: the SoC takes longest to post a request.
    assert (ARM_CORTEX_A72.posting_latency()
            > HOST_XEON_GOLD_5317.posting_latency()
            > CLIENT_XEON_E5_2650.posting_latency() * 0.9)


def test_issue_capacity_thread_clamping():
    cpu = HOST_XEON_GOLD_5317
    assert cpu.issue_capacity(12) == pytest.approx(cpu.issue_capacity() / 2)
    assert cpu.issue_capacity(999) == cpu.issue_capacity()
    with pytest.raises(ValueError):
        cpu.issue_capacity(0)


def test_echo_capacity_threads():
    cpu = ARM_CORTEX_A72
    assert cpu.echo_capacity(4) == pytest.approx(cpu.echo_capacity() / 2)


def test_cpuspec_validation():
    with pytest.raises(ValueError):
        CPUSpec("bad", 0, 8, 2.0, 1, 1, 1, mrps(1))
    with pytest.raises(ValueError):
        CPUSpec("bad", 1, 8, 2.0, 0, 1, 1, mrps(1))
    with pytest.raises(ValueError):
        CPUSpec("bad", 1, 8, 2.0, 1, 1, 1, 0)
