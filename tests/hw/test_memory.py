"""Tests for DRAM, LLC/DDIO and the combined memory subsystem."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.memory import (
    AddressRegion,
    DRAMConfig,
    DRAMModel,
    LLCConfig,
    MemorySubsystem,
    UniformAddresses,
)
from repro.units import KB, MB, GB, to_mrps

SOC_DRAM = DRAMConfig(name="soc", channels=1)
HOST_DRAM = DRAMConfig(name="host", channels=8, peak_bandwidth=23.4)


def test_total_banks():
    assert SOC_DRAM.total_banks == 16
    assert HOST_DRAM.total_banks == 128


def test_banks_engaged_scales_with_range():
    model = DRAMModel(SOC_DRAM)
    assert model.banks_engaged(1536) == 1          # 1.5 KB -> one bank stripe
    assert model.banks_engaged(48 * KB) == 12
    assert model.banks_engaged(10 * GB) == 16      # clamped at geometry


def test_banks_engaged_validates_range():
    with pytest.raises(ValueError):
        DRAMModel(SOC_DRAM).banks_engaged(0)


def test_single_bank_write_rate_matches_fig7_floor():
    model = DRAMModel(SOC_DRAM)
    rate = model.request_capacity("write", payload=64, range_bytes=1536)
    assert to_mrps(rate) == pytest.approx(22.7, rel=0.01)


def test_single_bank_read_rate_matches_fig7_floor():
    model = DRAMModel(SOC_DRAM)
    rate = model.request_capacity("read", payload=64, range_bytes=1536)
    assert to_mrps(rate) == pytest.approx(50.0, rel=0.01)


def test_wide_range_is_not_bank_limited():
    model = DRAMModel(SOC_DRAM)
    wide = model.request_capacity("write", payload=64, range_bytes=10 * GB)
    narrow = model.request_capacity("write", payload=64, range_bytes=1536)
    assert wide > 3 * narrow


def test_bandwidth_ceiling_applies_for_large_payloads():
    model = DRAMModel(SOC_DRAM)
    rate = model.request_capacity("read", payload=1 * MB, range_bytes=10 * GB)
    assert rate == pytest.approx(SOC_DRAM.read_bandwidth / MB)


def test_write_bandwidth_below_read_bandwidth():
    assert SOC_DRAM.write_bandwidth < SOC_DRAM.read_bandwidth


def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        DRAMModel(SOC_DRAM).request_capacity("scan", 64, 1 * MB)
    with pytest.raises(ValueError):
        DRAMModel(SOC_DRAM).access_latency("scan")


def test_dram_config_validation():
    with pytest.raises(ValueError):
        DRAMConfig(name="bad", channels=0)
    with pytest.raises(ValueError):
        DRAMConfig(name="bad", channels=1, write_bandwidth_factor=0)


@given(st.integers(min_value=1, max_value=16 * GB))
def test_banks_engaged_monotone(range_bytes):
    model = DRAMModel(SOC_DRAM)
    assert (model.banks_engaged(range_bytes)
            <= model.banks_engaged(range_bytes * 2))


@given(st.sampled_from(["read", "write"]),
       st.sampled_from([64, 256, 4096]),
       st.integers(min_value=10, max_value=34))
def test_request_capacity_monotone_in_range(op, payload, log_range):
    model = DRAMModel(SOC_DRAM)
    small = model.request_capacity(op, payload, 2 ** log_range)
    large = model.request_capacity(op, payload, 2 ** (log_range + 1))
    assert large >= small


# -- LLC / DDIO ---------------------------------------------------------------


def test_ddio_capacity_is_fraction_of_llc():
    llc = LLCConfig(size=18 * MB, ddio_way_fraction=0.15)
    assert llc.ddio_capacity == pytest.approx(18 * MB * 0.15)


def test_llc_request_capacity_payload_ceiling():
    llc = LLCConfig()
    assert llc.request_capacity("read", 0) == llc.dma_read_rate
    big = llc.request_capacity("read", 1 * MB)
    assert big == pytest.approx(llc.bandwidth / MB)


def test_llc_validation():
    with pytest.raises(ValueError):
        LLCConfig(size=0)
    with pytest.raises(ValueError):
        LLCConfig(ddio_way_fraction=0)
    with pytest.raises(ValueError):
        LLCConfig().request_capacity("scan", 64)


# -- subsystem ----------------------------------------------------------------

HOST_MEM = MemorySubsystem(dram=HOST_DRAM, llc=LLCConfig(), ddio=True, name="host")
SOC_MEM = MemorySubsystem(dram=SOC_DRAM, llc=None, ddio=False, name="soc")


def test_ddio_requires_llc():
    with pytest.raises(ValueError):
        MemorySubsystem(dram=HOST_DRAM, llc=None, ddio=True)


def test_host_with_ddio_immune_to_narrow_ranges():
    # Advice #1: with DDIO the range barely matters.
    narrow = HOST_MEM.dma_request_capacity("write", 64, 1536)
    wide = HOST_MEM.dma_request_capacity("write", 64, 1 * MB)
    assert narrow == wide


def test_soc_without_ddio_collapses_on_narrow_ranges():
    narrow = SOC_MEM.dma_request_capacity("write", 64, 1536)
    wide = SOC_MEM.dma_request_capacity("write", 64, 48 * KB)
    assert to_mrps(narrow) == pytest.approx(22.7, rel=0.01)
    assert wide > 3 * narrow


def test_soc_read_degrades_less_than_write():
    # Fig 7: READ floor 50 M vs WRITE floor 22.7 M.
    read_floor = SOC_MEM.dma_request_capacity("read", 64, 1536)
    write_floor = SOC_MEM.dma_request_capacity("write", 64, 1536)
    assert read_floor > 2 * write_floor


def test_host_huge_range_falls_back_to_dram():
    # 10 GB working set cannot live in the LLC, but 8 channels cope.
    rate = HOST_MEM.dma_request_capacity("write", 64, 10 * GB)
    assert to_mrps(rate) > 100


def test_access_latency_paths():
    assert HOST_MEM.dma_access_latency("write", 1536) == LLCConfig().hit_latency
    assert SOC_MEM.dma_access_latency("read", 1536) == 50.0
    with pytest.raises(ValueError):
        SOC_MEM.dma_bandwidth("scan", 1536)


# -- address sampling ---------------------------------------------------------


def test_region_validation_and_contains():
    region = AddressRegion(base=4096, size=1024)
    assert region.end == 5120
    assert region.contains(4096, 1024)
    assert not region.contains(4096, 1025)
    with pytest.raises(ValueError):
        AddressRegion(base=-1, size=10)
    with pytest.raises(ValueError):
        AddressRegion(base=0, size=0)


def test_sub_region():
    region = AddressRegion(base=0, size=1 * MB)
    sub = region.sub_region(48 * KB, offset=4096)
    assert sub.base == 4096 and sub.size == 48 * KB
    with pytest.raises(ValueError):
        region.sub_region(2 * MB)


def test_uniform_addresses_stay_in_region_and_aligned():
    import random
    region = AddressRegion(base=1 << 20, size=256 * KB)
    sampler = UniformAddresses(region, payload=64, alignment=64,
                               rng=random.Random(1))
    for _ in range(1000):
        addr = sampler.next()
        assert region.contains(addr, 64)
        assert addr % 64 == 0


def test_uniform_addresses_validation():
    region = AddressRegion(0, 128)
    with pytest.raises(ValueError):
        UniformAddresses(region, payload=256)
    with pytest.raises(ValueError):
        UniformAddresses(region, payload=-1)
    with pytest.raises(ValueError):
        UniformAddresses(region, payload=64, alignment=0)
