"""Tests for the DES DMA engine: posted writes vs non-posted reads (Fig 3)."""

import pytest

from repro.sim import Simulator
from repro.hw.pcie import PCIE_GEN4, DmaEngine, PCIeLink, PCIeSwitch
from repro.hw.pcie.dma import LinkHop, SwitchHop, reverse_route


def make_fabric(sim, hop_latency=175.0):
    """A PCIe1 link + switch + PCIe0 link fabric, like Bluefield's."""
    pcie1 = PCIeLink(sim, PCIE_GEN4, latency=100.0, name="pcie1")
    pcie0 = PCIeLink(sim, PCIE_GEN4, latency=100.0, name="pcie0")
    switch = PCIeSwitch(sim, hop_latency=hop_latency)
    for port in ("nic", "host", "soc"):
        switch.add_port(port)
    route_to_host = [
        LinkHop(pcie1, forward=True),
        SwitchHop(switch, "nic", "host"),
        LinkHop(pcie0, forward=True),
    ]
    return pcie1, pcie0, switch, route_to_host


def test_write_is_posted_single_direction():
    sim = Simulator()
    pcie1, pcie0, _switch, route = make_fabric(sim)
    engine = DmaEngine(sim)
    done = engine.dma_write(route, nbytes=512, mps=512)
    sim.run()
    assert done.processed
    # Data TLPs flow forward only; nothing returns.
    assert pcie1.tlps_fwd.total == 1 and pcie1.tlps_rev.total == 0
    assert pcie0.tlps_fwd.total == 1 and pcie0.tlps_rev.total == 0


def test_read_crosses_fabric_twice():
    sim = Simulator()
    pcie1, pcie0, _switch, route = make_fabric(sim)
    engine = DmaEngine(sim)
    done = engine.dma_read(route, nbytes=512, mps=512)
    sim.run()
    assert done.processed
    # Request header out, completion with data back.
    assert pcie1.tlps_fwd.total == 1 and pcie1.tlps_rev.total == 1
    assert pcie0.tlps_fwd.total == 1 and pcie0.tlps_rev.total == 1
    assert pcie1.data_bytes_rev.total == 512


def test_read_latency_exceeds_write_latency():
    def run(op):
        sim = Simulator()
        _p1, _p0, _sw, route = make_fabric(sim)
        engine = DmaEngine(sim)
        if op == "write":
            engine.dma_write(route, nbytes=64, mps=512)
        else:
            engine.dma_read(route, nbytes=64, mps=512)
        sim.run()
        return sim.now

    # Fig 3: READ pays the fabric twice, WRITE once.
    assert run("read") > 1.8 * run("write")


def test_write_segments_into_mps_tlps():
    sim = Simulator()
    pcie1, _pcie0, _switch, route = make_fabric(sim)
    engine = DmaEngine(sim)
    engine.dma_write(route, nbytes=4096, mps=128)
    sim.run()
    assert pcie1.tlps_fwd.total == 32


def test_switch_hop_latency_accumulates():
    slow_times = []
    for hop_latency in (0.0, 500.0):
        sim = Simulator()
        _p1, _p0, _sw, route = make_fabric(sim, hop_latency=hop_latency)
        DmaEngine(sim).dma_write(route, nbytes=64, mps=512)
        sim.run()
        slow_times.append(sim.now)
    assert slow_times[1] - slow_times[0] == pytest.approx(500.0)


def test_reverse_route_flips_order_and_direction():
    sim = Simulator()
    _p1, _p0, switch, route = make_fabric(sim)
    rev = reverse_route(route)
    assert isinstance(rev[0], type(route[-1]))
    assert rev[1].src == "host" and rev[1].dst == "nic"
    assert rev[0].forward is False and rev[-1].forward is False


def test_zero_byte_read_completes():
    sim = Simulator()
    _p1, _p0, _sw, route = make_fabric(sim)
    done = DmaEngine(sim).dma_read(route, nbytes=0, mps=512)
    sim.run()
    assert done.processed


def test_negative_size_rejected():
    sim = Simulator()
    _p1, _p0, _sw, route = make_fabric(sim)
    engine = DmaEngine(sim)
    with pytest.raises(ValueError):
        engine.dma_write(route, nbytes=-1, mps=512)
    with pytest.raises(ValueError):
        engine.dma_read(route, nbytes=-1, mps=512)


def test_invalid_max_read_request():
    with pytest.raises(ValueError):
        DmaEngine(Simulator(), max_read_request=0)
