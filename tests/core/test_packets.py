"""Tests for the Table-3 PCIe packet-count model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.packets import PacketCountModel, PathPacketCounts
from repro.core.paths import CommPath, Opcode
from repro.units import KB, MB, gbps

MODEL = PacketCountModel()


def test_zero_bytes_zero_tlps():
    # S4: 0 B requests "return before reaching PCIe1".
    for path in CommPath:
        for op in Opcode:
            assert MODEL.counts(path, op, 0).total == 0


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        MODEL.counts(CommPath.SNIC1, Opcode.READ, -1)


def test_table3_row_snic1():
    # Table 3: SNIC1 moves ceil(N/512) on both PCIe1 and PCIe0.
    row = MODEL.table3_row(CommPath.SNIC1, 4 * KB)
    assert row == {"pcie1": 8, "pcie0": 8}


def test_table3_row_snic2():
    # Table 3: SNIC2 moves ceil(N/128) on PCIe1 only.
    row = MODEL.table3_row(CommPath.SNIC2, 4 * KB)
    assert row == {"pcie1": 32, "pcie0": 0}


def test_table3_row_snic3():
    # Table 3: path 3 pays ceil(N/128) + ceil(N/512) on PCIe1.
    row = MODEL.table3_row(CommPath.SNIC3_S2H, 4 * KB)
    assert row == {"pcie1": 32 + 8, "pcie0": 8}


def test_paper_example_293_mpps():
    # S3.3 Advice #3: 200 Gbps SoC->host needs >= 293 Mpps of data TLPs.
    pps = MODEL.pps_for_bandwidth(CommPath.SNIC3_S2H, Opcode.WRITE,
                                  gbps(200), 4 * KB)
    assert pps * 1e3 == pytest.approx(293, rel=0.01)


def test_paper_example_ratios():
    # ... which is "6x and 1.5x higher than SNIC1 and SNIC2" (S3.3).  The
    # paper compares against path 1's per-link rate (49 Mpps into the
    # host) and path 2's 195 Mpps.
    path3 = MODEL.pps_for_bandwidth(CommPath.SNIC3_S2H, Opcode.WRITE,
                                    gbps(200), 4 * KB)
    rate = gbps(200) / (4 * KB)
    path1_per_link = MODEL.counts(CommPath.SNIC1, Opcode.WRITE, 4 * KB,
                                  include_requests=False).pcie0_to_host * rate
    path2 = MODEL.pps_for_bandwidth(CommPath.SNIC2, Opcode.WRITE,
                                    gbps(200), 4 * KB)
    assert path3 / path1_per_link == pytest.approx(6.0, rel=0.02)
    assert path3 / path2 == pytest.approx(1.5, rel=0.02)


def test_read_includes_request_tlps():
    with_reqs = MODEL.counts(CommPath.SNIC1, Opcode.READ, 64 * KB)
    without = MODEL.counts(CommPath.SNIC1, Opcode.READ, 64 * KB,
                           include_requests=False)
    assert with_reqs.total == without.total + 2 * 16  # 16 chunks, 2 links


def test_write_is_one_directional():
    counts = MODEL.counts(CommPath.SNIC1, Opcode.WRITE, 4 * KB)
    assert counts.pcie1_to_nic == 0
    assert counts.pcie0_to_switch == 0
    assert counts.pcie1_to_switch == 8
    assert counts.pcie0_to_host == 8


def test_snic2_write_only_touches_pcie1():
    counts = MODEL.counts(CommPath.SNIC2, Opcode.WRITE, 4 * KB)
    assert counts.pcie0_total == 0
    assert counts.pcie1_to_switch == 32


def test_path3_read_and_write_have_equal_data_cost():
    # Fetch+deliver is symmetric in total TLPs.
    read = MODEL.counts(CommPath.SNIC3_H2S, Opcode.READ, 1 * MB,
                        include_requests=False)
    write = MODEL.counts(CommPath.SNIC3_H2S, Opcode.WRITE, 1 * MB,
                         include_requests=False)
    assert read.total == write.total


def test_path3_crosses_pcie1_in_both_directions():
    counts = MODEL.counts(CommPath.SNIC3_S2H, Opcode.WRITE, 4 * KB)
    assert counts.pcie1_to_nic > 0      # fetch completions into the NIC
    assert counts.pcie1_to_switch > 0   # delivery back out


def test_rnic_uses_pcie0_fields_only():
    counts = MODEL.counts(CommPath.RNIC1, Opcode.READ, 4 * KB)
    assert counts.pcie1_total == 0
    assert counts.pcie0_to_switch == 8


def test_wire_bytes_include_headers():
    counts = MODEL.counts(CommPath.SNIC2, Opcode.WRITE, 4 * KB)
    assert counts.pcie1_to_switch_bytes == 4 * KB + 32 * 24


def test_counts_addition():
    a = PathPacketCounts(pcie1_to_nic=1, pcie1_to_nic_bytes=100)
    b = PathPacketCounts(pcie1_to_nic=2, pcie0_to_host=3,
                         pcie1_to_nic_bytes=50)
    total = a + b
    assert total.pcie1_to_nic == 3
    assert total.pcie0_to_host == 3
    assert total.pcie1_to_nic_bytes == 150


def test_pps_for_bandwidth_validation():
    with pytest.raises(ValueError):
        MODEL.pps_for_bandwidth(CommPath.SNIC1, Opcode.READ, -1, 4 * KB)
    with pytest.raises(ValueError):
        MODEL.pps_for_bandwidth(CommPath.SNIC1, Opcode.READ, 1.0, 0)


@given(st.sampled_from(list(CommPath)), st.sampled_from(list(Opcode)),
       st.integers(min_value=1, max_value=64 * MB))
def test_path3_always_costs_most(path, op, nbytes):
    reference = MODEL.counts(path, op, nbytes).total
    path3 = MODEL.counts(CommPath.SNIC3_S2H, op, nbytes).total
    if path.intra_machine:
        return
    assert path3 >= reference


@given(st.sampled_from([CommPath.SNIC1, CommPath.SNIC2]),
       st.integers(min_value=1, max_value=16 * MB))
def test_read_never_cheaper_than_write_on_the_wire(path, nbytes):
    read = MODEL.counts(path, Opcode.READ, nbytes).total
    write = MODEL.counts(path, Opcode.WRITE, nbytes).total
    assert read >= write
