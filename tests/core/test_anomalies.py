"""Tests for the anomaly detectors."""

import pytest

from repro.core.anomalies import (
    Anomaly,
    detect_all,
    detect_doorbell_regression,
    detect_hol_collapse,
    detect_pcie_underutilization,
    detect_skew_vulnerability,
)
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow
from repro.net.topology import paper_testbed
from repro.units import GB, KB, MB

TB = paper_testbed()


def test_anomaly_severity_validation():
    with pytest.raises(ValueError):
        Anomaly("skew", None, 1.5, "bad", "advice")


# -- skew ------------------------------------------------------------------------


def test_skew_detected_for_narrow_soc_writes():
    flow = Flow(CommPath.SNIC2, Opcode.WRITE, 64, range_bytes=1536)
    anomaly = detect_skew_vulnerability(TB, flow)
    assert anomaly is not None
    assert anomaly.kind == "skew"
    assert anomaly.severity < 0.35  # 22.7 / 77+ M
    assert "Advice #1" in anomaly.advice


def test_skew_reads_degrade_less_than_writes():
    read = detect_skew_vulnerability(
        TB, Flow(CommPath.SNIC2, Opcode.READ, 64, range_bytes=1536))
    write = detect_skew_vulnerability(
        TB, Flow(CommPath.SNIC2, Opcode.WRITE, 64, range_bytes=1536))
    assert read.severity > write.severity


def test_no_skew_on_host_endpoint():
    flow = Flow(CommPath.SNIC1, Opcode.WRITE, 64, range_bytes=1536)
    assert detect_skew_vulnerability(TB, flow) is None


def test_no_skew_on_wide_range_or_two_sided():
    wide = Flow(CommPath.SNIC2, Opcode.WRITE, 64, range_bytes=10 * GB)
    assert detect_skew_vulnerability(TB, wide) is None
    send = Flow(CommPath.SNIC2, Opcode.SEND, 64, range_bytes=1536)
    assert detect_skew_vulnerability(TB, send) is None


# -- head-of-line ---------------------------------------------------------------------


def test_hol_detected_for_large_soc_reads():
    flow = Flow(CommPath.SNIC2, Opcode.READ, 16 * MB)
    anomaly = detect_hol_collapse(TB, flow)
    assert anomaly is not None
    assert anomaly.kind == "hol"
    assert "segment" in anomaly.advice


def test_hol_not_detected_below_threshold():
    assert detect_hol_collapse(TB, Flow(CommPath.SNIC2, Opcode.READ, 8 * MB)) is None


def test_hol_not_detected_for_soc_writes_or_host_reads():
    assert detect_hol_collapse(TB, Flow(CommPath.SNIC2, Opcode.WRITE, 16 * MB)) is None
    assert detect_hol_collapse(TB, Flow(CommPath.SNIC1, Opcode.READ, 16 * MB)) is None


def test_hol_path3_uses_earlier_s2h_threshold():
    payload = 4 * MB
    s2h = detect_hol_collapse(
        TB, Flow(CommPath.SNIC3_S2H, Opcode.WRITE, payload, requesters=8))
    h2s = detect_hol_collapse(
        TB, Flow(CommPath.SNIC3_H2S, Opcode.WRITE, payload, requesters=24))
    assert s2h is not None
    assert h2s is None


# -- PCIe under-utilization --------------------------------------------------------------


def test_pcie_underutilization_detected_for_mixed_traffic():
    flows = [
        Flow(CommPath.SNIC1, Opcode.READ, 64, requesters=5),
        Flow(CommPath.SNIC3_H2S, Opcode.READ, 64, requesters=24, weight=0.2),
    ]
    anomaly = detect_pcie_underutilization(TB, flows)
    assert anomaly is not None
    assert anomaly.kind == "pcie-underutilization"
    assert 0.8 <= anomaly.severity <= 0.95


def test_no_underutilization_without_path3():
    flows = [Flow(CommPath.SNIC1, Opcode.READ, 64)]
    assert detect_pcie_underutilization(TB, flows) is None


# -- doorbell ---------------------------------------------------------------------------------


def test_doorbell_regression_on_host_side():
    flow = Flow(CommPath.SNIC3_H2S, Opcode.READ, 64, requesters=24,
                doorbell_batch=16)
    anomaly = detect_doorbell_regression(TB, flow)
    assert anomaly is not None
    assert anomaly.severity == pytest.approx(0.91, rel=0.02)


def test_no_doorbell_regression_on_soc_side():
    flow = Flow(CommPath.SNIC3_S2H, Opcode.READ, 64, requesters=8,
                doorbell_batch=16)
    assert detect_doorbell_regression(TB, flow) is None


def test_no_doorbell_regression_without_batching():
    flow = Flow(CommPath.SNIC3_H2S, Opcode.READ, 64, requesters=24)
    assert detect_doorbell_regression(TB, flow) is None


# -- detect_all ---------------------------------------------------------------------------------


def test_detect_all_finds_per_flow_anomalies():
    flows = [
        Flow(CommPath.SNIC2, Opcode.WRITE, 64, range_bytes=1536),
        Flow(CommPath.SNIC2, Opcode.READ, 16 * MB),
        Flow(CommPath.SNIC3_H2S, Opcode.READ, 64, requesters=24,
             doorbell_batch=16, weight=0.2),
    ]
    report = detect_all(TB, flows)
    kinds = {a.kind for a in report}
    assert {"skew", "hol", "doorbell"} <= kinds
    assert not report.clean
    assert len(report.of_kind("skew")) == 1


def test_detect_all_includes_shared_interference():
    flows = [
        Flow(CommPath.SNIC1, Opcode.READ, 64, requesters=5),
        Flow(CommPath.SNIC3_H2S, Opcode.READ, 64, requesters=24, weight=0.2),
    ]
    report = detect_all(TB, flows)
    assert len(report.of_kind("pcie-underutilization")) == 1


def test_detect_all_clean_workload():
    flows = [Flow(CommPath.SNIC2, Opcode.READ, 4 * KB)]
    report = detect_all(TB, flows)
    assert report.clean
