"""Correctness of the sweep engine and the content-keyed result caches.

The performance layer must be invisible: a memoized result is the exact
``SolverResult`` a cold solve would produce, cache keys track testbed
*content* (not object identity), and a parallel sweep reproduces the
serial sweep point for point.
"""

import dataclasses

import pytest

from repro.core.harness import LatencyBench, Measurement, Sweep, ThroughputBench
from repro.core.cache import ScenarioKey, clear_all
from repro.core.paths import CommPath, Opcode
from repro.core.sweeps import SweepRunner
from repro.core.throughput import (
    RESULT_CACHE,
    Flow,
    Scenario,
    ThroughputSolver,
    configure_result_cache,
)
from repro.net.topology import Testbed, paper_testbed
from repro.nic.smartnic import SmartNIC
from repro.nic.specs import BLUEFIELD2
from repro.units import KB, MB


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts cold, with the default cache configuration."""
    clear_all()
    configure_result_cache(enabled=True, disk_dir=None)
    yield
    clear_all()
    configure_result_cache(enabled=True, disk_dir=None)


@pytest.fixture(scope="module")
def testbed():
    return paper_testbed()


def assert_results_identical(a, b):
    """Bit-identical: same rates, bottlenecks, utilization and flows."""
    assert a.rates == b.rates
    assert a.bottlenecks == b.bottlenecks
    assert a.utilization == b.utilization
    assert a.flows == b.flows


# ---------------------------------------------------------------------------
# Memoization correctness
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("path", list(CommPath))
@pytest.mark.parametrize("op", list(Opcode))
def test_memoized_result_bit_identical_to_cold_solve(testbed, path, op):
    solver = ThroughputSolver()
    flow = Flow(path=path, op=op, payload=512, requesters=8)
    cold = solver.solve(Scenario(testbed, [flow]), use_cache=False)
    first = solver.solve(Scenario(testbed, [flow]))    # fills the cache
    warm = solver.solve(Scenario(testbed, [flow]))     # hits the cache
    assert warm is first                                # a real cache hit
    assert_results_identical(cold, warm)


def test_cache_hit_counted(testbed):
    solver = ThroughputSolver()
    flow = Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=64)
    before = (RESULT_CACHE.hits, RESULT_CACHE.misses)
    solver.solve(Scenario(testbed, [flow]))
    solver.solve(Scenario(testbed, [flow]))
    assert RESULT_CACHE.misses == before[1] + 1
    assert RESULT_CACHE.hits == before[0] + 1


def test_cache_disabled_resolves_cold(testbed):
    solver = ThroughputSolver()
    flow = Flow(path=CommPath.RNIC1, op=Opcode.WRITE, payload=256)
    configure_result_cache(enabled=False)
    a = solver.solve(Scenario(testbed, [flow]))
    b = solver.solve(Scenario(testbed, [flow]))
    assert a is not b
    assert_results_identical(a, b)


# ---------------------------------------------------------------------------
# Key content-sensitivity
# ---------------------------------------------------------------------------


def test_equal_content_gives_equal_key():
    flow = Flow(path=CommPath.SNIC2, op=Opcode.READ, payload=1024)
    key_a = ScenarioKey.of(paper_testbed(), [flow])
    key_b = ScenarioKey.of(paper_testbed(), [flow])
    assert key_a == key_b
    assert key_a.digest == key_b.digest


def test_mutated_spec_changes_key(testbed):
    flow = Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=64)
    base_key = ScenarioKey.of(testbed, [flow])
    faster_switch = dataclasses.replace(BLUEFIELD2, switch_hop_ns=10.0)
    mutated = dataclasses.replace(testbed, snic=SmartNIC(faster_switch))
    assert ScenarioKey.of(mutated, [flow]) != base_key


def test_mutated_flow_changes_key(testbed):
    base = Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=64)
    assert (ScenarioKey.of(testbed, [base])
            != ScenarioKey.of(testbed,
                              [dataclasses.replace(base, payload=128)]))


def test_mutated_spec_changes_result(testbed):
    # The key change must matter: a different spec reaches a different
    # cold solve, never a stale cached one.
    solver = ThroughputSolver()
    # A large-payload point, so the internal PCIe bandwidth (scaled by
    # switch_derate) is the binding resource.
    flow = Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=1 * MB,
                requesters=11)
    base = solver.solve(Scenario(testbed, [flow]))
    derated = dataclasses.replace(BLUEFIELD2, switch_derate=0.5)
    mutated = dataclasses.replace(testbed, snic=SmartNIC(derated))
    other = solver.solve(Scenario(mutated, [flow]))
    assert other.rates != base.rates


# ---------------------------------------------------------------------------
# Disk cache
# ---------------------------------------------------------------------------


def test_disk_cache_roundtrip_bit_identical(testbed, tmp_path):
    solver = ThroughputSolver()
    flow = Flow(path=CommPath.SNIC2, op=Opcode.WRITE, payload=4 * KB,
                requesters=11)
    cold = solver.solve(Scenario(testbed, [flow]), use_cache=False)

    configure_result_cache(enabled=True, disk_dir=str(tmp_path))
    solver.solve(Scenario(testbed, [flow]))
    assert list(tmp_path.glob("*.json")), "disk layer wrote nothing"

    # Drop the in-memory layer: the next solve must come from disk.
    RESULT_CACHE.clear()
    from_disk = solver.solve(Scenario(testbed, [flow]))
    assert RESULT_CACHE.disk_hits >= 1
    assert_results_identical(cold, from_disk)


# ---------------------------------------------------------------------------
# Parallel == serial
# ---------------------------------------------------------------------------

FIG4_PAYLOADS = [64, 256, 1024, 4 * KB, 16 * KB, 64 * KB]
FIG8_PAYLOADS = [64 * KB, 256 * KB, 1 * MB, 2 * MB, 4 * MB, 8 * MB]


def _serial_and_parallel(testbed):
    # engine="scalar" pins these tests to the process-pool path: with
    # numpy installed the auto engine would solve the batch in-process
    # and never exercise the pool.
    serial = SweepRunner(testbed, jobs=0, engine="scalar")
    parallel = SweepRunner(testbed, jobs=2, chunk_size=2, engine="scalar")
    assert not serial.parallel and parallel.parallel
    return serial, parallel


def test_parallel_throughput_sweep_matches_serial_fig4(testbed):
    serial, parallel = _serial_and_parallel(testbed)
    kwargs = dict(path=CommPath.SNIC1, op=Opcode.READ,
                  payloads=FIG4_PAYLOADS, requesters=11)
    want = ThroughputBench(testbed, serial).payload_sweep(**kwargs)
    clear_all()
    got = ThroughputBench(testbed, parallel).payload_sweep(**kwargs)
    assert got.points == want.points


def test_parallel_throughput_sweep_matches_serial_fig8(testbed):
    serial, parallel = _serial_and_parallel(testbed)
    kwargs = dict(path=CommPath.SNIC2, op=Opcode.READ,
                  payloads=FIG8_PAYLOADS, requesters=11, metric="gbps")
    want = ThroughputBench(testbed, serial).payload_sweep(**kwargs)
    clear_all()
    got = ThroughputBench(testbed, parallel).payload_sweep(**kwargs)
    assert got.points == want.points


def test_parallel_latency_sweep_matches_serial(testbed):
    serial, parallel = _serial_and_parallel(testbed)
    kwargs = dict(path=CommPath.SNIC1, op=Opcode.READ,
                  payloads=FIG4_PAYLOADS)
    want = LatencyBench(testbed, serial).payload_sweep(**kwargs)
    clear_all()
    got = LatencyBench(testbed, parallel).payload_sweep(**kwargs)
    assert got.points == want.points


def test_parallel_results_fold_back_into_parent_cache(testbed):
    _, parallel = _serial_and_parallel(testbed)
    flows = [Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=p,
                  requesters=11) for p in FIG4_PAYLOADS]
    results = parallel.solve_flows(flows)
    for flow, result in zip(flows, results):
        cached = RESULT_CACHE.get(Scenario(testbed, [flow]).key)
        assert cached is not None
        assert_results_identical(cached, result)


def test_parallel_sweep_absorbs_worker_cache_counters(testbed):
    # Worker processes do the solving, so their cache misses would be
    # invisible to the parent unless folded back.
    _, parallel = _serial_and_parallel(testbed)
    flows = [Flow(path=CommPath.SNIC2, op=Opcode.WRITE, payload=p,
                  requesters=11) for p in FIG4_PAYLOADS]
    before = RESULT_CACHE.misses
    parallel.solve_flows(flows)
    assert RESULT_CACHE.misses - before >= len(flows)


def test_lru_absorb_adds_foreign_counters():
    from repro.core.cache import LRUCache, SolverCache

    cache = LRUCache(name="absorb-test", register=False)
    cache.absorb(hits=3, misses=2, disk_hits=7)   # disk_hits ignored
    assert (cache.hits, cache.misses) == (3, 2)

    solver_cache = SolverCache(name="absorb-disk-test", register=False)
    solver_cache.absorb(hits=1, misses=1, disk_hits=4)
    assert solver_cache.disk_hits == 4


def test_small_batch_stays_serial(testbed):
    # Fewer points than 2*jobs: not worth a pool; must still be exact.
    parallel = SweepRunner(testbed, jobs=4)
    flows = [Flow(path=CommPath.RNIC1, op=Opcode.READ, payload=64)]
    (result,) = parallel.solve_flows(flows)
    cold = ThroughputSolver().solve(Scenario(testbed, flows),
                                    use_cache=False)
    assert_results_identical(cold, result)


def test_negative_jobs_rejected(testbed):
    with pytest.raises(ValueError):
        SweepRunner(testbed, jobs=-1)


# ---------------------------------------------------------------------------
# Sweep.value_at float tolerance
# ---------------------------------------------------------------------------


def _sweep(points):
    return Sweep("x", "unit", [(x, Measurement("m", v, "u"))
                               for x, v in points])


def test_value_at_exact_match():
    assert _sweep([(1.0, 10.0), (2.0, 20.0)]).value_at(2.0) == 20.0


def test_value_at_tolerates_float_roundoff():
    # 0.1 + 0.2 != 0.3 exactly; a ratio-valued x must still be found.
    sweep = _sweep([(0.1 + 0.2, 42.0)])
    assert sweep.value_at(0.3) == 42.0


def test_value_at_missing_raises_keyerror():
    with pytest.raises(KeyError):
        _sweep([(1.0, 10.0)]).value_at(3.0)
