"""Tests for the path/opcode abstraction."""

import pytest

from repro.core.paths import CommPath, Opcode, PathEnds
from repro.nic.core import Endpoint


def test_path_count_matches_paper():
    # RNIC1 baseline plus the SmartNIC paths (path 3 split per direction).
    assert len(CommPath) == 5


def test_rnic_is_not_smart():
    assert not CommPath.RNIC1.uses_smartnic
    assert all(p.uses_smartnic for p in CommPath if p is not CommPath.RNIC1)


def test_intra_machine_paths():
    assert CommPath.SNIC3_H2S.intra_machine
    assert CommPath.SNIC3_S2H.intra_machine
    assert not CommPath.SNIC1.intra_machine
    assert not CommPath.SNIC2.intra_machine


def test_network_usage_is_complement_of_intra():
    for path in CommPath:
        assert path.uses_network != path.intra_machine


def test_ends():
    assert CommPath.SNIC1.ends == PathEnds("client", Endpoint.HOST)
    assert CommPath.SNIC2.ends == PathEnds("client", Endpoint.SOC)
    assert CommPath.SNIC3_H2S.ends == PathEnds("host", Endpoint.SOC)
    assert CommPath.SNIC3_S2H.ends == PathEnds("soc", Endpoint.HOST)


def test_ends_validation():
    with pytest.raises(ValueError):
        PathEnds("switch", Endpoint.HOST)


def test_labels_follow_paper_numbering():
    assert "①" in CommPath.SNIC1.label
    assert "②" in CommPath.SNIC2.label
    assert "③" in CommPath.SNIC3_H2S.label


def test_opcode_properties():
    assert Opcode.READ.one_sided and Opcode.WRITE.one_sided
    assert not Opcode.SEND.one_sided
    assert Opcode.READ.memory_op == "read"
    assert Opcode.WRITE.memory_op == "write"
    assert Opcode.SEND.memory_op == "write"  # payload lands in a recv buffer
