"""Tests for the offloading advisor."""

import pytest

from repro.core.advisor import Advisor, OffloadPlan, WorkloadProfile
from repro.core.paths import CommPath
from repro.net.topology import paper_testbed
from repro.units import GB, KB, MB

TB = paper_testbed()
ADVISOR = Advisor(TB)


def test_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile(payload=-1)
    with pytest.raises(ValueError):
        WorkloadProfile(payload=64, read_fraction=1.5)
    with pytest.raises(ValueError):
        WorkloadProfile(payload=64, two_sided_fraction=-0.1)
    with pytest.raises(ValueError):
        WorkloadProfile(payload=64, working_set_bytes=0)


def test_uniform_one_sided_workload_goes_to_soc():
    plan = ADVISOR.plan(WorkloadProfile(payload=256, read_fraction=0.9,
                                        working_set_bytes=8 * GB))
    assert plan.one_sided_path is CommPath.SNIC2
    assert "path-2" in plan.advice_refs()


def test_skewed_workload_stays_on_host():
    plan = ADVISOR.plan(WorkloadProfile(payload=64, read_fraction=0.0,
                                        hot_range_bytes=1536,
                                        working_set_bytes=8 * GB))
    assert plan.one_sided_path is CommPath.SNIC1
    assert "advice-1" in plan.advice_refs()


def test_oversized_working_set_stays_on_host():
    plan = ADVISOR.plan(WorkloadProfile(payload=256,
                                        working_set_bytes=64 * GB))
    assert plan.one_sided_path is CommPath.SNIC1
    assert "capacity" in plan.advice_refs()


def test_two_sided_traffic_terminates_on_host():
    plan = ADVISOR.plan(WorkloadProfile(payload=256,
                                        two_sided_fraction=0.5,
                                        working_set_bytes=1 * GB))
    assert plan.two_sided_path is CommPath.SNIC1
    assert "wimpy-soc" in plan.advice_refs()


def test_large_payloads_get_segmentation():
    plan = ADVISOR.plan(WorkloadProfile(payload=32 * MB,
                                        working_set_bytes=2 * GB))
    assert plan.segment_bytes is not None
    assert plan.segment_bytes <= 1 * MB
    assert "advice-2-3" in plan.advice_refs()


def test_small_payloads_need_no_segmentation():
    plan = ADVISOR.plan(WorkloadProfile(payload=4 * KB,
                                        working_set_bytes=1 * GB))
    assert plan.segment_bytes is None


def test_host_soc_transfer_gets_budget_and_doorbell_advice():
    plan = ADVISOR.plan(WorkloadProfile(payload=4 * KB,
                                        working_set_bytes=1 * GB,
                                        host_soc_transfer=True))
    assert plan.path3_budget_gbps == pytest.approx(56.0)
    assert plan.doorbell_batching_soc_side
    assert not plan.doorbell_batching_host_side
    assert "rule-p-minus-n" in plan.advice_refs()
    assert "advice-4" in plan.advice_refs()


def test_no_transfer_no_budget():
    plan = ADVISOR.plan(WorkloadProfile(payload=4 * KB,
                                        working_set_bytes=1 * GB))
    assert plan.path3_budget_gbps == 0.0


def test_plan_is_structured():
    plan = ADVISOR.plan(WorkloadProfile(payload=256))
    assert isinstance(plan, OffloadPlan)
    assert all(a.summary and a.rationale for a in plan.advice)


# -- Fig 11 concurrent partition (regression for the budget plumbing) ---------


def test_split_endpoint_plan_carries_fig11_budgets():
    """A plan that terminates traffic on both endpoints budgets each
    path at the *concurrent* Fig 11 partition, not its solo peak."""
    plan = ADVISOR.plan(WorkloadProfile(payload=0, read_fraction=1.0,
                                        two_sided_fraction=0.3,
                                        working_set_bytes=8 * GB))
    assert plan.one_sided_path is CommPath.SNIC2
    assert plan.two_sided_path is CommPath.SNIC1
    assert "fig11-partition" in plan.advice_refs()
    budgets = plan.path_budgets_mrps
    assert set(budgets) == {CommPath.SNIC1, CommPath.SNIC2}
    # The concurrent aggregate sits a few percent above the best solo
    # path (~210 Mrps on the paper's testbed) ...
    total = sum(budgets.values())
    assert total == pytest.approx(210, rel=0.02)
    # ... and each path's share stays below its solo peak (195 / 157).
    assert budgets[CommPath.SNIC1] < 195 * 1.01
    assert budgets[CommPath.SNIC2] < 157 * 1.01
    # Far under the 352 Mrps a solo-peak planner would double-book.
    assert total < 0.65 * (195 + 157)


def test_single_endpoint_plan_has_no_partition():
    plan = ADVISOR.plan(WorkloadProfile(payload=256, read_fraction=0.9,
                                        working_set_bytes=8 * GB))
    assert plan.path_budgets_mrps == {}
    assert "fig11-partition" not in plan.advice_refs()


def test_replan_returns_previous_by_identity_when_unchanged():
    profile = WorkloadProfile(payload=256, read_fraction=0.9,
                              working_set_bytes=8 * GB)
    first = ADVISOR.replan(profile)
    second = ADVISOR.replan(profile, previous=first)
    assert second is first


def test_replan_without_soc_fails_hostward_and_zeroes_budgets():
    profile = WorkloadProfile(payload=0, read_fraction=1.0,
                              two_sided_fraction=0.3,
                              working_set_bytes=8 * GB,
                              host_soc_transfer=True)
    healthy = ADVISOR.replan(profile)
    degraded = ADVISOR.replan(profile, previous=healthy, soc_available=False)
    assert degraded is not healthy
    assert degraded.one_sided_path is CommPath.SNIC1
    assert degraded.two_sided_path is CommPath.SNIC1
    assert degraded.path3_budget_gbps == 0.0
    assert degraded.path_budgets_mrps == {}
    assert "failover" in degraded.advice_refs()
