"""Tests for the latency-under-load extension."""

import pytest

from repro.core.loaded import LoadedLatencyModel, curve_table
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow
from repro.net.topology import paper_testbed

MODEL = LoadedLatencyModel(paper_testbed())
FLOW = Flow(CommPath.SNIC1, Opcode.READ, 64, requesters=11)


def test_idle_latency_matches_the_base_model():
    point = MODEL.latency_at(FLOW, 0.0)
    base = MODEL.latency.latency(CommPath.SNIC1, Opcode.READ, 64).total
    assert point.latency_ns == pytest.approx(base)
    assert point.queueing_ns == 0.0
    assert point.utilization == 0.0


def test_latency_grows_with_load():
    peak = MODEL.peak(FLOW).rates[0]
    low = MODEL.latency_at(FLOW, 0.2 * peak)
    high = MODEL.latency_at(FLOW, 0.9 * peak)
    assert high.latency_ns > low.latency_ns
    assert high.queueing_ns > low.queueing_ns
    assert high.utilization == pytest.approx(0.9)


def test_beyond_peak_rejected():
    peak = MODEL.peak(FLOW).rates[0]
    with pytest.raises(ValueError):
        MODEL.latency_at(FLOW, peak)
    with pytest.raises(ValueError):
        MODEL.latency_at(FLOW, -1.0)


def test_curve_is_monotone():
    curve = MODEL.curve(FLOW, points=8)
    latencies = [p.latency_ns for p in curve]
    assert latencies == sorted(latencies)
    assert curve[0].utilization == 0.0
    assert curve[-1].utilization == pytest.approx(0.95)


def test_curve_validation():
    with pytest.raises(ValueError):
        MODEL.curve(FLOW, points=1)
    with pytest.raises(ValueError):
        MODEL.curve(FLOW, max_utilization=1.0)


def test_knee_meets_its_budget():
    knee = MODEL.knee(FLOW, latency_budget_factor=2.0)
    base = MODEL.latency_at(FLOW, 0.0).latency_ns
    assert knee.latency_ns == pytest.approx(2.0 * base, rel=1e-6)
    assert 0 < knee.utilization < 1
    with pytest.raises(ValueError):
        MODEL.knee(FLOW, latency_budget_factor=1.0)


def test_knee_sits_very_close_to_peak_for_fast_paths():
    """Service times are ns while unloaded latency is us, so the knee
    lands deep into saturation — RDMA's famous flat-then-cliff curve."""
    knee = MODEL.knee(FLOW)
    assert knee.utilization > 0.99


def test_paths_keep_their_ordering_under_load():
    peak1 = MODEL.peak(Flow(CommPath.SNIC1, Opcode.READ, 64)).rates[0]
    for fraction in (0.3, 0.8):
        rate = fraction * peak1
        snic1 = MODEL.latency_at(Flow(CommPath.SNIC1, Opcode.READ, 64), rate)
        snic2 = MODEL.latency_at(Flow(CommPath.SNIC2, Opcode.READ, 64), rate)
        assert snic2.latency_ns < snic1.latency_ns


def test_curve_table_shape():
    rows = curve_table(MODEL, FLOW, points=5)
    assert len(rows) == 5
    offered = [r[0] for r in rows]
    assert offered == sorted(offered)
    assert all(len(r) == 3 for r in rows)
