"""Tests for the latency composition model against the Fig 4/10 bands."""

import pytest

from repro.core.latency import LatencyBreakdown, LatencyModel
from repro.core.paths import CommPath, Opcode
from repro.net.topology import paper_testbed
from repro.units import KB

TB = paper_testbed()
MODEL = LatencyModel(TB)


def lat(path, op, payload=64):
    return MODEL.latency(path, op, payload).total


def test_rnic_read_small_is_about_2us():
    # S2.1: RDMA offers ~2 us latency.
    assert 1.8 <= lat(CommPath.RNIC1, Opcode.READ) / 1000 <= 2.2


def test_snic1_read_tax_is_15_to_30_percent():
    ratio = lat(CommPath.SNIC1, Opcode.READ) / lat(CommPath.RNIC1, Opcode.READ)
    assert 1.15 <= ratio <= 1.30


def test_snic1_write_tax_is_15_to_21_percent():
    ratio = lat(CommPath.SNIC1, Opcode.WRITE) / lat(CommPath.RNIC1, Opcode.WRITE)
    assert 1.15 <= ratio <= 1.21


def test_snic1_send_tax_is_6_to_9_percent():
    ratio = lat(CommPath.SNIC1, Opcode.SEND) / lat(CommPath.RNIC1, Opcode.SEND)
    assert 1.06 <= ratio <= 1.09


def test_read_absolute_increase_larger_than_write():
    # S3.1: 0.6 us for READ vs ~0.4 us for WRITE — READ crosses PCIe twice.
    d_read = lat(CommPath.SNIC1, Opcode.READ) - lat(CommPath.RNIC1, Opcode.READ)
    d_write = lat(CommPath.SNIC1, Opcode.WRITE) - lat(CommPath.RNIC1, Opcode.WRITE)
    assert d_read == pytest.approx(600, abs=60)
    assert 250 <= d_write <= 450
    assert d_read > d_write


def test_snic2_read_up_to_14_percent_below_snic1():
    ratio = lat(CommPath.SNIC2, Opcode.READ) / lat(CommPath.SNIC1, Opcode.READ)
    assert 0.86 <= ratio < 1.0


def test_snic2_read_still_above_rnic():
    # "...but is still 4-15 % higher than RNIC" (S3.2).
    ratio = lat(CommPath.SNIC2, Opcode.READ) / lat(CommPath.RNIC1, Opcode.READ)
    assert 1.04 <= ratio <= 1.20


def test_snic2_write_similar_to_snic1():
    ratio = lat(CommPath.SNIC2, Opcode.WRITE) / lat(CommPath.SNIC1, Opcode.WRITE)
    assert 0.90 <= ratio <= 1.02


def test_snic2_send_21_to_30_percent_above_snic1():
    ratio = lat(CommPath.SNIC2, Opcode.SEND) / lat(CommPath.SNIC1, Opcode.SEND)
    assert 1.21 <= ratio <= 1.30


def test_s2h_read_latency_is_the_highest():
    # S3.3: "the latency of sending requests from SoC to the host is
    # very high, especially for READ".
    s2h = lat(CommPath.SNIC3_S2H, Opcode.READ)
    assert s2h > lat(CommPath.SNIC3_H2S, Opcode.READ)
    assert s2h > lat(CommPath.SNIC1, Opcode.READ)


def test_h2s_read_4_to_17_percent_above_snic2():
    ratio = lat(CommPath.SNIC3_H2S, Opcode.READ) / lat(CommPath.SNIC2, Opcode.READ)
    assert 1.04 <= ratio <= 1.17


def test_latency_grows_with_payload():
    small = lat(CommPath.SNIC1, Opcode.READ, 64)
    large = lat(CommPath.SNIC1, Opcode.READ, 16 * KB)
    assert large > small + 500  # serialization is visible


def test_posting_latency_ordering_fig10a():
    post = MODEL.posting_latency
    assert (post(CommPath.SNIC3_S2H)
            > post(CommPath.SNIC3_H2S)
            > post(CommPath.RNIC1) * 0.9)
    assert post(CommPath.SNIC1) == post(CommPath.RNIC1)  # same client CPUs


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        MODEL.latency(CommPath.SNIC1, Opcode.READ, -1)


def test_breakdown_structure():
    breakdown = MODEL.latency(CommPath.SNIC1, Opcode.READ, 64)
    assert isinstance(breakdown, LatencyBreakdown)
    assert breakdown.total == pytest.approx(sum(breakdown.as_dict().values()))
    assert breakdown.segment("post") > 0
    assert breakdown.total_us == pytest.approx(breakdown.total / 1000)
    with pytest.raises(KeyError):
        breakdown.segment("nonexistent")


def test_path3_breakdown_has_fetch_and_deliver():
    breakdown = MODEL.latency(CommPath.SNIC3_H2S, Opcode.WRITE, 4 * KB)
    assert breakdown.segment("fetch_dma") > 0
    assert breakdown.segment("deliver_dma") > 0
