"""Tests for the demand builder and max-min throughput solver.

The quantitative assertions mirror the paper's §3/§4 claims; see
EXPERIMENTS.md for the full paper-vs-model table.
"""

import pytest

from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.net.topology import paper_testbed
from repro.units import GB, KB, MB

TB = paper_testbed()
SOLVER = ThroughputSolver()


def peak(path, op, payload, requesters=11, **kw):
    flow = Flow(path=path, op=op, payload=payload, requesters=requesters, **kw)
    return SOLVER.solve(Scenario(TB, [flow]))


# -- Flow validation -----------------------------------------------------------


def test_flow_validation():
    with pytest.raises(ValueError):
        Flow(CommPath.SNIC1, Opcode.READ, payload=-1)
    with pytest.raises(ValueError):
        Flow(CommPath.SNIC1, Opcode.READ, payload=64, requesters=0)
    with pytest.raises(ValueError):
        Flow(CommPath.SNIC1, Opcode.READ, payload=64, range_bytes=32)
    with pytest.raises(ValueError):
        Flow(CommPath.SNIC1, Opcode.READ, payload=64, doorbell_batch=0)
    with pytest.raises(ValueError):
        Flow(CommPath.SNIC1, Opcode.READ, payload=64, weight=0)
    with pytest.raises(ValueError):
        Flow(CommPath.SNIC1, Opcode.READ, payload=64, rate_cap=0)


def test_flow_name():
    flow = Flow(CommPath.SNIC1, Opcode.READ, 64, label="custom")
    assert flow.name == "custom"
    assert "read" in Flow(CommPath.SNIC1, Opcode.READ, 64).name


def test_scenario_needs_flows():
    with pytest.raises(ValueError):
        Scenario(TB, [])


# -- S2.1 / S4 verb-limited small requests ----------------------------------------


def test_0b_read_saturates_at_195_mpps():
    result = peak(CommPath.SNIC1, Opcode.READ, 0)
    assert result.mrps_of(0) == pytest.approx(195.0, rel=0.01)


def test_0b_read_soc_path_saturates_at_157_mpps():
    result = peak(CommPath.SNIC2, Opcode.READ, 0)
    assert result.mrps_of(0) == pytest.approx(157.0, rel=0.01)


def test_five_clients_saturate_the_nic():
    four = peak(CommPath.SNIC1, Opcode.READ, 0, requesters=4)
    five = peak(CommPath.SNIC1, Opcode.READ, 0, requesters=5)
    assert four.mrps_of(0) < 195.0 * 0.9
    assert five.mrps_of(0) == pytest.approx(195.0, rel=0.01)


# -- S3.1: the SmartNIC performance tax --------------------------------------------


def test_snic1_read_small_is_19_to_26_percent_below_rnic():
    rnic = peak(CommPath.RNIC1, Opcode.READ, 64).mrps_of(0)
    snic = peak(CommPath.SNIC1, Opcode.READ, 64).mrps_of(0)
    assert 0.74 <= snic / rnic <= 0.81


def test_snic1_write_small_is_15_to_22_percent_below_rnic():
    rnic = peak(CommPath.RNIC1, Opcode.WRITE, 64).mrps_of(0)
    snic = peak(CommPath.SNIC1, Opcode.WRITE, 64).mrps_of(0)
    assert 0.78 <= snic / rnic <= 0.85


def test_snic1_send_small_is_below_rnic():
    rnic = peak(CommPath.RNIC1, Opcode.SEND, 64).mrps_of(0)
    snic = peak(CommPath.SNIC1, Opcode.SEND, 64).mrps_of(0)
    assert 0.64 <= snic / rnic <= 0.97


def test_large_requests_converge_to_network_bound():
    # "The result of larger requests is similar to using RNIC" (S3.1).
    rnic = peak(CommPath.RNIC1, Opcode.READ, 16 * KB).gbps_of(0)
    snic = peak(CommPath.SNIC1, Opcode.READ, 16 * KB).gbps_of(0)
    assert snic == pytest.approx(rnic, rel=0.02)
    assert 185 <= snic <= 195


# -- S3.2: path 2 beats path 1 for one-sided ----------------------------------------


def test_snic2_read_small_beats_snic1_by_8_to_48_percent():
    snic1 = peak(CommPath.SNIC1, Opcode.READ, 64).mrps_of(0)
    snic2 = peak(CommPath.SNIC2, Opcode.READ, 64).mrps_of(0)
    assert 1.08 <= snic2 / snic1 <= 1.48


def test_snic2_read_small_observably_above_rnic():
    rnic = peak(CommPath.RNIC1, Opcode.READ, 64).mrps_of(0)
    snic2 = peak(CommPath.SNIC2, Opcode.READ, 64).mrps_of(0)
    assert snic2 > rnic


def test_snic2_write_between_snic1_and_rnic():
    rnic = peak(CommPath.RNIC1, Opcode.WRITE, 64).mrps_of(0)
    snic1 = peak(CommPath.SNIC1, Opcode.WRITE, 64).mrps_of(0)
    snic2 = peak(CommPath.SNIC2, Opcode.WRITE, 64).mrps_of(0)
    assert snic1 < snic2 < rnic


def test_snic2_send_drops_up_to_64_percent():
    snic1 = peak(CommPath.SNIC1, Opcode.SEND, 64).mrps_of(0)
    snic2 = peak(CommPath.SNIC2, Opcode.SEND, 64).mrps_of(0)
    assert 0.34 <= snic2 / snic1 <= 0.45
    assert snic2 == pytest.approx(31.2, rel=0.02)


# -- S3.2 Advice #1: skew ------------------------------------------------------------


def test_soc_write_collapses_to_22_7_mrps_on_narrow_range():
    narrow = peak(CommPath.SNIC2, Opcode.WRITE, 64, range_bytes=1536)
    assert narrow.mrps_of(0) == pytest.approx(22.7, rel=0.01)
    assert narrow.bottlenecks[0] == "mem:soc"


def test_soc_read_floor_is_50_mrps():
    narrow = peak(CommPath.SNIC2, Opcode.READ, 64, range_bytes=1536)
    assert narrow.mrps_of(0) == pytest.approx(50.0, rel=0.01)


def test_host_path_immune_to_narrow_range():
    # DDIO absorbs the skew (Fig 7's flat host lines).
    narrow = peak(CommPath.SNIC1, Opcode.WRITE, 64, range_bytes=1536)
    wide = peak(CommPath.SNIC1, Opcode.WRITE, 64, range_bytes=10 * GB)
    assert narrow.mrps_of(0) == pytest.approx(wide.mrps_of(0), rel=0.01)


# -- S3.2 Advice #2: large READs to the SoC -------------------------------------------


def test_snic2_read_collapses_above_9mb():
    below = peak(CommPath.SNIC2, Opcode.READ, 8 * MB)
    above = peak(CommPath.SNIC2, Opcode.READ, 16 * MB)
    assert below.gbps_of(0) > 180
    assert above.gbps_of(0) < 130
    assert above.bottlenecks[0] == "dma:tlps"


def test_snic2_write_does_not_collapse():
    above = peak(CommPath.SNIC2, Opcode.WRITE, 16 * MB)
    assert above.gbps_of(0) > 180


def test_snic1_large_read_does_not_collapse():
    # The host's 512 B MTU avoids the issue (S3.2).
    above = peak(CommPath.SNIC1, Opcode.READ, 16 * MB)
    assert above.gbps_of(0) > 180


# -- S3.3: path 3 ----------------------------------------------------------------------


def test_h2s_small_reads_bound_by_host_requester_at_51_mrps():
    result = peak(CommPath.SNIC3_H2S, Opcode.READ, 64, requesters=24)
    assert result.mrps_of(0) == pytest.approx(51.3, rel=0.01)
    assert result.bottlenecks[0] == "issue:host"


def test_s2h_small_reads_bound_by_soc_requester_at_29_mrps():
    result = peak(CommPath.SNIC3_S2H, Opcode.READ, 64, requesters=8)
    assert result.mrps_of(0) == pytest.approx(29.0, rel=0.01)
    assert result.bottlenecks[0] == "issue:soc"


def test_path3_peak_bandwidth_is_204_gbps():
    # Fig 9: ~204 Gbps at 256 KB, above the 191 Gbps network-bound paths.
    result = peak(CommPath.SNIC3_S2H, Opcode.WRITE, 256 * KB, requesters=8)
    assert result.gbps_of(0) == pytest.approx(204, rel=0.01)
    path1 = peak(CommPath.SNIC1, Opcode.WRITE, 256 * KB).gbps_of(0)
    assert result.gbps_of(0) > path1


def test_path3_collapses_to_about_100_gbps_for_large():
    s2h = peak(CommPath.SNIC3_S2H, Opcode.WRITE, 16 * MB, requesters=8)
    h2s = peak(CommPath.SNIC3_H2S, Opcode.READ, 16 * MB, requesters=24)
    assert 85 <= s2h.gbps_of(0) <= 110
    assert 85 <= h2s.gbps_of(0) <= 110


def test_s2h_collapses_earlier_than_h2s():
    # 4 MB: data leaving the SoC already collapsed, data entering not yet.
    payload = 4 * MB
    s2h = peak(CommPath.SNIC3_S2H, Opcode.WRITE, payload, requesters=8)
    h2s = peak(CommPath.SNIC3_H2S, Opcode.WRITE, payload, requesters=24)
    assert s2h.gbps_of(0) < 0.75 * h2s.gbps_of(0)


# -- doorbell batching (Advice #4) -------------------------------------------------------


def test_doorbell_batching_helps_soc_side():
    base = peak(CommPath.SNIC3_S2H, Opcode.READ, 0, requesters=8)
    batched = peak(CommPath.SNIC3_S2H, Opcode.READ, 0, requesters=8,
                   doorbell_batch=16)
    assert batched.mrps_of(0) / base.mrps_of(0) == pytest.approx(2.7, rel=0.02)


def test_doorbell_batching_hurts_host_side():
    base = peak(CommPath.SNIC3_H2S, Opcode.READ, 0, requesters=24)
    batched = peak(CommPath.SNIC3_H2S, Opcode.READ, 0, requesters=24,
                   doorbell_batch=16)
    assert batched.mrps_of(0) / base.mrps_of(0) == pytest.approx(0.91, rel=0.02)


# -- solver mechanics ----------------------------------------------------------------------


def test_rate_cap_is_respected():
    result = peak(CommPath.SNIC1, Opcode.READ, 64, rate_cap=0.001)
    assert result.rate_of(0) == pytest.approx(0.001)
    assert result.bottlenecks[0] == "cap:0"


def test_weights_bias_allocation():
    flows = [Flow(CommPath.SNIC1, Opcode.READ, 0, requesters=11, weight=2.0),
             Flow(CommPath.SNIC1, Opcode.READ, 0, requesters=11, weight=1.0)]
    result = ThroughputSolver().solve(Scenario(TB, flows))
    assert result.rates[0] == pytest.approx(2 * result.rates[1])


def test_result_accessors():
    result = peak(CommPath.SNIC1, Opcode.READ, 4 * KB)
    assert result.total_rate == result.rate_of(0)
    assert result.total_mrps == pytest.approx(result.mrps_of(0))
    assert result.goodput_of(0) == result.rate_of(0) * 4 * KB
    assert result.total_gbps == pytest.approx(result.gbps_of(0))


def test_every_flow_gets_a_bottleneck():
    flows = [Flow(CommPath.SNIC1, Opcode.READ, 64),
             Flow(CommPath.SNIC2, Opcode.WRITE, 64),
             Flow(CommPath.SNIC3_H2S, Opcode.READ, 64, requesters=24)]
    result = ThroughputSolver().solve(Scenario(TB, flows))
    assert all(result.bottlenecks)
    assert all(rate > 0 for rate in result.rates)


def test_solver_utilization_never_exceeds_one():
    flows = [Flow(CommPath.SNIC1, Opcode.READ, 4 * KB),
             Flow(CommPath.SNIC1, Opcode.WRITE, 4 * KB),
             Flow(CommPath.SNIC3_H2S, Opcode.WRITE, 4 * KB, requesters=24)]
    result = ThroughputSolver().solve(Scenario(TB, flows))
    assert all(u <= 1.0 + 1e-9 for u in result.utilization.values())


def test_throughput_monotone_in_requesters():
    rates = [peak(CommPath.SNIC1, Opcode.READ, 0, requesters=m).mrps_of(0)
             for m in range(1, 12)]
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
