"""Tests for concurrent-flow analysis (Fig 5, §4)."""

import pytest

from repro.core.flows import ConcurrencyAnalyzer, FlowPattern
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow
from repro.net.topology import paper_testbed
from repro.units import KB

TB = paper_testbed()
AN = ConcurrencyAnalyzer(TB)


def test_pattern_validation():
    with pytest.raises(ValueError):
        FlowPattern("empty", [])


def test_fig5_snic1_opposite_directions_multiplex():
    combos = AN.direction_combinations(CommPath.SNIC1)
    read = combos["READ"].total_gbps
    write = combos["WRITE"].total_gbps
    both = combos["READ+WRITE"].total_gbps
    # Fig 5(b): ~190 Gbps alone, ~364 Gbps for READ+WRITE.
    assert read == pytest.approx(190, rel=0.02)
    assert write == pytest.approx(190, rel=0.02)
    assert both == pytest.approx(364, rel=0.03)
    assert both > 1.85 * read


def test_fig5_snic2_similar_to_snic1():
    combos = AN.direction_combinations(CommPath.SNIC2)
    assert combos["READ"].total_gbps == pytest.approx(190, rel=0.02)
    assert combos["READ+WRITE"].total_gbps > 1.7 * combos["READ"].total_gbps


def test_fig5_path3_cannot_double():
    # S3.3: each request crosses PCIe1 twice, exhausting both directions.
    combos = AN.direction_combinations(CommPath.SNIC3_S2H)
    single = max(combos["READ"].total_gbps, combos["WRITE"].total_gbps)
    both = combos["READ+WRITE"].total_gbps
    assert both < 1.15 * single
    # And the single-direction peak beats the network-bound paths.
    assert single == pytest.approx(204, rel=0.03)


def test_concurrent_endpoints_read_unlocks_reserved_cores():
    results = AN.concurrent_endpoints(Opcode.READ, payload=0)
    alone1 = results["SNIC1 alone"].total_mrps
    alone2 = results["SNIC2 alone"].total_mrps
    both = results["SNIC1+2"].total_mrps
    # S4: 4-13 % above path 1 alone; far below the 352 Mpps sum.
    assert 1.04 <= both / alone1 <= 1.13
    assert alone1 + alone2 == pytest.approx(352, rel=0.01)
    assert both < 0.65 * (alone1 + alone2)


def test_concurrent_endpoints_write_is_flat():
    results = AN.concurrent_endpoints(Opcode.WRITE, payload=0)
    both = results["SNIC1+2"].total_mrps
    alone = results["SNIC1 alone"].total_mrps
    assert 1.0 <= both / alone <= 1.05


def test_path3_interference_read_band():
    results = AN.path3_interference(Opcode.READ, 64)
    alone = results["SNIC1 alone"].rates[0]
    mixed = results["SNIC1 + SNIC3(H2S)"].rates[0]
    assert 0.85 <= mixed / alone <= 0.93  # S4: drops 7-15 %


def test_path3_interference_write_band():
    results = AN.path3_interference(Opcode.WRITE, 64)
    alone = results["SNIC1 alone"].rates[0]
    mixed = results["SNIC1 + SNIC3(H2S)"].rates[0]
    assert 0.73 <= mixed / alone <= 0.96  # S4: drops 4-27 %


def test_path3_interference_send_band():
    results = AN.path3_interference(Opcode.SEND, 64)
    alone = results["SNIC1 alone"].rates[0]
    mixed = results["SNIC1 + SNIC3(H2S)"].rates[0]
    assert 0.86 <= mixed / alone <= 0.91  # S4: drops 9-14 %


def test_path3_budget_is_p_minus_n():
    # S4: 256 Gbps PCIe - 200 Gbps network = 56 Gbps on this testbed.
    assert AN.path3_budget_gbps() == pytest.approx(56.0)


def test_budgeted_path3_raises_aggregate():
    without = AN.aggregate_with_budgeted_path3(0).total_gbps
    with_budget = AN.aggregate_with_budgeted_path3()
    assert with_budget.total_gbps > without + 20
    # The path-3 flow sticks to its admission budget.
    assert with_budget.gbps_of(2) == pytest.approx(56.0, rel=0.01)


def test_unbudgeted_path3_lowers_inter_machine_share():
    budgeted = AN.aggregate_with_budgeted_path3(56.0)
    unbudgeted = AN.aggregate_with_budgeted_path3(200.0)
    inter_budgeted = budgeted.gbps_of(0) + budgeted.gbps_of(1)
    inter_unbudgeted = unbudgeted.gbps_of(0) + unbudgeted.gbps_of(1)
    assert inter_unbudgeted < inter_budgeted


def test_budget_validation():
    with pytest.raises(ValueError):
        AN.aggregate_with_budgeted_path3(-1)


def test_combine_arbitrary_flows():
    result = AN.combine([
        Flow(CommPath.SNIC1, Opcode.READ, 4 * KB, requesters=5),
        Flow(CommPath.SNIC2, Opcode.WRITE, 4 * KB, requesters=5),
    ])
    assert len(result.rates) == 2
    assert result.total_gbps > 300  # opposite directions multiplex
