"""Tests for the measurement harness and table formatting."""

import pytest

from repro.core.harness import LatencyBench, Measurement, Sweep, ThroughputBench
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.net.topology import paper_testbed
from repro.units import KB, MB

TB = paper_testbed()


def test_measurement_str():
    m = Measurement("lat", 2.5, "us")
    assert "2.5" in str(m) and "us" in str(m)


def test_sweep_accessors():
    sweep = Sweep("payload", "bytes",
                  [(64, Measurement("x", 1.0, "us")),
                   (128, Measurement("x", 2.0, "us"))])
    assert sweep.xs() == [64, 128]
    assert sweep.values() == [1.0, 2.0]
    assert sweep.value_at(128) == 2.0
    with pytest.raises(KeyError):
        sweep.value_at(999)
    table = sweep.table(title="t")
    assert "payload" in table and "64" in table


def test_latency_bench_payload_sweep():
    bench = LatencyBench(TB)
    sweep = bench.payload_sweep(CommPath.SNIC1, Opcode.READ, [64, 4 * KB])
    assert sweep.value_at(4 * KB) > sweep.value_at(64)


def test_latency_bench_des_cross_check():
    bench = LatencyBench(TB)
    # Fig 3: simulated READ DMA crosses the fabric twice, WRITE once.
    read_ns = bench.simulate_dma_latency(CommPath.SNIC1, Opcode.READ, 64)
    write_ns = bench.simulate_dma_latency(CommPath.SNIC1, Opcode.WRITE, 64)
    assert read_ns > 1.8 * write_ns


def test_throughput_bench_payload_sweep_metrics():
    bench = ThroughputBench(TB)
    mrps = bench.payload_sweep(CommPath.SNIC1, Opcode.READ, [64], metric="mrps")
    gbps = bench.payload_sweep(CommPath.SNIC1, Opcode.READ, [64], metric="gbps")
    assert mrps.value_at(64) > 100
    assert gbps.value_at(64) == pytest.approx(
        mrps.value_at(64) * 64 * 8 / 1000, rel=1e-6)
    with pytest.raises(ValueError):
        bench.payload_sweep(CommPath.SNIC1, Opcode.READ, [64], metric="bogus")


def test_throughput_bench_pps_scopes():
    bench = ThroughputBench(TB)
    nic = bench.pps_sweep(CommPath.SNIC3_S2H, Opcode.WRITE, [256 * KB],
                          requesters=8, scope="nic")
    fabric = bench.pps_sweep(CommPath.SNIC3_S2H, Opcode.WRITE, [256 * KB],
                             requesters=8, scope="fabric")
    assert fabric.value_at(256 * KB) > nic.value_at(256 * KB)
    # Fig 9b: ~320 Mpps at the 204 Gbps peak.
    assert fabric.value_at(256 * KB) == pytest.approx(310, rel=0.05)
    with pytest.raises(ValueError):
        bench.pps_sweep(CommPath.SNIC1, Opcode.READ, [64], scope="bogus")


def test_throughput_bench_range_sweep_shape():
    bench = ThroughputBench(TB)
    sweep = bench.range_sweep(CommPath.SNIC2, Opcode.WRITE, 64,
                              [1536, 48 * KB], requesters=2)
    assert sweep.value_at(1536) == pytest.approx(22.7, rel=0.01)
    assert sweep.value_at(48 * KB) > 3 * sweep.value_at(1536)


def test_throughput_bench_requester_sweep_saturates():
    bench = ThroughputBench(TB)
    sweep = bench.requester_sweep(CommPath.SNIC1, Opcode.READ, 0,
                                  list(range(1, 8)))
    values = sweep.values()
    assert values[-1] == pytest.approx(195.0, rel=0.01)
    assert values[0] == pytest.approx(39.0, rel=0.01)


def test_throughput_bench_doorbell_sweep():
    bench = ThroughputBench(TB)
    sweep = bench.doorbell_sweep(CommPath.SNIC3_S2H, Opcode.READ, 0,
                                 [1, 16], requesters=8)
    assert sweep.value_at(16) / sweep.value_at(1) == pytest.approx(2.7, rel=0.02)


def test_format_table():
    table = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "---" in lines[2]
    assert len(lines) == 5


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])
