"""Behaviour with numpy absent: the [fast] extra must stay optional.

These tests simulate an uninstalled numpy by planting ``None`` in
``sys.modules`` (which makes ``import numpy`` raise ``ImportError``)
and resetting the batch module's lazy import cache.  They run in every
environment — with numpy installed they prove the gate, without it
they prove the fallback.
"""

import sys

import pytest

from repro.core import batch
from repro.core.cache import clear_all
from repro.core.paths import CommPath, Opcode
from repro.core.sweeps import SweepRunner
from repro.core.throughput import (
    Flow,
    Scenario,
    ThroughputSolver,
    configure_result_cache,
)
from repro.net.topology import paper_testbed


@pytest.fixture
def no_numpy(monkeypatch):
    monkeypatch.setitem(sys.modules, "numpy", None)
    batch._reset_numpy_cache()
    yield
    batch._reset_numpy_cache()


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_all()
    configure_result_cache(enabled=True, disk_dir=None)
    yield
    clear_all()
    configure_result_cache(enabled=True, disk_dir=None)
    batch._reset_numpy_cache()


@pytest.fixture(scope="module")
def testbed():
    return paper_testbed()


def test_numpy_unavailable_detected(no_numpy):
    assert not batch.numpy_available()


def test_require_numpy_names_the_extra(no_numpy):
    with pytest.raises(ValueError, match=r"repro\[fast\]"):
        batch.require_numpy()


def test_vector_engine_refused_without_numpy(no_numpy, testbed):
    with pytest.raises(ValueError, match=r"repro\[fast\]"):
        SweepRunner(testbed, engine="vector")
    with pytest.raises(ValueError, match=r"repro\[fast\]"):
        Scenario.solve_batch(testbed, [[Flow(path=CommPath.SNIC1,
                                             op=Opcode.READ, payload=64)]],
                             engine="vector")


def test_auto_engine_falls_back_to_scalar(no_numpy, testbed):
    runner = SweepRunner(testbed)            # engine="auto"
    assert runner.engine_for(100) == "scalar"
    flows = [Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=p,
                  requesters=11) for p in (64, 256, 1024)]
    results = runner.solve_flows(flows)
    reference = [ThroughputSolver().solve(Scenario(testbed, [flow]),
                                          use_cache=False)
                 for flow in flows]
    for got, want in zip(results, reference):
        assert got.rates == want.rates
        assert got.bottlenecks == want.bottlenecks


def test_solve_batch_auto_falls_back(no_numpy, testbed):
    flow_sets = [[Flow(path=CommPath.SNIC2, op=Opcode.WRITE, payload=p)]
                 for p in (64, 4096)]
    results = Scenario.solve_batch(testbed, flow_sets, engine="auto")
    assert len(results) == 2
    assert all(result.rates[0] > 0 for result in results)


def test_cli_sweep_reports_missing_numpy(no_numpy, capsys):
    from repro.cli import main

    status = main(["sweep", "fig4", "--engine", "vector"])
    assert status == 1
    assert "repro[fast]" in capsys.readouterr().err
