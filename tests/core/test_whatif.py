"""Tests for the §5 what-if analyses (CCI, CXL, Bluefield-3)."""

import pytest

from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.core.whatif import (
    CxlPath3Model,
    bluefield3_testbed,
    speed_ratios,
    with_cci_soc,
)
from repro.net.topology import paper_testbed
from repro.units import KB, MB, to_gbps

TB = paper_testbed()
SOLVER = ThroughputSolver()


def peak(testbed, path, op, payload, requesters=11, **kw):
    return SOLVER.solve(Scenario(testbed, [
        Flow(path=path, op=op, payload=payload, requesters=requesters, **kw)]))


# -- CCI: a DDIO-equivalent on the SoC ------------------------------------------


def test_cci_removes_the_write_skew_anomaly():
    cci = with_cci_soc(TB)
    narrow_before = peak(TB, CommPath.SNIC2, Opcode.WRITE, 64,
                         range_bytes=1536).mrps_of(0)
    narrow_after = peak(cci, CommPath.SNIC2, Opcode.WRITE, 64,
                        range_bytes=1536).mrps_of(0)
    assert narrow_before == pytest.approx(22.7, rel=0.01)
    assert narrow_after > 3 * narrow_before


def test_cci_keeps_wide_range_behaviour():
    cci = with_cci_soc(TB)
    wide_before = peak(TB, CommPath.SNIC2, Opcode.WRITE, 64).mrps_of(0)
    wide_after = peak(cci, CommPath.SNIC2, Opcode.WRITE, 64).mrps_of(0)
    assert wide_after == pytest.approx(wide_before, rel=0.05)


def test_cci_soc_memory_is_marked_ddio():
    cci = with_cci_soc(TB)
    assert cci.snic.soc.memory.ddio
    assert not TB.snic.soc.memory.ddio  # original untouched


# -- CXL for path 3 -----------------------------------------------------------------


def test_cxl_beats_rdma_path3():
    model = CxlPath3Model(TB.snic.spec)
    # Today's RDMA path-3 ceiling is ~204 Gbps; CXL should exceed it.
    assert to_gbps(model.rdma_path3_bandwidth(256 * KB)) == pytest.approx(
        204, rel=0.02)
    assert model.improvement(256 * KB) > 1.05
    assert model.frees_nic_for_network()


def test_cxl_efficiency_is_flit_based():
    model = CxlPath3Model(TB.snic.spec)
    assert 0.85 <= model.efficiency() <= 0.95


def test_cxl_gain_grows_for_sub_mtu_transfers():
    model = CxlPath3Model(TB.snic.spec)
    # Payloads below the 128 B MTU pay a full TLP header each on RDMA
    # path 3, so CXL's advantage grows.
    assert model.improvement(100) > model.improvement(256 * KB)


# -- Bluefield-3 ------------------------------------------------------------------------


def test_bluefield3_ratios():
    bf3 = bluefield3_testbed(TB)
    ratios = speed_ratios(TB, bf3)
    assert ratios["network"] == pytest.approx(2.0)
    assert ratios["pcie"] == pytest.approx(2.0)
    assert ratios["verb_rate"] == pytest.approx(2.0)


def test_bluefield3_doubles_large_transfer_bandwidth():
    bf3 = bluefield3_testbed(TB)
    before = peak(TB, CommPath.SNIC1, Opcode.READ, 16 * KB).gbps_of(0)
    after = peak(bf3, CommPath.SNIC1, Opcode.READ, 16 * KB).gbps_of(0)
    assert after == pytest.approx(2 * before, rel=0.02)


def test_bluefield3_keeps_the_architecture_anomalies():
    """S5: same architecture, same anomalies — only the constants move."""
    bf3 = bluefield3_testbed(TB)
    # The HOL collapse and the path-3 double-crossing survive.
    ok = peak(bf3, CommPath.SNIC2, Opcode.READ, 8 * MB).gbps_of(0)
    collapsed = peak(bf3, CommPath.SNIC2, Opcode.READ, 16 * MB).gbps_of(0)
    assert collapsed < 0.6 * ok
    # Skew floor unchanged (the DRAM is the same generation).
    narrow = peak(bf3, CommPath.SNIC2, Opcode.WRITE, 64,
                  range_bytes=1536).mrps_of(0)
    assert narrow == pytest.approx(22.7, rel=0.01)


def test_bluefield3_budget_rule_moves_with_the_constants():
    from repro.core.flows import ConcurrencyAnalyzer

    bf3 = bluefield3_testbed(TB)
    budget = ConcurrencyAnalyzer(bf3).path3_budget_gbps()
    # P - N = 512 - 400 = 112 Gbps on the next generation.
    assert budget == pytest.approx(112.0)
