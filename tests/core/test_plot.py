"""Tests for the ASCII plotter."""

import pytest

from repro.core.harness import Measurement, Sweep
from repro.core.plot import ascii_plot, plot_sweeps


def test_basic_plot_shape():
    chart = ascii_plot({"line": [(0, 0), (10, 10)]}, width=20, height=8)
    lines = chart.splitlines()
    assert any("*" in line for line in lines)
    assert "line" in lines[-1]
    assert "10" in lines[0]


def test_title_and_y_label():
    chart = ascii_plot({"s": [(1, 1)]}, title="T", y_label="Gbps")
    assert chart.splitlines()[0] == "T"
    assert "Gbps" in chart


def test_multiple_series_get_distinct_markers():
    chart = ascii_plot({"a": [(0, 1)], "b": [(10, 2)]}, width=30, height=6)
    assert "* a" in chart and "o b" in chart


def test_log_x_axis():
    chart = ascii_plot({"s": [(16, 1), (16384, 2)]}, log_x=True)
    assert "(log)" in chart


def test_log_x_rejects_nonpositive():
    with pytest.raises(ValueError):
        ascii_plot({"s": [(0, 1)]}, log_x=True)


def test_validation():
    with pytest.raises(ValueError):
        ascii_plot({})
    with pytest.raises(ValueError):
        ascii_plot({"s": []})
    with pytest.raises(ValueError):
        ascii_plot({"s": [(0, 1)]}, width=2)


def test_flat_series_does_not_crash():
    chart = ascii_plot({"flat": [(1, 5), (2, 5), (3, 5)]})
    assert "flat" in chart


def test_plot_sweeps_adapter():
    sweep = Sweep("payload", "bytes",
                  [(64, Measurement("x", 1.0, "us")),
                   (4096, Measurement("x", 3.0, "us"))])
    chart = plot_sweeps({"latency": sweep}, log_x=True, title="L")
    assert "latency" in chart and chart.startswith("L")
