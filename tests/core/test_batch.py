"""The vector batch solver against the scalar reference.

The batch engine is a performance layer, not a second model: every
rate it produces must match the scalar water-filling solver (the same
IEEE-754 arithmetic, evaluated elementwise), its demand tensor must
hold exactly the scalar per-flow demand dicts, and both engines must
interoperate through the shared content-keyed result cache.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    ENGINE_STATS,
    BatchSolver,
    assemble_demand_tensor,
    numpy_available,
    waterfill,
)
from repro.core.cache import clear_all
from repro.core.paths import CommPath, Opcode
from repro.core.sweeps import StageTimings, SweepRunner
from repro.core.throughput import (
    RESULT_CACHE,
    Flow,
    Scenario,
    ThroughputSolver,
    configure_result_cache,
)
from repro.net.topology import paper_testbed
from repro.units import GB, KB, MB

REL_TOL = 1e-9


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_all()
    configure_result_cache(enabled=True, disk_dir=None)
    ENGINE_STATS.clear()
    yield
    clear_all()
    configure_result_cache(enabled=True, disk_dir=None)
    ENGINE_STATS.clear()


@pytest.fixture(scope="module")
def testbed():
    return paper_testbed()


def rel_close(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), 1e-300)


def assert_equivalent(scalar, vector):
    """Rates and utilization agree to 1e-9 relative.

    Max-min fair rates are unique, so they must match; bottleneck
    *labels* may differ when two resources saturate at the same delta
    (the engines break ties differently), so they are not compared.
    """
    assert len(scalar.rates) == len(vector.rates)
    for a, b in zip(scalar.rates, vector.rates):
        assert rel_close(a, b), (a, b)
    keys = set(scalar.utilization) | set(vector.utilization)
    for key in keys:
        assert rel_close(scalar.utilization.get(key, 0.0),
                         vector.utilization.get(key, 0.0)), key


# ---------------------------------------------------------------------------
# Property: vector == scalar on randomized flow sets
# ---------------------------------------------------------------------------

PAYLOADS = [0, 1, 64, 256, 1024, 4 * KB, 64 * KB, 1 * MB,
            9 * MB, 9 * MB + 1, 10 * MB]


@st.composite
def flow_st(draw):
    payload = draw(st.sampled_from(PAYLOADS))
    range_bytes = max(float(max(1, payload)),
                      draw(st.sampled_from([512.0, float(1 << 16),
                                            float(32 * MB), 10.0 * GB])))
    return Flow(
        path=draw(st.sampled_from(list(CommPath))),
        op=draw(st.sampled_from(list(Opcode))),
        payload=payload,
        requesters=draw(st.integers(min_value=1, max_value=50)),
        range_bytes=range_bytes,
        doorbell_batch=draw(st.sampled_from([1, 4, 16])),
        weight=draw(st.sampled_from([0.2, 1.0, 1.5])),
        rate_cap=draw(st.sampled_from([None, 1e-3, 5e-2])),
    )


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(flow_st(), min_size=1, max_size=3),
                min_size=1, max_size=5))
def test_vector_matches_scalar_property(flow_sets):
    testbed = paper_testbed()
    solver = ThroughputSolver()
    scalar = [solver.solve(Scenario(testbed, flows), use_cache=False)
              for flows in flow_sets]
    vector = BatchSolver().solve(testbed, flow_sets, use_cache=False)
    for s, v in zip(scalar, vector):
        assert_equivalent(s, v)


def test_vector_bit_identical_on_payload_grid(testbed):
    # On the Fig-4 grid the engines agree not just to tolerance but to
    # the bit: identical expressions, identical evaluation order.
    grid = [[Flow(path=path, op=op, payload=payload, requesters=11)]
            for path in CommPath for op in Opcode for payload in PAYLOADS]
    solver = ThroughputSolver()
    scalar = [solver.solve(Scenario(testbed, flows), use_cache=False)
              for flows in grid]
    vector = BatchSolver().solve(testbed, grid, use_cache=False)
    for s, v in zip(scalar, vector):
        assert s.rates == v.rates
        assert s.utilization == v.utilization


# ---------------------------------------------------------------------------
# Demand tensor structure
# ---------------------------------------------------------------------------


def test_demand_tensor_matches_scalar_dicts(testbed):
    flows = [
        Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=4 * KB,
             requesters=11),
        Flow(path=CommPath.SNIC3_H2S, op=Opcode.WRITE, payload=64,
             requesters=24, weight=0.2),
        Flow(path=CommPath.RNIC1, op=Opcode.SEND, payload=256,
             doorbell_batch=16),
    ]
    scenario = Scenario(testbed, flows)
    tensor = assemble_demand_tensor(testbed, [scenario])
    names = tensor.resources
    for i, demand in enumerate(scenario.demands):
        for name, value in demand.items():
            assert name in names
            assert tensor.demand[0, i, names.index(name)] == value
        for j, name in enumerate(names):
            if name not in demand:
                assert tensor.demand[0, i, j] == 0.0


def test_tensor_slots_follow_flow_order(testbed):
    flows = [Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=64),
             Flow(path=CommPath.SNIC1, op=Opcode.WRITE, payload=64)]
    tensor = assemble_demand_tensor(testbed, [Scenario(testbed, flows)])
    assert tensor.valid.shape == (1, 2)
    assert tensor.valid.all()
    assert (tensor.weights == 1.0).all()


def test_waterfill_shapes(testbed):
    flow_sets = [[Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=64)],
                 [Flow(path=CommPath.SNIC2, op=Opcode.READ, payload=64),
                  Flow(path=CommPath.SNIC2, op=Opcode.WRITE, payload=64)]]
    tensor = assemble_demand_tensor(
        testbed, [Scenario(testbed, flows) for flows in flow_sets])
    rates, bottlenecks, usage = waterfill(tensor)
    assert rates.shape == tensor.valid.shape
    assert bottlenecks.shape == tensor.valid.shape
    assert usage.shape == (2, len(tensor.resources))
    assert (rates[tensor.valid] > 0).all()
    assert bottlenecks[0, 1] == -1          # no second flow at point 0
    assert (bottlenecks[tensor.valid] >= 0).all()


def test_unbounded_flow_rejected_like_scalar(testbed):
    # A flow whose demand vector is all-zero cannot be rate-bounded;
    # the vector engine mirrors the scalar solver's refusal.
    flows = [Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=64)]
    tensor = assemble_demand_tensor(testbed, [Scenario(testbed, flows)])
    tensor.demand[:] = 0.0
    with pytest.raises(ValueError, match="no demand"):
        BatchSolver._check_bounded(np, tensor)


# ---------------------------------------------------------------------------
# Cache interop
# ---------------------------------------------------------------------------


def _grid(n=6):
    return [[Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=64 * (i + 1),
                  requesters=11)] for i in range(n)]


def test_vector_fills_cache_scalar_hits(testbed):
    grid = _grid()
    vector = BatchSolver().solve(testbed, grid)
    hits = RESULT_CACHE.hits
    solver = ThroughputSolver()
    scalar = [solver.solve(Scenario(testbed, flows)) for flows in grid]
    assert RESULT_CACHE.hits - hits == len(grid)
    for s, v in zip(scalar, vector):
        assert s is v                       # the very same cached object


def test_scalar_fills_cache_vector_hits(testbed):
    grid = _grid()
    solver = ThroughputSolver()
    scalar = [solver.solve(Scenario(testbed, flows)) for flows in grid]
    hits = RESULT_CACHE.hits
    vector = BatchSolver().solve(testbed, grid)
    assert RESULT_CACHE.hits - hits == len(grid)
    for s, v in zip(scalar, vector):
        assert s is v


def test_partial_cache_solves_only_missing_points(testbed):
    grid = _grid()
    BatchSolver().solve(testbed, grid[:3])
    ENGINE_STATS.clear()
    BatchSolver().solve(testbed, grid)
    assert ENGINE_STATS.points.get("vector") == len(grid) - 3


# ---------------------------------------------------------------------------
# Engine selection and plumbing
# ---------------------------------------------------------------------------


def test_numpy_available_true_here():
    assert numpy_available()


def test_solve_batch_rejects_unknown_engine(testbed):
    with pytest.raises(ValueError, match="unknown engine"):
        Scenario.solve_batch(testbed, _grid(), engine="turbo")


def test_solve_batch_engines_agree(testbed):
    grid = _grid()
    scalar = Scenario.solve_batch(testbed, grid, engine="scalar",
                                  use_cache=False)
    vector = Scenario.solve_batch(testbed, grid, engine="vector",
                                  use_cache=False)
    for s, v in zip(scalar, vector):
        assert s.rates == v.rates


def test_runner_engine_selection(testbed):
    assert SweepRunner(testbed).engine_for(10) == "vector"
    assert SweepRunner(testbed).engine_for(1) == "scalar"
    assert SweepRunner(testbed, engine="scalar").engine_for(10) == "scalar"
    with pytest.warns(DeprecationWarning, match="vectorized"):
        assert SweepRunner(testbed, vectorized=True).engine == "vector"
    with pytest.warns(DeprecationWarning, match="vectorized"):
        assert SweepRunner(testbed, vectorized=False).engine == "scalar"
    with pytest.raises(ValueError, match="unknown engine"):
        SweepRunner(testbed, engine="turbo")


def test_runner_vector_matches_scalar_solve_flows(testbed):
    flows = [Flow(path=CommPath.SNIC2, op=Opcode.WRITE, payload=p,
                  requesters=11) for p in (64, 1024, 16 * KB)]
    vector = SweepRunner(testbed, engine="vector").solve_flows(flows)
    clear_all()
    scalar = SweepRunner(testbed, engine="scalar").solve_flows(flows)
    for s, v in zip(scalar, vector):
        assert s.rates == v.rates
        assert s.bottlenecks == v.bottlenecks


def test_engine_stats_record_both_backends(testbed):
    flows = [Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=p)
             for p in (64, 128, 256)]
    SweepRunner(testbed, engine="vector").solve_flows(flows)
    clear_all()
    SweepRunner(testbed, engine="scalar").solve_flows(flows)
    counters = ENGINE_STATS.counters()
    assert counters["engine.vector.points"] == 3
    assert counters["engine.scalar.points"] == 3
    assert counters["engine.vector.batches"] == 1


def test_stage_timings_collected(testbed):
    timings = StageTimings()
    runner = SweepRunner(testbed, engine="vector", timings=timings)
    flows = [Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=p)
             for p in (64, 256)]
    runner.solve_flows(flows)
    assert timings.seconds["demand_assembly"] > 0
    assert timings.seconds["solve"] > 0
    report = timings.report()
    assert "demand_assembly" in report and "total" in report
