"""Stochastic user populations: sampling, purity, tenant expansion."""

import pytest

from repro.workloads.population import (PopulationSample, PopulationSpec,
                                        RandomVar, sample_population)

_DURATION = 200_000.0


def _cohorts():
    return (
        PopulationSpec(name="web", tenants=5,
                       active_users=RandomVar("normal", 1000, std=200,
                                              lo=100),
                       req_per_min=RandomVar("poisson", 600),
                       payload=512, slo_p99_ns=60_000.0),
        PopulationSpec(name="bulk", tenants=2,
                       active_users=RandomVar.fixed(500),
                       req_per_min=RandomVar.fixed(240),
                       payload=65536, read_fraction=0.0, bulk=True,
                       slo_p99_ns=250_000.0),
    )


def test_randomvar_validation():
    with pytest.raises(ValueError):
        RandomVar("zipf", 10.0)
    with pytest.raises(ValueError):
        RandomVar("normal", -1.0)
    with pytest.raises(ValueError):
        RandomVar("normal", 1.0, std=-0.5)
    with pytest.raises(ValueError):
        RandomVar("fixed", 1.0, lo=5.0, hi=2.0)


def test_randomvar_clamps_and_roundtrips():
    var = RandomVar("normal", 10.0, std=100.0, lo=0.0, hi=20.0)
    rng = __import__("random").Random(0)
    draws = [var.sample(rng) for _ in range(200)]
    assert all(0.0 <= d <= 20.0 for d in draws)
    assert RandomVar.from_dict(var.to_dict()) == var
    # Bare numbers parse as fixed variables.
    assert RandomVar.from_dict(7) == RandomVar.fixed(7.0)


def test_sample_population_expands_cohorts():
    sample = sample_population(_cohorts(), seed=3, duration_ns=_DURATION)
    assert isinstance(sample, PopulationSample)
    assert len(sample.tenants) == 7
    names = [t.name for t in sample.tenants]
    assert names == ["web000", "web001", "web002", "web003", "web004",
                     "bulk000", "bulk001"]
    assert set(sample.users) == set(names)
    assert sample.total_users == sum(sample.users.values())
    assert sample.offered_rps > 0
    # Fixed cohort: interval is exactly 60e9 / (users × req/min).
    bulk = next(t for t in sample.tenants if t.name == "bulk000")
    assert sample.users["bulk000"] == 500
    assert bulk.interval_ns == pytest.approx(60e9 / (500 * 240))
    assert bulk.requests == max(1, int(_DURATION / bulk.interval_ns))
    assert bulk.bulk and bulk.mix.write == 1.0


def test_sample_population_is_pure():
    a = sample_population(_cohorts(), seed=11, duration_ns=_DURATION)
    b = sample_population(_cohorts(), seed=11, duration_ns=_DURATION)
    assert a == b
    c = sample_population(_cohorts(), seed=12, duration_ns=_DURATION)
    assert c != a


def test_ingress_applies_to_non_bulk_only():
    sample = sample_population(_cohorts(), seed=0, duration_ns=_DURATION,
                               ingress_ns=10_000.0)
    for tenant in sample.tenants:
        expected = 0.0 if tenant.bulk else 10_000.0
        assert tenant.ingress_ns == expected


def test_sample_population_rejects_bad_input():
    with pytest.raises(ValueError):
        sample_population(_cohorts(), seed=0, duration_ns=0.0)
    dupes = (_cohorts()[0], _cohorts()[0])
    with pytest.raises(ValueError):
        sample_population(dupes, seed=0, duration_ns=_DURATION)
    with pytest.raises(ValueError):
        PopulationSpec(name="x", tenants=0,
                       active_users=RandomVar.fixed(1),
                       req_per_min=RandomVar.fixed(1))


def test_population_spec_roundtrips():
    for spec in _cohorts():
        assert PopulationSpec.from_dict(spec.to_dict()) == spec
