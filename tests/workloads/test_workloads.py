"""Tests for workload generators."""

import random

import pytest

from repro.core.paths import Opcode
from repro.hw.memory.address import AddressRegion
from repro.units import GB, KB, MB
from repro.workloads import (
    FIG4_PAYLOADS,
    FIG7_RANGES,
    FIG8_PAYLOADS,
    OpMix,
    RangeLimitedPattern,
    RequestStream,
    UniformPattern,
    ZipfPattern,
    power_of_two_sweep,
)


def test_power_of_two_sweep():
    assert power_of_two_sweep(16, 128) == [16, 32, 64, 128]
    assert power_of_two_sweep(16, 100) == [16, 32, 64]
    with pytest.raises(ValueError):
        power_of_two_sweep(0, 16)
    with pytest.raises(ValueError):
        power_of_two_sweep(32, 16)


def test_paper_grids_shape():
    assert FIG4_PAYLOADS[0] == 16 and FIG4_PAYLOADS[-1] == 16 * KB
    assert FIG7_RANGES[0] == 1536 and FIG7_RANGES[-1] == 10 * GB
    assert any(p > 9 * MB for p in FIG8_PAYLOADS)  # reaches the collapse


def test_uniform_pattern_range():
    region = AddressRegion(0, 1 * MB)
    pattern = UniformPattern(region, payload=64, rng=random.Random(0))
    for _ in range(100):
        addr = pattern.next()
        assert 0 <= addr <= 1 * MB - 64
    assert pattern.effective_range == 1 * MB


def test_range_limited_pattern_confines_accesses():
    region = AddressRegion(0, 1 * MB)
    pattern = RangeLimitedPattern(region, payload=64, range_bytes=1536,
                                  rng=random.Random(0))
    assert pattern.effective_range == 1536
    for _ in range(100):
        assert pattern.next() <= 1536 - 64
    with pytest.raises(ValueError):
        RangeLimitedPattern(region, 64, range_bytes=2 * MB)


def test_zipf_pattern_is_skewed():
    region = AddressRegion(0, 1 * MB)
    pattern = ZipfPattern(region, payload=64, theta=0.99, slots=1024,
                          rng=random.Random(0))
    counts = {}
    for _ in range(5000):
        addr = pattern.next()
        counts[addr] = counts.get(addr, 0) + 1
    top = max(counts.values())
    assert top > 5000 * 0.05          # hottest slot dominates
    assert pattern.effective_range < 1024 * 64 * 0.5


def test_zipf_validation():
    region = AddressRegion(0, 1 * MB)
    with pytest.raises(ValueError):
        ZipfPattern(region, 64, theta=0)
    with pytest.raises(ValueError):
        ZipfPattern(region, 1 * MB, slots=2)


def test_op_mix_sampling():
    mix = OpMix(read=1.0, write=0.0, send=0.0)
    rng = random.Random(0)
    assert all(mix.sample(rng) is Opcode.READ for _ in range(50))
    mixed = OpMix(read=0.5, write=0.3, send=0.2)
    seen = {mixed.sample(rng) for _ in range(500)}
    assert seen == {Opcode.READ, Opcode.WRITE, Opcode.SEND}


def test_op_mix_validation():
    with pytest.raises(ValueError):
        OpMix(read=0.5, write=0.2, send=0.1)
    with pytest.raises(ValueError):
        OpMix(read=1.5, write=-0.5, send=0.0)


def test_request_stream_deterministic():
    region = AddressRegion(0, 1 * MB)

    def make():
        return RequestStream(OpMix(0.5, 0.5, 0.0),
                             UniformPattern(region, 64,
                                            rng=random.Random(1)),
                             seed=7)

    assert make().take(20) == make().take(20)
    with pytest.raises(ValueError):
        make().take(-1)


def test_request_stream_shape():
    region = AddressRegion(0, 1 * MB)
    stream = RequestStream(OpMix(1.0, 0.0, 0.0),
                           UniformPattern(region, 128))
    opcode, payload, addr = next(stream)
    assert opcode is Opcode.READ
    assert payload == 128
    assert 0 <= addr < 1 * MB
