"""Tests for trace generation, serialization and replay."""

import io
import random

import pytest

from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Scenario, ThroughputSolver
from repro.hw.memory.address import AddressRegion
from repro.net.topology import paper_testbed
from repro.units import MB
from repro.workloads import OpMix, RequestStream, UniformPattern
from repro.workloads.traces import Trace, TraceRecord


def make_stream(read=0.7, write=0.3, payload=256, seed=1):
    region = AddressRegion(0, 4 * MB)
    return RequestStream(OpMix(read, write, 0.0),
                         UniformPattern(region, payload,
                                        rng=random.Random(seed)),
                         seed=seed)


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(path="snic-1", op="read", payload=-1, address=0)
    with pytest.raises(ValueError):
        TraceRecord(path="warp", op="read", payload=0, address=0)
    record = TraceRecord(path="snic-2", op="write", payload=64, address=128)
    assert record.comm_path is CommPath.SNIC2
    assert record.opcode is Opcode.WRITE


def test_generate_and_len():
    trace = Trace.generate(make_stream(), CommPath.SNIC2, 100)
    assert len(trace) == 100
    assert all(r.path == "snic-2" for r in trace)
    with pytest.raises(ValueError):
        Trace.generate(make_stream(), CommPath.SNIC2, -1)


def test_round_trip_serialization():
    trace = Trace.generate(make_stream(), CommPath.SNIC1, 50)
    buffer = io.StringIO()
    trace.dump(buffer)
    buffer.seek(0)
    loaded = Trace.load(buffer)
    assert loaded.records == trace.records


def test_load_rejects_garbage():
    with pytest.raises(ValueError):
        Trace.load(io.StringIO("not json\n"))
    with pytest.raises(ValueError):
        Trace.load(io.StringIO('{"path": "snic-1"}\n'))  # missing fields


def test_load_skips_blank_lines():
    trace = Trace.generate(make_stream(), CommPath.SNIC1, 3)
    buffer = io.StringIO()
    trace.dump(buffer)
    text = buffer.getvalue() + "\n\n"
    assert len(Trace.load(io.StringIO(text))) == 3


def test_summarize_and_footprint():
    trace = Trace([
        TraceRecord("snic-1", "read", 64, 0),
        TraceRecord("snic-1", "read", 64, 1000),
        TraceRecord("snic-2", "write", 256, 4096),
    ])
    summary = trace.summarize()
    assert summary[("snic-1", "read", 64)] == 2
    assert summary[("snic-2", "write", 256)] == 1
    assert trace.footprint() == 4096 + 256
    assert Trace().footprint() == 0


def test_as_flows_weights_sum_to_shares():
    trace = Trace.generate(make_stream(read=0.7, write=0.3),
                           CommPath.SNIC2, 1000)
    flows = trace.as_flows()
    assert len(flows) == 2
    assert sum(f.weight for f in flows) == pytest.approx(1.0)
    reads = next(f for f in flows if f.op is Opcode.READ)
    assert 0.6 <= reads.weight <= 0.8


def test_as_flows_min_share_folds_rare_classes():
    records = ([TraceRecord("snic-1", "read", 64, 0)] * 99
               + [TraceRecord("snic-1", "write", 64, 0)])
    flows = Trace(records).as_flows(min_share=0.05)
    assert len(flows) == 1
    assert flows[0].op is Opcode.READ


def test_as_flows_validation():
    with pytest.raises(ValueError):
        Trace().as_flows()
    one = Trace([TraceRecord("snic-1", "read", 64, 0)])
    with pytest.raises(ValueError):
        one.as_flows(min_share=1.5)


def test_trace_drives_the_solver():
    trace = Trace.generate(make_stream(payload=512), CommPath.SNIC2, 500)
    flows = trace.as_flows(requesters=8)
    result = ThroughputSolver().solve(Scenario(paper_testbed(), flows))
    assert result.total_rate > 0
    # Weighted allocation: rates proportional to trace shares.
    ratio = result.rates[0] / result.rates[1]
    share_ratio = flows[0].weight / flows[1].weight
    assert ratio == pytest.approx(share_ratio, rel=0.01)
