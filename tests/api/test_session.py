"""Tests for the :class:`repro.api.Session` facade."""

import pytest

from repro import CommPath, Opcode, RunOptions, Session
from repro.core.latency import LatencyModel
from repro.net.topology import paper_testbed
from repro.units import GB, MB


@pytest.fixture(scope="module")
def session():
    return Session()


def test_importable_from_both_roots():
    import repro
    import repro.api

    assert repro.Session is repro.api.Session
    assert repro.RunOptions is repro.api.RunOptions


def test_string_spellings_match_enums(session):
    enum = session.latency(CommPath.SNIC1, Opcode.READ, 64)
    for path in ("snic-1", "SNIC1", "1"):
        for op in ("read", "READ"):
            assert session.latency(path, op, 64).total == enum.total


def test_unknown_spellings_raise(session):
    with pytest.raises(ValueError, match="unknown path"):
        session.latency("snic-9", "read", 64)
    with pytest.raises(ValueError, match="unknown op"):
        session.latency("snic-1", "fetch", 64)


def test_latency_matches_model(session):
    direct = LatencyModel(paper_testbed()).latency(
        CommPath.SNIC2, Opcode.WRITE, 4096)
    assert session.latency("2", "write", 4096).total == direct.total


def test_throughput_point(session):
    result = session.throughput("1", "read", 0, requesters=11)
    assert result.mrps_of(0) == pytest.approx(195, rel=0.01)


def test_sweeps_run_through_the_session_options():
    session = Session(options=RunOptions(engine="scalar"))
    sweep = session.throughput_sweep("1", "read", [64, 512, 4096])
    assert sweep.xs() == [64, 512, 4096]
    lat = session.latency_sweep("2", "read", [64, 4096])
    assert len(lat.points) == 2
    assert all(v > 0 for v in lat.values())


def test_benches_are_lazy_and_cached(session):
    assert session.throughput_bench is session.throughput_bench
    assert session.latency_bench is session.latency_bench
    assert session.advisor is session.advisor


def test_advise_from_kwargs(session):
    plan = session.advise(payload=256, read_fraction=0.9,
                          working_set_bytes=8 * GB)
    assert plan.one_sided_path is CommPath.SNIC2


def test_advise_rejects_profile_and_kwargs(session):
    from repro.core.advisor import WorkloadProfile

    with pytest.raises(ValueError, match="not both"):
        session.advise(WorkloadProfile(payload=64), payload=64)


def test_trace_runs_the_des_datapath(session):
    tracer = session.trace("1", "read", 64)
    assert len(tracer) == 1


def test_serve_runs_the_scheduler(session):
    from repro.sched import mixed_tenant_workload

    report = session.serve(mixed_tenant_workload(duration_ns=100_000.0))
    assert report.adaptive
    assert report.lost == 0
    assert set(report.tenants) == {"alpha", "beta", "delta", "gamma"}
