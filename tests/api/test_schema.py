"""The declarative cluster-scenario schema: validation and round-trips."""

import json
import pathlib

import pytest

from repro.api.schema import (ClusterScenario, MachineDoc, SchedulerDoc,
                              SchemaError, TenantDoc)
from repro.workloads.population import PopulationSpec, RandomVar

_EXAMPLE = (pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "rack_scenario.json")


def _scenario(**overrides):
    base = dict(
        name="mini",
        duration_ns=100_000.0,
        machines=(MachineDoc(name="m", count=2),),
        tenants=(TenantDoc(name="t0", payload=512, interval_ns=2_000.0,
                           requests=10),),
    )
    base.update(overrides)
    return ClusterScenario(**base)


def test_machine_groups_expand():
    doc = MachineDoc(name="web", nic="snic", count=3)
    assert [m.name for m in doc.expand()] == ["web00", "web01", "web02"]
    solo = MachineDoc(name="edge", nic="rnic")
    assert [m.name for m in solo.expand()] == ["edge"]


def test_scenario_roundtrips_through_json():
    scenario = _scenario(
        populations=(PopulationSpec(
            name="pop", tenants=3,
            active_users=RandomVar("normal", 100, std=10),
            req_per_min=RandomVar.fixed(60)),),
    )
    again = ClusterScenario.from_json(scenario.to_json())
    assert again == scenario


def test_schema_errors_carry_json_paths():
    with pytest.raises(SchemaError, match="machines"):
        _scenario(machines=())
    with pytest.raises(SchemaError, match="populations"):
        _scenario(tenants=())
    with pytest.raises(SchemaError, match="engine"):
        _scenario(engine="warp")
    with pytest.raises(SchemaError, match="lb_latency_ns"):
        _scenario(lb_latency_ns=50_000.0)  # exceeds link_latency_ns
    with pytest.raises(SchemaError, match="lb_name"):
        _scenario(machines=(MachineDoc(name="lb"),))
    with pytest.raises(SchemaError, match=r"tenants\[0\].machine"):
        _scenario(tenants=(TenantDoc(name="t0", payload=512,
                                     interval_ns=2_000.0, requests=10,
                                     machine="nope"),))
    with pytest.raises(SchemaError, match="scheduler.placement"):
        SchedulerDoc(placement="random")
    with pytest.raises(SchemaError, match="unknown field"):
        ClusterScenario.from_dict({"name": "x", "duration_ns": 1.0,
                                   "machines": [{"name": "m"}],
                                   "tenants": [], "typo_field": 1})


def test_expanded_name_collisions_rejected():
    with pytest.raises(SchemaError, match="collide"):
        _scenario(machines=(MachineDoc(name="m", count=2),
                            MachineDoc(name="m00")))


def test_ingress_is_one_lb_round_trip():
    scenario = _scenario(lb_latency_ns=4_000.0)
    assert scenario.ingress_ns == 8_000.0
    spec = scenario.tenants[0].to_spec(ingress_ns=scenario.ingress_ns)
    assert spec.ingress_ns == 8_000.0
    bulk = TenantDoc(name="b", payload=65536, interval_ns=4_500.0,
                     requests=10, bulk=True)
    assert bulk.to_spec(ingress_ns=8_000.0).ingress_ns == 0.0


def test_canonical_rack_scenario_parses_at_acceptance_scale():
    scenario = ClusterScenario.from_file(_EXAMPLE)
    machines = scenario.machine_specs()
    assert len(machines) >= 12
    assert {m.nic for m in machines} == {"snic", "rnic"}
    assert sum(p.tenants for p in scenario.populations) >= 100
    # The canonical document must stand for >= 1M simulated users.
    from repro.workloads.population import sample_population
    sample = sample_population(scenario.populations,
                               scenario.population_seed,
                               scenario.duration_ns,
                               ingress_ns=scenario.ingress_ns)
    assert sample.total_users >= 1_000_000
    # And survive a save/load round trip.
    with open(_EXAMPLE) as handle:
        raw = json.load(handle)
    assert ClusterScenario.from_dict(raw) == scenario
    assert ClusterScenario.from_json(scenario.to_json()) == scenario
