"""Tests for the normalized run-options dataclass."""

import argparse

import pytest

from repro.core.options import RunOptions
from repro.core.sweeps import SweepRunner
from repro.net.topology import paper_testbed


def test_defaults():
    options = RunOptions()
    assert options.engine == "auto"
    assert options.jobs == 0
    assert options.cache
    assert options.disk_cache is None
    assert not options.profile


def test_validation():
    with pytest.raises(ValueError, match="unknown engine"):
        RunOptions(engine="quantum")
    with pytest.raises(ValueError, match="jobs"):
        RunOptions(jobs=-1)


def test_runner_carries_the_options():
    runner = RunOptions(engine="scalar", jobs=0).runner(paper_testbed())
    assert isinstance(runner, SweepRunner)
    assert runner.engine == "scalar"
    assert runner.jobs == 0
    assert runner.timings is None


def test_profile_attaches_timings():
    runner = RunOptions(profile=True).runner(paper_testbed())
    assert runner.timings is not None


def test_argparse_round_trip():
    parser = argparse.ArgumentParser()
    RunOptions.add_arguments(parser)
    args = parser.parse_args(["--jobs", "2", "--engine", "scalar",
                              "--no-cache", "--profile"])
    options = RunOptions.from_args(args)
    assert options == RunOptions(engine="scalar", jobs=2, cache=False,
                                 profile=True)


def test_from_args_tolerates_missing_attributes():
    options = RunOptions.from_args(argparse.Namespace())
    assert options == RunOptions()
