"""Tests for the RNIC and SmartNIC device wiring."""

import pytest

from repro.sim import Simulator
from repro.nic import (
    BLUEFIELD2,
    BLUEFIELD3,
    CONNECTX4,
    CONNECTX6,
    RNIC,
    SmartNIC,
)
from repro.nic.core import Endpoint
from repro.nic.specs import DoorbellCosts
from repro.units import GB, to_gbps


def test_bluefield2_matches_table1():
    spec = BLUEFIELD2
    assert spec.cores.ports == 2 and spec.cores.port_gbps == 100.0
    assert to_gbps(spec.pcie1.bandwidth) == pytest.approx(256.0)
    assert spec.host_mps == 512 and spec.soc_mps == 128
    assert spec.soc_cpu.total_cores == 8
    assert 150.0 <= spec.switch_hop_ns <= 200.0


def test_smartnic_soc_dram_is_16gb():
    assert SmartNIC(BLUEFIELD2).soc.dram_bytes == 16 * GB


def test_mps_depends_on_endpoint():
    snic = SmartNIC(BLUEFIELD2)
    assert snic.mps_for(Endpoint.HOST) == 512
    assert snic.mps_for(Endpoint.SOC) == 128


def test_crossings_host_vs_soc():
    snic = SmartNIC(BLUEFIELD2)
    assert snic.pcie_crossings_to(Endpoint.HOST) == 2
    assert snic.pcie_crossings_to(Endpoint.SOC) == 1
    assert (snic.crossing_latency(Endpoint.SOC)
            < snic.crossing_latency(Endpoint.HOST))


def test_rnic_single_crossing():
    rnic = RNIC(CONNECTX6)
    assert rnic.pcie_crossings_to_host() == 1
    assert rnic.host_mps == 512


def test_memory_of_endpoint():
    snic = SmartNIC(BLUEFIELD2)
    assert snic.memory_of(Endpoint.HOST).ddio
    assert not snic.memory_of(Endpoint.SOC).ddio


def test_route_requires_instantiation():
    snic = SmartNIC(BLUEFIELD2)
    with pytest.raises(RuntimeError):
        snic.route_to(Endpoint.HOST)
    rnic = RNIC(CONNECTX6)
    with pytest.raises(RuntimeError):
        rnic.route_to_host()


def test_instantiated_routes():
    sim = Simulator()
    snic = SmartNIC(BLUEFIELD2).instantiate(sim)
    to_host = snic.route_to(Endpoint.HOST)
    to_soc = snic.route_to(Endpoint.SOC)
    assert len(to_host) == 3  # pcie1, switch, pcie0
    assert len(to_soc) == 2   # pcie1, switch only


def test_host_to_soc_route_crosses_pcie1_twice():
    sim = Simulator()
    snic = SmartNIC(BLUEFIELD2).instantiate(sim)
    route = snic.route_host_to_soc()
    pcie1_hops = [h for h in route
                  if getattr(h, "link", None) is snic.pcie1]
    assert len(pcie1_hops) == 2
    directions = {h.forward for h in pcie1_hops}
    assert directions == {True, False}  # in and out


def test_route_dma_executes():
    sim = Simulator()
    snic = SmartNIC(BLUEFIELD2).instantiate(sim)
    done = snic.dma.dma_write(snic.route_host_to_soc(), nbytes=4096,
                              mps=snic.mps_for(Endpoint.SOC))
    sim.run()
    assert done.processed
    assert snic.pcie1.tlps_rev.total == 32
    assert snic.pcie1.tlps_fwd.total == 32


def test_connectx4_is_single_port_gen3():
    assert CONNECTX4.cores.ports == 1
    assert to_gbps(CONNECTX4.host_link.bandwidth) == pytest.approx(128.0)


def test_bluefield3_scales_up():
    assert BLUEFIELD3.cores.network_bandwidth > BLUEFIELD2.cores.network_bandwidth
    assert BLUEFIELD3.pcie1.bandwidth > BLUEFIELD2.pcie1.bandwidth


def test_doorbell_cost_model_validation():
    with pytest.raises(ValueError):
        DoorbellCosts(per_request=0, batch_fixed=1, per_wqe=1)
    db = DoorbellCosts(per_request=100, batch_fixed=400, per_wqe=20)
    with pytest.raises(ValueError):
        db.batched_cost_per_request(0)


def test_doorbell_speedup_matches_fig10b_soc_side():
    db = BLUEFIELD2.soc_doorbell
    # S3.3 Advice #4: 2.7x at batch 16 up to 4.6x at batch 80.
    assert db.speedup(16) == pytest.approx(2.7, rel=0.02)
    assert db.speedup(80) == pytest.approx(4.6, rel=0.02)
    assert db.speedup(32) > db.speedup(16)


def test_doorbell_regression_matches_fig10b_host_side():
    db = BLUEFIELD2.host_doorbell
    # S3.3 Advice #4: DB *decreases* host-side throughput by 9/7/6 %.
    assert db.speedup(16) == pytest.approx(1 / 1.099, rel=0.02)
    assert db.speedup(32) == pytest.approx(1 / 1.07, rel=0.02)
    assert db.speedup(48) == pytest.approx(1 / 1.064, rel=0.02)
