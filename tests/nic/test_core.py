"""Tests for NIC core capacity models: partitioning and HOL blocking."""

import pytest

from repro.nic import BLUEFIELD2, NICCores
from repro.nic.core import Endpoint
from repro.units import MB, KB, to_mpps

CORES = NICCores(BLUEFIELD2.cores)


def test_read_capacity_host_only():
    rate = CORES.verb_capacity({Endpoint.HOST}, "read")
    assert to_mpps(rate) == pytest.approx(195.0)


def test_read_capacity_soc_only_is_lower():
    # S3.2: "SoC can only utilize a portion of NIC cores".
    rate = CORES.verb_capacity({Endpoint.SOC}, "read")
    assert to_mpps(rate) == pytest.approx(157.0)


def test_read_capacity_concurrent_unlocks_reserved_cores():
    both = CORES.verb_capacity({Endpoint.HOST, Endpoint.SOC}, "read")
    host = CORES.verb_capacity({Endpoint.HOST}, "read")
    soc = CORES.verb_capacity({Endpoint.SOC}, "read")
    # S4: concurrent is 4-13 % above either path alone...
    assert 1.04 <= both / host <= 1.13
    assert 1.05 <= both / soc <= 1.40
    # ...but far below the sum of separately measured peaks (352 vs 195).
    assert both < 0.7 * (host + soc)


def test_write_capacity_is_almost_flat():
    # S4: "For WRITE, all results are almost the same" — concurrent use
    # buys under 3 % over the host path alone.
    host = CORES.verb_capacity({Endpoint.HOST}, "write")
    both = CORES.verb_capacity({Endpoint.HOST, Endpoint.SOC}, "write")
    assert 1.0 <= both / host <= 1.03


def test_verb_capacity_validation():
    with pytest.raises(ValueError):
        CORES.verb_capacity(set(), "read")
    with pytest.raises(ValueError):
        CORES.verb_capacity({Endpoint.HOST}, "atomic")


def test_verb_ops_per_request_counts_network_packets():
    assert CORES.verb_ops_per_request(0) == 1
    assert CORES.verb_ops_per_request(64) == 1
    assert CORES.verb_ops_per_request(4096) == 1
    assert CORES.verb_ops_per_request(4097) == 2
    assert CORES.verb_ops_per_request(64 * KB) == 16
    with pytest.raises(ValueError):
        CORES.verb_ops_per_request(-1)


def test_hol_collapse_above_9mb_with_nonposted_leg():
    # S3.2 Advice #2: READ to SoC collapses above 9 MB.
    ok = CORES.dma_pps_capacity(8 * MB, nonposted_leg=True)
    collapsed = CORES.dma_pps_capacity(10 * MB, nonposted_leg=True)
    assert to_mpps(ok) == pytest.approx(330.0)
    assert to_mpps(collapsed) == pytest.approx(120.0)
    assert CORES.hol_collapsed(10 * MB, nonposted_leg=True)
    assert not CORES.hol_collapsed(8 * MB, nonposted_leg=True)


def test_posted_only_flows_never_collapse():
    # WRITE to SoC stays fine at any size: "DMA does not wait for the
    # completion" (S3.2).
    assert not CORES.hol_collapsed(64 * MB, nonposted_leg=False)


def test_s2h_collapses_earlier_than_h2s():
    # S3.3: "the performance of S2H collapses earlier than H2S".
    payload = 4 * MB
    assert CORES.hol_collapsed(payload, nonposted_leg=True, s2h=True)
    assert not CORES.hol_collapsed(payload, nonposted_leg=True, s2h=False)


def test_dma_pps_validation():
    with pytest.raises(ValueError):
        CORES.dma_pps_capacity(-1, nonposted_leg=True)


def test_network_goodput_is_sub_nominal():
    spec = BLUEFIELD2.cores
    goodput = spec.network_goodput(4096)
    assert goodput < spec.network_bandwidth
    # ~190 Gbps of 200 Gbps at 4 KB (Fig 5b "same direction" bars).
    from repro.units import to_gbps
    assert 185 < to_gbps(goodput) < 195


def test_network_goodput_small_payloads_pay_headers():
    spec = BLUEFIELD2.cores
    assert spec.network_goodput(64) < 0.7 * spec.network_goodput(4096)
    with pytest.raises(ValueError):
        spec.network_goodput(0)
