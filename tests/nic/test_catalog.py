"""Tests for the SmartNIC catalog and dict-based spec loading."""

import pytest

from repro.core.flows import ConcurrencyAnalyzer
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.net.topology import Testbed, paper_testbed
from repro.nic.catalog import CATALOG, STINGRAY_PS225, lookup, spec_from_dict
from repro.nic.rnic import RNIC
from repro.nic.smartnic import SmartNIC
from repro.nic.specs import BLUEFIELD2, CONNECTX6
from repro.units import KB, to_gbps, to_mpps

from dataclasses import replace


def stingray_testbed() -> Testbed:
    return replace(paper_testbed(), snic=SmartNIC(STINGRAY_PS225))


def test_catalog_contents():
    assert set(CATALOG) == {"bluefield-2", "bluefield-3", "stingray-ps225"}
    assert lookup("bluefield-2") is BLUEFIELD2
    with pytest.raises(KeyError):
        lookup("pensando")


def test_stingray_is_a_100g_device():
    assert to_gbps(STINGRAY_PS225.cores.network_bandwidth) == pytest.approx(100)
    assert STINGRAY_PS225.soc_cpu.total_cores == 8
    assert not STINGRAY_PS225.soc_memory.ddio


def test_stingray_keeps_the_architecture_behaviour():
    """S5: the Stingray shares Bluefield's architecture, so the same
    qualitative results hold at its own constants."""
    tb = stingray_testbed()
    solver = ThroughputSolver()
    read1 = solver.solve(Scenario(tb, [
        Flow(CommPath.SNIC1, Opcode.READ, 64)])).mrps_of(0)
    read2 = solver.solve(Scenario(tb, [
        Flow(CommPath.SNIC2, Opcode.READ, 64)])).mrps_of(0)
    assert read2 > read1  # path 2 still wins for one-sided READs
    # And the P - N budget rule moves with the constants.
    budget = ConcurrencyAnalyzer(tb).path3_budget_gbps()
    assert budget == pytest.approx(256 - 100)


def test_spec_from_dict_overrides():
    spec = spec_from_dict({
        "name": "my-nic",
        "soc_mps": 256,
        "switch_hop_ns": 150.0,
        "cores": {"port_gbps": 200.0, "verb_rate_host_only": 300.0},
    })
    assert spec.name == "my-nic"
    assert spec.soc_mps == 256
    assert spec.switch_hop_ns == 150.0
    assert to_gbps(spec.cores.network_bandwidth) == pytest.approx(400)
    assert to_mpps(spec.cores.verb_rate_host_only) == pytest.approx(300)
    # Unspecified fields inherit from Bluefield-2.
    assert spec.host_mps == BLUEFIELD2.host_mps


def test_spec_from_dict_defaults_to_base():
    spec = spec_from_dict({})
    assert spec.cores == BLUEFIELD2.cores
    assert "custom" in spec.name


def test_spec_from_dict_different_base():
    spec = spec_from_dict({"name": "fat-stingray"}, base="stingray-ps225")
    assert spec.soc_cpu.name == "stingray-a72"


def test_spec_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError):
        spec_from_dict({"mystery": 1})
    with pytest.raises(ValueError):
        spec_from_dict({"cores": {"warp_factor": 9}})


def test_custom_spec_runs_through_the_framework():
    spec = spec_from_dict({
        "name": "wide-soc",
        "soc_mps": 512,  # pretend the SoC negotiated host-class TLPs
    })
    tb = replace(paper_testbed(), snic=SmartNIC(spec))
    solver = ThroughputSolver()
    # With a 512 B SoC MTU the large-READ HOL exposure disappears.
    result = solver.solve(Scenario(tb, [
        Flow(CommPath.SNIC2, Opcode.READ, 16 << 20)]))
    assert result.gbps_of(0) > 180
