"""Arming fault plans against a live cluster."""

import pytest

from repro.faults import (FaultInjector, FaultPlan, LinkDown, NodeStall,
                          PacketLoss, SocCrash)
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.rdma.qp import QPState, QPType
from repro.sim import LOST


@pytest.fixture()
def cluster():
    return SimCluster(paper_testbed(), n_clients=1)


def test_empty_plan_touches_nothing(cluster):
    channel = cluster.channel(cluster.node("client0"))
    original_send = channel.send
    injector = cluster.install_faults(FaultPlan())
    assert cluster.fault_injector is None
    assert channel.send == original_send  # still the plain bound method
    assert injector.injected == 0


def test_unknown_link_target_rejected(cluster):
    with pytest.raises(ValueError, match="unknown fault target"):
        cluster.install_faults(FaultPlan(faults=(
            PacketLoss("net.nonexistent", 0.5),)))


def test_unknown_stall_node_rejected(cluster):
    with pytest.raises(KeyError):
        cluster.install_faults(FaultPlan(faults=(
            NodeStall("ghost", factor=2.0),)))


def test_double_install_rejected(cluster):
    injector = FaultInjector(cluster, FaultPlan())
    injector.install()
    with pytest.raises(RuntimeError):
        injector.install()


def test_link_down_window_drops_then_restores(cluster):
    cluster.install_faults(FaultPlan(faults=(
        LinkDown("net.client0", start=0.0, end=10_000.0),)))
    channel = cluster.channel(cluster.node("client0"))
    sim = cluster.sim
    results = []

    def sender():
        got = yield channel.send(64)
        results.append(("in-window", got is LOST))
        yield sim.timeout(20_000.0)
        got = yield channel.send(64)
        results.append(("after-window", got is LOST))

    sim.process(sender())
    sim.run()
    assert results == [("in-window", True), ("after-window", False)]
    assert cluster.stats["faults.injected"] == 1.0


def test_uninstall_restores_the_channel(cluster):
    channel = cluster.channel(cluster.node("client0"))
    original_send = channel.send
    injector = cluster.install_faults(FaultPlan(faults=(
        LinkDown("net.client0"),)))
    assert channel.send != original_send
    injector.uninstall()
    assert channel.send == original_send
    assert cluster.fault_injector is None


def test_packet_loss_is_seed_deterministic():
    def drops(seed: int) -> int:
        cluster = SimCluster(paper_testbed(), n_clients=1)
        cluster.install_faults(
            FaultPlan.packet_loss("net.client0", 0.5, seed=seed))
        channel = cluster.channel(cluster.node("client0"))

        def sender():
            for _ in range(50):
                yield channel.send(64)

        cluster.sim.process(sender())
        cluster.sim.run()
        return int(cluster.stats.get("faults.injected", 0))

    a, b = drops(seed=7), drops(seed=7)
    assert a == b
    assert 0 < a < 50  # i.i.d. at 50 %: neither lossless nor total


def test_dropped_transfer_still_occupies_the_wire(cluster):
    """Back-to-back sends serialize identically whether or not the
    first was dropped: the bytes burned wire time either way."""
    def second_delivery(lossy: bool) -> float:
        c = SimCluster(paper_testbed(), n_clients=1)
        if lossy:
            c.install_faults(FaultPlan(faults=(
                LinkDown("net.client0", end=1.0),)))
        channel = c.channel(c.node("client0"))
        times = []

        def sender():
            first = channel.send(1 << 20)
            second = channel.send(1 << 20)
            yield first
            yield second
            times.append(c.sim.now)

        c.sim.process(sender())
        c.sim.run()
        return times[0]

    assert second_delivery(lossy=True) == second_delivery(lossy=False)


def test_node_stall_scales_posting_latency(cluster):
    injector = cluster.install_faults(FaultPlan(faults=(
        NodeStall("soc", factor=4.0, start=1000.0, end=2000.0),)))
    soc = cluster.node("soc")
    client = cluster.node("client0")
    assert injector.cpu_factor(soc, 500.0) == 1.0
    assert injector.cpu_factor(soc, 1500.0) == 4.0
    assert injector.cpu_factor(soc, 2500.0) == 1.0
    assert injector.cpu_factor(client, 1500.0) == 1.0


def test_soc_crash_errors_its_qps_and_recovers(cluster):
    ctx = RdmaContext(cluster)
    soc_qp, host_qp = ctx.connect_rc("soc", "host")
    client_qp = ctx.create_qp("client0", QPType.RC)
    cluster.install_faults(FaultPlan(faults=(
        SocCrash(server="server0", at=5_000.0, recover_at=9_000.0),)))
    sim = cluster.sim
    seen = {}

    def probe():
        yield sim.timeout(6_000.0)
        seen["crashed"] = cluster.node("soc").crashed
        seen["soc_qp"] = soc_qp.state
        seen["host_qp"] = host_qp.state
        seen["client_qp"] = client_qp.state
        yield sim.timeout(4_000.0)
        seen["recovered"] = not cluster.node("soc").crashed

    sim.process(probe())
    sim.run()
    assert seen["crashed"]
    assert seen["soc_qp"] is QPState.ERROR
    assert seen["host_qp"] is QPState.RTS    # host side survives
    assert seen["client_qp"] is QPState.RESET  # never connected, untouched
    assert seen["recovered"]
    assert cluster.stats["faults.soc_crashes"] == 1.0
    assert cluster.stats["faults.soc_recoveries"] == 1.0


def test_crash_on_cluster_without_that_soc_rejected(cluster):
    with pytest.raises(ValueError, match="no SoC node"):
        cluster.install_faults(FaultPlan(faults=(
            SocCrash(server="server7"),)))
