"""Fault plan construction, validation, and (de)serialization."""

import json

import pytest

from repro.faults import (FaultPlan, LinkDown, LinkFlap, NodeStall,
                          PacketLoss, SocCrash)


def full_plan() -> FaultPlan:
    return FaultPlan(faults=(
        PacketLoss("net.client0", 0.01),
        LinkDown("pcie1", start=1000.0, end=2000.0),
        LinkFlap("net.server0", period=500.0, down_fraction=0.25),
        NodeStall("soc", factor=4.0, start=100.0),
        SocCrash(server="server0", at=5000.0, recover_at=9000.0),
    ), seed=42)


def test_empty_plan():
    assert FaultPlan().empty
    assert FaultPlan.packet_loss("net.client0", 0.0).empty
    assert not FaultPlan.packet_loss("net.client0", 0.5).empty


def test_round_trip_through_dict_and_json():
    plan = full_plan()
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert FaultPlan.from_json(json.dumps(plan.to_dict())) == plan


def test_from_file(tmp_path):
    plan = full_plan()
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    assert FaultPlan.from_file(path) == plan


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.from_dict({"faults": [{"kind": "meteor-strike"}]})


def test_with_faults_appends():
    plan = FaultPlan.packet_loss("net.client0", 0.1, seed=3)
    extended = plan.with_faults(SocCrash(at=100.0))
    assert len(extended.faults) == 2
    assert extended.seed == 3
    assert plan != extended  # frozen dataclasses; originals untouched


@pytest.mark.parametrize("bad", [-0.1, 1.5])
def test_loss_rate_validated(bad):
    with pytest.raises(ValueError):
        PacketLoss("net.client0", bad)


def test_stall_factor_validated():
    with pytest.raises(ValueError):
        NodeStall("soc", factor=0.5)


def test_flap_parameters_validated():
    with pytest.raises(ValueError):
        LinkFlap("net.client0", period=0.0)
    with pytest.raises(ValueError):
        LinkFlap("net.client0", period=100.0, down_fraction=1.0)


def test_crash_recovery_must_follow_crash():
    with pytest.raises(ValueError):
        SocCrash(at=100.0, recover_at=50.0)


def test_windows():
    loss = PacketLoss("net.client0", 0.5, start=100.0, end=200.0)
    assert not loss.active(50.0)
    assert loss.active(100.0)
    assert loss.active(199.9)
    assert not loss.active(200.0)
    forever = LinkDown("net.client0", start=10.0)
    assert forever.active(1e12)
    assert not forever.active(9.9)


def test_flap_phases():
    flap = LinkFlap("net.client0", period=100.0, down_fraction=0.3,
                    start=0.0)
    assert flap.active(0.0)       # down phase first
    assert flap.active(29.0)
    assert not flap.active(30.0)  # up for the rest of the period
    assert not flap.active(99.0)
    assert flap.active(100.0)     # next period, down again
