"""Tests for the two-server replicated KV store."""

import pytest

from repro.apps.kvstore import OffloadedKVClient
from repro.apps.replicated_kv import ReplicatedKV, ReplicationLogFullError
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext


@pytest.fixture()
def ctx():
    return RdmaContext(SimCluster(paper_testbed(), n_servers=2))


def settle(kv):
    proc = kv.sim.process(kv.wait_replicated())
    kv.sim.run()
    assert proc.ok
    return kv.stats


def test_requires_two_servers():
    single = RdmaContext(SimCluster(paper_testbed()))
    with pytest.raises(ValueError):
        ReplicatedKV(single)


def test_put_replicates_to_the_peer_soc(ctx):
    kv = ReplicatedKV(ctx)
    kv.put(b"user:1", b"alice")
    kv.put(b"user:2", b"bob")
    stats = settle(kv)
    assert stats.puts == stats.applied == 2
    assert kv.primary.get_local(b"user:1") == b"alice"
    assert kv.replica.get_local(b"user:1") == b"alice"
    assert kv.replica.get_local(b"user:2") == b"bob"


def test_replication_lag_is_microseconds(ctx):
    kv = ReplicatedKV(ctx)
    for i in range(10):
        kv.put(f"k{i}".encode(), b"v" * 32)
    stats = settle(kv)
    # Path 3 pull + fabric relay + apply: a few us per entry, unloaded.
    assert 1_000 < stats.lag.mean < 50_000
    assert stats.lag.max < 200_000


def test_replica_serves_offloaded_gets(ctx):
    kv = ReplicatedKV(ctx)
    kv.put(b"city", b"shanghai")
    settle(kv)
    reader = OffloadedKVClient(ctx, "client0", kv.replica)
    result = {}
    proc = ctx.cluster.sim.process(reader.get(b"city"))
    proc.add_callback(lambda e: result.setdefault("v", e.value))
    ctx.cluster.sim.run()
    assert result["v"] == b"shanghai"
    assert reader.stats.round_trips_per_get == 1


def test_budget_throttles_replication(ctx):
    kv = ReplicatedKV(ctx, budget_gbps=0.5)
    for i in range(20):
        kv.put(f"k{i}".encode(), b"v" * 1024)
    stats = settle(kv)
    unlimited = ReplicatedKV(RdmaContext(
        SimCluster(paper_testbed(), n_servers=2)), budget_gbps=None)
    for i in range(20):
        unlimited.put(f"k{i}".encode(), b"v" * 1024)
    fast = settle(unlimited)
    assert stats.lag.mean > fast.lag.mean


def test_log_wrap_when_fully_shipped(ctx):
    # 48 B entries, 40 per batch (1920 B); the log holds exactly two
    # batches, so the wrap lands on a fully shipped batch boundary.
    kv = ReplicatedKV(ctx, log_bytes=3840)
    for batch in range(4):
        for i in range(40):
            kv.put(f"key-{batch}-{i:02d}".encode(), b"v" * 24)
        settle(kv)
    assert kv.stats.applied == 160
    assert kv.replica.get_local(b"key-3-39") == b"v" * 24


def test_log_wrap_with_unshipped_entries_backpressures(ctx):
    # A throttled shipper can't keep up: once the log would wrap into
    # unshipped entries, puts park in the backlog instead of raising,
    # and everything still replicates once the shipper catches up.
    kv = ReplicatedKV(ctx, log_bytes=2048, budget_gbps=0.001)
    for i in range(200):
        kv.put(f"key-{i:03d}".encode(), b"v" * 32)
    assert kv.stats.backpressured > 0
    stats = settle(kv)
    assert stats.applied == 200
    assert kv.replica.get_local(b"key-199") == b"v" * 32


def test_oversized_entry_still_raises(ctx):
    kv = ReplicatedKV(ctx, log_bytes=1024)
    with pytest.raises(ReplicationLogFullError):
        kv.put(b"huge", b"v" * 2048)
