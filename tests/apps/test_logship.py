"""Tests for the budgeted log-shipping pipeline."""

import pytest

from repro.apps.logship import LogShipper, TokenBucket, WriterStats, client_writer
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.units import KB, MB, gbps, to_gbps


@pytest.fixture()
def ctx():
    return RdmaContext(SimCluster(paper_testbed()))


# -- token bucket ---------------------------------------------------------------


def test_token_bucket_burst_then_throttle():
    bucket = TokenBucket(rate=1.0, burst=100)  # 1 B/ns
    assert bucket.delay_for(100, now=0.0) == 0.0
    assert bucket.delay_for(50, now=0.0) == pytest.approx(50.0)


def test_token_bucket_refills_over_time():
    bucket = TokenBucket(rate=2.0, burst=100)
    bucket.delay_for(100, now=0.0)
    # 50 ns later, 100 tokens are back (capped at burst).
    assert bucket.delay_for(100, now=50.0) == 0.0


def test_token_bucket_long_run_rate():
    bucket = TokenBucket(rate=0.5, burst=10)
    now = 0.0
    consumed = 0
    for _ in range(100):
        delay = bucket.delay_for(10, now)
        now += delay
        consumed += 10
    assert consumed / now == pytest.approx(0.5, rel=0.05)


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate=0, burst=10)
    with pytest.raises(ValueError):
        TokenBucket(rate=1, burst=0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1, burst=1).delay_for(-1, 0.0)


# -- shipper ------------------------------------------------------------------------


def test_ship_moves_log_segments(ctx):
    host_log = ctx.reg_mr("host", 4 * MB)
    host_log.write_local(0, b"log-entry-0!")
    shipper = LogShipper(ctx, host_log, segment_bytes=1 * MB,
                         budget_gbps=None)
    proc = ctx.cluster.sim.process(shipper.ship(4 * MB))
    ctx.cluster.sim.run()
    assert proc.ok
    assert shipper.stats.segments == 4
    assert shipper.stats.shipped_bytes == 4 * MB
    assert shipper.staging.read_local(0, 12) is not None


def test_budget_throttles_shipping(ctx):
    host_log = ctx.reg_mr("host", 8 * MB)
    sim = ctx.cluster.sim

    fast = LogShipper(ctx, host_log, segment_bytes=1 * MB, budget_gbps=None)
    start = sim.now
    proc = sim.process(fast.ship(8 * MB))
    sim.run()
    fast_elapsed = sim.now - start
    assert proc.ok

    slow = LogShipper(ctx, host_log, segment_bytes=1 * MB, budget_gbps=10.0)
    start = sim.now
    proc = sim.process(slow.ship(8 * MB))
    sim.run()
    slow_elapsed = sim.now - start
    assert proc.ok
    assert slow.stats.throttle_waits > 0
    # 8 MB at 10 Gbps takes ~6.7 ms; unbudgeted runs at path-3 speed.
    assert slow_elapsed > 2 * fast_elapsed
    budgeted_goodput = to_gbps(slow.stats.goodput(slow_elapsed))
    assert budgeted_goodput == pytest.approx(10.0, rel=0.20)


def test_compression_cost_slows_shipping(ctx):
    host_log = ctx.reg_mr("host", 2 * MB)
    sim = ctx.cluster.sim
    plain = LogShipper(ctx, host_log, budget_gbps=None)
    start = sim.now
    sim.process(plain.ship(2 * MB))
    sim.run()
    plain_elapsed = sim.now - start

    heavy = LogShipper(ctx, host_log, budget_gbps=None,
                       compress_ns_per_kb=50.0)
    start = sim.now
    sim.process(heavy.ship(2 * MB))
    sim.run()
    assert sim.now - start > plain_elapsed


def test_ship_validation(ctx):
    host_log = ctx.reg_mr("host", 1 * MB)
    with pytest.raises(ValueError):
        LogShipper(ctx, host_log, segment_bytes=0)
    with pytest.raises(ValueError):
        LogShipper(ctx, host_log, budget_gbps=0)
    with pytest.raises(ValueError):
        LogShipper(ctx, host_log, compress_ns_per_kb=-1)
    shipper = LogShipper(ctx, host_log)
    with pytest.raises(ValueError):
        next(shipper.ship(0))
    with pytest.raises(ValueError):
        next(shipper.ship(2 * MB))


# -- writers + shipper interference ----------------------------------------------------


def test_client_writer_streams_into_log(ctx):
    host_log = ctx.reg_mr("host", 1 * MB)
    stats = WriterStats()
    proc = ctx.cluster.sim.process(
        client_writer(ctx, "client0", host_log, payload=4 * KB, count=50,
                      stats=stats))
    ctx.cluster.sim.run()
    assert proc.ok
    assert stats.writes == 50
    assert stats.bytes_written == 200 * KB


def test_unbudgeted_shipping_slows_client_writes(ctx):
    """The S4 anomaly end-to-end on the simulation: path-3 traffic
    sharing PCIe1 stretches the clients' write stream."""
    sim = ctx.cluster.sim
    host_log = ctx.reg_mr("host", 16 * MB)

    def run_writers(with_shipper_budget):
        stats = WriterStats()
        writer = sim.process(client_writer(
            ctx, "client0", host_log, payload=64 * KB, count=40,
            stats=stats))
        finished = {}
        writer.add_callback(lambda _e: finished.setdefault("at", sim.now))
        shipper = LogShipper(ctx, host_log, segment_bytes=1 * MB,
                             budget_gbps=with_shipper_budget)
        shipping = sim.process(shipper.ship(16 * MB))
        start = sim.now
        sim.run()
        assert writer.ok and shipping.ok
        return stats.goodput(finished["at"] - start)

    baseline = run_writers(with_shipper_budget=10.0)
    contended = run_writers(with_shipper_budget=None)
    # Unbudgeted shipping steals PCIe1 from the clients' writes.
    assert contended < baseline


def test_writer_validation(ctx):
    host_log = ctx.reg_mr("host", 1 * MB)
    with pytest.raises(ValueError):
        next(client_writer(ctx, "client0", host_log, payload=0, count=1,
                           stats=WriterStats()))
