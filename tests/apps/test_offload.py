"""Tests for the bulk host->SoC offload engine."""

import pytest

from repro.apps.offload import OffloadConfig, OffloadEngine
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.units import KB, MB, to_gbps


@pytest.fixture()
def ctx():
    return RdmaContext(SimCluster(paper_testbed()))


def pull(ctx, engine, host_mr, soc_mr, nbytes):
    proc = ctx.cluster.sim.process(engine.pull(host_mr, soc_mr, nbytes))
    ctx.cluster.sim.run()
    assert proc.ok
    return engine.stats


def test_config_validation():
    with pytest.raises(ValueError):
        OffloadConfig(segment_bytes=0)
    with pytest.raises(ValueError):
        OffloadConfig(doorbell_batch=0)
    with pytest.raises(ValueError):
        OffloadConfig(inflight=0)


def test_pull_moves_data(ctx):
    host_mr = ctx.reg_mr("host", 1 * MB)
    soc_mr = ctx.reg_mr("soc", 1 * MB)
    host_mr.write_local(0, b"0123456789" * 100)
    engine = OffloadEngine(ctx, OffloadConfig(segment_bytes=256 * KB))
    stats = pull(ctx, engine, host_mr, soc_mr, 1 * MB)
    assert soc_mr.read_local(0, 1000) == host_mr.read_local(0, 1000)
    assert stats.segments == 4
    assert stats.bytes_moved == 1 * MB
    assert stats.elapsed_ns > 0


def test_pull_validation(ctx):
    host_mr = ctx.reg_mr("host", 1 * MB)
    soc_mr = ctx.reg_mr("soc", 1 * MB)
    engine = OffloadEngine(ctx)
    with pytest.raises(ValueError):
        next(engine.pull(host_mr, soc_mr, 0))
    with pytest.raises(ValueError):
        next(engine.pull(host_mr, soc_mr, 2 * MB))


def test_goodput_approaches_path3_ceiling(ctx):
    """A well-configured pull should get most of the ~200 Gbps ceiling."""
    host_mr = ctx.reg_mr("host", 16 * MB)
    soc_mr = ctx.reg_mr("soc", 16 * MB)
    engine = OffloadEngine(ctx, OffloadConfig(segment_bytes=1 * MB,
                                              doorbell_batch=16,
                                              inflight=16))
    stats = pull(ctx, engine, host_mr, soc_mr, 16 * MB)
    assert to_gbps(stats.goodput) > 140


def test_small_segments_amortize_worse_but_still_work(ctx):
    host_mr = ctx.reg_mr("host", 2 * MB)
    soc_a = ctx.reg_mr("soc", 2 * MB)
    soc_b = ctx.reg_mr("soc", 2 * MB)

    fine = OffloadEngine(ctx, OffloadConfig(segment_bytes=64 * KB,
                                            doorbell_batch=16, inflight=16))
    fine_stats = pull(ctx, fine, host_mr, soc_a, 2 * MB)

    coarse = OffloadEngine(ctx, OffloadConfig(segment_bytes=1 * MB,
                                              doorbell_batch=16, inflight=16))
    coarse_stats = pull(ctx, coarse, host_mr, soc_b, 2 * MB)
    assert fine_stats.segments > coarse_stats.segments
    assert fine_stats.goodput > 0 and coarse_stats.goodput > 0


def test_doorbell_counter(ctx):
    host_mr = ctx.reg_mr("host", 4 * MB)
    soc_mr = ctx.reg_mr("soc", 4 * MB)
    engine = OffloadEngine(ctx, OffloadConfig(segment_bytes=256 * KB,
                                              doorbell_batch=4, inflight=8))
    stats = pull(ctx, engine, host_mr, soc_mr, 4 * MB)
    assert stats.segments == 16
    assert stats.doorbells == 4  # 16 segments / batch 4
