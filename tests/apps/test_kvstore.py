"""Tests for the Fig 1 key-value store scenario."""

import pytest

from repro.apps.kvstore import (
    KVServer,
    KVStoreFullError,
    OffloadedKVClient,
    OneSidedKVClient,
)
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext


@pytest.fixture()
def ctx():
    return RdmaContext(SimCluster(paper_testbed()))


def run_get(ctx, client, key):
    result = {}
    proc = ctx.cluster.sim.process(client.get(key))
    proc.add_callback(lambda e: result.setdefault("value", e.value))
    ctx.cluster.sim.run()
    return result.get("value")


def test_server_put_get_local(ctx):
    server = KVServer(ctx, "host")
    server.put(b"k1", b"v1")
    server.put(b"k2", b"longer-value")
    assert server.get_local(b"k1") == b"v1"
    assert server.get_local(b"k2") == b"longer-value"
    assert server.get_local(b"missing") is None
    assert len(server) == 2


def test_server_update_in_place(ctx):
    server = KVServer(ctx, "host")
    server.put(b"k", b"old")
    server.put(b"k", b"new")
    assert server.get_local(b"k") == b"new"


def test_server_validation(ctx):
    with pytest.raises(ValueError):
        KVServer(ctx, "host", n_buckets=100)  # not a power of two
    server = KVServer(ctx, "host", log_bytes=128)
    with pytest.raises(ValueError):
        server.put(b"", b"v")
    with pytest.raises(KVStoreFullError):
        server.put(b"big", b"x" * 4096)


def test_one_sided_get_needs_two_round_trips(ctx):
    server = KVServer(ctx, "host")
    server.put(b"user:1", b"alice")
    client = OneSidedKVClient(ctx, "client0", server)
    assert run_get(ctx, client, b"user:1") == b"alice"
    # Fig 1(a): network amplification — 2 READs per get.
    assert client.stats.round_trips_per_get == 2.0


def test_one_sided_miss_costs_one_round_trip(ctx):
    server = KVServer(ctx, "host")
    client = OneSidedKVClient(ctx, "client0", server)
    assert run_get(ctx, client, b"missing") is None
    assert client.stats.misses == 1
    assert client.stats.network_round_trips == 1


def test_offloaded_get_single_round_trip(ctx):
    server = KVServer(ctx, "soc")
    server.put(b"user:1", b"alice")
    client = OffloadedKVClient(ctx, "client0", server)
    assert run_get(ctx, client, b"user:1") == b"alice"
    # Fig 1(b): one RPC, no amplification.
    assert client.stats.round_trips_per_get == 1.0


def test_offloaded_miss(ctx):
    server = KVServer(ctx, "soc")
    client = OffloadedKVClient(ctx, "client0", server)
    assert run_get(ctx, client, b"nope") is None
    assert client.stats.misses == 1


def test_offloaded_requires_soc_store(ctx):
    host_server = KVServer(ctx, "host")
    with pytest.raises(ValueError):
        OffloadedKVClient(ctx, "client0", host_server)


def test_offload_beats_one_sided_latency(ctx):
    """The paper's Fig 1 point: offloading kills the second round trip."""
    host_store = KVServer(ctx, "host")
    soc_store = KVServer(ctx, "soc")
    for store in (host_store, soc_store):
        store.put(b"key", b"value-123")
    one_sided = OneSidedKVClient(ctx, "client0", host_store)
    offloaded = OffloadedKVClient(ctx, "client1", soc_store)
    assert run_get(ctx, one_sided, b"key") == b"value-123"
    assert run_get(ctx, offloaded, b"key") == b"value-123"
    assert (offloaded.stats.latency.mean
            < 0.75 * one_sided.stats.latency.mean)


def test_many_keys_roundtrip(ctx):
    server = KVServer(ctx, "host", n_buckets=4096, log_bytes=1 << 20)
    client = OneSidedKVClient(ctx, "client0", server)
    keys = {f"key-{i}".encode(): f"value-{i}".encode() for i in range(200)}
    stored = {}
    for key, value in keys.items():
        bucket = server.bucket_of(key)
        if bucket in stored:  # skip hash-collided buckets in this test
            continue
        stored[bucket] = (key, value)
        server.put(key, value)
    hits = 0
    for key, value in stored.values():
        got = run_get(ctx, client, key)
        assert got == value
        hits += 1
    assert hits == len(stored) > 150
