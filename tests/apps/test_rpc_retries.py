"""Client-side retries: RPC and offloaded KV gets under lossy links."""

import pytest

from repro.apps.kvstore import KVServer, KVTimeoutError, OffloadedKVClient
from repro.apps.rpc import RpcClient, RpcServer, RpcTimeoutError
from repro.faults import FaultPlan, LinkDown
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext


def make_ctx(plan=None):
    cluster = SimCluster(paper_testbed())
    if plan is not None:
        cluster.install_faults(plan)
    return RdmaContext(cluster)


def run_call(ctx, generator):
    """Run one client generator to completion; return (value, error)."""
    result = {}

    def driver():
        try:
            result["value"] = yield from generator
        except (RpcTimeoutError, KVTimeoutError) as exc:
            result["error"] = exc

    ctx.cluster.sim.process(driver())
    ctx.cluster.sim.run()
    return result.get("value"), result.get("error")


# -- RPC ---------------------------------------------------------------------


def test_rpc_retry_rides_out_a_transient_outage():
    # The outage swallows the first request; the resend gets through.
    ctx = make_ctx(FaultPlan(faults=(LinkDown("net.client0", end=5_000.0),)))
    server = RpcServer(ctx, "host")
    client = RpcClient(ctx, "client0", server,
                       timeout_ns=50_000.0, max_retries=3)
    value, error = run_call(ctx, client.call(b"hello"))
    assert error is None
    assert value == b"hello"
    assert client.stats.timeouts == 1
    assert client.stats.calls == 1
    assert 0.0 < client.stats.timeout_rate < 1.0


def test_rpc_exhaustion_raises_timeout_error():
    ctx = make_ctx(FaultPlan(faults=(LinkDown("net.client0"),)))
    server = RpcServer(ctx, "host")
    client = RpcClient(ctx, "client0", server,
                       timeout_ns=20_000.0, max_retries=2)
    value, error = run_call(ctx, client.call(b"hello"))
    assert value is None
    assert isinstance(error, RpcTimeoutError)
    # One timeout per attempt: the original send plus both resends.
    assert client.stats.timeouts == 3
    assert client.stats.calls == 0  # never completed
    assert client.stats.timeout_rate == 1.0


def test_rpc_fault_free_reliable_client_matches_plain():
    plain_ctx = make_ctx()
    plain = RpcClient(plain_ctx, "client0", RpcServer(plain_ctx, "host"))
    armed_ctx = make_ctx()
    armed = RpcClient(armed_ctx, "client0", RpcServer(armed_ctx, "host"),
                      timeout_ns=1_000_000.0, max_retries=3)
    for client, ctx in ((plain, plain_ctx), (armed, armed_ctx)):
        value, error = run_call(ctx, client.call(b"payload"))
        assert error is None
        assert value == b"payload"
    assert armed.stats.timeouts == 0
    assert armed.stats.timeout_rate == 0.0
    # Same answer, same call count; the retry arm never fired.
    assert armed.stats.calls == plain.stats.calls == 1


def test_rpc_too_short_timeout_still_converges_via_straggler():
    # Fault-free link, but the timeout undercuts the true RTT: the
    # reply to an earlier attempt carries the same request id and is
    # accepted, so the call completes despite recorded timeouts.
    ctx = make_ctx()
    server = RpcServer(ctx, "host")
    client = RpcClient(ctx, "client0", server,
                       timeout_ns=1_000.0, max_retries=8)
    value, error = run_call(ctx, client.call(b"ping"))
    assert error is None
    assert value == b"ping"
    assert client.stats.timeouts > 0


def test_rpc_client_parameter_validation():
    ctx = make_ctx()
    server = RpcServer(ctx, "host")
    with pytest.raises(ValueError):
        RpcClient(ctx, "client0", server, timeout_ns=0.0)
    with pytest.raises(ValueError):
        RpcClient(ctx, "client0", server, timeout_ns=100.0, max_retries=-1)


# -- offloaded KV gets -------------------------------------------------------


def offloaded(ctx, **client_kwargs):
    server = KVServer(ctx, "soc")
    server.put(b"user:1", b"alice")
    return OffloadedKVClient(ctx, "client0", server, **client_kwargs)


def test_kv_get_retry_rides_out_a_transient_outage():
    ctx = make_ctx(FaultPlan(faults=(LinkDown("net.client0", end=5_000.0),)))
    client = offloaded(ctx, timeout_ns=50_000.0, max_retries=3)
    value, error = run_call(ctx, client.get(b"user:1"))
    assert error is None
    assert value == b"alice"
    assert client.stats.timeouts == 1
    assert client.stats.gets == 1


def test_kv_get_exhaustion_raises_timeout_error():
    ctx = make_ctx(FaultPlan(faults=(LinkDown("net.client0"),)))
    client = offloaded(ctx, timeout_ns=20_000.0, max_retries=1)
    value, error = run_call(ctx, client.get(b"user:1"))
    assert value is None
    assert isinstance(error, KVTimeoutError)
    assert client.stats.timeouts == 2
    assert client.stats.timeout_rate == 1.0


def test_kv_fault_free_reliable_client_matches_plain():
    plain_ctx = make_ctx()
    plain = offloaded(plain_ctx)
    armed_ctx = make_ctx()
    armed = offloaded(armed_ctx, timeout_ns=1_000_000.0, max_retries=2)
    for client, ctx in ((plain, plain_ctx), (armed, armed_ctx)):
        value, error = run_call(ctx, client.get(b"user:1"))
        assert error is None
        assert value == b"alice"
    assert armed.stats.timeouts == 0
    assert armed.stats.misses == plain.stats.misses == 0


def test_kv_reliable_miss_still_reports_none():
    ctx = make_ctx()
    client = offloaded(ctx, timeout_ns=1_000_000.0, max_retries=2)
    value, error = run_call(ctx, client.get(b"no-such-key"))
    assert error is None
    assert value is None
    assert client.stats.misses == 1
