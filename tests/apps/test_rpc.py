"""Tests for the two-sided RPC service."""

import pytest

from repro.apps.rpc import RpcClient, RpcServer
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext


@pytest.fixture()
def ctx():
    return RdmaContext(SimCluster(paper_testbed()))


def call(ctx, client, payload):
    result = {}
    proc = ctx.cluster.sim.process(client.call(payload))
    proc.add_callback(lambda e: result.setdefault("value", e.value))
    ctx.cluster.sim.run()
    return result.get("value")


def test_echo(ctx):
    server = RpcServer(ctx, "host")
    client = RpcClient(ctx, "client0", server)
    assert call(ctx, client, b"hello") == b"hello"
    assert client.stats.calls == 1
    assert server.stats.served == 1


def test_custom_handler(ctx):
    server = RpcServer(ctx, "host", handler=lambda req: req.upper())
    client = RpcClient(ctx, "client0", server)
    assert call(ctx, client, b"abc") == b"ABC"


def test_multiple_sequential_calls(ctx):
    server = RpcServer(ctx, "host")
    client = RpcClient(ctx, "client0", server)
    for i in range(5):
        assert call(ctx, client, f"msg{i}".encode()) == f"msg{i}".encode()
    assert client.stats.calls == 5
    assert len(client.stats.latency) == 5


def test_soc_server_is_slower(ctx):
    """S3.2: SEND/RECV served by the SoC has higher latency."""
    host_server = RpcServer(ctx, "host")
    soc_server = RpcServer(ctx, "soc")
    host_client = RpcClient(ctx, "client0", host_server)
    soc_client = RpcClient(ctx, "client1", soc_server)
    call(ctx, host_client, b"x" * 64)
    call(ctx, soc_client, b"x" * 64)
    assert (soc_client.stats.latency.mean
            > 1.1 * host_client.stats.latency.mean)


def test_service_time_follows_cpu_model(ctx):
    host_server = RpcServer(ctx, "host")
    soc_server = RpcServer(ctx, "soc")
    assert host_server.service_ns == ctx.cluster.node("host").cpu.two_sided_latency_ns
    assert soc_server.service_ns > host_server.service_ns


def test_two_clients_share_one_server(ctx):
    server = RpcServer(ctx, "host")
    a = RpcClient(ctx, "client0", server)
    b = RpcClient(ctx, "client1", server)
    assert call(ctx, a, b"from-a") == b"from-a"
    assert call(ctx, b, b"from-b") == b"from-b"
    assert server.stats.served == 2
