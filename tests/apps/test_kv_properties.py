"""Property-based tests on the KV store's on-disk^W in-MR layout."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.kvstore import KVServer
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext

_keys = st.binary(min_size=1, max_size=24)
_values = st.binary(min_size=0, max_size=128)


def make_server():
    ctx = RdmaContext(SimCluster(paper_testbed()))
    return KVServer(ctx, "host", n_buckets=1024, log_bytes=1 << 20)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.dictionaries(_keys, _values, min_size=1, max_size=40))
def test_put_get_roundtrip_modulo_bucket_collisions(items):
    server = make_server()
    final_owner = {}
    for key, value in items.items():
        server.put(key, value)
        # A later key landing in the same bucket evicts the earlier one.
        final_owner[server.bucket_of(key)] = (key, value)
    for key, value in items.items():
        bucket = server.bucket_of(key)
        owner_key, owner_value = final_owner[bucket]
        got = server.get_local(key)
        if owner_key == key:
            assert got == value
        # Collided keys may read as a miss (fingerprint differs) but
        # never as another key's value under a matching fingerprint.


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_keys, st.lists(_values, min_size=1, max_size=10))
def test_last_update_wins(key, versions):
    server = make_server()
    for value in versions:
        server.put(key, value)
    assert server.get_local(key) == versions[-1]


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sets(_keys, min_size=1, max_size=30))
def test_missing_keys_miss(keys):
    server = make_server()
    present = sorted(keys)[: len(keys) // 2]
    for key in present:
        server.put(key, b"here")
    taken_buckets = {server.bucket_of(k) for k in present}
    for key in keys:
        if key in present:
            continue
        if server.bucket_of(key) in taken_buckets:
            continue  # untouched buckets only: must miss
        assert server.get_local(key) is None
