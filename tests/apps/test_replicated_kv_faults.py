"""Replicated KV under SoC crashes: failover to host-side relay."""

import pytest

from repro.apps.kvstore import OffloadedKVClient
from repro.apps.replicated_kv import ReplicatedKV
from repro.faults import FaultPlan, SocCrash
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext


def crashed_kv(at, puts=60, recover_at=None, budget_gbps=0.5):
    cluster = SimCluster(paper_testbed(), n_servers=2)
    cluster.install_faults(FaultPlan(faults=(
        SocCrash(server="server0", at=at, recover_at=recover_at),)))
    ctx = RdmaContext(cluster)
    kv = ReplicatedKV(ctx, budget_gbps=budget_gbps)
    for i in range(puts):
        kv.put(f"key-{i:03d}".encode(), f"value-{i:03d}".encode() * 16)
    settle = cluster.sim.process(kv.wait_replicated())
    cluster.sim.run()
    assert settle.ok
    return kv


def assert_replica_matches_primary(kv, puts):
    for i in range(puts):
        key = f"key-{i:03d}".encode()
        assert kv.replica.get_local(key) == kv.primary.get_local(key)


def test_mid_run_crash_fails_over_and_finishes_replication():
    kv = crashed_kv(at=50_000.0, puts=60)
    assert kv.stats.failovers == 1
    assert kv.degraded
    assert kv.stats.applied == 60
    assert_replica_matches_primary(kv, 60)
    # Some entries replicated healthy, the rest through the host relay.
    assert 0 < len(kv.stats.degraded_lag) < 60
    assert kv.ctx.cluster.stats["replicated_kv.failovers"] == 1.0


def test_crash_before_first_entry_ships_degraded_from_the_start():
    kv = crashed_kv(at=1.0, puts=20)
    assert kv.stats.failovers == 1
    assert kv.stats.applied == 20
    assert len(kv.stats.degraded_lag) == 20
    assert_replica_matches_primary(kv, 20)


def test_replica_keeps_serving_offloaded_gets_after_failover():
    kv = crashed_kv(at=50_000.0, puts=40)
    reader = OffloadedKVClient(kv.ctx, "client0", kv.replica)
    result = {}
    proc = kv.sim.process(reader.get(b"key-039"))
    proc.add_callback(lambda e: result.setdefault("v", e.value))
    kv.sim.run()
    assert result["v"] == kv.primary.get_local(b"key-039")


def test_failover_is_idempotent():
    kv = crashed_kv(at=40_000.0, puts=30)
    assert kv.stats.failovers == 1
    kv._fail_over()  # a second trigger must not rebuild the relay
    assert kv.stats.failovers == 1


def test_healthy_run_never_degrades():
    cluster = SimCluster(paper_testbed(), n_servers=2)
    ctx = RdmaContext(cluster)
    kv = ReplicatedKV(ctx, budget_gbps=0.5)
    for i in range(20):
        kv.put(f"key-{i:03d}".encode(), b"v" * 64)
    settle = cluster.sim.process(kv.wait_replicated())
    cluster.sim.run()
    assert settle.ok
    assert not kv.degraded
    assert kv.stats.failovers == 0
    assert len(kv.stats.degraded_lag) == 0


def test_degraded_backlog_still_drains():
    # Tiny log + crash: backpressured puts must still replicate through
    # the host-side relay once the shipper catches up.
    cluster = SimCluster(paper_testbed(), n_servers=2)
    cluster.install_faults(FaultPlan(faults=(
        SocCrash(server="server0", at=100_000.0),)))
    ctx = RdmaContext(cluster)
    kv = ReplicatedKV(ctx, log_bytes=2048, budget_gbps=0.05)
    for i in range(120):
        kv.put(f"key-{i:03d}".encode(), b"v" * 32)
    assert kv.stats.backpressured > 0
    settle = cluster.sim.process(kv.wait_replicated())
    cluster.sim.run()
    assert settle.ok
    assert kv.stats.applied == 120
    assert kv.stats.failovers == 1
    assert_replica_matches_primary(kv, 120)
