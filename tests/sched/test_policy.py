"""Unit tests for the pure decision logic (no simulation objects)."""

import pytest

from repro.core.paths import CommPath
from repro.net.topology import paper_testbed
from repro.sched import SloSpec, TenantSpec, WindowStats
from repro.sched.policy import PathPolicy
from repro.units import GB, KB, MB
from repro.workloads import OpMix

TB = paper_testbed()


def _policy(**kwargs):
    return PathPolicy(TB, **kwargs)


def _client_spec(name="t", payload=512, interval_ns=2_000.0,
                 working_set=4 * MB, **kwargs):
    return TenantSpec(name=name, payload=payload, interval_ns=interval_ns,
                      requests=100, mix=OpMix(read=1.0, write=0.0),
                      slo=SloSpec(p99_ns=15_000.0),
                      working_set_bytes=working_set, **kwargs)


def _bulk_spec(name="bulk"):
    return TenantSpec(name=name, payload=64 * KB, interval_ns=4_500.0,
                      requests=100, mix=OpMix(read=0.0, write=1.0),
                      bulk=True, slo=SloSpec(p99_ns=120_000.0),
                      working_set_bytes=512 * MB)


def _stats(tenant="t", count=20, p99_ns=0.0):
    return WindowStats(tenant=tenant, window_ns=100_000.0, count=count,
                       p50_ns=p99_ns / 2, p99_ns=p99_ns, goodput_gbps=0.0,
                       rejected=0, violations=0)


def test_place_cache_resident_reads_on_soc():
    placed = _policy().place(_client_spec())
    assert placed.path is CommPath.SNIC2
    assert placed.responder == "soc"
    assert placed.rate_cap_gbps is None


def test_place_oversized_working_set_on_host():
    placed = _policy().place(_client_spec(working_set=32 * GB))
    assert placed.path is CommPath.SNIC1
    assert placed.responder == "host"


def test_place_bulk_tenant_with_p_minus_n_cap():
    placed = _policy().place(_bulk_spec())
    assert placed.path is CommPath.SNIC3_H2S
    assert placed.responder == "soc"
    assert placed.rate_cap_gbps == pytest.approx(56.0, rel=0.01)
    assert "rule-p-minus-n" in placed.advice_refs


def test_healthy_tenant_is_left_alone():
    policy = _policy()
    spec = _client_spec()
    decision = policy.decide(spec, CommPath.SNIC2, "soc", False,
                             _stats(p99_ns=5_000.0), True, 100_000.0, {})
    assert decision is None


def test_slo_violation_migrates_to_alternate_path():
    policy = _policy()
    spec = _client_spec()
    decision = policy.decide(spec, CommPath.SNIC2, "soc", False,
                             _stats(p99_ns=40_000.0), True, 100_000.0, {})
    assert decision is not None
    assert decision.path is CommPath.SNIC1
    assert decision.reason == "slo-p99"
    assert "fig11-partition" in decision.advice_refs


def test_thin_window_blocks_migration():
    policy = _policy(min_samples=8)
    spec = _client_spec()
    decision = policy.decide(spec, CommPath.SNIC2, "soc", False,
                             _stats(count=3, p99_ns=40_000.0), True,
                             100_000.0, {})
    assert decision is None


def test_cooldown_blocks_flapping():
    policy = _policy(cooldown_ns=60_000.0)
    spec = _client_spec()
    policy.note_change(spec.name, 90_000.0)
    decision = policy.decide(spec, CommPath.SNIC2, "soc", False,
                             _stats(p99_ns=40_000.0), True, 100_000.0, {})
    assert decision is None
    # ... but the same violation is actionable once the cooldown lapses.
    decision = policy.decide(spec, CommPath.SNIC2, "soc", False,
                             _stats(p99_ns=40_000.0), True, 160_000.0, {})
    assert decision is not None


def test_fig11_budget_refuses_overfull_target():
    """Migration into path 1 is refused when its concurrent-partition
    budget is already booked by offered load."""
    policy = _policy()
    spec = _client_spec()
    full = {CommPath.SNIC1: 1_000.0}   # far beyond any Fig 11 budget
    decision = policy.decide(spec, CommPath.SNIC2, "soc", False,
                             _stats(p99_ns=40_000.0), True, 100_000.0, full)
    assert decision is None


def test_soc_crash_fails_client_tenant_hostward():
    policy = _policy()
    spec = _client_spec()
    decision = policy.decide(spec, CommPath.SNIC2, "soc", False,
                             _stats(), False, 100_000.0, {})
    assert decision is not None
    assert decision.path is CommPath.SNIC1
    assert decision.responder == "host"
    assert decision.reason == "soc-crash"
    assert not decision.degraded


def test_soc_crash_degrades_bulk_tenant():
    policy = _policy()
    decision = policy.decide(_bulk_spec(), CommPath.SNIC3_H2S, "soc", False,
                             _stats(tenant="bulk"), False, 100_000.0, {})
    assert decision is not None
    assert decision.degraded
    assert decision.responder == "host"
    assert decision.rate_cap_gbps is None
    assert decision.advice_refs == ("failover",)


def test_already_degraded_tenant_is_not_refailed():
    policy = _policy()
    decision = policy.decide(_bulk_spec(), CommPath.SNIC3_H2S, "host", True,
                             _stats(tenant="bulk"), False, 100_000.0, {})
    assert decision is None


def test_no_migration_to_crashed_soc():
    """An SLO violation on path 1 never migrates into a dead SoC."""
    policy = _policy()
    spec = _client_spec(working_set=32 * GB)
    decision = policy.decide(spec, CommPath.SNIC1, "host", False,
                             _stats(p99_ns=40_000.0), False, 100_000.0, {})
    assert decision is None
