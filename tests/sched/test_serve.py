"""Integration tests for the serving engine: determinism and failover."""

from repro.faults import FaultPlan, SocCrash
from repro.sched import mixed_tenant_workload, run_serve


def test_scheduler_is_deterministic():
    """Same seed, same workload: bit-identical decisions and completions."""
    a = run_serve(mixed_tenant_workload(duration_ns=200_000.0, seed=7))
    b = run_serve(mixed_tenant_workload(duration_ns=200_000.0, seed=7))
    assert [d.as_tuple() for d in a.decisions] == \
           [d.as_tuple() for d in b.decisions]
    assert {n: t.completed for n, t in a.tenants.items()} == \
           {n: t.completed for n, t in b.tenants.items()}
    assert a.path_gbps == b.path_gbps
    for name in a.tenants:
        assert a.tenants[name].p99_ns == b.tenants[name].p99_ns


def test_different_seeds_still_converge_on_placements():
    report = run_serve(mixed_tenant_workload(duration_ns=200_000.0, seed=3))
    places = {d.tenant: d.to_path.value for d in report.decisions
              if d.kind == "place"}
    assert places == {"alpha": "snic-2", "beta": "snic-1",
                      "delta": "snic-1", "gamma": "snic-3-h2s"}


def test_mid_run_soc_crash_fails_over_exactly_once_per_tenant():
    """A SoC crash mid-run migrates each SoC-resident tenant host-ward
    exactly once, loses nothing, and keeps serving."""
    plan = FaultPlan(faults=(SocCrash(server="server0", at=300_000.0),))
    report = run_serve(mixed_tenant_workload(duration_ns=600_000.0),
                       faults=plan)

    failovers = [d for d in report.decisions if d.kind == "failover"]
    # alpha (path 2) and gamma (path 3) terminate on the SoC; beta and
    # delta live on host memory and must not move.
    assert sorted(d.tenant for d in failovers) == ["alpha", "gamma"]
    for d in failovers:
        assert d.time_ns >= 300_000.0
        assert d.to_responder == "host"
        assert d.reason == "soc-crash"

    assert report.lost == 0
    assert report.tenants["alpha"].final_path == "snic-1"
    assert report.tenants["alpha"].migrations == 1
    assert report.tenants["gamma"].final_path == "degraded"
    assert report.tenants["gamma"].migrations == 1
    assert report.tenants["beta"].migrations == 0
    assert report.tenants["delta"].migrations == 0
    # The degraded relay kept completing bulk requests after the crash.
    assert report.tenants["gamma"].degraded > 0
    # Every tenant finished its stream: nothing wedged on dead QPs.
    for t in report.tenants.values():
        assert t.completed > 0


def test_static_mode_records_no_decisions():
    report = run_serve(mixed_tenant_workload(duration_ns=150_000.0),
                       adaptive=False)
    assert report.decisions == []
    assert not report.adaptive
    assert report.lost == 0
