"""The hybrid engine's faithfulness contract against pure DES.

Exact clauses (counts, decision structure) are asserted bit-for-bit;
toleranced clauses (p50/p99/goodput, decision p99 attribution) go
through :mod:`repro.sim.crosscheck`, which grades them against the
bounds declared by :class:`~repro.sim.hybrid.HybridConfig`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.plan import FaultPlan, SocCrash
from repro.sched.serve import mixed_tenant_workload, run_serve
from repro.sim.crosscheck import crosscheck, crosscheck_suite
from repro.sim.hybrid import HybridConfig


def _counts(report):
    return {name: (t.completed, t.rejected, t.lost)
            for name, t in report.tenants.items()}


def _decision_structure(report):
    return [d.as_tuple()[:9] + d.as_tuple()[10:] for d in report.decisions]


def test_hybrid_config_validates():
    with pytest.raises(ValueError):
        HybridConfig(guard_ns=-1.0)
    with pytest.raises(ValueError):
        HybridConfig(min_samples=0)
    with pytest.raises(ValueError):
        HybridConfig(latency_tol=-0.5)


def test_static_run_never_flips_and_is_identical():
    """Static placements drive tenants into overload equilibria whose
    admission counts are timing-sensitive; the steadiness predicate
    must refuse to fast-forward them, leaving pure-DES output."""
    des = run_serve(mixed_tenant_workload(duration_ns=400_000.0, seed=0),
                    adaptive=False)
    hyb = run_serve(mixed_tenant_workload(duration_ns=400_000.0, seed=0),
                    adaptive=False, engine="hybrid")
    assert hyb.hybrid_stats["flips"] == 0
    assert _counts(hyb) == _counts(des)
    assert {n: (t.p50_ns, t.p99_ns, t.goodput_gbps)
            for n, t in hyb.tenants.items()} \
        == {n: (t.p50_ns, t.p99_ns, t.goodput_gbps)
            for n, t in des.tenants.items()}


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=40))
def test_hybrid_counts_exact_across_seeds(seed):
    """Property: for any stream seed, completions / rejections /
    losses are *exactly* the pure-DES numbers — fast-forwarding may
    only move telemetry within tolerance, never change what happened."""
    des = run_serve(mixed_tenant_workload(duration_ns=600_000.0, seed=seed))
    hyb = run_serve(mixed_tenant_workload(duration_ns=600_000.0, seed=seed),
                    engine="hybrid")
    assert _counts(hyb) == _counts(des)
    assert _decision_structure(hyb) == _decision_structure(des)


@settings(max_examples=4, deadline=None)
@given(st.integers(min_value=0, max_value=40))
def test_hybrid_latencies_within_declared_tolerance(seed):
    config = HybridConfig()
    result = crosscheck(
        "prop", lambda: mixed_tenant_workload(duration_ns=600_000.0,
                                              seed=seed),
        config=config)
    assert result.ok, result.failures()


def test_soc_crash_counts_and_decisions_exact():
    """Faults force guard windows: the blackout logic must splice back
    to DES early enough that failovers and degraded service happen at
    exactly the pure-DES instants."""
    plan = FaultPlan(faults=(SocCrash(at=150_000.0),))
    des = run_serve(mixed_tenant_workload(duration_ns=500_000.0, seed=0),
                    faults=plan)
    hyb = run_serve(mixed_tenant_workload(duration_ns=500_000.0, seed=0),
                    faults=plan, engine="hybrid")
    assert _counts(hyb) == _counts(des)
    assert _decision_structure(hyb) == _decision_structure(des)
    assert any(d.kind == "failover" for d in hyb.decisions)


def test_long_steady_run_actually_fast_forwards():
    """The speedup clause: a long adaptive run must spend most of its
    arrivals in analytic mode (the 10x benchmark rides on this)."""
    report = run_serve(mixed_tenant_workload(duration_ns=1_500_000.0,
                                             seed=0), engine="hybrid")
    stats = report.hybrid_stats
    assert stats["flips"] >= 1
    total = sum(t.completed + t.rejected for t in report.tenants.values())
    assert stats["analytic_arrivals"] > total / 2


def test_fault_transient_mid_window_exact_with_adaptive_envelope():
    """ROADMAP 2(a): a crash landing just off the middle of a control
    window used to leave analytic in-flight tails straddling the crash
    instant on short runs (count divergence).  The adaptive envelope
    re-guards early enough that every tail is flushed before the
    transient — counts exact, latencies within tolerance."""
    for duration in (500_000.0, 600_000.0):
        at = duration * 0.495 + 500.0
        result = crosscheck(
            "fault-transient",
            lambda duration=duration: mixed_tenant_workload(
                duration_ns=duration, seed=0),
            faults=FaultPlan(faults=(SocCrash(at=at),)))
        assert result.ok, (duration, result.failures())


def test_fault_transient_family_in_standard_scenarios():
    results = crosscheck_suite(duration_ns=600_000.0,
                               scenarios=["fault-transient"])
    assert results[0].scenario == "fault-transient"
    assert results[0].ok, results[0].failures()


def test_adaptive_envelope_tracks_service_ceiling():
    """envelope_ns() = max(lookahead, ceiling + bucket slack), growing
    geometrically per escalation and capped at max_envelope_ns."""
    from repro.sched.serve import ServeSession
    from repro.sim.hybrid import HybridController

    session = ServeSession(mixed_tenant_workload(duration_ns=200_000.0,
                                                 seed=0), engine="hybrid")
    controller = session.controller
    config = controller.config
    assert controller.envelope_ns() >= config.lookahead_ns
    session.cluster.sim.run(until=120_000.0)
    grown = controller.envelope_ns()
    assert grown >= controller._service_ceiling
    controller._escalations = 2
    assert controller.envelope_ns() >= grown
    controller._escalations = 50
    assert controller.envelope_ns() == config.max_envelope_ns
    fixed = HybridController(session.runtime, session.tracker,
                             config=HybridConfig(adaptive_envelope=False))
    assert fixed.envelope_ns() == fixed.config.lookahead_ns


def test_hybrid_config_validates_envelope_knobs():
    with pytest.raises(ValueError, match="envelope_growth"):
        HybridConfig(envelope_growth=0.5)
    with pytest.raises(ValueError, match="max_envelope_ns"):
        HybridConfig(max_envelope_ns=-1.0)


def test_crosscheck_suite_rejects_unknown_scenarios():
    with pytest.raises(ValueError, match="unknown scenario"):
        crosscheck_suite(scenarios=["nope"])


def test_crosscheck_grades_the_standard_families():
    results = crosscheck_suite(duration_ns=400_000.0,
                               scenarios=["adaptive", "static"])
    assert [r.scenario for r in results] == ["adaptive", "static"]
    for result in results:
        assert result.ok, (result.scenario, result.failures())
