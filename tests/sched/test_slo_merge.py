"""Unit tests for SloTracker.merge (the sharded-run fold)."""

import pytest

from repro.core.paths import CommPath
from repro.sched import SloSpec, SloTracker, TenantSpec
from repro.sched.tenant import CompletionRecord
from repro.workloads import OpMix


def _spec(name, deadline=10_000.0):
    return TenantSpec(name=name, payload=512, interval_ns=1_000.0,
                      requests=100, mix=OpMix(read=1.0, write=0.0),
                      slo=SloSpec(p99_ns=deadline))


def _record(tenant, end, latency=5_000.0, ok=True):
    return CompletionRecord(tenant=tenant, seq=0, op="read",
                            path=CommPath.SNIC2, start_ns=end - latency,
                            end_ns=end, ok=ok)


def test_merge_rejects_mismatched_windows():
    a = SloTracker([_spec("a")], window_ns=100_000.0)
    b = SloTracker([_spec("b")], window_ns=50_000.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_merge_disjoint_tenants_unions_totals():
    a = SloTracker([_spec("a")])
    b = SloTracker([_spec("b")])
    a.observe(_record("a", end=10_000.0), payload=512)
    b.observe(_record("b", end=20_000.0), payload=512)
    b.observe(_record("b", end=30_000.0, ok=False), payload=512)
    b.observe_reject("b", 25_000.0)
    a.merge(b)
    assert a.completed == {"a": 1, "b": 1}
    assert a.lost == {"a": 0, "b": 1}
    assert a.rejected == {"a": 0, "b": 1}
    assert a.window("b", 40_000.0).count == 1
    assert a.window("b", 40_000.0).rejected == 1


def test_merge_same_tenant_matches_single_tracker_quantiles():
    """Split one completion stream over two trackers; the merge must
    report the same window quantiles as one tracker seeing it all."""
    latencies = [1_000.0, 9_000.0, 3_000.0, 7_000.0, 5_000.0,
                 2_000.0, 8_000.0, 4_000.0, 6_000.0, 10_000.0]
    reference = SloTracker([_spec("t")])
    left = SloTracker([_spec("t")])
    right = SloTracker([_spec("t")])
    for i, latency in enumerate(latencies):
        record = _record("t", end=10_000.0 + i * 5_000.0, latency=latency)
        reference.observe(record, payload=512)
        (left if i % 2 == 0 else right).observe(record, payload=512)
    left.merge(right)
    for now in (30_000.0, 60_000.0, 90_000.0, 120_000.0, 200_000.0):
        want = reference.window("t", now)
        got = left.window("t", now)
        assert got == want, f"divergence at now={now}"


def test_merge_keeps_events_time_ordered_for_pruning():
    """Out-of-phase shard streams must interleave, not concatenate —
    otherwise window pruning (a popleft loop) stops early."""
    left = SloTracker([_spec("t")])
    right = SloTracker([_spec("t")])
    # left holds the *late* events, right the early ones.
    for end in (150_000.0, 160_000.0):
        left.observe(_record("t", end=end), payload=512)
    for end in (10_000.0, 20_000.0):
        right.observe(_record("t", end=end), payload=512)
    left.merge(right)
    # A window at 170us spans only the late pair; the early events sit
    # in front of them and must be pruned on the way.
    stats = left.window("t", 170_000.0)
    assert stats.count == 2
    assert left.completed["t"] == 4        # totals survive pruning


def test_merge_window_boundary_is_inclusive_like_single_tracker():
    """An event exactly at now - window survives pruning on both the
    merged and the reference tracker (prune is strict '<')."""
    window = 100_000.0
    now = 150_000.0
    boundary = now - window
    reference = SloTracker([_spec("t")], window_ns=window)
    left = SloTracker([_spec("t")], window_ns=window)
    right = SloTracker([_spec("t")], window_ns=window)
    at_boundary = _record("t", end=boundary)
    just_before = _record("t", end=boundary - 1.0)
    reference.observe(just_before, payload=512)
    reference.observe(at_boundary, payload=512)
    left.observe(just_before, payload=512)
    right.observe(at_boundary, payload=512)
    left.merge(right)
    assert left.window("t", now) == reference.window("t", now)
    assert left.window("t", now).count == 1


def test_merge_reject_streams_interleave():
    left = SloTracker([_spec("t")])
    right = SloTracker([_spec("t")])
    for now in (50_000.0, 90_000.0):
        left.observe_reject("t", now)
    for now in (60_000.0, 80_000.0):
        right.observe_reject("t", now)
    left.merge(right)
    # Pruning at 170us keeps only rejects >= 70us; the 50/60us pair
    # must both be dropped even though they came from different shards.
    assert left.window("t", 170_000.0).rejected == 2
    assert left.rejected["t"] == 4
