"""Serving-engine parity: the batched queue default vs the DES heap.

``engine="event"`` now runs on :class:`repro.sim.batchq.BatchSimulator`;
``engine="des-heap"`` keeps the binary-heap :class:`repro.sim.engine.
Simulator` as the opt-out reference.  The two must be bit-identical —
this file is the CI parity gate for the default flip.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.plan import FaultPlan, SocCrash
from repro.sched.serve import ServeSession, mixed_tenant_workload, run_serve
from repro.sim.batchq import BatchSimulator
from repro.sim.engine import Simulator


def _key(report):
    return {name: (t.completed, t.rejected, t.lost, t.p50_ns, t.p99_ns,
                   t.goodput_gbps, t.slo_goodput_gbps)
            for name, t in report.tenants.items()}


def test_default_engine_is_the_batched_queue():
    session = ServeSession(mixed_tenant_workload(duration_ns=50_000.0))
    assert isinstance(session.cluster.sim, BatchSimulator)
    heap = ServeSession(mixed_tenant_workload(duration_ns=50_000.0),
                        engine="des-heap")
    assert isinstance(heap.cluster.sim, Simulator)
    assert type(heap.cluster.sim) is not BatchSimulator


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown serve engine"):
        run_serve(mixed_tenant_workload(duration_ns=50_000.0),
                  engine="warp-drive")


@settings(max_examples=4, deadline=None)
@given(st.integers(min_value=0, max_value=40))
def test_batch_and_heap_engines_bit_identical(seed):
    """Property: across stream seeds, the batched queue reproduces the
    heap engine bit-for-bit — counts, latencies and decision log."""
    batch = run_serve(mixed_tenant_workload(duration_ns=400_000.0,
                                            seed=seed))
    heap = run_serve(mixed_tenant_workload(duration_ns=400_000.0,
                                           seed=seed), engine="des-heap")
    assert _key(batch) == _key(heap)
    assert [d.as_tuple() for d in batch.decisions] \
        == [d.as_tuple() for d in heap.decisions]
    assert batch.path_gbps == heap.path_gbps
    assert batch.elapsed_ns == heap.elapsed_ns


def test_parity_holds_under_faults():
    plan = FaultPlan(faults=(SocCrash(at=150_000.0),))
    batch = run_serve(mixed_tenant_workload(duration_ns=500_000.0, seed=3),
                      faults=plan)
    heap = run_serve(mixed_tenant_workload(duration_ns=500_000.0, seed=3),
                     faults=plan, engine="des-heap")
    assert _key(batch) == _key(heap)
    assert [d.as_tuple() for d in batch.decisions] \
        == [d.as_tuple() for d in heap.decisions]
