"""Unit tests for the rolling SLO windows."""

from repro.sched import SloSpec, SloTracker, TenantSpec
from repro.sched.tenant import CompletionRecord
from repro.core.paths import CommPath
from repro.workloads import OpMix


def _spec(name="t", deadline=10_000.0):
    return TenantSpec(name=name, payload=512, interval_ns=1_000.0,
                      requests=100, mix=OpMix(read=1.0, write=0.0),
                      slo=SloSpec(p99_ns=deadline))


def _record(tenant="t", start=0.0, end=5_000.0, ok=True):
    return CompletionRecord(tenant=tenant, seq=0, op="read",
                            path=CommPath.SNIC2, start_ns=start, end_ns=end,
                            ok=ok)


def test_empty_window_is_idle():
    tracker = SloTracker([_spec()])
    stats = tracker.window("t", 50_000.0)
    assert stats.idle
    assert stats.count == 0
    assert stats.p99_ns == 0.0


def test_window_percentiles_and_goodput():
    spec = _spec()
    tracker = SloTracker([spec], window_ns=100_000.0)
    for i in range(10):
        tracker.observe(_record(start=0.0, end=1_000.0 * (i + 1)), 512)
    stats = tracker.window("t", 10_000.0)
    assert stats.count == 10
    assert stats.p50_ns == 5_000.0
    assert stats.p99_ns == 10_000.0
    assert stats.violations == 0
    assert stats.goodput_gbps > 0


def test_violations_counted_against_deadline():
    tracker = SloTracker([_spec(deadline=4_000.0)])
    tracker.observe(_record(end=3_000.0), 512)
    tracker.observe(_record(start=1_000.0, end=9_000.0), 512)
    stats = tracker.window("t", 10_000.0)
    assert stats.violations == 1


def test_old_events_age_out_of_the_window():
    tracker = SloTracker([_spec()], window_ns=10_000.0)
    tracker.observe(_record(end=1_000.0), 512)
    tracker.observe(_record(start=90_000.0, end=95_000.0), 512)
    stats = tracker.window("t", 100_000.0)
    assert stats.count == 1
    # Lifetime totals survive the pruning.
    assert tracker.completed["t"] == 2


def test_lost_and_rejected_accounting():
    tracker = SloTracker([_spec()])
    tracker.observe(_record(ok=False), 512)
    tracker.observe_reject("t", 1_000.0)
    stats = tracker.window("t", 10_000.0)
    assert stats.count == 0
    assert stats.rejected == 1
    assert tracker.lost["t"] == 1
    assert tracker.rejected["t"] == 1
