"""Supervisor machinery: typed failures, window log, watchdog, reaping."""

import dataclasses
import json
import os

import pytest

from repro.faults.plan import FaultPlan
from repro.sim.crosscheck import cluster_chaos_scenario
from repro.sim.shard import _reap_worker, run_sharded
from repro.sim.supervise import (CHECKPOINT_FILE, ConservationError,
                                 ConservationWatchdog, FabricWedgedError,
                                 IncidentLog, ShardWorkerError,
                                 SupervisorConfig, WindowLog,
                                 plan_fingerprint)

_DURATION = 160_000.0


def _chaotic_plan(seed=0):
    plan, chaos = cluster_chaos_scenario(duration_ns=_DURATION, seed=seed)
    return dataclasses.replace(plan, cluster_faults=chaos)


def _digest(report):
    return ({name: (t.completed, t.rejected, t.lost, t.p50_ns, t.p99_ns)
             for name, t in report.tenants.items()},
            [d.as_tuple() for d in report.decisions])


# -- typed failures -----------------------------------------------------------------


def test_worker_exception_ships_shard_name_and_traceback():
    plan, _ = cluster_chaos_scenario(duration_ns=_DURATION)
    with pytest.raises(ShardWorkerError) as err:
        run_sharded(plan, jobs=2, engine="bogus")
    assert err.value.shard in {s.name for s in plan.shards}
    assert "ValueError" in err.value.detail
    assert "Traceback" in err.value.detail
    assert err.value.shard in str(err.value)


def test_fabric_wedged_error_names_every_shard():
    err = FabricWedgedError(done={"m0": True, "m1": True},
                            idle={"m0": True, "m1": False},
                            pending={"m1": 3})
    text = str(err)
    assert "m0: done=True idle=True pending=0" in text
    assert "m1: done=True idle=False pending=3" in text
    assert err.pending == {"m1": 3}


def test_supervisor_config_validation():
    with pytest.raises(ValueError, match="resume requires"):
        SupervisorConfig(resume=True)
    with pytest.raises(ValueError, match="kill_window"):
        SupervisorConfig(kill_shard="m0")
    with pytest.raises(ValueError, match="positive"):
        SupervisorConfig(exchange_timeout_s=0.0)
    with pytest.raises(ValueError, match="respawn"):
        SupervisorConfig(max_respawns=-1)


# -- window log ---------------------------------------------------------------------


def test_window_log_roundtrips_and_checks_fingerprint(tmp_path):
    log = WindowLog("abc123", 25_000.0)
    log.record(25_000.0, {"m0": [], "m1": []})
    log.complete = True
    path = log.save(str(tmp_path))
    assert os.path.basename(path) == CHECKPOINT_FILE
    back = WindowLog.load(str(tmp_path), expect_fingerprint="abc123")
    assert len(back) == 1
    assert back.complete
    assert back.sync_window_ns == 25_000.0
    with pytest.raises(ValueError, match="fingerprint"):
        WindowLog.load(str(tmp_path), expect_fingerprint="different")


def test_plan_fingerprint_tracks_run_identity():
    plan, chaos = cluster_chaos_scenario(duration_ns=_DURATION)
    base = plan_fingerprint(plan, 25_000.0, {})
    assert base == plan_fingerprint(plan, 25_000.0, {})
    assert base != plan_fingerprint(plan, 50_000.0, {})
    assert base != plan_fingerprint(plan, 25_000.0, {"engine": "hybrid"})
    assert base != plan_fingerprint(
        dataclasses.replace(plan, cluster_faults=chaos), 25_000.0, {})


# -- checkpoint / resume ------------------------------------------------------------


def test_resume_from_checkpoint_matches_uninterrupted_run(tmp_path):
    plan = _chaotic_plan()
    full = run_sharded(plan, jobs=1,
                       supervisor=SupervisorConfig(
                           checkpoint_dir=str(tmp_path)))
    resumed = run_sharded(plan, jobs=1,
                          supervisor=SupervisorConfig(
                              checkpoint_dir=str(tmp_path), resume=True))
    assert _digest(resumed) == _digest(full)

    # Truncate the log to mid-run — a checkpoint written before the
    # process died — and resume across the other executor for good
    # measure: the tail re-runs live and still lands identical.
    raw = json.loads((tmp_path / CHECKPOINT_FILE).read_text())
    raw["windows"] = raw["windows"][: max(1, len(raw["windows"]) // 2)]
    raw["complete"] = False
    (tmp_path / CHECKPOINT_FILE).write_text(json.dumps(raw))
    partial = run_sharded(plan, jobs=4,
                          supervisor=SupervisorConfig(
                              checkpoint_dir=str(tmp_path), resume=True))
    assert _digest(partial) == _digest(full)


def test_resume_rejects_mismatched_plan(tmp_path):
    plan = _chaotic_plan()
    run_sharded(plan, jobs=1,
                supervisor=SupervisorConfig(checkpoint_dir=str(tmp_path)))
    other = _chaotic_plan(seed=9)
    with pytest.raises(ValueError, match="fingerprint"):
        run_sharded(other, jobs=1,
                    supervisor=SupervisorConfig(
                        checkpoint_dir=str(tmp_path), resume=True))


# -- conservation watchdog ----------------------------------------------------------


def _beat(arrivals, completed, rejected, lost, in_flight,
          fabric=(0, 0, 0, 0)):
    return {"tenants": {"t": (arrivals, completed, rejected, lost,
                              in_flight)},
            "fabric": fabric}


def test_watchdog_accepts_conserved_flow():
    dog = ConservationWatchdog()
    dog.check(25_000.0, {"m0": _beat(10, 4, 1, 2, 3)}, 0, 0)
    dog.check(50_000.0, {"m0": _beat(12, 7, 1, 2, 2)}, 0, 0)
    assert dog.windows_checked == 2
    dog.assert_drained(50_000.0, {"m0": _beat(12, 9, 1, 2, 0)})


def test_watchdog_trips_on_leaked_requests():
    dog = ConservationWatchdog()
    with pytest.raises(ConservationError, match="arrivals 10"):
        dog.check(25_000.0, {"m0": _beat(10, 4, 1, 2, 1)}, 0, 0)


def test_watchdog_trips_on_backwards_counters():
    dog = ConservationWatchdog()
    dog.check(25_000.0, {"m0": _beat(10, 4, 1, 2, 3)}, 0, 0)
    with pytest.raises(ConservationError, match="went backwards"):
        dog.check(50_000.0, {"m0": _beat(10, 3, 1, 2, 4)}, 0, 0)


def test_watchdog_trips_on_unaccounted_fabric_messages():
    dog = ConservationWatchdog()
    with pytest.raises(ConservationError, match="fabric flow"):
        dog.check(25_000.0, {"m0": _beat(5, 5, 0, 0, 0, fabric=(4, 1, 1, 0))},
                  1, 1)


def test_watchdog_trips_on_undrained_termination():
    dog = ConservationWatchdog()
    with pytest.raises(ConservationError, match="still in flight"):
        dog.assert_drained(50_000.0, {"m0": _beat(10, 6, 1, 2, 1)})


# -- reaping ------------------------------------------------------------------------


class _StubProc:
    """A process that ignores terminate and dies only on kill."""

    pid = 4242

    def __init__(self, dies_on="kill"):
        self.dies_on = dies_on
        self.calls = []
        self._alive = True

    def is_alive(self):
        return self._alive

    def join(self, timeout=None):
        self.calls.append(("join", timeout))

    def terminate(self):
        self.calls.append(("terminate", None))
        if self.dies_on == "terminate":
            self._alive = False

    def kill(self):
        self.calls.append(("kill", None))
        if self.dies_on == "kill":
            self._alive = False


def test_reap_escalates_terminate_then_kill():
    proc = _StubProc(dies_on="kill")
    _reap_worker(proc, "m0", join_timeout_s=0.01, kill_grace_s=0.01)
    kinds = [kind for kind, _ in proc.calls]
    assert kinds == ["join", "terminate", "join", "kill", "join"]
    assert not proc.is_alive()


def test_reap_warns_when_kill_fails():
    proc = _StubProc(dies_on="never")
    with pytest.warns(UserWarning, match="'m0'.*abandoning"):
        _reap_worker(proc, "m0", join_timeout_s=0.01, kill_grace_s=0.01)


# -- incident log -------------------------------------------------------------------


def test_incident_log_records_and_saves(tmp_path):
    log = IncidentLog()
    log.record("kill-injected", "m1", 3, "chaos hook")
    log.record("respawn", "m1", 3, "pipe closed")
    assert log.respawns == 1
    path = log.save(str(tmp_path / "incidents.json"))
    raw = json.loads(open(path).read())
    assert raw["respawns"] == 1
    assert [i["kind"] for i in raw["incidents"]] == ["kill-injected",
                                                     "respawn"]


def test_incident_report_written_by_run(tmp_path):
    plan = _chaotic_plan()
    report_path = tmp_path / "incidents.json"
    run_sharded(plan, jobs=2,
                supervisor=SupervisorConfig(
                    kill_shard=plan.shards[1].name, kill_window=2,
                    incident_report=str(report_path)))
    raw = json.loads(report_path.read_text())
    assert raw["respawns"] >= 1
    assert any(i["kind"] == "kill-injected" for i in raw["incidents"])
