"""Unit tests for coroutine processes."""

import pytest

from repro.sim import Simulator, SimulationError, Interrupt


def test_process_runs_and_returns_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5)
        yield sim.timeout(7)
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"
    assert sim.now == 12.0


def test_process_receives_event_value():
    sim = Simulator()
    got = []

    def worker(sim, ev):
        value = yield ev
        got.append(value)

    ev = sim.event()
    sim.process(worker(sim, ev))
    ev.succeed(99, delay=3)
    sim.run()
    assert got == [99]


def test_waiting_on_another_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(10)
        return 41

    def parent(sim):
        result = yield sim.process(child(sim))
        return result + 1

    proc = sim.process(parent(sim))
    sim.run()
    assert proc.value == 42


def test_failed_event_raises_inside_process():
    sim = Simulator()
    caught = []

    def worker(sim, ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    ev = sim.event()
    sim.process(worker(sim, ev))
    ev.fail(ValueError("bad"))
    sim.run()
    assert caught == ["bad"]


def test_uncaught_exception_fails_process_event():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1)
        raise RuntimeError("worker crash")

    proc = sim.process(worker(sim))
    sim.run()
    assert not proc.ok
    assert isinstance(proc._value, RuntimeError)


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def worker(sim):
        yield 42  # not an Event

    proc = sim.process(worker(sim))
    sim.run()
    assert not proc.ok
    assert isinstance(proc._value, SimulationError)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_wakes_process():
    sim = Simulator()
    trace = []

    def sleeper(sim):
        try:
            yield sim.timeout(1000)
            trace.append("overslept")
        except Interrupt as intr:
            trace.append(("interrupted", sim.now, intr.cause))

    proc = sim.process(sleeper(sim))

    def interrupter(sim):
        yield sim.timeout(10)
        proc.interrupt("wake up")

    sim.process(interrupter(sim))
    sim.run()
    assert trace == [("interrupted", 10.0, "wake up")]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_is_alive():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5)

    proc = sim.process(worker(sim))
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_two_processes_interleave():
    sim = Simulator()
    trace = []

    def ping(sim):
        for _ in range(3):
            yield sim.timeout(2)
            trace.append(("ping", sim.now))

    def pong(sim):
        yield sim.timeout(1)
        for _ in range(3):
            yield sim.timeout(2)
            trace.append(("pong", sim.now))

    sim.process(ping(sim))
    sim.process(pong(sim))
    sim.run()
    assert trace == [
        ("ping", 2.0), ("pong", 3.0), ("ping", 4.0),
        ("pong", 5.0), ("ping", 6.0), ("pong", 7.0),
    ]
