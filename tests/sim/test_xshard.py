"""Unit surface of the cross-shard fabric (topology, messages, router)."""

import pytest

from repro.net.topology import paper_testbed
from repro.sim.xshard import (CrossTraffic, ShardChannel, ShardMessage,
                              ShardRouter, ShardTopology)


def _msg(src="a", dst="b", deliver=100.0, msg_id=1, kind="bulk"):
    return ShardMessage(src=src, dst=dst, kind=kind, tenant="t",
                        nbytes=64, send_ns=deliver - 50.0,
                        deliver_ns=deliver, msg_id=msg_id)


def test_cross_traffic_validates_kind():
    CrossTraffic("t", "m1", "bulk")
    CrossTraffic("t", "m1", "failover")
    with pytest.raises(ValueError, match="unknown cross-traffic kind"):
        CrossTraffic("t", "m1", "teleport")


def test_topology_uniform_and_overrides():
    topo = ShardTopology(shards=("a", "b", "c"), link_latency_ns=10_000.0,
                         overrides={("a", "b"): 5_000.0})
    assert topo.latency_ns("a", "b") == 5_000.0
    assert topo.latency_ns("b", "a") == 10_000.0
    assert topo.min_latency_ns() == 5_000.0
    with pytest.raises(KeyError):
        topo.latency_ns("a", "zz")


def test_topology_validates():
    with pytest.raises(ValueError, match="duplicate shard names"):
        ShardTopology(shards=("a", "a"))
    with pytest.raises(ValueError, match="positive"):
        ShardTopology(shards=("a", "b"), link_latency_ns=0.0)
    with pytest.raises(ValueError, match="unknown shard"):
        ShardTopology(shards=("a", "b"), overrides={("a", "zz"): 1.0})
    with pytest.raises(ValueError, match="positive"):
        ShardTopology(shards=("a", "b"), overrides={("a", "b"): -1.0})


def test_topology_from_testbed_scales_with_hops():
    testbed = paper_testbed()
    one = ShardTopology.from_testbed(testbed, ["a", "b"], hops=1)
    three = ShardTopology.from_testbed(testbed, ["a", "b"], hops=3)
    assert one.link_latency_ns == testbed.fabric.one_way_latency()
    assert three.link_latency_ns == 3 * one.link_latency_ns
    with pytest.raises(ValueError, match="hop"):
        ShardTopology.from_testbed(testbed, ["a", "b"], hops=0)


def test_single_shard_topology_min_latency_falls_back():
    topo = ShardTopology(shards=("solo",), link_latency_ns=7.0)
    assert topo.min_latency_ns() == 7.0


def test_router_sorts_inboxes_deterministically():
    topo = ShardTopology.uniform(["a", "b"])
    router = ShardRouter(topo)
    router.route([_msg(deliver=200.0, msg_id=3),
                  _msg(deliver=100.0, msg_id=2),
                  _msg(deliver=100.0, msg_id=1)])
    assert router.in_flight
    inbox = router.take("b")
    assert [m.msg_id for m in inbox] == [1, 2, 3]
    assert not router.in_flight
    assert router.take("b") == []
    with pytest.raises(KeyError, match="unknown shard"):
        router.route([_msg(dst="zz")])


def test_channel_rejects_bad_bindings():
    topo = ShardTopology.uniform(["a", "b"])
    with pytest.raises(ValueError, match="not in topology"):
        ShardChannel("zz", topo)
    with pytest.raises(ValueError, match="own shard"):
        ShardChannel("a", topo, {"t": CrossTraffic("t", "a")})
    with pytest.raises(ValueError, match="!="):
        ShardChannel("a", topo, {"other": CrossTraffic("t", "b")})
    channel = ShardChannel("a", topo, {"t": CrossTraffic("t", "b")})
    assert channel.idle
