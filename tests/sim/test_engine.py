"""Unit tests for the event loop and clock."""

import pytest

from repro.sim import Simulator, SimulationError, NORMAL, URGENT, LOW


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(42.0)
    sim.run()
    assert sim.now == 42.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (30, 10, 20):
        sim.timeout(delay).add_callback(lambda e, d=delay: order.append(d))
    sim.run()
    assert order == [10, 20, 30]


def test_equal_time_fifo_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.timeout(7).add_callback(lambda e, t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_priority_breaks_time_ties():
    sim = Simulator()
    order = []
    sim.timeout(5, priority=LOW).add_callback(lambda e: order.append("low"))
    sim.timeout(5, priority=URGENT).add_callback(lambda e: order.append("urgent"))
    sim.timeout(5, priority=NORMAL).add_callback(lambda e: order.append("normal"))
    sim.run()
    assert order == ["urgent", "normal", "low"]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.timeout(100).add_callback(lambda e: fired.append(1))
    sim.run(until=50)
    assert sim.now == 50.0
    assert not fired
    sim.run()
    assert fired and sim.now == 100.0


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.timeout(50).add_callback(lambda e: fired.append(1))
    sim.run(until=50)
    assert fired


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(10)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_run_max_events():
    sim = Simulator()
    for _ in range(10):
        sim.timeout(1)
    sim.run(max_events=3)
    assert sim.events_executed == 3


def test_run_max_events_with_until_keeps_clock_at_last_event():
    # A run stopped early by the event budget must not fast-forward to
    # the horizon: the remaining events are still pending before it.
    sim = Simulator()
    for delay in (1, 2, 3, 4, 5):
        sim.timeout(delay)
    sim.run(until=100, max_events=2)
    assert sim.events_executed == 2
    assert sim.now == 2.0
    # Resuming the same horizon finishes the queue and then reaches it.
    sim.run(until=100)
    assert sim.events_executed == 5
    assert sim.now == 100.0


def test_run_max_events_exhausted_queue_reaches_until():
    # When the budget is not the binding constraint, `until` still
    # advances the clock exactly as before.
    sim = Simulator()
    sim.timeout(1)
    sim.run(until=50, max_events=10)
    assert sim.events_executed == 1
    assert sim.now == 50.0


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_peek_empty_is_inf():
    assert Simulator().peek() == float("inf")


def test_peek_returns_next_event_time():
    sim = Simulator()
    sim.timeout(33)
    assert sim.peek() == 33.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises((SimulationError, ValueError)):
        sim.timeout(-1)


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=123)
    assert sim.now == 123.0
