"""Unit tests for bandwidth channels."""

import pytest

from repro.sim import Simulator, SimplexChannel, DuplexChannel
from repro.units import gbps


def test_serialization_time():
    sim = Simulator()
    # 1 byte/ns -> 100 bytes take 100 ns.
    chan = SimplexChannel(sim, bandwidth=1.0)
    done = chan.send(100)
    sim.run()
    assert done.processed
    assert sim.now == 100.0


def test_propagation_latency_added_after_serialization():
    sim = Simulator()
    chan = SimplexChannel(sim, bandwidth=1.0, latency=40.0)
    chan.send(100)
    sim.run()
    assert sim.now == 140.0


def test_transfers_serialize_fifo():
    sim = Simulator()
    chan = SimplexChannel(sim, bandwidth=2.0, latency=10.0)
    deliveries = []
    for size in (100, 100):
        chan.send(size).add_callback(lambda e: deliveries.append(sim.now))
    sim.run()
    # First: 50 ns serialize + 10 ns prop = 60; second starts at 50.
    assert deliveries == [60.0, 110.0]


def test_counters_accumulate():
    sim = Simulator()
    chan = SimplexChannel(sim, bandwidth=1.0)
    chan.send(10)
    chan.send(20)
    sim.run()
    assert chan.bytes_sent.total == 30
    assert chan.transfers.total == 2


def test_utilization():
    sim = Simulator()
    chan = SimplexChannel(sim, bandwidth=1.0)
    chan.send(50)
    sim.run(until=100)
    assert chan.utilization(100.0) == pytest.approx(0.5)


def test_zero_byte_transfer_is_instant_plus_latency():
    sim = Simulator()
    chan = SimplexChannel(sim, bandwidth=1.0, latency=5.0)
    done = chan.send(0)
    sim.run()
    assert done.processed
    assert sim.now == 5.0


def test_invalid_params_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        SimplexChannel(sim, bandwidth=0)
    with pytest.raises(ValueError):
        SimplexChannel(sim, bandwidth=1.0, latency=-1)
    with pytest.raises(ValueError):
        SimplexChannel(sim, bandwidth=1.0).send(-5)


def test_duplex_directions_are_independent():
    sim = Simulator()
    link = DuplexChannel(sim, bandwidth=1.0)
    deliveries = []
    link.send(100, forward=True).add_callback(lambda e: deliveries.append(("fwd", sim.now)))
    link.send(100, forward=False).add_callback(lambda e: deliveries.append(("rev", sim.now)))
    sim.run()
    # Opposite directions do not contend: both complete at t=100.
    assert deliveries == [("fwd", 100.0), ("rev", 100.0)]
    assert link.bytes_sent == 200


def test_duplex_same_direction_contends():
    sim = Simulator()
    link = DuplexChannel(sim, bandwidth=1.0)
    deliveries = []
    link.send(100, forward=True).add_callback(lambda e: deliveries.append(sim.now))
    link.send(100, forward=True).add_callback(lambda e: deliveries.append(sim.now))
    sim.run()
    assert deliveries == [100.0, 200.0]


def test_gbps_helper_round_trip():
    # A 200 Gbps NIC moves 25 bytes/ns.
    chan = SimplexChannel(Simulator(), bandwidth=gbps(200))
    assert chan.bandwidth == pytest.approx(25.0)
