"""Unit tests for deterministic random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_draws():
    a = RandomStreams(7).stream("clients")
    b = RandomStreams(7).stream("clients")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RandomStreams(7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_adding_streams_does_not_perturb_existing():
    solo = RandomStreams(3)
    first = [solo.stream("target").random() for _ in range(3)]

    noisy = RandomStreams(3)
    noisy.stream("other").random()  # interleaved extra stream
    second = [noisy.stream("target").random() for _ in range(3)]
    assert first == second


def test_fork_produces_distinct_family():
    base = RandomStreams(9)
    fork = base.fork("machine-1")
    assert base.stream("s").random() != fork.stream("s").random()


def test_fork_is_deterministic():
    a = RandomStreams(9).fork("m").stream("s").random()
    b = RandomStreams(9).fork("m").stream("s").random()
    assert a == b
