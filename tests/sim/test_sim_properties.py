"""Property-based tests on the simulation kernel."""

from hypothesis import given, settings, strategies as st

from repro.sim import Resource, SimplexChannel, Simulator, Store


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                max_size=50))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.timeout(delay).add_callback(lambda e: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=40),
       st.floats(min_value=0.1, max_value=100.0))
def test_channel_conserves_bytes_and_orders_deliveries(sizes, bandwidth):
    sim = Simulator()
    channel = SimplexChannel(sim, bandwidth=bandwidth, latency=5.0)
    deliveries = []
    for index, size in enumerate(sizes):
        channel.send(size).add_callback(
            lambda e, i=index: deliveries.append((sim.now, i)))
    sim.run()
    assert channel.bytes_sent.total == sum(sizes)
    assert [i for _t, i in sorted(deliveries)] == list(range(len(sizes)))
    # Total time >= serialization of everything.
    assert sim.now >= sum(sizes) / bandwidth


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=30),
       st.lists(st.floats(min_value=1, max_value=50), min_size=1,
                max_size=30))
def test_resource_never_exceeds_capacity(capacity, _seed, hold_times):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    max_in_use = [0]

    def holder(hold):
        request = resource.request()
        yield request
        max_in_use[0] = max(max_in_use[0], resource.in_use)
        try:
            yield sim.timeout(hold)
        finally:
            resource.release()

    for hold in hold_times:
        sim.process(holder(hold))
    sim.run()
    assert max_in_use[0] <= capacity
    assert resource.in_use == 0
    assert resource.queue_length == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=50))
def test_store_is_lossless_and_fifo(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    sim.process(consumer())
    for item in items:
        store.put(item)
    sim.run()
    assert received == items
