"""Sharded serving execution: bit-identity and merge correctness."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.plan import FaultPlan, SocCrash
from repro.sched.serve import mixed_tenant_workload, run_serve
from repro.sim.shard import ShardPlan, ShardSpec, run_sharded
from repro.sim.xshard import CrossTraffic, ShardTopology

_DURATION = 300_000.0


def _tenants(seed=0, suffix=""):
    specs = mixed_tenant_workload(duration_ns=_DURATION, seed=seed)
    if not suffix:
        return specs
    return tuple(dataclasses.replace(t, name=t.name + suffix,
                                     seed=t.seed + 100)
                 for t in specs)


def _two_shard_plan():
    return ShardPlan(shards=(ShardSpec("m0", _tenants()),
                             ShardSpec("m1", _tenants(suffix="2"))))


def _key(report):
    return {name: (t.completed, t.rejected, t.lost, t.p50_ns, t.p99_ns,
                   t.goodput_gbps, t.slo_goodput_gbps)
            for name, t in report.tenants.items()}


def _decisions(report):
    return [d.as_tuple() for d in report.decisions]


def test_partition_round_robins_and_names():
    plan = ShardPlan.partition(_tenants(), 2)
    assert [s.name for s in plan.shards] == ["shard0", "shard1"]
    sizes = [len(s.tenants) for s in plan.shards]
    assert sum(sizes) == 4 and max(sizes) - min(sizes) <= 1


def test_plan_rejects_duplicate_tenants_and_empty_shards():
    with pytest.raises(ValueError, match="appears in shards"):
        ShardPlan(shards=(ShardSpec("m0", _tenants()),
                          ShardSpec("m1", _tenants())))
    with pytest.raises(ValueError, match="no tenants"):
        ShardSpec("m0", ())
    with pytest.raises(ValueError, match="at least one shard"):
        ShardPlan(shards=())


def test_run_sharded_rejects_unshardable_kwargs():
    plan = ShardPlan(shards=(ShardSpec("m0", _tenants()),))
    with pytest.raises(ValueError, match="trace"):
        run_sharded(plan, trace=True)
    with pytest.raises(ValueError, match="ShardSpec"):
        run_sharded(plan, faults=None)
    with pytest.raises(ValueError, match="sync window"):
        run_sharded(plan, sync_window_ns=0.0)


def test_multiprocess_matches_inprocess_bit_for_bit():
    """jobs=1 is the reference; worker processes must change nothing."""
    seq = run_sharded(_two_shard_plan(), jobs=1)
    par = run_sharded(_two_shard_plan(), jobs=2)
    assert _key(par) == _key(seq)
    assert _decisions(par) == _decisions(seq)
    assert par.path_gbps == seq.path_gbps
    assert par.elapsed_ns == seq.elapsed_ns


def test_single_shard_matches_unsharded_run():
    """One shard == run_serve, except elapsed (rounded to the sync
    window — the documented divergence)."""
    solo = run_sharded(ShardPlan(shards=(ShardSpec("m0", _tenants()),)))
    plain = run_serve(_tenants())
    assert _key(solo) == _key(plain)
    assert _decisions(solo) == _decisions(plain)
    assert solo.elapsed_ns >= plain.elapsed_ns


def test_merged_decisions_are_time_sorted_and_tenants_disjoint():
    report = run_sharded(_two_shard_plan(), jobs=1)
    times = [d.time_ns for d in report.decisions]
    assert times == sorted(times)
    assert len(report.tenants) == 8


def test_hybrid_engine_composes_with_sharding():
    hybrid = run_sharded(_two_shard_plan(), jobs=1, engine="hybrid")
    plain = run_sharded(_two_shard_plan(), jobs=1)
    assert hybrid.engine == "hybrid"
    assert hybrid.hybrid_stats is not None
    assert {n: (t.completed, t.rejected, t.lost)
            for n, t in hybrid.tenants.items()} \
        == {n: (t.completed, t.rejected, t.lost)
            for n, t in plain.tenants.items()}


# -- cross-shard traffic ------------------------------------------------------


def _cross_plan(seed=0, duration=_DURATION, crash=True):
    """Two machines: m0's gamma fails over to m1's host on SoC crash,
    m0's beta ships bulk completions to m1, m1's gamma ships back."""
    specs0 = mixed_tenant_workload(duration_ns=duration, seed=seed)
    specs1 = tuple(dataclasses.replace(t, name=t.name + "2",
                                       seed=t.seed + 100)
                   for t in mixed_tenant_workload(duration_ns=duration,
                                                  seed=seed + 50))
    faults = (FaultPlan(faults=(SocCrash(at=duration / 3),))
              if crash else None)
    return ShardPlan(shards=(
        ShardSpec("m0", specs0, faults=faults,
                  exports=(CrossTraffic("gamma", "m1", "failover"),
                           CrossTraffic("beta", "m1", "bulk"))),
        ShardSpec("m1", specs1,
                  exports=(CrossTraffic("gamma2", "m0", "bulk"),)),
    ))


def test_cross_shard_traffic_flows_and_conserves():
    report = run_sharded(_cross_plan(), jobs=1)
    counters = report.counters
    assert counters["xshard.sent"] > 0
    # Every message was delivered (one-window guarantee, fully drained)
    # and every non-ack message was served and acked back.
    assert counters["xshard.delivered"] == counters["xshard.sent"]
    assert counters["xshard.acked"] == counters["xshard.served"]
    assert counters["xshard.served_bytes"] == counters["xshard.sent_bytes"]
    assert counters["xshard.rtt_ns_total"] > 0


def test_cross_shard_failover_serves_remotely():
    """After m0's SoC crash, gamma's degraded requests relay through
    m1's host: latency includes two fabric traversals."""
    remote = run_sharded(_cross_plan(), jobs=1)
    assert remote.counters["xshard.relay_requests"] > 0
    gamma = remote.tenants["gamma"]
    assert gamma.degraded > 0
    local_plan = _cross_plan()
    local_plan = ShardPlan(shards=(
        dataclasses.replace(local_plan.shards[0],
                            exports=(CrossTraffic("beta", "m1", "bulk"),)),
        local_plan.shards[1]))
    local = run_sharded(local_plan, jobs=1)
    rtt = 2 * ShardTopology.uniform(["m0", "m1"]).link_latency_ns
    assert gamma.p99_ns >= local.tenants["gamma"].p99_ns + 0.9 * rtt


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=64),
       window=st.sampled_from([6_250.0, 12_500.0, 25_000.0]))
def test_cross_shard_multiprocess_bit_identical(seed, window):
    """Property: with live cross-shard traffic, worker processes and
    any admissible sync window reproduce the in-process reference
    bit-for-bit (counts, latencies, decisions, fabric counters)."""
    seq = run_sharded(_cross_plan(seed, duration=200_000.0), jobs=1,
                      sync_window_ns=window)
    par = run_sharded(_cross_plan(seed, duration=200_000.0), jobs=2,
                      sync_window_ns=window)
    assert _key(par) == _key(seq)
    assert _decisions(par) == _decisions(seq)
    assert {k: v for k, v in par.counters.items()
            if k.startswith("xshard.")} \
        == {k: v for k, v in seq.counters.items()
            if k.startswith("xshard.")}


def test_sync_window_wider_than_link_latency_rejected():
    with pytest.raises(ValueError, match="one-window delivery"):
        run_sharded(_cross_plan(), sync_window_ns=30_000.0)
    # Defaults clamp to the tightest link, so this runs fine.
    run_sharded(_cross_plan(crash=False), jobs=1)


def test_plan_rejects_bad_exports_and_duplicate_shards():
    specs = _tenants()
    with pytest.raises(ValueError, match="unknown tenant"):
        ShardSpec("m0", specs, exports=(CrossTraffic("nope", "m1"),))
    with pytest.raises(ValueError, match="to itself"):
        ShardSpec("m0", specs, exports=(CrossTraffic("gamma", "m0"),))
    with pytest.raises(ValueError, match="twice"):
        ShardSpec("m0", specs,
                  exports=(CrossTraffic("gamma", "m1"),
                           CrossTraffic("gamma", "m2", "failover")))
    with pytest.raises(ValueError, match="unknown shard"):
        ShardPlan(shards=(
            ShardSpec("m0", specs,
                      exports=(CrossTraffic("gamma", "elsewhere"),)),))
    with pytest.raises(ValueError, match="duplicate shard names"):
        ShardPlan(shards=(ShardSpec("m0", specs),
                          ShardSpec("m0", _tenants(suffix="2"))))


def test_hybrid_keeps_exporting_tenants_at_event_level():
    """Cross-shard senders must not fast-forward (their fabric sends
    happen in the runtime's finish hook); the merged counts still
    match the pure event engine exactly."""
    plan = _cross_plan(crash=False)
    hybrid = run_sharded(plan, jobs=1, engine="hybrid")
    plain = run_sharded(_cross_plan(crash=False), jobs=1)
    assert {n: (t.completed, t.rejected, t.lost)
            for n, t in hybrid.tenants.items()} \
        == {n: (t.completed, t.rejected, t.lost)
            for n, t in plain.tenants.items()}
    xs = lambda r: {k: v for k, v in r.counters.items()  # noqa: E731
                    if k.startswith("xshard.")}
    assert xs(hybrid) == xs(plain)
