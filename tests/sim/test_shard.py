"""Sharded serving execution: bit-identity and merge correctness."""

import dataclasses

import pytest

from repro.sched.serve import mixed_tenant_workload, run_serve
from repro.sim.shard import ShardPlan, ShardSpec, run_sharded

_DURATION = 300_000.0


def _tenants(seed=0, suffix=""):
    specs = mixed_tenant_workload(duration_ns=_DURATION, seed=seed)
    if not suffix:
        return specs
    return tuple(dataclasses.replace(t, name=t.name + suffix,
                                     seed=t.seed + 100)
                 for t in specs)


def _two_shard_plan():
    return ShardPlan(shards=(ShardSpec("m0", _tenants()),
                             ShardSpec("m1", _tenants(suffix="2"))))


def _key(report):
    return {name: (t.completed, t.rejected, t.lost, t.p50_ns, t.p99_ns,
                   t.goodput_gbps, t.slo_goodput_gbps)
            for name, t in report.tenants.items()}


def _decisions(report):
    return [d.as_tuple() for d in report.decisions]


def test_partition_round_robins_and_names():
    plan = ShardPlan.partition(_tenants(), 2)
    assert [s.name for s in plan.shards] == ["shard0", "shard1"]
    sizes = [len(s.tenants) for s in plan.shards]
    assert sum(sizes) == 4 and max(sizes) - min(sizes) <= 1


def test_plan_rejects_duplicate_tenants_and_empty_shards():
    with pytest.raises(ValueError, match="appears in shards"):
        ShardPlan(shards=(ShardSpec("m0", _tenants()),
                          ShardSpec("m1", _tenants())))
    with pytest.raises(ValueError, match="no tenants"):
        ShardSpec("m0", ())
    with pytest.raises(ValueError, match="at least one shard"):
        ShardPlan(shards=())


def test_run_sharded_rejects_unshardable_kwargs():
    plan = ShardPlan(shards=(ShardSpec("m0", _tenants()),))
    with pytest.raises(ValueError, match="trace"):
        run_sharded(plan, trace=True)
    with pytest.raises(ValueError, match="ShardSpec"):
        run_sharded(plan, faults=None)
    with pytest.raises(ValueError, match="sync window"):
        run_sharded(plan, sync_window_ns=0.0)


def test_multiprocess_matches_inprocess_bit_for_bit():
    """jobs=1 is the reference; worker processes must change nothing."""
    seq = run_sharded(_two_shard_plan(), jobs=1)
    par = run_sharded(_two_shard_plan(), jobs=2)
    assert _key(par) == _key(seq)
    assert _decisions(par) == _decisions(seq)
    assert par.path_gbps == seq.path_gbps
    assert par.elapsed_ns == seq.elapsed_ns


def test_single_shard_matches_unsharded_run():
    """One shard == run_serve, except elapsed (rounded to the sync
    window — the documented divergence)."""
    solo = run_sharded(ShardPlan(shards=(ShardSpec("m0", _tenants()),)))
    plain = run_serve(_tenants())
    assert _key(solo) == _key(plain)
    assert _decisions(solo) == _decisions(plain)
    assert solo.elapsed_ns >= plain.elapsed_ns


def test_merged_decisions_are_time_sorted_and_tenants_disjoint():
    report = run_sharded(_two_shard_plan(), jobs=1)
    times = [d.time_ns for d in report.decisions]
    assert times == sorted(times)
    assert len(report.tenants) == 8


def test_hybrid_engine_composes_with_sharding():
    hybrid = run_sharded(_two_shard_plan(), jobs=1, engine="hybrid")
    plain = run_sharded(_two_shard_plan(), jobs=1)
    assert hybrid.engine == "hybrid"
    assert hybrid.hybrid_stats is not None
    assert {n: (t.completed, t.rejected, t.lost)
            for n, t in hybrid.tenants.items()} \
        == {n: (t.completed, t.rejected, t.lost)
            for n, t in plain.tenants.items()}
