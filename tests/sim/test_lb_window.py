"""LB links must not narrow the lockstep sync window.

The load balancer is a topology node so control messages can be
addressed from it, but it only injects traffic *at* barriers — the
one-window delivery guarantee never rides on an LB hop.  The window
floor therefore comes from the tightest machine-to-machine link
(``min_fabric_latency_ns``), not the tightest link anywhere
(``min_latency_ns``); deriving it from the latter would let a fast LB
hop force needless extra barriers (and reject perfectly valid explicit
windows).
"""

import pytest

from repro.sched.serve import mixed_tenant_workload
from repro.sim.shard import ShardPlan, run_sharded
from repro.sim.xshard import ShardTopology

_LB_LINKS = {("lb", "shard0"): 5_000.0, ("shard0", "lb"): 5_000.0,
             ("lb", "shard1"): 5_000.0, ("shard1", "lb"): 5_000.0}


def _lb_topology():
    return ShardTopology(shards=("shard0", "shard1", "lb"),
                         link_latency_ns=25_000.0,
                         overrides=_LB_LINKS, lb="lb")


def test_fabric_floor_excludes_lb_links():
    topo = _lb_topology()
    assert topo.fabric_shards == ("shard0", "shard1")
    assert topo.min_latency_ns() == 5_000.0
    assert topo.min_fabric_latency_ns() == 25_000.0


def test_fabric_floor_without_lb_matches_min_latency():
    topo = ShardTopology(shards=("shard0", "shard1"),
                         link_latency_ns=25_000.0)
    assert topo.min_fabric_latency_ns() == topo.min_latency_ns() == 25_000.0


def test_explicit_window_judged_against_fabric_links():
    base = ShardPlan.partition(mixed_tenant_workload(duration_ns=60_000.0),
                               2)
    plan = ShardPlan(shards=base.shards, topology=_lb_topology())
    # Regression: the 25 µs window is exactly the machine-to-machine
    # latency and must be accepted even though the LB hop is 5 µs.
    report = run_sharded(plan, jobs=1, sync_window_ns=25_000.0)
    assert report.tenants
    # Wider than the fabric links still breaks one-window delivery.
    with pytest.raises(ValueError, match="machine-to-machine"):
        run_sharded(plan, jobs=1, sync_window_ns=30_000.0)
