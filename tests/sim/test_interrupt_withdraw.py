"""Interrupting a process that waits on a Resource or Store.

The interrupt must withdraw the pending request so that no capacity or
item leaks: a queued resource request leaves the wait queue, a granted
but never-consumed unit is released onward, a handed-out store item
returns to the queue head, and a parked put is abandoned.
"""

import pytest

from repro.sim import Interrupt, Resource, Simulator, Store


def test_interrupt_waiting_resource_request_is_withdrawn():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(10)
        res.release()

    def victim():
        req = res.request()
        try:
            yield req
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, sim.now))
            return

    def killer(proc):
        yield sim.timeout(5)
        proc.interrupt("cancelled")

    def late():
        yield sim.timeout(6)
        req = res.request()
        yield req
        log.append(("granted", sim.now))
        res.release()

    sim.process(holder())
    vic = sim.process(victim())
    sim.process(killer(vic))
    sim.process(late())
    sim.run()
    # The victim left the queue at t=5; the unit went from the holder
    # (releases at t=10) straight to the late requester, not the victim.
    assert ("interrupted", "cancelled", 5.0) in log
    assert ("granted", 10.0) in log
    assert res.in_use == 0
    assert res.queue_length == 0


def test_interrupt_granted_but_unconsumed_request_releases_the_unit():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def holder():
        yield res.request()
        yield sim.timeout(10)
        res.release()  # hands the unit to the victim's queued request

    def victim():
        try:
            yield res.request()
        except Interrupt:
            log.append(("interrupted", sim.now))
            return
        log.append(("victim ran", sim.now))  # pragma: no cover

    def killer(proc):
        # Fires at the same instant as the release; the victim's grant
        # has already succeeded but the victim has not resumed yet.
        yield sim.timeout(10)
        proc.interrupt()

    sim.process(holder())
    vic = sim.process(victim())
    sim.process(killer(vic))
    sim.run()
    assert log == [("interrupted", 10.0)]
    # The granted-but-unconsumed unit was returned, not leaked.
    assert res.in_use == 0
    assert res.queue_length == 0
    grant = res.request()
    assert grant.triggered


def test_interrupt_waiting_store_get_is_withdrawn():
    sim = Simulator()
    store = Store(sim)
    log = []

    def victim():
        try:
            yield store.get()
        except Interrupt:
            log.append("interrupted")
            return

    def killer(proc):
        yield sim.timeout(1)
        proc.interrupt()

    def producer():
        yield sim.timeout(2)
        store.put("item")

    vic = sim.process(victim())
    sim.process(killer(vic))
    sim.process(producer())
    sim.run()
    # The withdrawn getter must not swallow the item.
    assert log == ["interrupted"]
    assert store.items == ("item",)
    assert not store._getters


def test_interrupt_get_after_handoff_requeues_the_item_at_the_head():
    sim = Simulator()
    store = Store(sim)
    log = []

    def victim():
        try:
            got = yield store.get()
        except Interrupt:
            log.append(("interrupted", sim.now))
            return
        log.append(("got", got))  # pragma: no cover

    def producer():
        yield sim.timeout(5)
        store.put("first")

    def killer(proc):
        # Same instant as the put: the item was handed to the victim's
        # get event, but the victim has not consumed it yet.
        yield sim.timeout(5)
        proc.interrupt()

    def successor():
        yield sim.timeout(6)
        got = yield store.get()
        log.append(("successor got", got))

    vic = sim.process(victim())
    sim.process(producer())
    sim.process(killer(vic))
    sim.process(successor())
    sim.run()
    assert ("interrupted", 5.0) in log
    assert ("successor got", "first") in log
    assert len(store) == 0


def test_interrupt_waiting_store_put_is_withdrawn():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("occupant")
    log = []

    def victim():
        try:
            yield store.put("parked")
        except Interrupt:
            log.append("interrupted")
            return

    def killer(proc):
        yield sim.timeout(1)
        proc.interrupt()

    def consumer():
        yield sim.timeout(2)
        got = yield store.get()
        log.append(("got", got))

    vic = sim.process(victim())
    sim.process(killer(vic))
    sim.process(consumer())
    sim.run()
    # The withdrawn put never lands: the consumer drains the occupant
    # and the store ends empty.
    assert log == ["interrupted", ("got", "occupant")]
    assert len(store) == 0
    assert not store._putters


def test_interrupting_a_finished_process_raises():
    sim = Simulator()

    def noop():
        return
        yield  # pragma: no cover

    proc = sim.process(noop())
    sim.run()
    from repro.sim import SimulationError
    with pytest.raises(SimulationError):
        proc.interrupt()
