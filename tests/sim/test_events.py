"""Unit tests for Event, Timeout, AllOf, AnyOf."""

import pytest

from repro.sim import Simulator, SimulationError, AllOf, AnyOf


def test_event_lifecycle():
    sim = Simulator()
    ev = sim.event()
    assert not ev.triggered and not ev.processed
    ev.succeed("payload")
    assert ev.triggered and not ev.processed
    sim.run()
    assert ev.processed
    assert ev.value == "payload"


def test_double_succeed_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_succeed_after_fail_raises():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_value_before_trigger_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_callback_after_fire_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(5)
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == [5]


def test_delayed_succeed():
    sim = Simulator()
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(sim.now))
    ev.succeed(delay=25)
    sim.run()
    assert seen == [25.0]


def test_allof_gathers_values_in_declaration_order():
    sim = Simulator()
    a = sim.timeout(30, value="a")
    b = sim.timeout(10, value="b")
    both = AllOf(sim, [a, b])
    sim.run()
    assert both.value == ["a", "b"]


def test_allof_empty_fires_immediately():
    sim = Simulator()
    all_none = AllOf(sim, [])
    sim.run()
    assert all_none.value == []


def test_allof_propagates_failure():
    sim = Simulator()
    ok = sim.timeout(5)
    bad = sim.event()
    bad.fail(ValueError("child died"))
    both = AllOf(sim, [ok, bad])
    sim.run()
    assert not both.ok
    assert isinstance(both._value, ValueError)


def test_anyof_takes_first_value():
    sim = Simulator()
    slow = sim.timeout(100, value="slow")
    fast = sim.timeout(1, value="fast")
    first = AnyOf(sim, [slow, fast])
    sim.run()
    assert first.value == "fast"


def test_anyof_ignores_later_events():
    sim = Simulator()
    a = sim.timeout(1, value="a")
    b = sim.timeout(2, value="b")
    first = AnyOf(sim, [a, b])
    sim.run()
    assert first.value == "a"
    assert b.processed  # still fires on its own


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    foreign = sim2.timeout(1)
    with pytest.raises(SimulationError):
        AllOf(sim1, [foreign])
