"""Unit tests for measurement monitors."""

import math

import pytest

from repro.sim import Counter, RateMeter, Histogram, TimeWeighted


def test_counter():
    c = Counter()
    c.add()
    c.add(4.5)
    assert c.total == 5.5
    assert c.events == 2
    c.reset()
    assert c.total == 0 and c.events == 0


def test_rate_meter_rate_and_throughput():
    m = RateMeter()
    m.start(now=0.0)
    for _ in range(10):
        m.record(volume=100)
    m.stop(now=50.0)
    assert m.rate() == pytest.approx(0.2)          # 10 events / 50 ns
    assert m.throughput() == pytest.approx(20.0)   # 1000 bytes / 50 ns


def test_rate_meter_running_window_needs_now():
    m = RateMeter()
    m.start(0.0)
    m.record()
    with pytest.raises(ValueError):
        m.rate()
    assert m.rate(now=10.0) == pytest.approx(0.1)


def test_rate_meter_empty_window():
    m = RateMeter()
    assert m.rate(now=0.0) == 0.0
    m.start(5.0)
    assert m.rate(now=5.0) == 0.0


def test_histogram_stats():
    h = Histogram()
    for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
        h.record(v)
    assert h.mean == pytest.approx(5.5)
    assert h.min == 1 and h.max == 10
    assert h.p50 == 5
    assert h.percentile(100) == 10
    assert h.p99 == 10
    assert len(h) == 10


def test_histogram_empty_is_nan():
    h = Histogram()
    assert math.isnan(h.mean)
    assert math.isnan(h.p50)


def test_histogram_percentile_validation():
    with pytest.raises(ValueError):
        Histogram().percentile(101)


def test_time_weighted_average():
    tw = TimeWeighted(initial=0.0, now=0.0)
    tw.set(10.0, now=5.0)    # 0 for [0,5)
    tw.set(0.0, now=15.0)    # 10 for [5,15)
    # average over [0, 20]: (0*5 + 10*10 + 0*5)/20 = 5
    assert tw.average(now=20.0) == pytest.approx(5.0)


def test_time_weighted_add_and_backwards_guard():
    tw = TimeWeighted(initial=1.0, now=0.0)
    tw.add(2.0, now=10.0)
    assert tw.value == 3.0
    with pytest.raises(ValueError):
        tw.set(0.0, now=5.0)
