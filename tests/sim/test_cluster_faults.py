"""Cluster-chaos properties: determinism, conservation, pay-as-you-go.

These are the hypothesis legs of the cluster-fault contract
(docs/robustness.md):

* an *empty* cluster fault plan — with or without a supervisor — is
  bit-identical to no cluster machinery at all, across seeds and jobs;
* the per-window conservation watchdog holds under *any* generated
  cluster fault plan (every arrival ends completed, rejected, lost or
  in-flight; every fabric send is handed over, pending, or accounted
  dropped) — the runs below would raise ``ConservationError`` otherwise;
* a worker SIGKILLed mid-run and respawned from the window log lands on
  exactly the counts and decisions of the unkilled run.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.plan import (FabricDelay, FabricLoss, FabricPartition,
                               FabricReorder, FaultPlan, MachineCrash,
                               PacketLoss, is_cluster_fault)
from repro.sim.crosscheck import cluster_chaos_scenario, cluster_crosscheck
from repro.sim.shard import ShardPlan, ShardSpec, run_sharded
from repro.sim.supervise import SupervisorConfig

_DURATION = 160_000.0


def _plan(seed=0):
    plan, _chaos = cluster_chaos_scenario(duration_ns=_DURATION, seed=seed)
    return plan


def _chaos(seed=0):
    _plan_, chaos = cluster_chaos_scenario(duration_ns=_DURATION, seed=seed)
    return chaos


def _digest(report, counters=True):
    parts = (
        {name: (t.completed, t.rejected, t.lost, t.p50_ns, t.p99_ns)
         for name, t in report.tenants.items()},
        [d.as_tuple() for d in report.decisions],
    )
    if counters:
        parts += (sorted(report.counters.items()),)
    return parts


# -- validation ---------------------------------------------------------------------


def test_cluster_faults_are_typed_and_serializable():
    chaos = _chaos()
    assert all(is_cluster_fault(f) for f in chaos.faults)
    assert FaultPlan.from_dict(chaos.to_dict()) == chaos


def test_machine_plan_rejects_cluster_faults():
    from repro.net.cluster import SimCluster
    from repro.net.topology import paper_testbed

    plan = FaultPlan(faults=(MachineCrash(shard="shard0", at=1.0),))
    with pytest.raises(ValueError, match="cluster-scope"):
        SimCluster(paper_testbed()).install_faults(plan)


def test_shard_plan_rejects_machine_faults_and_unknown_shards():
    base = _plan()
    with pytest.raises(ValueError, match="single-machine"):
        dataclasses.replace(base, cluster_faults=FaultPlan(
            faults=(PacketLoss("net.client0", 0.5),)))
    with pytest.raises(ValueError, match="unknown shard"):
        dataclasses.replace(base, cluster_faults=FaultPlan(
            faults=(MachineCrash(shard="nope", at=1.0),)))


def test_kill_shard_must_exist():
    with pytest.raises(ValueError, match="kill_shard"):
        run_sharded(_plan(), jobs=1,
                    supervisor=SupervisorConfig(kill_shard="nope",
                                                kill_window=1))


# -- the three properties -----------------------------------------------------------


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50),
       jobs=st.sampled_from([1, 4]))
def test_empty_cluster_plan_is_bit_identical(seed, jobs):
    """Chaos is pay-as-you-go: an empty plan + supervisor changes
    nothing, across seeds and both executors."""
    pristine = run_sharded(_plan(seed), jobs=jobs)
    armed = run_sharded(
        dataclasses.replace(_plan(seed), cluster_faults=FaultPlan()),
        jobs=jobs, supervisor=SupervisorConfig())
    assert _digest(armed) == _digest(pristine)


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50),
       loss=st.floats(min_value=0.0, max_value=0.6),
       crash_at=st.floats(min_value=_DURATION * 0.1,
                          max_value=_DURATION * 0.9),
       delay_ns=st.floats(min_value=1_000.0, max_value=60_000.0),
       partition=st.booleans(), reorder=st.booleans())
def test_conservation_and_jobs_identity_under_any_plan(
        seed, loss, crash_at, delay_ns, partition, reorder):
    """Any generated plan: the watchdog holds (no ConservationError,
    no hung requests) and jobs=4 equals the in-process reference."""
    faults = [MachineCrash(shard="shard0", at=crash_at,
                           recover_at=crash_at + _DURATION / 3),
              FabricLoss(rate=loss),
              FabricDelay(extra_ns=delay_ns, src="shard2")]
    if partition:
        faults.append(FabricPartition(a="shard2", b="shard3",
                                      start=crash_at))
    if reorder:
        faults.append(FabricReorder(dst="shard3"))
    chaotic = dataclasses.replace(
        _plan(seed), cluster_faults=FaultPlan(faults=tuple(faults),
                                              seed=seed + 3))
    ref = run_sharded(chaotic, jobs=1)
    par = run_sharded(chaotic, jobs=4)
    assert _digest(par) == _digest(ref)
    # Nothing hangs: every arrival is accounted for at the end.
    for t in ref.tenants.values():
        assert t.completed + t.rejected + t.lost > 0


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50),
       victim=st.sampled_from(["shard1", "shard2"]),
       window=st.integers(min_value=1, max_value=4))
def test_kill_and_respawn_reproduces_unkilled_run(seed, victim, window):
    """A SIGKILLed worker, respawned from the window log, changes no
    tenant outcome and no scheduling decision."""
    chaotic = dataclasses.replace(_plan(seed), cluster_faults=_chaos(seed))
    clean = run_sharded(chaotic, jobs=4)
    killed = run_sharded(chaotic, jobs=4,
                         supervisor=SupervisorConfig(kill_shard=victim,
                                                     kill_window=window))
    assert _digest(killed, counters=False) == _digest(clean, counters=False)
    assert killed.counters["supervisor.respawns"] >= 1


# -- end-to-end family --------------------------------------------------------------


def test_cluster_crosscheck_family_passes():
    result = cluster_crosscheck(duration_ns=_DURATION, seed=2)
    assert result.ok, result.failures()
    assert [name for name, _ok, _d in result.clauses] == [
        "jobs-identity", "empty-plan-baseline", "kill-respawn"]


def test_machine_crash_loses_requests_instead_of_hanging():
    """Requests bound to a dead machine resolve as lost, not hung: the
    run terminates and the loss shows up in the counters."""
    chaos = FaultPlan(faults=(
        MachineCrash(shard="shard1", at=_DURATION / 4),
        FabricLoss(rate=0.3),
    ), seed=5)
    chaotic = dataclasses.replace(_plan(), cluster_faults=chaos)
    report = run_sharded(chaotic, jobs=1)
    lost = sum(t.lost for t in report.tenants.values())
    assert lost > 0
    assert report.counters["sched.machine_lost"] > 0
    assert report.counters["cluster.dropped"] >= 0
