"""BatchSimulator must observably equal the reference Simulator."""

import random

from hypothesis import given, settings, strategies as st

from repro.sim import LOW, NORMAL, URGENT, Simulator
from repro.sim.batchq import _VECTOR_MIN, BatchSimulator

_PRIORITIES = (URGENT, NORMAL, LOW)


def _run_program(sim, seed, n_events, with_nested=True):
    """Schedule a seeded mess of timeouts; log the firing order."""
    rng = random.Random(seed)
    order = []

    def fire(event, tag):
        order.append((sim.now, tag))
        # Occasionally a firing event schedules more work *at the
        # current timestamp*, including URGENT overtakers — the case
        # where the batched queue must re-merge its live bucket.
        if with_nested and rng.random() < 0.25:
            delay = rng.choice((0.0, 0.0, rng.uniform(0, 50)))
            priority = rng.choice(_PRIORITIES)
            sim.timeout(delay, priority=priority).add_callback(
                lambda e, t=f"{tag}+n": fire(e, t))

    for i in range(n_events):
        # Few distinct timestamps -> large same-time batches.
        delay = float(rng.choice((0, 0, 10, 10, 10, 20, rng.uniform(0, 30))))
        priority = rng.choice(_PRIORITIES)
        sim.timeout(delay, priority=priority).add_callback(
            lambda e, t=str(i): fire(e, t))
    return order


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=60))
def test_batch_order_identical_to_reference(seed, n_events):
    ref_sim = Simulator()
    ref = _run_program(ref_sim, seed, n_events)
    ref_sim.run()
    batch_sim = BatchSimulator()
    got = _run_program(batch_sim, seed, n_events)
    batch_sim.run()
    assert got == ref
    assert batch_sim.now == ref_sim.now
    assert batch_sim.events_executed == ref_sim.events_executed


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.lists(st.floats(min_value=1.0, max_value=40.0),
                min_size=1, max_size=6))
def test_chunked_until_matches_one_shot(seed, horizons):
    one_shot = BatchSimulator()
    ref = _run_program(one_shot, seed, 40)
    one_shot.run()
    chunked = BatchSimulator()
    got = _run_program(chunked, seed, 40)
    at = 0.0
    for step in horizons:
        at += step
        chunked.run(until=at)
    chunked.run()
    assert got == ref


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=7))
def test_max_events_resumes_exactly(seed, stride):
    one_shot = BatchSimulator()
    ref = _run_program(one_shot, seed, 30)
    one_shot.run()
    stepped = BatchSimulator()
    got = _run_program(stepped, seed, 30)
    while stepped.peek() != float("inf"):
        stepped.run(max_events=stride)
    assert got == ref


def test_large_bucket_exercises_vector_sort_path():
    """A single timestamp with > _VECTOR_MIN events (argsort path when
    numpy is importable, plain sort otherwise) keeps FIFO-by-priority."""
    n = _VECTOR_MIN + 50
    ref_sim, batch_sim = Simulator(), BatchSimulator()
    ref, got = [], []
    for sim, log in ((ref_sim, ref), (batch_sim, got)):
        for i in range(n):
            priority = _PRIORITIES[i % 3]
            sim.timeout(10.0, priority=priority).add_callback(
                lambda e, i=i, log=log: log.append(i))
        sim.run()
    assert got == ref
    # Priorities win over insertion order inside the batch.
    assert got[0] % 3 == 0 and _PRIORITIES[got[-1] % 3] == LOW


def test_step_and_peek_skip_stale_heap_entries():
    sim = BatchSimulator()
    fired = []
    sim.timeout(5.0).add_callback(lambda e: fired.append("a"))
    sim.timeout(5.0).add_callback(lambda e: fired.append("b"))
    sim.timeout(9.0).add_callback(lambda e: fired.append("c"))
    assert sim.peek() == 5.0
    sim.step()
    sim.step()
    assert fired == ["a", "b"]
    assert sim.peek() == 9.0
    sim.step()
    assert fired == ["a", "b", "c"]
    assert sim.peek() == float("inf")


def test_processes_run_identically_on_batch_engine():
    """The process/resource layer doesn't know which queue runs it."""
    def program(sim, log):
        def worker(name, delay):
            yield sim.timeout(delay)
            log.append((sim.now, name))
            yield sim.timeout(delay)
            log.append((sim.now, name))
        for i, delay in enumerate((7.0, 3.0, 3.0, 11.0)):
            sim.process(worker(f"w{i}", delay))
        sim.run()

    ref, got = [], []
    program(Simulator(), ref)
    program(BatchSimulator(), got)
    assert got == ref
