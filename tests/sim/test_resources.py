"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Simulator, SimulationError, Resource, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    first, second, third = res.request(), res.request(), res.request()
    sim.run()
    assert first.processed and second.processed
    assert not third.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_fifo_handoff():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim, name, hold):
        req = res.request()
        yield req
        order.append((name, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(holder(sim, "a", 10))
    sim.process(holder(sim, "b", 10))
    sim.process(holder(sim, "c", 10))
    sim.run()
    assert order == [("a", 0.0), ("b", 10.0), ("c", 20.0)]


def test_release_without_request_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim).release()


def test_resource_capacity_validation():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    sim.run()
    assert got.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((item, sim.now))

    def producer(sim):
        yield sim.timeout(50)
        yield store.put("late")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [("late", 50.0)]


def test_store_is_fifo():
    sim = Simulator()
    store = Store(sim)
    for item in ("a", "b", "c"):
        store.put(item)
    values = [store.get() for _ in range(3)]
    sim.run()
    assert [v.value for v in values] == ["a", "b", "c"]


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("first")
    second = store.put("second")
    assert not second.triggered
    got = store.get()
    sim.run()
    assert got.value == "first"
    assert second.processed
    assert store.items == ("second",)


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


def test_store_capacity_validation():
    with pytest.raises(ValueError):
        Store(Simulator(), capacity=0)


def test_multiple_getters_served_in_order():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer(sim, name):
        item = yield store.get()
        results.append((name, item))

    sim.process(consumer(sim, "first"))
    sim.process(consumer(sim, "second"))

    def producer(sim):
        yield sim.timeout(1)
        yield store.put("x")
        yield store.put("y")

    sim.process(producer(sim))
    sim.run()
    assert results == [("first", "x"), ("second", "y")]
