"""Hypothesis properties of the span trees.

The two structural invariants the tracer guarantees on fault-free runs:

* **Conservation / tiling** — the non-instant children of every span
  are contiguous and exactly cover their parent: no gaps, no overlaps,
  no dangling time.  Summing leaf self-times therefore reproduces the
  end-to-end latency bit-for-bit.
* **Model agreement** — the root span equals the DES end-to-end
  latency, which the analytic :class:`~repro.core.latency.LatencyModel`
  already cross-checks within 15 % (tests/integration/test_des_vs_model
  pins that tolerance); here the *root span* must satisfy the same
  bound, proving the tracer observes the run it claims to.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.latency import LatencyModel
from repro.core.paths import CommPath, Opcode
from repro.net.topology import paper_testbed
from repro.trace import INSTANT_CATEGORIES, run_traced_verbs

TOL_NS = 1e-6

PATHS = st.sampled_from(list(CommPath))
OPS = st.sampled_from([Opcode.READ, Opcode.WRITE, Opcode.SEND])
PAYLOADS = st.sampled_from([0, 1, 64, 257, 4096, 16384])

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])


def assert_tiles(span):
    """Non-instant children are contiguous and exactly cover ``span``."""
    assert span.closed
    assert span.end >= span.start
    kids = [c for c in span.children if c.category not in INSTANT_CATEGORIES]
    if kids:
        cursor = span.start
        for child in kids:
            assert child.start == pytest.approx(cursor, abs=TOL_NS), (
                f"gap/overlap before {child.name} in {span.name}")
            cursor = child.end
        assert cursor == pytest.approx(span.end, abs=TOL_NS), (
            f"tail gap after last child of {span.name}")
    for instant in span.children:
        if instant.category in INSTANT_CATEGORIES:
            assert instant.start == instant.end
            assert span.start <= instant.start <= span.end
    for child in kids:
        assert_tiles(child)


@settings(max_examples=25, **COMMON)
@given(path=PATHS, op=OPS, payload=PAYLOADS)
def test_children_tile_parent_without_gaps_or_overlaps(path, op, payload):
    tracer = run_traced_verbs(path, op, payload)
    trace = tracer.last()
    assert_tiles(trace.root)


@settings(max_examples=25, **COMMON)
@given(path=PATHS, op=OPS, payload=PAYLOADS)
def test_leaf_self_times_sum_to_root_duration(path, op, payload):
    tracer = run_traced_verbs(path, op, payload)
    trace = tracer.last()
    total = sum(span.self_time() for span in trace.spans()
                if not span.instant)
    assert total == pytest.approx(trace.root.duration, abs=1e-6)


@settings(max_examples=20, **COMMON)
@given(path=PATHS, op=st.sampled_from([Opcode.READ, Opcode.WRITE]),
       payload=st.sampled_from([64, 4096]))
def test_root_span_matches_analytic_model_within_tolerance(path, op, payload):
    tracer = run_traced_verbs(path, op, payload)
    root = tracer.last().root
    model = LatencyModel(paper_testbed()).latency(path, op, payload).total
    assert root.duration == pytest.approx(model, rel=0.15)


@settings(max_examples=10, **COMMON)
@given(path=PATHS, op=OPS, payload=st.sampled_from([64, 4096]),
       count=st.integers(min_value=2, max_value=4))
def test_every_trace_of_a_closed_loop_tiles(path, op, payload, count):
    tracer = run_traced_verbs(path, op, payload, count=count)
    assert len(tracer) == count
    for trace in tracer.traces:
        assert_tiles(trace.root)
    # Closed loop: verb i+1 posts after verb i completes.
    for earlier, later in zip(tracer.traces, tracer.traces[1:]):
        assert later.root.start >= earlier.root.end
