"""Golden-trace regression suite.

Each case pins the complete span tree — every component traversal with
its exact nanosecond stamps — of one verb on one path.  Any change to
the DES datapath's event sequence or to the tracer's serialization
shows up here as a byte-level diff against the checked-in JSON.

The goldens are regenerated ONLY via::

    PYTHONPATH=src python scripts/update_golden_traces.py

so a timing change is always an explicit, reviewable commit.
"""

import json

import pytest

from repro.trace import VerbTrace

from tests.trace.golden_cases import CASES, golden_file, render

IDS = [case.slug for case in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_trace_matches_golden(case):
    with open(golden_file(case)) as handle:
        expected = handle.read()
    assert render(case, seed=0) == expected, (
        f"{case.slug}: span tree drifted from the golden file; if the "
        "timing change is intentional, regenerate with "
        "scripts/update_golden_traces.py")


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_trace_is_bit_identical_across_runs(case):
    assert render(case, seed=0) == render(case, seed=0)


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_trace_is_bit_identical_across_seeds(case):
    # The seed randomizes payload *contents* only; span timing is
    # data-independent.
    assert render(case, seed=0) == render(case, seed=7)


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_golden_roundtrips_through_verbtrace(case):
    with open(golden_file(case)) as handle:
        text = handle.read()
    trace = VerbTrace.from_json(text)
    assert trace.to_json() + "\n" == text
    assert trace.meta["verb"] == case.op.value
    assert trace.meta["payload"] == case.payload
    assert trace.meta["path"] == case.path.value


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_golden_is_canonical_json(case):
    with open(golden_file(case)) as handle:
        text = handle.read()
    data = json.loads(text)
    assert json.dumps(data, indent=2, sort_keys=True) + "\n" == text
