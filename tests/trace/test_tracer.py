"""Unit tests for the tracer, span trees, attribution and export."""

import json

import pytest

from repro.core.paths import CommPath, Opcode
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.trace import (Attribution, Span, Tracer, attribution_report,
                         chrome_trace, chrome_trace_json, classify_path,
                         run_traced_verbs, span_tree_text, write_chrome_trace)


def make_cluster(nic="snic", n_clients=2):
    return SimCluster(paper_testbed(), n_clients=n_clients, nic=nic)


# -- Span mechanics -----------------------------------------------------------


def test_span_self_time_excludes_covered_children_and_instants():
    root = Span("verb", "verb", 0.0, 100.0)
    child = Span("dma", "dma", 10.0, 60.0)
    note = Span("memory_write", "memory", 60.0, 60.0)
    root.children = [child, note]
    assert note.instant and not child.instant
    assert root.self_time() == 50.0
    assert child.self_time() == 50.0


def test_span_roundtrip_through_dict():
    span = Span("pcie:x", "pcie", 1.5, 4.25, attrs={"bytes": 64, "tlps": 1})
    span.children.append(Span("inner", "nic", 2.0, 3.0))
    clone = Span.from_dict(span.to_dict())
    assert clone.to_dict() == span.to_dict()
    assert [c.name for c in clone.children] == ["inner"]


def test_walk_is_depth_first():
    root = Span("a", "verb", 0, 3)
    b, c = Span("b", "nic", 0, 2), Span("c", "nic", 2, 3)
    b.children.append(Span("d", "pcie", 0, 1))
    root.children = [b, c]
    assert [s.name for s in root.walk()] == ["a", "b", "d", "c"]


# -- Tracer emission rules ----------------------------------------------------


def test_begin_outside_a_traced_verb_records_nothing():
    cluster = make_cluster()
    tracer = Tracer().install(cluster)
    assert tracer.begin("x", "nic") is None
    tracer.end(None)  # tolerated
    assert tracer.instant("y", "memory") is None
    assert len(tracer) == 0


def test_end_closes_dangling_children():
    tracer = run_traced_verbs(CommPath.SNIC1, Opcode.WRITE, 64)
    trace = tracer.last()
    # The run closed cleanly: only the root remains on the stack and
    # every span is closed.
    assert trace.stack == [trace.root]
    assert all(span.closed for span in trace.spans())


def test_last_on_empty_tracer_raises():
    from repro.trace import TraceError

    with pytest.raises(TraceError):
        Tracer().last()


def test_clear_drops_traces():
    tracer = run_traced_verbs(CommPath.SNIC1, Opcode.READ, 64, count=2)
    assert len(tracer) == 2
    tracer.clear()
    assert len(tracer) == 0


def test_uninstalled_tracer_allows_reuse_of_cluster():
    cluster = make_cluster()
    tracer = Tracer().install(cluster)
    tracer.uninstall()
    other = Tracer().install(cluster)
    assert cluster.sim.tracer is other


# -- path classification ------------------------------------------------------


def test_classify_paths():
    cluster = make_cluster()
    host = cluster.node("host")
    soc = cluster.node("soc")
    client = cluster.node("client0")
    assert classify_path(cluster, client, host) == "snic-1"
    assert classify_path(cluster, client, soc) == "snic-2"
    assert classify_path(cluster, host, soc) == "snic-3-h2s"
    assert classify_path(cluster, soc, host) == "snic-3-s2h"
    assert classify_path(cluster, host, client) == "network"
    assert classify_path(cluster, client, cluster.node("client1")) == "network"


def test_classify_rnic_baseline():
    cluster = make_cluster(nic="rnic")
    assert classify_path(cluster, cluster.node("client0"),
                         cluster.node("host")) == "rnic-1"


# -- attribution --------------------------------------------------------------


def test_attribution_sums_to_total():
    tracer = run_traced_verbs(CommPath.SNIC3_H2S, Opcode.WRITE, 4096)
    attribution = Attribution(tracer.traces)
    by_cat = attribution.by_category()
    assert sum(by_cat.values()) == pytest.approx(attribution.total_ns)
    assert by_cat.get("pcie", 0) > 0  # the internal fabric shows up
    table = attribution.table()
    assert "TOTAL" in table and "100.0%" in table


def test_path3_attribution_shows_double_pcie1():
    """Anomaly A2: a H2S transfer crosses PCIe1 twice (once per DMA leg)."""
    tracer = run_traced_verbs(CommPath.SNIC3_H2S, Opcode.WRITE, 4096)
    pcie1_spans = [s for s in tracer.last().spans()
                   if s.name.endswith("pcie1")]
    assert len(pcie1_spans) >= 2
    dma_spans = [s for s in tracer.last().spans() if s.category == "dma"]
    assert {s.name for s in dma_spans} == {"dma_read", "dma_write"}


def test_attribution_groups_by_path_and_device():
    snic = run_traced_verbs(CommPath.SNIC1, Opcode.READ, 64)
    rnic = run_traced_verbs(CommPath.RNIC1, Opcode.READ, 64)
    attribution = Attribution(snic.traces + rnic.traces)
    assert set(attribution.by_path()) == {"snic-1", "rnic-1"}
    devices = attribution.by_device()
    assert set(devices) == {"snic", "rnic"}
    # The SmartNIC's extra switch hop + PCIe1 leg is the latency tax.
    assert devices["snic"].total_ns > devices["rnic"].total_ns
    report = attribution_report(snic.traces + rnic.traces)
    assert "path snic-1" in report and "path rnic-1" in report


def test_span_tree_text_renders_every_span():
    tracer = run_traced_verbs(CommPath.SNIC2, Opcode.READ, 256)
    text = span_tree_text(tracer.last().root)
    for span in tracer.last().spans():
        assert span.name in text


# -- chrome export ------------------------------------------------------------


def test_chrome_trace_structure():
    tracer = run_traced_verbs(CommPath.SNIC1, Opcode.WRITE, 4096, count=2)
    doc = chrome_trace(tracer.traces)
    events = doc["traceEvents"]
    assert events[0] == {"name": "process_name", "ph": "M", "pid": 1,
                         "args": {"name": "repro-sim"}}
    xs = [e for e in events if e["ph"] == "X"]
    assert {e["tid"] for e in xs} == {1, 2}
    spans = sum(1 for t in tracer.traces for _ in t.spans())
    assert len(xs) == spans
    root_events = [e for e in xs if e["name"].startswith("write:")]
    for event, trace in zip(root_events, tracer.traces):
        assert event["ts"] == trace.root.start / 1000.0
        assert event["dur"] == trace.root.duration / 1000.0
        assert event["args"]["dur_ns"] == trace.root.duration


def test_chrome_trace_counter_events_need_telemetry():
    plain = run_traced_verbs(CommPath.SNIC1, Opcode.WRITE, 64)
    assert not [e for e in chrome_trace(plain.traces)["traceEvents"]
                if e["ph"] == "C"]
    with_counters = run_traced_verbs(CommPath.SNIC1, Opcode.WRITE, 64,
                                     telemetry=True)
    counter_events = [e for e in chrome_trace(with_counters.traces)
                      ["traceEvents"] if e["ph"] == "C"]
    assert counter_events
    assert all(e["cat"] == "counter" for e in counter_events)


def test_chrome_trace_json_is_valid_and_writable(tmp_path):
    tracer = run_traced_verbs(CommPath.SNIC2, Opcode.SEND, 128)
    text = chrome_trace_json(tracer.traces)
    json.loads(text)
    target = tmp_path / "trace.json"
    write_chrome_trace(tracer.traces, str(target))
    assert json.loads(target.read_text())["otherData"]["generator"] == \
        "repro.trace"


# -- telemetry integration ----------------------------------------------------


def test_traced_verb_captures_nonzero_counter_deltas():
    tracer = run_traced_verbs(CommPath.SNIC2, Opcode.WRITE, 4096,
                              telemetry=True)
    counters = tracer.last().counters
    assert counters
    # 4 KB to the SoC at 128 B MTU: 32 data TLPs over PCIe1.
    assert counters["pcie1.tlps_to_nic"] == 32
    assert all(value != 0 for value in counters.values())


def test_untelemetered_trace_has_no_counters():
    tracer = run_traced_verbs(CommPath.SNIC1, Opcode.READ, 64)
    assert tracer.last().counters is None
