"""The canonical golden-trace cases, shared by the regression test and
``scripts/update_golden_traces.py``.

One verb per numbered path of Fig 2 plus the RNIC path-① baseline.
``render()`` is the single definition of the canonical serialization;
anything that changes its output must regenerate the golden files (and
thereby show up in review as a span-timing diff).
"""

from __future__ import annotations

import os
from typing import NamedTuple

from repro.core.paths import CommPath, Opcode

#: Directory holding the checked-in golden span trees.
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


class GoldenCase(NamedTuple):
    slug: str
    path: CommPath
    op: Opcode
    payload: int


CASES = (
    GoldenCase("rnic-1-write-4k", CommPath.RNIC1, Opcode.WRITE, 4096),
    GoldenCase("snic-1-write-4k", CommPath.SNIC1, Opcode.WRITE, 4096),
    GoldenCase("snic-2-write-4k", CommPath.SNIC2, Opcode.WRITE, 4096),
    GoldenCase("snic-3-h2s-write-4k", CommPath.SNIC3_H2S, Opcode.WRITE, 4096),
)


def golden_file(case: GoldenCase) -> str:
    return os.path.join(GOLDEN_DIR, f"{case.slug}.json")


def render(case: GoldenCase, seed: int = 0) -> str:
    """The canonical JSON a case's span tree serializes to."""
    from repro.trace import run_traced_verbs

    tracer = run_traced_verbs(case.path, case.op, case.payload, seed=seed)
    return tracer.last().to_json() + "\n"
