"""Tracer-off invariance: tracing must never change the simulation.

The tracer's design contract is that spans only *read* the clock — no
instrumentation point adds, removes, or reorders a simulation event.
So a traced run must produce bit-identical completions, final clock,
event count, and memory contents to the same run untraced (extending
PR 3's zero-fault bit-identity pattern to the tracing hooks).
"""

import pytest

from repro.core.paths import Opcode
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.trace import Tracer, TraceError
from repro.units import KB


def run_workload(nic, traced, ops=6):
    """A mixed closed-loop workload; returns every observable output."""
    cluster = SimCluster(paper_testbed(), n_clients=1, nic=nic)
    ctx = RdmaContext(cluster)
    responder = "host"
    local = ctx.reg_mr("client0", 64 * KB)
    remote = ctx.reg_mr(responder, 64 * KB)
    qp, peer = ctx.connect_rc("client0", responder)
    local.write_local(0, bytes(range(256)) * 8)
    for i in range(ops):
        peer.post_recv(1000 + i, remote, 8 * KB, 1 * KB)

    tracer = Tracer() if traced else None
    if tracer is not None:
        tracer.install(cluster)

    def driver():
        for i in range(ops):
            yield qp.post_write(i, local, remote, 4 * KB)
            yield qp.post_read(100 + i, local, remote, 4 * KB)
            yield qp.post_send(200 + i, local.read_local(0, 512))

    cluster.sim.process(driver())
    cluster.sim.run()
    if tracer is not None:
        tracer.uninstall()

    completions = [(c.wr_id, c.opcode.value, c.status.value, c.byte_len,
                    c.timestamp) for c in qp.send_cq.poll(1000)]
    received = [(c.wr_id, c.status.value, c.byte_len, c.timestamp)
                for c in peer.recv_cq.poll(1000)]
    return {
        "completions": completions,
        "received": received,
        "now": cluster.sim.now,
        "events": cluster.sim.events_executed,
        "memory": bytes(remote.buffer),
        "stats": dict(cluster.stats),
    }, tracer


@pytest.mark.parametrize("nic", ["snic", "rnic"])
def test_traced_run_is_bit_identical_to_untraced(nic):
    untraced, _ = run_workload(nic, traced=False)
    traced, tracer = run_workload(nic, traced=True)
    assert traced == untraced
    # ... and the tracer actually observed the whole run.
    assert len(tracer) == 18
    assert all(t.root.closed for t in tracer.traces)


def test_untraced_simulator_has_no_tracer_overhead_state():
    cluster = SimCluster(paper_testbed(), n_clients=1)
    assert cluster.sim.tracer is None
    tracer = Tracer().install(cluster)
    assert cluster.sim.tracer is tracer
    tracer.uninstall()
    assert cluster.sim.tracer is None


def test_double_install_is_rejected():
    cluster = SimCluster(paper_testbed(), n_clients=1)
    Tracer().install(cluster)
    with pytest.raises(TraceError):
        Tracer().install(cluster)
