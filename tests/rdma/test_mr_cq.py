"""Tests for memory regions, protection domains and completion queues."""

import pytest

from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import AccessError, Completion, CompletionQueue, RdmaContext
from repro.rdma.opcodes import CompletionStatus, WorkOpcode


@pytest.fixture()
def ctx():
    return RdmaContext(SimCluster(paper_testbed()))


def test_reg_mr_and_local_io(ctx):
    mr = ctx.reg_mr("host", 1024)
    mr.write_local(10, b"hello")
    assert mr.read_local(10, 5) == b"hello"
    assert mr.length == 1024


def test_mr_bounds_checked(ctx):
    mr = ctx.reg_mr("host", 64)
    with pytest.raises(AccessError):
        mr.write_local(60, b"toolong")
    with pytest.raises(AccessError):
        mr.read_local(-1, 4)


def test_mr_length_validation(ctx):
    with pytest.raises(ValueError):
        ctx.reg_mr("host", 0)


def test_dma_access_requires_rkey(ctx):
    mr = ctx.reg_mr("soc", 64)
    mr.write_local(0, b"data")
    assert mr.dma_read(0, 4, mr.rkey) == b"data"
    with pytest.raises(AccessError):
        mr.dma_read(0, 4, mr.rkey + 1)
    with pytest.raises(AccessError):
        mr.dma_write(0, b"x", 0xdead)


def test_pd_budget_enforced(ctx):
    soc_bytes = ctx.cluster.node("soc").memory_bytes
    ctx.reg_mr("soc", soc_bytes // 2)
    with pytest.raises(MemoryError):
        ctx.reg_mr("soc", soc_bytes)


def test_pd_dereg_frees_budget(ctx):
    pd = ctx.pd("host")
    mr = pd.reg_mr(1024)
    assert pd.lookup(mr.rkey) is mr
    pd.dereg_mr(mr)
    assert pd.lookup(mr.rkey) is None
    with pytest.raises(AccessError):
        pd.dereg_mr(mr)


def test_keys_are_unique(ctx):
    a = ctx.reg_mr("host", 64)
    b = ctx.reg_mr("host", 64)
    assert len({a.lkey, a.rkey, b.lkey, b.rkey}) == 4


# -- CQ -------------------------------------------------------------------------


def make_completion(sim, wr_id=1):
    return Completion(wr_id=wr_id, opcode=WorkOpcode.READ,
                      status=CompletionStatus.SUCCESS, byte_len=64,
                      timestamp=sim.now)


def test_cq_push_poll(ctx):
    sim = ctx.cluster.sim
    cq = CompletionQueue(sim)
    cq.push(make_completion(sim, 1))
    cq.push(make_completion(sim, 2))
    assert len(cq) == 2
    polled = cq.poll()
    assert [c.wr_id for c in polled] == [1, 2]
    assert len(cq) == 0
    assert polled[0].ok


def test_cq_poll_limit(ctx):
    sim = ctx.cluster.sim
    cq = CompletionQueue(sim)
    for i in range(5):
        cq.push(make_completion(sim, i))
    assert len(cq.poll(max_entries=2)) == 2
    with pytest.raises(ValueError):
        cq.poll(max_entries=0)


def test_cq_overflow_drops(ctx):
    sim = ctx.cluster.sim
    cq = CompletionQueue(sim, depth=2)
    for i in range(4):
        cq.push(make_completion(sim, i))
    assert len(cq) == 2
    assert cq.overflows == 2


def test_cq_wait_fires_on_push(ctx):
    sim = ctx.cluster.sim
    cq = CompletionQueue(sim)
    got = []

    def waiter():
        completion = yield cq.wait()
        got.append(completion.wr_id)

    sim.process(waiter())
    sim.run()
    assert got == []
    cq.push(make_completion(sim, 7))
    sim.run()
    assert got == [7]


def test_cq_depth_validation(ctx):
    with pytest.raises(ValueError):
        CompletionQueue(ctx.cluster.sim, depth=0)
