"""Tests for the QP state machine, queue depths, flushing and SRQs."""

import pytest

from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import (
    CompletionStatus,
    QPError,
    QPState,
    QPType,
    RdmaContext,
    SharedReceiveQueue,
)


@pytest.fixture()
def ctx():
    return RdmaContext(SimCluster(paper_testbed()))


# -- state machine ------------------------------------------------------------


def test_initial_states(ctx):
    rc = ctx.create_qp("client0", QPType.RC)
    ud = ctx.create_qp("client0", QPType.UD)
    assert rc.state is QPState.RESET
    assert ud.state is QPState.RTS


def test_connect_moves_both_ends_to_rts(ctx):
    a, b = ctx.connect_rc("client0", "host")
    assert a.state is QPState.RTS
    assert b.state is QPState.RTS


def test_manual_modify_qp_walk(ctx):
    qp = ctx.create_qp("client0", QPType.RC)
    qp.modify_qp(QPState.INIT)
    qp.modify_qp(QPState.RTR)
    qp.modify_qp(QPState.RTS)
    assert qp.state is QPState.RTS


def test_illegal_transition_rejected(ctx):
    qp = ctx.create_qp("client0", QPType.RC)
    with pytest.raises(QPError):
        qp.modify_qp(QPState.RTS)  # RESET -> RTS skips INIT/RTR
    qp.modify_qp(QPState.INIT)
    with pytest.raises(QPError):
        qp.modify_qp(QPState.INIT)


def test_error_and_reset_reachable_from_anywhere(ctx):
    qp = ctx.create_qp("client0", QPType.RC)
    qp.modify_qp(QPState.ERROR)
    assert qp.state is QPState.ERROR
    qp.modify_qp(QPState.RESET)
    assert qp.state is QPState.RESET


def test_cannot_connect_non_reset_qp(ctx):
    a = ctx.create_qp("client0", QPType.RC)
    b = ctx.create_qp("host", QPType.RC)
    a.modify_qp(QPState.INIT)
    with pytest.raises(QPError):
        a.connect(b)


def test_post_send_requires_rts(ctx):
    a = ctx.create_qp("client0", QPType.RC)
    b = ctx.create_qp("host", QPType.RC)
    a.peer = b  # bypass connect to leave the state at RESET
    b.peer = a
    mr = ctx.reg_mr("client0", 64)
    server = ctx.reg_mr("host", 64)
    with pytest.raises(QPError):
        a.post_read(1, mr, server, 8)


def test_post_recv_requires_non_reset(ctx):
    qp = ctx.create_qp("client0", QPType.RC)
    mr = ctx.reg_mr("client0", 64)
    with pytest.raises(QPError):
        qp.post_recv(1, mr)
    qp.modify_qp(QPState.INIT)
    qp.post_recv(1, mr)


# -- error flushing -----------------------------------------------------------------


def test_remote_access_error_wedges_the_qp(ctx):
    server = ctx.reg_mr("host", 64)
    local = ctx.reg_mr("client0", 64)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_read(1, local, server, 8, rkey=0xBAD)
    ctx.cluster.sim.run()
    assert qp.state is QPState.ERROR


def test_posts_after_error_flush(ctx):
    server = ctx.reg_mr("host", 64)
    local = ctx.reg_mr("client0", 64)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_read(1, local, server, 8, rkey=0xBAD)
    ctx.cluster.sim.run()
    qp.send_cq.poll()
    qp.post_read(2, local, server, 8)
    ctx.cluster.sim.run()
    flushed = qp.send_cq.poll()[0]
    assert flushed.wr_id == 2
    assert flushed.status is CompletionStatus.FLUSH_ERROR
    # The flushed WR never touched the wire.
    assert local.read_local(0, 8) == bytes(8)


def test_error_completions_ignore_unsignaled(ctx):
    """Failed WRs always generate a completion, even unsignaled ones."""
    server = ctx.reg_mr("host", 64)
    local = ctx.reg_mr("client0", 64)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_read(1, local, server, 8, rkey=0xBAD, signaled=False)
    ctx.cluster.sim.run()
    assert len(qp.send_cq) == 1


# -- queue depths ------------------------------------------------------------------------


def test_send_queue_depth_enforced(ctx):
    server = ctx.reg_mr("host", 1 << 16)
    local = ctx.reg_mr("client0", 1 << 16)
    a = ctx.create_qp("client0", QPType.RC, srq=None)
    b = ctx.create_qp("host", QPType.RC)
    a.max_send_wr = 4
    a.connect(b)
    for i in range(4):
        a.post_read(i, local, server, 8)
    with pytest.raises(QPError):
        a.post_read(99, local, server, 8)
    ctx.cluster.sim.run()
    assert a.outstanding_sends == 0  # drained after completion
    a.post_read(100, local, server, 8)  # admissible again


def test_recv_queue_depth_enforced(ctx):
    qp = ctx.create_qp("host", QPType.UD)
    qp.max_recv_wr = 2
    mr = ctx.reg_mr("host", 1024)
    qp.post_recv(1, mr)
    qp.post_recv(2, mr)
    with pytest.raises(QPError):
        qp.post_recv(3, mr)


def test_depth_validation(ctx):
    from repro.rdma.cq import CompletionQueue

    sim = ctx.cluster.sim
    node = ctx.cluster.node("client0")
    from repro.rdma.qp import QueuePair
    with pytest.raises(QPError):
        QueuePair(node, QPType.RC, CompletionQueue(sim), CompletionQueue(sim),
                  max_send_wr=0)


# -- shared receive queues ----------------------------------------------------------------


def test_srq_shared_between_qps(ctx):
    srq = ctx.create_srq("host")
    mr = ctx.reg_mr("host", 4096)
    for i in range(4):
        srq.post_recv(i, mr, offset=i * 64, length=64)
    server_a = ctx.create_qp("host", QPType.UD, srq=srq)
    server_b = ctx.create_qp("host", QPType.UD, srq=srq)
    sender = ctx.create_qp("client0", QPType.UD)
    sender.post_send(1, b"to-a", dest=server_a)
    sender.post_send(2, b"to-b", dest=server_b)
    ctx.cluster.sim.run()
    assert len(srq) == 2  # two buffers consumed from the shared pool
    assert len(server_a.recv_cq) == 1
    assert len(server_b.recv_cq) == 1


def test_srq_qp_rejects_direct_post_recv(ctx):
    srq = ctx.create_srq("host")
    qp = ctx.create_qp("host", QPType.UD, srq=srq)
    mr = ctx.reg_mr("host", 64)
    with pytest.raises(QPError):
        qp.post_recv(1, mr)


def test_srq_node_mismatch_rejected(ctx):
    srq = ctx.create_srq("host")
    with pytest.raises(QPError):
        ctx.create_qp("client0", QPType.UD, srq=srq)


def test_srq_validation(ctx):
    node = ctx.cluster.node("host")
    with pytest.raises(ValueError):
        SharedReceiveQueue(node, max_wr=0)
    srq = SharedReceiveQueue(node, max_wr=1)
    mr = ctx.reg_mr("host", 64)
    srq.post_recv(1, mr)
    with pytest.raises(OverflowError):
        srq.post_recv(2, mr)
    with pytest.raises(ValueError):
        SharedReceiveQueue(node).post_recv(1, mr, offset=100, length=10)


def test_srq_exhaustion_drops(ctx):
    srq = ctx.create_srq("host")
    server = ctx.create_qp("host", QPType.UD, srq=srq)
    sender = ctx.create_qp("client0", QPType.UD)
    sender.post_send(1, b"no-buffer", dest=server)
    ctx.cluster.sim.run()
    assert server.dropped_receives == 1
