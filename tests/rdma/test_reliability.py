"""The RC reliability protocol: retransmission, RNR, and recovery."""

import pytest

from repro.faults import FaultPlan, LinkDown
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.rdma.opcodes import CompletionStatus
from repro.rdma.qp import QPState, QPType


def make_ctx(plan=None, **cluster_kwargs):
    cluster = SimCluster(paper_testbed(), n_clients=1, **cluster_kwargs)
    if plan is not None:
        cluster.install_faults(plan)
    return RdmaContext(cluster)


def run_one_write(ctx, payload=1024):
    """Post one RC WRITE client->host and return its completion."""
    local = ctx.reg_mr("client0", payload)
    remote = ctx.reg_mr("host", payload)
    qp, _ = ctx.connect_rc("client0", "host")
    sim = ctx.cluster.sim

    def driver():
        yield qp.post_write(1, local, remote, payload)

    sim.process(driver())
    sim.run()
    comps = qp.send_cq.poll()
    assert len(comps) == 1
    return qp, comps[0]


def test_transient_loss_is_retransmitted_transparently():
    # The link is down just long enough to kill the first attempt.
    ctx = make_ctx(FaultPlan(faults=(
        LinkDown("net.client0", end=1_000.0),)))
    qp, completion = run_one_write(ctx)
    assert completion.status is CompletionStatus.SUCCESS
    assert ctx.cluster.stats["rdma.retransmits"] == 1.0
    assert qp.state is QPState.RTS


def test_retransmit_pays_the_ack_timeout():
    lossless = make_ctx()
    _, clean = run_one_write(lossless)
    lossy = make_ctx(FaultPlan(faults=(
        LinkDown("net.client0", end=1_000.0),)))
    qp, retried = run_one_write(lossy)
    # One retransmission costs at least the initial ack timeout.
    assert retried.timestamp >= clean.timestamp + qp.timeout_ns


def test_persistent_loss_exhausts_retries_and_wedges_the_qp():
    ctx = make_ctx(FaultPlan(faults=(LinkDown("net.client0"),)))
    qp, completion = run_one_write(ctx)
    assert completion.status is CompletionStatus.RETRY_EXC_ERR
    assert qp.state is QPState.ERROR
    assert ctx.cluster.stats["rdma.retransmits"] == qp.retry_cnt


def test_posts_on_a_wedged_qp_flush():
    ctx = make_ctx(FaultPlan(faults=(LinkDown("net.client0"),)))
    qp, _ = run_one_write(ctx)
    assert qp.state is QPState.ERROR
    local = ctx.reg_mr("client0", 64)
    remote = ctx.reg_mr("host", 64)
    sim = ctx.cluster.sim

    def driver():
        yield qp.post_write(2, local, remote, 64)

    sim.process(driver())
    sim.run()
    (flushed,) = qp.send_cq.poll()
    assert flushed.status is CompletionStatus.FLUSH_ERROR


def test_recover_returns_the_qp_to_service():
    # Link down long enough to exhaust all retries, then heals.
    ctx = make_ctx(FaultPlan(faults=(
        LinkDown("net.client0", end=2_000_000.0),)))
    qp, completion = run_one_write(ctx)
    assert completion.status is CompletionStatus.RETRY_EXC_ERR
    qp.recover()
    assert qp.state is QPState.RTS
    assert ctx.cluster.stats["qp.recoveries"] == 1.0
    local = ctx.reg_mr("client0", 64)
    remote = ctx.reg_mr("host", 64)
    sim = ctx.cluster.sim

    def driver():
        yield sim.timeout(2_000_000.0)  # wait out the outage
        yield qp.post_write(3, local, remote, 64)

    sim.process(driver())
    sim.run()
    (completion,) = qp.send_cq.poll()
    assert completion.status is CompletionStatus.SUCCESS


def test_rc_send_without_recv_buffer_draws_rnr_then_succeeds():
    ctx = make_ctx()
    a, b = ctx.connect_rc("client0", "host")
    mr = ctx.reg_mr("host", 4096)
    sim = ctx.cluster.sim

    def sender():
        yield a.post_send(1, b"payload")

    def late_receiver():
        # Posted only after the first attempt has already bounced.
        yield sim.timeout(30_000.0)
        b.post_recv(1, mr)

    sim.process(sender())
    sim.process(late_receiver())
    sim.run()
    (completion,) = a.send_cq.poll()
    assert completion.status is CompletionStatus.SUCCESS
    assert ctx.cluster.stats["rdma.rnr_naks"] >= 1.0
    (recv,) = b.recv_cq.poll()
    assert recv.ok


def test_rnr_retries_exhaust_into_a_fatal_status():
    ctx = make_ctx()
    a, b = ctx.connect_rc("client0", "host")
    sim = ctx.cluster.sim

    def sender():
        yield a.post_send(1, b"payload")

    sim.process(sender())
    sim.run()
    (completion,) = a.send_cq.poll()
    assert completion.status is CompletionStatus.RNR_RETRY_EXC_ERR
    assert a.state is QPState.ERROR
    # The RNR NAK count includes the first bounce plus every retry.
    assert ctx.cluster.stats["rdma.rnr_naks"] == a.rnr_retry + 1.0


def test_ud_send_stays_fire_and_forget():
    ctx = make_ctx(FaultPlan(faults=(LinkDown("net.client0"),)))
    a = ctx.create_qp("client0", QPType.UD)
    b = ctx.create_qp("host", QPType.UD)
    sim = ctx.cluster.sim

    def sender():
        yield a.post_send(1, b"datagram", dest=b)

    sim.process(sender())
    sim.run()
    (completion,) = a.send_cq.poll()
    # The datagram died on the wire, but UD never learns about it.
    assert completion.status is CompletionStatus.SUCCESS
    assert ctx.cluster.stats.get("rdma.retransmits", 0.0) == 0.0


def test_fault_free_write_adds_no_reliability_events():
    plain = SimCluster(paper_testbed(), n_clients=1)
    armed = SimCluster(paper_testbed(), n_clients=1)
    armed.install_faults(FaultPlan())  # empty: must cost nothing

    results = []
    for cluster in (plain, armed):
        ctx = RdmaContext(cluster)
        _, completion = run_one_write(ctx)
        results.append((completion.timestamp, cluster.sim.now,
                        cluster.sim.events_executed))
    assert results[0] == results[1]


def test_exhaustion_statuses_are_distinct():
    assert CompletionStatus.RETRY_EXC_ERR is not CompletionStatus.RNR_RETRY_EXC_ERR
    with pytest.raises(ValueError):
        CompletionStatus("not-a-status")
