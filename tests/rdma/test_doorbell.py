"""Tests for doorbell batching at the posting layer."""

import pytest

from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import DoorbellBatcher, RdmaContext


@pytest.fixture()
def ctx():
    return RdmaContext(SimCluster(paper_testbed()))


def test_default_costs_follow_node_side(ctx):
    soc_qp, _ = ctx.connect_rc("soc", "host")
    host_qp, _ = ctx.connect_rc("host", "soc")
    client_qp, _ = ctx.connect_rc("client0", "host")
    assert DoorbellBatcher(soc_qp).costs is ctx.cluster.snic.soc.doorbell
    assert (DoorbellBatcher(host_qp).costs
            is ctx.cluster.snic.spec.host_doorbell)
    assert (DoorbellBatcher(client_qp).costs
            is ctx.cluster.testbed.client_doorbell)


def test_flush_posts_everything(ctx):
    soc_mr = ctx.reg_mr("soc", 1 << 16)
    host_mr = ctx.reg_mr("host", 1 << 16)
    host_mr.write_local(0, bytes(range(16)) * 64)
    qp, _ = ctx.connect_rc("soc", "host")
    batcher = DoorbellBatcher(qp)
    for i in range(8):
        batcher.queue_read(i, soc_mr, host_mr, 64,
                           local_offset=i * 64, remote_offset=i * 64)
    assert len(batcher) == 8
    processes = batcher.flush()
    assert len(processes) == 8
    assert len(batcher) == 0
    ctx.cluster.sim.run()
    assert soc_mr.read_local(0, 64) == host_mr.read_local(0, 64)
    assert batcher.flushes == 1
    assert batcher.posted == 8


def test_empty_flush_is_noop(ctx):
    qp, _ = ctx.connect_rc("soc", "host")
    batcher = DoorbellBatcher(qp)
    assert batcher.flush() == []
    assert batcher.flushes == 0


def test_batch_overflow_rejected(ctx):
    soc_mr = ctx.reg_mr("soc", 1 << 16)
    host_mr = ctx.reg_mr("host", 1 << 16)
    qp, _ = ctx.connect_rc("soc", "host")
    batcher = DoorbellBatcher(qp, max_batch=2)
    batcher.queue_write(1, soc_mr, host_mr, 64)
    batcher.queue_write(2, soc_mr, host_mr, 64)
    with pytest.raises(OverflowError):
        batcher.queue_write(3, soc_mr, host_mr, 64)


def test_max_batch_validation(ctx):
    qp, _ = ctx.connect_rc("soc", "host")
    with pytest.raises(ValueError):
        DoorbellBatcher(qp, max_batch=0)


def test_amortized_cost_decreases_with_batch(ctx):
    qp, _ = ctx.connect_rc("soc", "host")
    batcher = DoorbellBatcher(qp)
    assert batcher.amortized_cost(16) < batcher.amortized_cost(2)
    with pytest.raises(ValueError):
        batcher.amortized_cost(0)


def test_soc_batched_posting_is_faster_than_sequential(ctx):
    """The SoC-side DB win shows up in simulated completion times."""
    sim = ctx.cluster.sim
    soc_mr = ctx.reg_mr("soc", 1 << 16)
    host_mr = ctx.reg_mr("host", 1 << 16)

    qp, _ = ctx.connect_rc("soc", "host")
    batcher = DoorbellBatcher(qp)
    for i in range(16):
        batcher.queue_read(i, soc_mr, host_mr, 64)
    start = sim.now
    batcher.flush()
    sim.run()
    batched_elapsed = sim.now - start

    # One thread posting back-to-back pays the full per-request cost
    # each time (the flush() convention, without amortization).
    qp2, _ = ctx.connect_rc("soc", "host")
    per_request = batcher.costs.per_request
    start = sim.now
    for i in range(16):
        qp2.post_read(i, soc_mr, host_mr, 64,
                      posting_delay=per_request * (i + 1))
    sim.run()
    sequential_elapsed = sim.now - start

    assert batched_elapsed < sequential_elapsed


def test_queue_send_via_batcher(ctx):
    qp, peer = ctx.connect_rc("client0", "host")
    buf = ctx.reg_mr("host", 1024)
    peer.post_recv(1, buf)
    batcher = DoorbellBatcher(qp)
    batcher.queue_send(1, b"batched")
    batcher.flush()
    ctx.cluster.sim.run()
    assert buf.read_local(0, 7) == b"batched"
