"""Tests for queue pairs: one-sided and two-sided verbs end to end."""

import pytest

from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import AccessError, QPError, QPType, RdmaContext
from repro.rdma.opcodes import CompletionStatus, WorkOpcode


@pytest.fixture()
def ctx():
    return RdmaContext(SimCluster(paper_testbed()))


def run(ctx):
    ctx.cluster.sim.run()


def test_rc_read_moves_bytes(ctx):
    server = ctx.reg_mr("host", 4096)
    server.write_local(128, b"payload!")
    local = ctx.reg_mr("client0", 4096)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_read(1, local, server, 8, remote_offset=128)
    run(ctx)
    assert local.read_local(0, 8) == b"payload!"
    completion = qp.send_cq.poll()[0]
    assert completion.wr_id == 1
    assert completion.opcode is WorkOpcode.READ
    assert completion.byte_len == 8


def test_rc_write_moves_bytes(ctx):
    server = ctx.reg_mr("soc", 4096)
    local = ctx.reg_mr("client0", 4096)
    local.write_local(0, b"to-soc")
    qp, _ = ctx.connect_rc("client0", "soc")
    qp.post_write(2, local, server, 6, remote_offset=64)
    run(ctx)
    assert server.read_local(64, 6) == b"to-soc"


def test_unsignaled_request_produces_no_cqe(ctx):
    server = ctx.reg_mr("host", 64)
    local = ctx.reg_mr("client0", 64)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_write(1, local, server, 8, signaled=False)
    run(ctx)
    assert len(qp.send_cq) == 0


def test_bad_rkey_yields_remote_access_error(ctx):
    server = ctx.reg_mr("host", 64)
    local = ctx.reg_mr("client0", 64)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_read(3, local, server, 8, rkey=0xBAD)
    run(ctx)
    completion = qp.send_cq.poll()[0]
    assert completion.status is CompletionStatus.REMOTE_ACCESS_ERROR
    assert not completion.ok


def test_one_sided_requires_rc(ctx):
    qp = ctx.create_qp("client0", QPType.UD)
    mr = ctx.reg_mr("client0", 64)
    with pytest.raises(QPError):
        qp.post_read(1, mr, mr, 8)


def test_one_sided_requires_connection(ctx):
    qp = ctx.create_qp("client0", QPType.RC)
    mr = ctx.reg_mr("client0", 64)
    with pytest.raises(QPError):
        qp.post_read(1, mr, mr, 8)


def test_connect_validation(ctx):
    a = ctx.create_qp("client0", QPType.RC)
    b = ctx.create_qp("host", QPType.RC)
    ud = ctx.create_qp("soc", QPType.UD)
    with pytest.raises(QPError):
        a.connect(ud)
    a.connect(b)
    with pytest.raises(QPError):
        a.connect(b)


def test_local_mr_must_belong_to_node(ctx):
    foreign = ctx.reg_mr("client1", 64)
    server = ctx.reg_mr("host", 64)
    qp, _ = ctx.connect_rc("client0", "host")
    with pytest.raises(AccessError):
        qp.post_read(1, foreign, server, 8)


def test_ud_send_recv(ctx):
    sender = ctx.create_qp("client0", QPType.UD)
    receiver = ctx.create_qp("host", QPType.UD)
    buf = ctx.reg_mr("host", 1024)
    receiver.post_recv(9, buf, offset=100, length=64)
    sender.post_send(1, b"datagram", dest=receiver)
    run(ctx)
    completion = receiver.recv_cq.poll()[0]
    assert completion.wr_id == 9
    assert completion.byte_len == 8
    assert buf.read_local(100, 8) == b"datagram"
    # Sender can resolve the source for replies.
    assert ctx.cluster.qp_by_qpn(receiver.inbound_sources[0]) is sender


def test_ud_send_without_recv_is_dropped(ctx):
    sender = ctx.create_qp("client0", QPType.UD)
    receiver = ctx.create_qp("host", QPType.UD)
    sender.post_send(1, b"lost", dest=receiver)
    run(ctx)
    assert receiver.dropped_receives == 1
    assert len(receiver.recv_cq) == 0


def test_ud_send_needs_destination(ctx):
    sender = ctx.create_qp("client0", QPType.UD)
    with pytest.raises(QPError):
        sender.post_send(1, b"x")


def test_oversized_send_fails_receive(ctx):
    sender = ctx.create_qp("client0", QPType.UD)
    receiver = ctx.create_qp("host", QPType.UD)
    buf = ctx.reg_mr("host", 1024)
    receiver.post_recv(5, buf, offset=0, length=4)
    sender.post_send(1, b"way too big", dest=receiver)
    run(ctx)
    completion = receiver.recv_cq.poll()[0]
    assert completion.status is CompletionStatus.LOCAL_PROTECTION_ERROR


def test_rc_send_goes_to_peer(ctx):
    a, b = ctx.connect_rc("client0", "host")
    buf = ctx.reg_mr("host", 64)
    b.post_recv(1, buf)
    a.post_send(1, b"rc-msg")
    run(ctx)
    assert buf.read_local(0, 6) == b"rc-msg"


def test_path3_read_host_to_soc(ctx):
    soc_mr = ctx.reg_mr("soc", 4096)
    host_mr = ctx.reg_mr("host", 4096)
    soc_mr.write_local(0, b"soc-data")
    qp, _ = ctx.connect_rc("host", "soc")
    start = ctx.cluster.sim.now
    qp.post_read(1, host_mr, soc_mr, 8)
    run(ctx)
    assert host_mr.read_local(0, 8) == b"soc-data"
    # No network involved: internal-fabric latency only (~2.7 us model).
    assert ctx.cluster.sim.now - start < 3000


def test_path3_crosses_pcie1_twice(ctx):
    soc_mr = ctx.reg_mr("soc", 8192)
    host_mr = ctx.reg_mr("host", 8192)
    qp, _ = ctx.connect_rc("soc", "host")
    before_fwd = ctx.cluster.snic.pcie1.tlps_fwd.total
    before_rev = ctx.cluster.snic.pcie1.tlps_rev.total
    qp.post_write(1, soc_mr, host_mr, 4096)
    run(ctx)
    assert ctx.cluster.snic.pcie1.tlps_fwd.total > before_fwd
    assert ctx.cluster.snic.pcie1.tlps_rev.total > before_rev


def test_read_latency_ordering_matches_paper(ctx):
    """DES latencies agree with the Fig 4 ordering: RNIC < 2, then
    SNIC2 < SNIC1 for READ."""
    host_mr = ctx.reg_mr("host", 4096)
    soc_mr = ctx.reg_mr("soc", 4096)
    local = ctx.reg_mr("client0", 4096)
    sim = ctx.cluster.sim

    qp_host, _ = ctx.connect_rc("client0", "host")
    qp_soc, _ = ctx.connect_rc("client0", "soc")

    start = sim.now
    qp_host.post_read(1, local, host_mr, 64)
    sim.run()
    host_latency = sim.now - start

    start = sim.now
    qp_soc.post_read(2, local, soc_mr, 64)
    sim.run()
    soc_latency = sim.now - start

    assert soc_latency < host_latency
    assert 2000 < host_latency < 3200


def test_negative_length_rejected(ctx):
    server = ctx.reg_mr("host", 64)
    local = ctx.reg_mr("client0", 64)
    qp, _ = ctx.connect_rc("client0", "host")
    with pytest.raises(QPError):
        qp.post_read(1, local, server, -1)


def test_post_recv_validation(ctx):
    qp = ctx.create_qp("host", QPType.UD)
    mr = ctx.reg_mr("host", 64)
    with pytest.raises(QPError):
        qp.post_recv(1, mr, offset=60, length=10)
    foreign = ctx.reg_mr("client0", 64)
    with pytest.raises(AccessError):
        qp.post_recv(1, foreign)
    qp.post_recv(1, mr)
    assert qp.recv_queue_depth == 1


def test_unknown_qpn(ctx):
    with pytest.raises(QPError):
        ctx.cluster.qp_by_qpn(999999)


def test_qpn_registry_is_scoped_per_cluster():
    """Back-to-back simulations get identical QPNs and cannot observe
    each other's QPs (the registry is per-cluster, not process-global)."""
    first = RdmaContext(SimCluster(paper_testbed()))
    qp_a = first.create_qp("client0", QPType.UD)
    second = RdmaContext(SimCluster(paper_testbed()))
    qp_b = second.create_qp("client0", QPType.UD)
    assert qp_a.qpn == qp_b.qpn  # deterministic numbering per run
    assert second.cluster.qp_by_qpn(qp_b.qpn) is qp_b
    assert first.cluster.qp_by_qpn(qp_a.qpn) is qp_a


def test_qp_on_unattached_node_raises_clear_error():
    from repro.net.cluster import Node
    from repro.rdma.qp import QueuePair

    loose = Node("stray", "client", paper_testbed().client_cpu, 1024)
    with pytest.raises(QPError, match="not attached to a cluster"):
        QueuePair(loose, QPType.UD, None, None)
