"""Tests for unit conversions and formatting."""

import pytest

from repro import units


def test_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024 ** 2
    assert units.GB == 1024 ** 3


def test_time_conversions():
    assert units.us_to_ns(2.5) == 2500.0
    assert units.ns_to_us(2500.0) == 2.5
    assert units.SEC == 1e9


def test_bandwidth_round_trip():
    assert units.gbps(200) == pytest.approx(25.0)   # bytes/ns
    assert units.to_gbps(25.0) == pytest.approx(200.0)
    assert units.to_gbps(units.gbps(123.4)) == pytest.approx(123.4)


def test_gib_per_s():
    assert units.gib_per_s(1.0) == pytest.approx(1.0737, rel=1e-3)


def test_rate_round_trips():
    assert units.to_mpps(units.mpps(195.0)) == pytest.approx(195.0)
    assert units.to_mrps(units.mrps(29.0)) == pytest.approx(29.0)
    assert units.per_second(units.mpps(1.0)) == pytest.approx(1e6)


def test_mpps_magnitude():
    # 195 Mpps = 0.195 events per ns.
    assert units.mpps(195.0) == pytest.approx(0.195)


def test_fmt_size():
    assert units.fmt_size(512) == "512B"
    assert units.fmt_size(1536) == "1.5KB"
    assert units.fmt_size(9 * units.MB) == "9MB"
    assert units.fmt_size(10 * units.GB) == "10GB"


def test_fmt_gbps_and_ns():
    assert units.fmt_gbps(25.0) == "200.0 Gbps"
    assert units.fmt_ns(150.0) == "150 ns"
    assert units.fmt_ns(2650.0) == "2.65 us"
