"""Tests for the multi-server cluster and cross-server RDMA."""

import pytest

from repro.net.cluster import Node, SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext


def make(n_servers=2, nic="snic"):
    cluster = SimCluster(paper_testbed(), n_servers=n_servers, nic=nic)
    return cluster, RdmaContext(cluster)


def test_two_servers_build_distinct_nodes():
    cluster, _ctx = make()
    assert set(cluster.servers) == {"server0", "server1"}
    assert {"host", "soc", "host1", "soc1"} <= set(cluster.nodes)
    assert cluster.node("host").server == "server0"
    assert cluster.node("soc1").server == "server1"


def test_server_count_validation():
    with pytest.raises(ValueError):
        SimCluster(paper_testbed(), n_servers=0)
    with pytest.raises(ValueError):
        SimCluster(paper_testbed(), n_servers=4)


def test_node_server_field_validation():
    from repro.hw.cpu import HOST_XEON_GOLD_5317 as CPU

    with pytest.raises(ValueError):
        Node("h", "host", CPU, 1024)                  # server node, no server
    with pytest.raises(ValueError):
        Node("c", "client", CPU, 1024, server="s0")   # client with server


def test_each_server_has_its_own_fabric():
    cluster, _ctx = make()
    s0 = cluster.servers["server0"]
    s1 = cluster.servers["server1"]
    assert s0.snic is not s1.snic
    assert s0.snic.pcie1 is not s1.snic.pcie1
    assert s0.channel is not s1.channel
    assert s0.pipeline is not s1.pipeline


def test_same_server_detection():
    cluster, _ctx = make()
    assert cluster.node("host").same_server_as(cluster.node("soc"))
    assert not cluster.node("host").same_server_as(cluster.node("soc1"))
    assert not cluster.node("host").same_server_as(cluster.node("client0"))


def test_cross_server_read_moves_bytes_over_the_fabric():
    cluster, ctx = make()
    remote = ctx.reg_mr("host1", 4096)
    remote.write_local(0, b"server1!")
    local = ctx.reg_mr("host", 4096)
    qp, _ = ctx.connect_rc("host", "host1")
    qp.post_read(1, local, remote, 8)
    cluster.sim.run()
    assert local.read_local(0, 8) == b"server1!"
    # Both servers' channels carried traffic.
    assert cluster.servers["server0"].channel.bytes_sent > 0
    assert cluster.servers["server1"].channel.bytes_sent > 0


def test_cross_server_soc_to_soc():
    """An offloaded task on one SmartNIC reading a peer SmartNIC's
    memory — the distributed-offload pattern."""
    cluster, ctx = make()
    remote = ctx.reg_mr("soc1", 4096)
    remote.write_local(100, b"peer-soc")
    local = ctx.reg_mr("soc", 4096)
    qp, _ = ctx.connect_rc("soc", "soc1")
    qp.post_read(1, local, remote, 8, remote_offset=100)
    cluster.sim.run()
    assert local.read_local(0, 8) == b"peer-soc"
    # The responder-side SmartNIC's PCIe1 served the DMA.
    assert cluster.servers["server1"].snic.pcie1.total_tlps > 0


def test_cross_server_host_soc_is_not_path3():
    """host@server0 -> soc@server1 goes over the network, not the
    internal fabric.  Counterintuitively it is *faster* than the
    intra-machine path ③ — the paper's own finding (§3.3: intra-machine
    latency exceeds the network path ② because the doorbell, both DMA
    legs and the CQE all cross the internal fabric)."""
    cluster, ctx = make()
    sim = cluster.sim

    soc0_mr = ctx.reg_mr("soc", 4096)
    soc1_mr = ctx.reg_mr("soc1", 4096)
    host_mr = ctx.reg_mr("host", 4096)

    qp_intra, _ = ctx.connect_rc("host", "soc")
    start = sim.now
    qp_intra.post_read(1, host_mr, soc0_mr, 64)
    sim.run()
    intra_latency = sim.now - start

    qp_cross, _ = ctx.connect_rc("host", "soc1")
    start = sim.now
    qp_cross.post_read(2, host_mr, soc1_mr, 64)
    sim.run()
    cross_latency = sim.now - start

    assert cross_latency < intra_latency
    # But both paths stay in the same microsecond class.
    assert cross_latency > 0.6 * intra_latency
    assert cluster.servers["server1"].snic.pcie1.total_tlps > 0


def test_client_to_second_server():
    cluster, ctx = make()
    remote = ctx.reg_mr("soc1", 1024)
    remote.write_local(0, b"c2s1")
    local = ctx.reg_mr("client0", 1024)
    qp, _ = ctx.connect_rc("client0", "soc1")
    qp.post_read(1, local, remote, 4)
    cluster.sim.run()
    assert local.read_local(0, 4) == b"c2s1"


def test_multiserver_rnic_mode():
    cluster, ctx = make(nic="rnic")
    assert set(cluster.nodes) & {"host", "host1"} == {"host", "host1"}
    assert "soc" not in cluster.nodes
    remote = ctx.reg_mr("host1", 1024)
    remote.write_local(0, b"rn")
    local = ctx.reg_mr("host", 1024)
    qp, _ = ctx.connect_rc("host", "host1")
    qp.post_read(1, local, remote, 2)
    cluster.sim.run()
    assert local.read_local(0, 2) == b"rn"
