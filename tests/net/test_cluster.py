"""Tests for the simulated cluster wiring."""

import pytest

from repro.net.cluster import Node, SimCluster
from repro.net.topology import paper_testbed
from repro.nic.core import Endpoint


def make_cluster(n_clients=2):
    return SimCluster(paper_testbed(), n_clients=n_clients)


def test_cluster_builds_nodes():
    cluster = make_cluster(3)
    assert set(cluster.nodes) == {"host", "soc", "client0", "client1",
                                  "client2"}
    assert len(cluster.clients()) == 3


def test_node_kinds_and_endpoints():
    cluster = make_cluster()
    assert cluster.node("host").endpoint is Endpoint.HOST
    assert cluster.node("soc").endpoint is Endpoint.SOC
    assert cluster.node("client0").endpoint is None
    assert cluster.node("host").on_server
    assert not cluster.node("client0").on_server


def test_unknown_node_rejected():
    with pytest.raises(KeyError):
        make_cluster().node("client99")


def test_cluster_validation():
    with pytest.raises(ValueError):
        SimCluster(paper_testbed(), n_clients=0)
    with pytest.raises(ValueError):
        SimCluster(paper_testbed(n_clients=2), n_clients=5)


def test_node_validation():
    from repro.hw.cpu import HOST_XEON_GOLD_5317
    with pytest.raises(ValueError):
        Node("x", "router", HOST_XEON_GOLD_5317, 1024)
    with pytest.raises(ValueError):
        Node("x", "host", HOST_XEON_GOLD_5317, 0)


def test_channels_per_client_plus_server():
    cluster = make_cluster(2)
    c0 = cluster.channel(cluster.node("client0"))
    c1 = cluster.channel(cluster.node("client1"))
    server = cluster.channel(cluster.node("host"))
    assert c0 is not c1
    assert server is cluster.server_channel
    assert cluster.channel(cluster.node("soc")) is server


def test_smartnic_fabric_is_instantiated():
    cluster = make_cluster()
    assert cluster.snic.pcie1 is not None
    assert cluster.snic.switch is not None
    assert cluster.snic.sim is cluster.sim


def test_soc_node_memory_matches_spec():
    cluster = make_cluster()
    assert cluster.node("soc").memory_bytes == cluster.snic.soc.dram_bytes
