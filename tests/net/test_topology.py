"""Tests for fabric spec, testbed topology and issue-capacity helpers."""

import pytest

from repro.net.fabric import DEFAULT_FABRIC, FabricSpec
from repro.net.topology import Testbed, paper_testbed
from repro.units import to_gbps, to_mrps


def test_fabric_validation():
    with pytest.raises(ValueError):
        FabricSpec(ports=1)
    with pytest.raises(ValueError):
        FabricSpec(port_gbps=0)


def test_fabric_port_bandwidth():
    assert to_gbps(DEFAULT_FABRIC.port_bandwidth) == pytest.approx(100.0)
    assert DEFAULT_FABRIC.one_way_latency() > 0


def test_paper_testbed_shape():
    tb = paper_testbed()
    assert tb.n_clients == 20
    assert tb.snic.spec.name == "bluefield-2"
    assert tb.rnic.spec.name == "connectx-6"
    assert tb.host_cpu.total_cores == 24


def test_testbed_validation():
    with pytest.raises(ValueError):
        paper_testbed(n_clients=0)


def test_client_issue_capacity_scales_and_clamps():
    tb = paper_testbed(n_clients=5)
    one = tb.client_issue_capacity(1)
    assert to_mrps(one) == pytest.approx(39.0, rel=0.01)
    assert tb.client_issue_capacity(5) == pytest.approx(5 * one)
    # More machines than exist are clamped.
    assert tb.client_issue_capacity(50) == pytest.approx(5 * one)
    with pytest.raises(ValueError):
        tb.client_issue_capacity(0)


def test_issue_capacity_with_doorbell_batching():
    tb = paper_testbed()
    base = tb.soc_issue_capacity()
    batched = tb.soc_issue_capacity(doorbell_batch=16)
    assert batched / base == pytest.approx(2.7, rel=0.02)
    host_base = tb.host_issue_capacity()
    host_batched = tb.host_issue_capacity(doorbell_batch=16)
    assert host_batched < host_base


def test_host_and_soc_issue_thread_clamping():
    tb = paper_testbed()
    assert tb.host_issue_capacity(12) == pytest.approx(
        tb.host_issue_capacity() / 2)
    assert tb.soc_issue_capacity(4) == pytest.approx(
        tb.soc_issue_capacity() / 2)
    assert tb.soc_issue_capacity(100) == tb.soc_issue_capacity()


def test_client_network_capacity():
    tb = paper_testbed()
    one = tb.client_network_capacity(1)
    assert to_gbps(one) == pytest.approx(100.0)
    assert tb.client_network_capacity(4) == pytest.approx(4 * one)
