"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_size, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_parse_size():
    assert _parse_size("64") == 64
    assert _parse_size("4K") == 4096
    assert _parse_size("4KB") == 4096
    assert _parse_size("9M") == 9 << 20
    assert _parse_size("10G") == 10 << 30
    assert _parse_size("1.5K") == 1536
    with pytest.raises(Exception):
        _parse_size("abc")


def test_paths_command(capsys):
    code, out, _ = run(capsys, "paths")
    assert code == 0
    assert "SNIC ②" in out and "rnic-1" in out


def test_latency_command(capsys):
    code, out, _ = run(capsys, "latency", "--path", "snic1",
                       "--op", "read", "--payload", "64")
    assert code == 0
    assert "TOTAL" in out
    assert "2.6" in out  # ~2.65 us


def test_throughput_command(capsys):
    code, out, _ = run(capsys, "throughput", "--path", "snic2",
                       "--op", "write", "--payload", "64",
                       "--range", "1.5K")
    assert code == 0
    assert "22.7" in out
    assert "mem:soc" in out


def test_throughput_with_doorbell(capsys):
    code, out, _ = run(capsys, "throughput", "--path", "snic3-s2h",
                       "--op", "read", "--payload", "0",
                       "--requesters", "8", "--doorbell-batch", "16")
    assert code == 0
    assert "78.2" in out  # 29 M reqs/s x the 2.7x DB speedup


@pytest.mark.parametrize("figure", ["fig4", "fig7", "fig8", "fig9",
                                    "fig10", "fig11"])
def test_sweep_commands(capsys, figure):
    code, out, _ = run(capsys, "sweep", figure)
    assert code == 0
    assert "Fig" in out


@pytest.mark.parametrize("engine", ["scalar", "auto"])
def test_sweep_engine_flag(capsys, engine):
    code, out, _ = run(capsys, "sweep", "fig4", "--engine", engine)
    assert code == 0
    assert "Fig" in out


def test_sweep_profile_flag(capsys):
    code, out, _ = run(capsys, "sweep", "fig4", "--profile")
    assert code == 0
    assert "sweep stage profile" in out
    assert "grid_build" in out and "solve" in out


def test_compare_command(capsys):
    code, out, _ = run(capsys, "compare")
    assert code == 0
    assert "performance tax" in out
    assert "READ" in out and "WRITE" in out


def test_compare_catalog_device(capsys):
    code, out, _ = run(capsys, "compare", "--nic", "stingray-ps225")
    assert code == 0
    assert "stingray" in out


@pytest.mark.parametrize("figure", ["fig4", "fig7", "fig8", "fig9",
                                    "fig10", "fig11"])
def test_sweep_plot_mode(capsys, figure):
    code, out, _ = run(capsys, "sweep", figure, "--plot")
    assert code == 0
    assert "|" in out and "+" in out  # chart axes


def test_advise_command(capsys):
    code, out, _ = run(capsys, "advise", "--payload", "256",
                       "--read-fraction", "0.9", "--working-set", "8G")
    assert code == 0
    assert "SNIC ②" in out


def test_advise_with_transfer(capsys):
    code, out, _ = run(capsys, "advise", "--payload", "32M",
                       "--working-set", "2G", "--host-soc-transfer")
    assert code == 0
    assert "56 Gbps" in out
    assert "rule-p-minus-n" in out


def test_audit_command(tmp_path, capsys):
    flows = [
        {"path": "snic2", "op": "write", "payload": 64,
         "range_bytes": 1536, "label": "hot writes"},
        {"path": "snic2", "op": "read", "payload": 16 << 20,
         "label": "big reads"},
    ]
    path = tmp_path / "flows.json"
    path.write_text(json.dumps(flows))
    code, out, _ = run(capsys, "audit", str(path))
    assert code == 0
    assert "skew" in out and "hol" in out
    assert "hot writes" in out


def test_audit_clean(tmp_path, capsys):
    path = tmp_path / "flows.json"
    path.write_text(json.dumps([
        {"path": "snic2", "op": "read", "payload": 4096}]))
    code, out, _ = run(capsys, "audit", str(path))
    assert code == 0
    assert "no anomalies" in out


def test_audit_missing_file(capsys):
    code, _out, err = run(capsys, "audit", "/nonexistent/flows.json")
    assert code == 1
    assert "error" in err


def test_audit_bad_json(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("not json")
    code, _out, err = run(capsys, "audit", str(path))
    assert code == 1


def test_unknown_path_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["latency", "--path", "bogus"])


def test_trace_gen_and_solve_roundtrip(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, msg, _ = run(capsys, "trace-gen", str(out), "--count", "200",
                       "--read-fraction", "0.8", "--payload", "256")
    assert code == 0
    assert "200 requests" in msg
    assert out.exists()

    code, table, _ = run(capsys, "trace-solve", str(out))
    assert code == 0
    assert "TOTAL" in table
    assert "read" in table and "write" in table


def test_trace_gen_validation(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, _out, err = run(capsys, "trace-gen", str(out), "--count", "0")
    assert code == 1
    assert "error" in err


def test_trace_solve_missing_file(capsys):
    code, _out, err = run(capsys, "trace-solve", "/nonexistent.jsonl")
    assert code == 1


def test_trace_command_emits_chrome_json(capsys):
    code, out, _ = run(capsys, "trace", "--path", "3", "--verb", "write",
                       "--size", "4096")
    assert code == 0
    doc = json.loads(out)
    roots = [e for e in doc["traceEvents"]
             if e.get("ph") == "X" and e["name"] == "write:snic-3-h2s"]
    assert len(roots) == 1
    # The root complete-event spans the whole verb, start to CQE.
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert roots[0]["dur"] == max(e["ts"] + e["dur"] for e in spans)


def test_trace_command_numeric_path_shorthand(capsys):
    code, out, _ = run(capsys, "trace", "--path", "1", "--verb", "read")
    assert code == 0
    assert "read:snic-1" in out


def test_trace_command_report_and_tree(capsys):
    code, out, _ = run(capsys, "trace", "--path", "snic2", "--verb",
                       "write", "--size", "1K", "--report", "--tree",
                       "--telemetry")
    assert code == 0
    assert "path snic-2" in out and "TOTAL" in out
    assert "write:snic-2" in out  # tree rendering
    assert "counter deltas" in out and "pcie1" in out


def test_trace_command_writes_file(tmp_path, capsys):
    target = tmp_path / "spans.json"
    code, out, _ = run(capsys, "trace", "--path", "rnic-1", "--verb",
                       "read", "--count", "2", "--out", str(target))
    assert code == 0
    assert "perfetto" in out
    doc = json.loads(target.read_text())
    threads = [e for e in doc["traceEvents"]
               if e.get("ph") == "M" and e["name"] == "thread_name"]
    assert len(threads) == 2


def test_trace_command_rejects_bad_count(capsys):
    code, _out, err = run(capsys, "trace", "--count", "0")
    assert code == 1
    assert "error" in err


def test_serve_command(capsys):
    code, out, _ = run(capsys, "serve", "--duration", "150000",
                       "--decisions")
    assert code == 0
    assert "serve (adaptive" in out
    assert "alpha" in out and "gamma" in out
    assert "steady-state Gbps per path" in out
    assert "rate cap 56 Gbps" in out


def test_serve_command_static_json(capsys):
    import json as _json

    code, out, _ = run(capsys, "serve", "--duration", "100000",
                       "--static", "--json")
    assert code == 0
    payload = _json.loads(out)
    assert payload["adaptive"] is False
    assert {t["name"] for t in payload["tenants"]} == \
        {"alpha", "beta", "delta", "gamma"}
