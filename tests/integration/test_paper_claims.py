"""Every headline claim of the paper, checked against the models.

One test per claim, labelled with the paper section.  These are the
acceptance tests behind EXPERIMENTS.md; the per-figure benchmarks in
``benchmarks/`` print the full series.
"""

import pytest

from repro.core.harness import ThroughputBench
from repro.core.flows import ConcurrencyAnalyzer
from repro.core.latency import LatencyModel
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.net.topology import paper_testbed
from repro.units import KB, MB, to_mrps

TB = paper_testbed()
SOLVER = ThroughputSolver()
LAT = LatencyModel(TB)
AN = ConcurrencyAnalyzer(TB)


def peak(path, op, payload, requesters=11, **kw):
    return SOLVER.solve(Scenario(TB, [Flow(path=path, op=op, payload=payload,
                                           requesters=requesters, **kw)]))


class TestSection21Motivation:
    def test_host_two_sided_87_mpps_vs_nic_195_mpps(self):
        host = to_mrps(TB.host_cpu.echo_capacity())
        nic = to_mrps(TB.snic.spec.cores.verb_rate_host_only)
        assert host == pytest.approx(87, rel=0.01)
        assert nic >= 195


class TestSection31ClientToHost:
    def test_abstract_claim_up_to_48_percent_degradation(self):
        """Abstract: communication anomalies cost up to 48 % bandwidth."""
        healthy = peak(CommPath.SNIC2, Opcode.READ, 8 * MB).gbps_of(0)
        collapsed = peak(CommPath.SNIC2, Opcode.READ, 16 * MB).gbps_of(0)
        degradation = 1 - collapsed / healthy
        assert degradation == pytest.approx(0.37, abs=0.12)

    def test_latency_tax_read_15_to_30_percent(self):
        for payload in (16, 64, 128):
            ratio = (LAT.latency(CommPath.SNIC1, Opcode.READ, payload).total
                     / LAT.latency(CommPath.RNIC1, Opcode.READ, payload).total)
            assert 1.15 <= ratio <= 1.30

    def test_throughput_tax_read_19_to_26_percent(self):
        # 19-26 % for small payloads (the gap narrows toward 512 B where
        # the network becomes the shared bottleneck).
        for payload in (16, 64, 128):
            ratio = (peak(CommPath.SNIC1, Opcode.READ, payload).mrps_of(0)
                     / peak(CommPath.RNIC1, Opcode.READ, payload).mrps_of(0))
            assert 0.74 <= ratio <= 0.82

    def test_opposite_directions_reach_364_gbps(self):
        combos = AN.direction_combinations(CommPath.SNIC1)
        assert combos["READ+WRITE"].total_gbps == pytest.approx(364, rel=0.03)
        assert combos["READ"].total_gbps == pytest.approx(190, rel=0.02)


class TestSection32ClientToSoC:
    def test_read_path2_up_to_148_percent_of_path1(self):
        ratios = [peak(CommPath.SNIC2, Opcode.READ, p).mrps_of(0)
                  / peak(CommPath.SNIC1, Opcode.READ, p).mrps_of(0)
                  for p in (16, 64, 128)]
        assert all(1.08 <= r <= 1.48 for r in ratios)

    def test_send_to_soc_drops_up_to_64_percent(self):
        snic1 = peak(CommPath.SNIC1, Opcode.SEND, 64).mrps_of(0)
        snic2 = peak(CommPath.SNIC2, Opcode.SEND, 64).mrps_of(0)
        assert 1 - snic2 / snic1 == pytest.approx(0.58, abs=0.07)

    def test_advice1_skew_write_77_9_to_22_7(self):
        bench = ThroughputBench(TB)
        sweep = bench.range_sweep(CommPath.SNIC2, Opcode.WRITE, 64,
                                  [1536, 48 * KB], requesters=2)
        assert sweep.value_at(1536) == pytest.approx(22.7, rel=0.01)
        assert sweep.value_at(48 * KB) == pytest.approx(78, rel=0.02)

    def test_advice1_skew_read_85_to_50(self):
        bench = ThroughputBench(TB)
        sweep = bench.range_sweep(CommPath.SNIC2, Opcode.READ, 64,
                                  [1536, 48 * KB], requesters=2)
        assert sweep.value_at(1536) == pytest.approx(50.0, rel=0.01)
        assert sweep.value_at(48 * KB) == pytest.approx(78, rel=0.02)

    def test_advice2_read_collapse_above_9mb(self):
        bench = ThroughputBench(TB)
        pps = bench.pps_sweep(CommPath.SNIC2, Opcode.READ,
                              [8 * MB, 16 * MB], scope="nic")
        assert pps.value_at(8 * MB) == pytest.approx(190, rel=0.05)
        assert pps.value_at(16 * MB) <= 120


class TestSection33HostSoC:
    def test_h2s_and_s2h_small_request_rates(self):
        h2s = peak(CommPath.SNIC3_H2S, Opcode.READ, 64, requesters=24)
        s2h = peak(CommPath.SNIC3_S2H, Opcode.READ, 64, requesters=8)
        assert h2s.mrps_of(0) == pytest.approx(51.2, rel=0.01)
        assert s2h.mrps_of(0) == pytest.approx(29.0, rel=0.01)

    def test_peak_204_gbps_higher_than_network_paths(self):
        path3 = peak(CommPath.SNIC3_S2H, Opcode.WRITE, 256 * KB,
                     requesters=8).gbps_of(0)
        path1 = peak(CommPath.SNIC1, Opcode.WRITE, 256 * KB).gbps_of(0)
        assert path3 == pytest.approx(204, rel=0.01)
        assert path1 == pytest.approx(191, rel=0.02)

    def test_advice3_collapse_to_100_gbps(self):
        s2h = peak(CommPath.SNIC3_S2H, Opcode.WRITE, 16 * MB, requesters=8)
        assert s2h.gbps_of(0) == pytest.approx(100, rel=0.15)

    def test_fig9b_320_mpps_at_peak(self):
        bench = ThroughputBench(TB)
        pps = bench.pps_sweep(CommPath.SNIC3_S2H, Opcode.WRITE, [256 * KB],
                              requesters=8, scope="fabric")
        assert pps.value_at(256 * KB) == pytest.approx(310, rel=0.05)

    def test_advice4_doorbell_asymmetry(self):
        soc = TB.snic.soc.doorbell
        host = TB.snic.spec.host_doorbell
        assert 2.6 <= soc.speedup(16) <= 2.8
        assert 4.5 <= soc.speedup(80) <= 4.7
        assert host.speedup(16) < 1 and host.speedup(48) < 1
        assert host.speedup(16) < host.speedup(32) < host.speedup(48)


class TestSection4Concurrency:
    def test_concurrent_endpoints_read_4_to_13_percent(self):
        results = AN.concurrent_endpoints(Opcode.READ, payload=0)
        gain = (results["SNIC1+2"].total_mrps
                / results["SNIC1 alone"].total_mrps)
        assert 1.04 <= gain <= 1.13

    def test_sum_of_peaks_352_vs_concurrent(self):
        results = AN.concurrent_endpoints(Opcode.READ, payload=0)
        separate = (results["SNIC1 alone"].total_mrps
                    + results["SNIC2 alone"].total_mrps)
        assert separate == pytest.approx(352, rel=0.01)
        assert results["SNIC1+2"].total_mrps == pytest.approx(210, rel=0.01)

    def test_path3_interference_bands(self):
        bands = {Opcode.READ: (0.85, 0.93), Opcode.WRITE: (0.73, 0.96),
                 Opcode.SEND: (0.86, 0.91)}
        for op, (low, high) in bands.items():
            results = AN.path3_interference(op, 64)
            ratio = (results["SNIC1 + SNIC3(H2S)"].rates[0]
                     / results["SNIC1 alone"].rates[0])
            assert low <= ratio <= high, op

    def test_budget_rule_56_gbps(self):
        assert AN.path3_budget_gbps() == pytest.approx(56.0)
        budgeted = AN.aggregate_with_budgeted_path3()
        plain = AN.aggregate_with_budgeted_path3(0)
        assert budgeted.total_gbps > plain.total_gbps
