"""Smoke tests: every example script runs clean and says what it should."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": ["Fig 4", "Advisor", "SNIC ②"],
    "kvstore_offload.py": ["one-sided (Fig 1a)", "SoC-offloaded (Fig 1b)",
                           "faster gets"],
    "path_selection.py": ["Offload plans", "bulk staging pipeline"],
    "anomaly_audit.py": ["skew", "hol", "doorbell"],
    "bulk_offload.py": ["doorbells", "Gbps"],
    "log_shipping.py": ["budget rule", "throttle waits"],
    "replicated_kv.py": ["path-3 budget", "lag mean us"],
    "fault_tolerance.py": ["retransmits", "identical",
                           "0 keys diverged from the primary",
                           "degraded lag mean"],
    "span_tracing.py": ["span tree", "anomaly A2", "latency tax",
                        "Chrome trace"],
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs_and_reports(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr
    for needle in EXPECTED_OUTPUT[script]:
        assert needle in result.stdout, (script, needle)
