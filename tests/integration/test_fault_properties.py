"""Property tests for the fault-injection subsystem.

Two invariants the whole design rests on:

1. *Pay-as-you-go*: installing an empty fault plan is bit-identical to
   not installing one — same completions, same clock, same event count.
2. *No lost verbs*: whatever drop rate an injector applies (below total
   loss), every posted RC verb completes, either ``SUCCESS`` or — after
   the QP wedges — ``RETRY_EXC_ERR`` / ``FLUSH_ERROR``.  Work never
   silently vanishes.
"""

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults import FaultPlan
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.rdma.opcodes import CompletionStatus

_MAX_EXAMPLES = int(os.environ.get("FAULT_PROPERTY_EXAMPLES", "25"))

_ACCOUNTED = {
    CompletionStatus.SUCCESS,
    CompletionStatus.RETRY_EXC_ERR,
    CompletionStatus.FLUSH_ERROR,
}


def run_workload(plan=None, ops=8, payload=512):
    """Post ``ops`` RC WRITEs client0->host; return (completions, cluster)."""
    cluster = SimCluster(paper_testbed(), n_clients=1)
    if plan is not None:
        cluster.install_faults(plan)
    ctx = RdmaContext(cluster)
    local = ctx.reg_mr("client0", payload)
    remote = ctx.reg_mr("host", payload * ops)
    qp, _ = ctx.connect_rc("client0", "host")

    def driver():
        for i in range(ops):
            yield qp.post_write(i + 1, local, remote, payload,
                                remote_offset=i * payload)

    cluster.sim.process(driver())
    cluster.sim.run()
    return qp.send_cq.poll(), cluster


@settings(max_examples=_MAX_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_zero_fault_plan_is_bit_identical_to_no_injector(seed):
    bare_comps, bare = run_workload(plan=None)
    armed_comps, armed = run_workload(plan=FaultPlan(seed=seed))
    assert [(c.wr_id, c.status, c.timestamp) for c in bare_comps] \
        == [(c.wr_id, c.status, c.timestamp) for c in armed_comps]
    assert bare.sim.now == armed.sim.now
    assert bare.sim.events_executed == armed.sim.events_executed
    assert armed.stats.get("faults.injected", 0.0) == 0.0


@settings(max_examples=_MAX_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rate=st.floats(min_value=0.0, max_value=0.6,
                      allow_nan=False, allow_infinity=False),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_every_posted_verb_completes_under_loss(rate, seed):
    plan = FaultPlan.packet_loss("net.client0", rate, seed=seed)
    completions, cluster = run_workload(plan=plan)
    assert len(completions) == 8  # nothing vanished
    statuses = {c.status for c in completions}
    assert statuses <= _ACCOUNTED, statuses
    # Ordering: once the QP wedges, no later verb may succeed.
    saw_fatal = False
    for completion in completions:
        if completion.status is not CompletionStatus.SUCCESS:
            saw_fatal = True
        else:
            assert not saw_fatal, "SUCCESS after a fatal completion"
    if rate > 0.0 and cluster.stats.get("faults.injected", 0.0) > 0:
        assert cluster.stats.get("rdma.retransmits", 0.0) > 0
