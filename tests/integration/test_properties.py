"""Property-based tests on the core models.

Random request shapes and flow combinations must respect structural
invariants: conservation (utilization never exceeds capacity), fairness
(adding traffic never speeds anyone up), monotonicity (more payload
never costs fewer packets or less time), and the SmartNIC tax (the
baseline is never slower).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.latency import LatencyModel
from repro.core.packets import PacketCountModel
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.net.topology import paper_testbed
from repro.units import GB, MB

TB = paper_testbed()
SOLVER = ThroughputSolver()
LATENCY = LatencyModel(TB)
PACKETS = PacketCountModel()

_paths = st.sampled_from(list(CommPath))
_client_paths = st.sampled_from([CommPath.RNIC1, CommPath.SNIC1,
                                 CommPath.SNIC2])
_ops = st.sampled_from(list(Opcode))
_one_sided = st.sampled_from([Opcode.READ, Opcode.WRITE])
_payloads = st.integers(min_value=0, max_value=32 * MB)
_small_payloads = st.integers(min_value=0, max_value=8192)


def _flow(path, op, payload, **kw):
    requesters = kw.pop("requesters", 8 if path.intra_machine else 6)
    return Flow(path=path, op=op, payload=payload, requesters=requesters,
                **kw)


# -- solver invariants ---------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(_paths, _ops, _payloads)
def test_single_flow_rate_is_positive_and_bounded(path, op, payload):
    result = SOLVER.solve(Scenario(TB, [_flow(path, op, payload)]))
    assert 0 < result.rates[0] < 1.0  # under 1 G reqs/s, always
    assert all(u <= 1 + 1e-9 for u in result.utilization.values())
    assert result.bottlenecks[0]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_client_paths, _one_sided, _small_payloads, _client_paths,
       _one_sided, _small_payloads)
def test_adding_a_flow_never_speeds_up_the_first(path_a, op_a, pay_a,
                                                 path_b, op_b, pay_b):
    alone = SOLVER.solve(Scenario(TB, [_flow(path_a, op_a, pay_a)]))
    together = SOLVER.solve(Scenario(TB, [
        _flow(path_a, op_a, pay_a), _flow(path_b, op_b, pay_b)]))
    assert together.rates[0] <= alone.rates[0] * (1 + 1e-9)


@settings(max_examples=25, deadline=None)
@given(_client_paths, _one_sided, _small_payloads)
def test_two_identical_flows_split_evenly(path, op, payload):
    result = SOLVER.solve(Scenario(TB, [
        _flow(path, op, payload), _flow(path, op, payload)]))
    assert result.rates[0] == pytest.approx(result.rates[1], rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(_paths, _one_sided, _small_payloads,
       st.floats(min_value=1e-5, max_value=1e-3))
def test_rate_cap_is_never_exceeded(path, op, payload, cap):
    result = SOLVER.solve(Scenario(TB, [
        _flow(path, op, payload, rate_cap=cap)]))
    assert result.rates[0] <= cap * (1 + 1e-9)


@settings(max_examples=25, deadline=None)
@given(_client_paths, _one_sided,
       st.integers(min_value=64, max_value=64 * 1024))
def test_goodput_monotone_in_requesters(path, op, payload):
    few = SOLVER.solve(Scenario(TB, [
        _flow(path, op, payload, requesters=2)]))
    many = SOLVER.solve(Scenario(TB, [
        _flow(path, op, payload, requesters=10)]))
    assert many.rates[0] >= few.rates[0] * (1 - 1e-9)


# -- latency invariants ---------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(_paths, _ops, st.integers(min_value=0, max_value=1 * MB))
def test_latency_positive_and_segments_sum(path, op, payload):
    breakdown = LATENCY.latency(path, op, payload)
    assert breakdown.total > 0
    assert breakdown.total == pytest.approx(
        sum(v for _n, v in breakdown.segments))


@settings(max_examples=40, deadline=None)
@given(_paths, _ops, st.integers(min_value=0, max_value=512 * 1024))
def test_latency_monotone_in_payload(path, op, payload):
    smaller = LATENCY.latency(path, op, payload).total
    larger = LATENCY.latency(path, op, payload * 2 + 64).total
    assert larger >= smaller - 1e-9


@settings(max_examples=40, deadline=None)
@given(_ops, st.integers(min_value=0, max_value=64 * 1024))
def test_smartnic_is_never_faster_than_the_baseline(op, payload):
    rnic = LATENCY.latency(CommPath.RNIC1, op, payload).total
    snic = LATENCY.latency(CommPath.SNIC1, op, payload).total
    assert snic >= rnic


# -- packet-model invariants --------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(_paths, _ops, st.integers(min_value=0, max_value=32 * MB))
def test_tlp_counts_monotone_in_payload(path, op, payload):
    smaller = PACKETS.counts(path, op, payload).total
    larger = PACKETS.counts(path, op, payload + 4096).total
    assert larger >= smaller


@settings(max_examples=60, deadline=None)
@given(_paths, _ops, st.integers(min_value=1, max_value=32 * MB))
def test_wire_bytes_exceed_payload(path, op, payload):
    counts = PACKETS.counts(path, op, payload)
    wire = (counts.pcie1_to_nic_bytes + counts.pcie1_to_switch_bytes
            + counts.pcie0_to_host_bytes + counts.pcie0_to_switch_bytes)
    assert wire >= payload


@settings(max_examples=60, deadline=None)
@given(_ops, st.integers(min_value=1, max_value=32 * MB))
def test_path2_touches_fewer_links_than_path1(op, payload):
    path1 = PACKETS.counts(CommPath.SNIC1, op, payload)
    path2 = PACKETS.counts(CommPath.SNIC2, op, payload)
    assert path2.pcie0_total == 0
    assert path1.pcie0_total > 0
