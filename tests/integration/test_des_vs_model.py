"""Cross-validation: the discrete-event simulation against the
closed-form models.

The DESIGN.md invariant: where the two engines overlap, they agree
within tolerance.  Latency per path/verb/payload (DES QP execution vs
LatencyModel), TLP counters (DES fabric vs PacketCountModel), and bulk
path-3 bandwidth (DES offload engine vs solver ceiling).
"""

import pytest

from repro.apps.offload import OffloadConfig, OffloadEngine
from repro.core.latency import LatencyModel
from repro.core.packets import PacketCountModel
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.units import KB, MB

PATH_NODES = {
    CommPath.SNIC1: ("client0", "host"),
    CommPath.SNIC2: ("client0", "soc"),
    CommPath.SNIC3_H2S: ("host", "soc"),
    CommPath.SNIC3_S2H: ("soc", "host"),
}


def des_latency(path, op, payload):
    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    requester, responder = PATH_NODES[path]
    remote = ctx.reg_mr(responder, 64 * KB)
    local = ctx.reg_mr(requester, 64 * KB)
    qp, _ = ctx.connect_rc(requester, responder)
    start = cluster.sim.now
    if op is Opcode.READ:
        qp.post_read(1, local, remote, payload)
    else:
        qp.post_write(1, local, remote, payload)
    cluster.sim.run()
    return cluster.sim.now - start


@pytest.mark.parametrize("path", list(PATH_NODES))
@pytest.mark.parametrize("op", [Opcode.READ, Opcode.WRITE])
@pytest.mark.parametrize("payload", [64, 4 * KB])
def test_des_latency_matches_model_within_15_percent(path, op, payload):
    model = LatencyModel(paper_testbed()).latency(path, op, payload).total
    des = des_latency(path, op, payload)
    assert des == pytest.approx(model, rel=0.15)


def test_des_tlp_counters_match_packet_model_write_to_soc():
    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    remote = ctx.reg_mr("soc", 64 * KB)
    local = ctx.reg_mr("client0", 64 * KB)
    qp, _ = ctx.connect_rc("client0", "soc")
    qp.post_write(1, local, remote, 4 * KB)
    cluster.sim.run()
    expected = PacketCountModel().counts(CommPath.SNIC2, Opcode.WRITE, 4 * KB)
    assert cluster.snic.pcie1.tlps_fwd.total == expected.pcie1_to_switch
    assert cluster.snic.pcie0.total_tlps == 0


def test_des_tlp_counters_match_packet_model_read_from_host():
    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    remote = ctx.reg_mr("host", 64 * KB)
    local = ctx.reg_mr("client0", 64 * KB)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_read(1, local, remote, 4 * KB)
    cluster.sim.run()
    expected = PacketCountModel().counts(CommPath.SNIC1, Opcode.READ, 4 * KB)
    # Completions flow back toward the NIC on PCIe1.
    assert cluster.snic.pcie1.tlps_rev.total == expected.pcie1_to_nic
    # The read request crosses toward the host.
    assert cluster.snic.pcie0.tlps_fwd.total == expected.pcie0_to_host


def test_des_path3_tlps_cross_pcie1_twice():
    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    soc_mr = ctx.reg_mr("soc", 64 * KB)
    host_mr = ctx.reg_mr("host", 64 * KB)
    qp, _ = ctx.connect_rc("soc", "host")
    qp.post_write(1, soc_mr, host_mr, 4 * KB)
    cluster.sim.run()
    expected = PacketCountModel().counts(CommPath.SNIC3_S2H, Opcode.WRITE,
                                         4 * KB)
    assert (cluster.snic.pcie1.total_tlps
            == expected.pcie1_to_nic + expected.pcie1_to_switch)


def test_des_offload_goodput_within_solver_ceiling():
    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    host_mr = ctx.reg_mr("host", 16 * MB)
    soc_mr = ctx.reg_mr("soc", 16 * MB)
    engine = OffloadEngine(ctx, OffloadConfig(segment_bytes=1 * MB,
                                              doorbell_batch=16,
                                              inflight=16))
    proc = cluster.sim.process(engine.pull(host_mr, soc_mr, 16 * MB))
    cluster.sim.run()
    assert proc.ok
    ceiling = ThroughputSolver().solve(Scenario(
        paper_testbed(),
        [Flow(CommPath.SNIC3_H2S, Opcode.READ, 1 * MB, requesters=8)],
    )).goodput_of(0)
    achieved = engine.stats.goodput
    assert 0.6 * ceiling <= achieved <= 1.05 * ceiling
