"""The RNIC baseline build-out in the DES, versus the SmartNIC.

Fig 4's headline comparison (the SmartNIC "performance tax") reproduced
end to end on the simulation: the same verbs against the same testbed
with the server NIC swapped.
"""

import pytest

from repro.core.latency import LatencyModel
from repro.core.paths import CommPath, Opcode
from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.nic.core import Endpoint
from repro.rdma import RdmaContext


def des_read_latency(nic: str, payload: int = 64) -> float:
    cluster = SimCluster(paper_testbed(), nic=nic)
    ctx = RdmaContext(cluster)
    server = ctx.reg_mr("host", 1 << 16)
    local = ctx.reg_mr("client0", 1 << 16)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_read(1, local, server, payload)
    cluster.sim.run()
    return cluster.sim.now


def test_rnic_mode_builds_without_soc():
    cluster = SimCluster(paper_testbed(), nic="rnic")
    assert cluster.snic is None
    assert cluster.rnic is not None
    assert "soc" not in cluster.nodes
    with pytest.raises(KeyError):
        cluster.node("soc")


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        SimCluster(paper_testbed(), nic="dpu")


def test_rnic_mode_rejects_soc_dma():
    cluster = SimCluster(paper_testbed(), nic="rnic")
    with pytest.raises(ValueError):
        cluster.dma_route(Endpoint.SOC)


def test_smartnic_tax_emerges_in_des():
    """S3.1: extending the RNIC to a SmartNIC costs ~0.6 us on READ."""
    rnic = des_read_latency("rnic")
    snic = des_read_latency("snic")
    assert snic - rnic == pytest.approx(600, abs=100)
    assert 1.15 <= snic / rnic <= 1.35


def test_rnic_des_matches_latency_model():
    model = LatencyModel(paper_testbed()).latency(
        CommPath.RNIC1, Opcode.READ, 64).total
    assert des_read_latency("rnic") == pytest.approx(model, rel=0.15)


def test_rnic_write_moves_bytes():
    cluster = SimCluster(paper_testbed(), nic="rnic")
    ctx = RdmaContext(cluster)
    server = ctx.reg_mr("host", 4096)
    local = ctx.reg_mr("client0", 4096)
    local.write_local(0, b"baseline")
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_write(1, local, server, 8)
    cluster.sim.run()
    assert server.read_local(0, 8) == b"baseline"
    # The RNIC's single host link carried the TLP.
    assert cluster.rnic.host_link.tlps_fwd.total == 1


def test_rnic_read_crosses_host_link_twice():
    cluster = SimCluster(paper_testbed(), nic="rnic")
    ctx = RdmaContext(cluster)
    server = ctx.reg_mr("host", 4096)
    local = ctx.reg_mr("client0", 4096)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_read(1, local, server, 512)
    cluster.sim.run()
    link = cluster.rnic.host_link
    assert link.tlps_fwd.total == 1  # the read request
    assert link.tlps_rev.total == 1  # the completion with data
