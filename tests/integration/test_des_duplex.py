"""DES validation of the Fig 5 direction-multiplexing effect.

The solver predicts READ+WRITE streams nearly double aggregate
bandwidth on the network paths (full-duplex links).  Here the same
experiment runs on the discrete-event cluster: sustained pipelined
streams of large transfers, one per direction, against one per both.
"""

import pytest

from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.sim.events import AllOf
from repro.units import MB, to_gbps

TRANSFER = 256 << 10  # 256 KB per request
REQUESTS = 24


def run_streams(ops):
    """Run pipelined streams; ``ops`` is a list of 'read'/'write'."""
    cluster = SimCluster(paper_testbed(), n_clients=4)
    ctx = RdmaContext(cluster)
    server = ctx.reg_mr("host", 8 * MB)
    sim = cluster.sim

    def stream(client_name, op):
        qp, _ = ctx.connect_rc(client_name, "host")
        local = ctx.reg_mr(client_name, 8 * MB)
        depth = 4  # keep several transfers in flight

        def driver():
            outstanding = []
            for i in range(REQUESTS):
                offset = (i % 8) * TRANSFER
                if op == "read":
                    proc = qp.post_read(i, local, server, TRANSFER,
                                        local_offset=offset,
                                        remote_offset=offset)
                else:
                    proc = qp.post_write(i, local, server, TRANSFER,
                                         local_offset=offset,
                                         remote_offset=offset)
                outstanding.append(proc)
                if len(outstanding) >= depth:
                    yield outstanding.pop(0)
            if outstanding:
                yield AllOf(sim, outstanding)

        return sim.process(driver())

    drivers = [stream(f"client{i}", op) for i, op in enumerate(ops)]
    start = sim.now
    sim.run()
    assert all(d.ok for d in drivers)
    elapsed = sim.now - start
    total_bytes = len(ops) * REQUESTS * TRANSFER
    return total_bytes / elapsed  # bytes/ns


def test_opposite_directions_multiplex_in_des():
    # Four 100 Gbps clients: all-READ saturates the server's 200 Gbps
    # egress; two READ + two WRITE split across both directions.
    same_dir = run_streams(["read"] * 4)
    opposite = run_streams(["read", "read", "write", "write"])
    # Fig 5's shape: opposite directions nearly double the aggregate.
    assert opposite > 1.5 * same_dir
    assert to_gbps(opposite) > 300


def test_single_stream_bounded_by_client_link():
    one = run_streams(["read"])
    # One client's 100 Gbps port bounds a single stream.
    assert to_gbps(one) < 101


def test_two_same_direction_streams_share_the_server_port():
    two = run_streams(["read", "read"])
    four = to_gbps(two)
    # Two clients can push toward the 200 Gbps server port but no more.
    assert 100 < four <= 205
