"""DES contention: the server NIC's verb pipeline under concurrent load.

With many outstanding requests the simulated NIC should retire verbs at
the spec's rate — the same cap the analytic solver uses — rather than
scaling with offered load.
"""

import pytest

from repro.net.cluster import SimCluster
from repro.net.topology import paper_testbed
from repro.rdma import RdmaContext
from repro.units import to_mrps


def burst_of_reads(n_requests: int, payload: int = 8):
    """Fire ``n_requests`` concurrent READs at the host; return
    (first_completion_ns, last_completion_ns)."""
    cluster = SimCluster(paper_testbed(), n_clients=4)
    ctx = RdmaContext(cluster)
    server = ctx.reg_mr("host", 1 << 20)
    done_times = []
    per_client = n_requests // 4
    for c in range(4):
        qp, _ = ctx.connect_rc(f"client{c}", "host")
        local = ctx.reg_mr(f"client{c}", 1 << 20)
        for i in range(per_client):
            proc = qp.post_read(i, local, server, payload,
                                local_offset=i * payload,
                                remote_offset=i * payload)
            proc.add_callback(
                lambda _e: done_times.append(cluster.sim.now))
    cluster.sim.run()
    assert len(done_times) == per_client * 4
    return min(done_times), max(done_times)


def test_concurrent_load_saturates_at_verb_rate():
    first, last = burst_of_reads(400)
    spread = last - first
    # 400 ops retired over the spread -> close to the 195 Mops verb rate
    # (other stages pipeline around it).
    achieved = 400 / spread
    assert to_mrps(achieved) == pytest.approx(195.0, rel=0.15)


def test_single_request_is_not_slowed_by_the_pipeline_model():
    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    server = ctx.reg_mr("host", 4096)
    local = ctx.reg_mr("client0", 4096)
    qp, _ = ctx.connect_rc("client0", "host")
    qp.post_read(1, local, server, 64)
    cluster.sim.run()
    # Unloaded latency stays in the Fig 4 range.
    assert 2300 < cluster.sim.now < 3200


def test_more_load_does_not_increase_throughput_past_the_cap():
    first_small, last_small = burst_of_reads(200)
    first_big, last_big = burst_of_reads(400)
    rate_small = 200 / (last_small - first_small)
    rate_big = 400 / (last_big - first_big)
    # Doubling offered load must not raise the retirement rate: the
    # pipeline is already saturated.
    assert rate_big < 1.1 * rate_small
