"""End-to-end cluster runs: PR-8 parity, bit-identity, the facade.

The load-bearing contracts:

* a scenario with an *empty* population plan and pinned tenants
  compiles to exactly the hand-built :class:`ShardPlan` of the
  cluster-chaos era — same tenants (plus the declared LB ingress),
  same topology, same fault plan — and reproduces its report
  byte for byte;
* a scenario with live LB-routed migration mid-run is bit-identical
  across ``jobs={1,N}`` (hypothesis, across population seeds);
* ``Session.serve_cluster`` is the facade spelling and
  ``Session.serve_sharded`` is a one-shot-warning deprecated alias.
"""

import dataclasses
import warnings

from hypothesis import given, settings, strategies as st

from repro.api import RunOptions, Session
from repro.api.schema import (ClusterScenario, MachineDoc, SchedulerDoc,
                              TenantDoc)
from repro.cluster import ClusterReport, run_cluster
from repro.faults.plan import FaultPlan
from repro.sched.serve import mixed_tenant_workload
from repro.sim.shard import ShardPlan, run_sharded
from repro.sim.xshard import ShardTopology
from repro.stats.invariants import check_report, violations
from repro.units import GB
from repro.workloads.population import PopulationSpec, RandomVar

_DURATION = 160_000.0

_CHAOS = FaultPlan.from_dict({
    "seed": 5,
    "faults": [
        {"kind": "machine-crash", "shard": "shard1", "at": 60_000.0,
         "recover_at": 120_000.0},
        {"kind": "fabric-loss", "rate": 0.2, "src": "*", "dst": "*",
         "start": 0.0, "end": None},
    ],
})


def _parity_scenario(faults=_CHAOS):
    """The PR-8 four-tenant chaos run, spelled as a scenario document:
    empty population plan, every tenant pinned where ``partition``
    would put it."""
    specs = mixed_tenant_workload(duration_ns=_DURATION)
    pins = {"alpha": "shard0", "delta": "shard0",
            "beta": "shard1", "gamma": "shard1"}
    docs = tuple(
        TenantDoc(name=t.name, payload=t.payload,
                  interval_ns=t.interval_ns, requests=t.requests,
                  read_fraction=t.mix.read, bulk=t.bulk,
                  slo_p99_ns=t.slo.p99_ns,
                  working_set_bytes=t.working_set_bytes,
                  workers=t.workers, queue_limit=t.queue_limit,
                  seed=t.seed, machine=pins[t.name])
        for t in specs)
    return ClusterScenario(
        name="parity", duration_ns=_DURATION,
        machines=(MachineDoc(name="shard0"), MachineDoc(name="shard1")),
        tenants=docs, faults=faults)


def _reference_plan(scenario):
    """The same experiment built by hand, PR-8 style."""
    specs = mixed_tenant_workload(duration_ns=_DURATION)
    adjusted = tuple(
        dataclasses.replace(
            t, ingress_ns=0.0 if t.bulk else scenario.ingress_ns)
        for t in specs)
    base = ShardPlan.partition(adjusted, 2)
    links = {}
    for shard in ("shard0", "shard1"):
        links[("lb", shard)] = scenario.lb_latency_ns
        links[(shard, "lb")] = scenario.lb_latency_ns
    topology = ShardTopology(shards=("shard0", "shard1", "lb"),
                             link_latency_ns=scenario.link_latency_ns,
                             overrides=links, lb="lb")
    return ShardPlan(shards=base.shards, topology=topology,
                     cluster_faults=scenario.faults)


def test_empty_population_plan_reproduces_cluster_chaos_bytes():
    scenario = _parity_scenario()
    report = run_cluster(scenario, jobs=1, migrate=False)
    direct = run_sharded(_reference_plan(scenario), jobs=1, engine="event")
    assert report.tenants == direct.tenants
    assert report.counters == direct.counters
    assert ([d.as_tuple() for d in report.decisions]
            == [d.as_tuple() for d in direct.decisions])
    assert report.elapsed_ns == direct.elapsed_ns
    assert report.cluster_decisions == []


def _hot_cold_scenario(seed):
    """One overloaded machine, one idle one, a tiny seeded cohort —
    the smallest scenario that migrates mid-run."""
    tenants = (
        TenantDoc(name="hog", payload=4096, interval_ns=300.0,
                  requests=500, read_fraction=0.0, slo_p99_ns=200_000.0,
                  workers=2, queue_limit=2, working_set_bytes=32 * GB,
                  machine="hot"),
        TenantDoc(name="idle", payload=512, interval_ns=20_000.0,
                  requests=8, slo_p99_ns=200_000.0, machine="cold"),
    )
    cohort = PopulationSpec(
        name="noise", tenants=2,
        active_users=RandomVar("normal", 100, std=30, lo=10),
        req_per_min=RandomVar.fixed(60), payload=512,
        slo_p99_ns=200_000.0)
    return ClusterScenario(
        name="hot-cold", duration_ns=_DURATION,
        machines=(MachineDoc(name="hot"), MachineDoc(name="cold")),
        tenants=tenants, populations=(cohort,), population_seed=seed,
        scheduler=SchedulerDoc(patience=1, cooldown_windows=2,
                               min_samples=1))


@settings(max_examples=3, deadline=None)
@given(st.integers(min_value=0, max_value=50))
def test_migrating_cluster_runs_bit_identical_across_jobs(seed):
    scenario = _hot_cold_scenario(seed)
    lone = run_cluster(scenario, jobs=1)
    many = run_cluster(scenario, jobs=2)
    # The run must actually migrate: live ctl directives over the LB,
    # remote serving over the fabric.
    assert lone.counters.get("clustersched.offloads", 0) >= 1
    assert lone.counters.get("xshard.sent", 0) > 0
    assert lone.tenants == many.tenants
    assert lone.counters == many.counters
    assert ([d.as_tuple() for d in lone.cluster_decisions]
            == [d.as_tuple() for d in many.cluster_decisions])
    assert not violations(check_report(lone))


def test_serve_cluster_facade_and_option_defaults():
    scenario = _hot_cold_scenario(3)
    session = Session(options=RunOptions(jobs=1))
    report = session.serve_cluster(scenario)
    assert isinstance(report, ClusterReport)
    assert set(report.placement) == set(report.tenants)
    assert report.summary().startswith("cluster 'hot-cold'")
    rows = report.machine_rows()
    assert [row[0] for row in rows] == ["hot", "cold"]


def test_machines_override_rebuilds_the_rack():
    cohort = PopulationSpec(
        name="pop", tenants=4,
        active_users=RandomVar.fixed(100),
        req_per_min=RandomVar.fixed(60))
    scenario = ClusterScenario(
        name="tiny", duration_ns=60_000.0,
        machines=(MachineDoc(name="m", count=2),),
        populations=(cohort,),
        scheduler=SchedulerDoc(migrate=False))
    report = run_cluster(scenario, jobs=1, machines=3)
    assert [m.name for m in report.machines] == ["m00", "m01", "m02"]


def test_serve_sharded_is_a_one_shot_deprecated_alias(monkeypatch):
    import repro.api.session as session_mod

    monkeypatch.setattr(session_mod, "_SERVE_SHARDED_WARNED", False)
    plan = ShardPlan.partition(mixed_tenant_workload(duration_ns=30_000.0),
                               2)
    session = Session()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = session.serve_sharded(plan, jobs=1)
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        second = session.serve_sharded(plan, jobs=1)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert first.tenants == second.tenants
