"""Unit tests for cluster placement and the migration controller."""

import pytest

from repro.cluster.machine import MachineSpec
from repro.cluster.scheduler import (ClusterScheduler, bin_pack_placement,
                                     round_robin_placement)
from repro.net.topology import paper_testbed
from repro.sched.tenant import SloSpec, TenantSpec
from repro.sim.xshard import ShardTopology
from repro.units import GB, MB
from repro.workloads.mix import OpMix


def _client(name, seed=0, interval_ns=2_000.0):
    return TenantSpec(name=name, payload=512, interval_ns=interval_ns,
                      requests=10, mix=OpMix(read=1.0, write=0.0),
                      slo=SloSpec(p99_ns=50_000.0),
                      working_set_bytes=4 * MB, seed=seed)


def _bulk(name, interval_ns=4_500.0):
    return TenantSpec(name=name, payload=65536, interval_ns=interval_ns,
                      requests=10, mix=OpMix(read=0.0, write=1.0),
                      bulk=True, slo=SloSpec(p99_ns=120_000.0),
                      working_set_bytes=1 * GB)


_MACHINES = (MachineSpec(name="a", nic="snic"),
             MachineSpec(name="b", nic="rnic"),
             MachineSpec(name="c", nic="snic"))


def test_binpack_keeps_bulk_off_rnic_machines():
    tenants = [_bulk("bulk0"), _bulk("bulk1"),
               _client("c0"), _client("c1"), _client("c2")]
    where = bin_pack_placement(tenants, _MACHINES, paper_testbed())
    assert set(where) == {t.name for t in tenants}
    assert where["bulk0"] != "b" and where["bulk1"] != "b"
    # The two bulk shippers spread over the two SNIC machines.
    assert {where["bulk0"], where["bulk1"]} == {"a", "c"}


def test_binpack_honours_pins_and_rejects_impossible_ones():
    tenants = [_bulk("bulk0"), _client("c0")]
    where = bin_pack_placement(tenants, _MACHINES, paper_testbed(),
                               pinned={"c0": "b"})
    assert where["c0"] == "b"
    with pytest.raises(ValueError, match="RNIC"):
        bin_pack_placement(tenants, _MACHINES, paper_testbed(),
                           pinned={"bulk0": "b"})
    with pytest.raises(ValueError, match="unknown machine"):
        bin_pack_placement(tenants, _MACHINES, paper_testbed(),
                           pinned={"c0": "nope"})


def test_binpack_raises_when_nothing_is_eligible():
    with pytest.raises(ValueError, match="SNIC"):
        bin_pack_placement([_bulk("bulk0")],
                           [MachineSpec(name="b", nic="rnic")],
                           paper_testbed())
    testbed = paper_testbed()
    too_many = [_client(f"c{i}", seed=i)
                for i in range(testbed.n_clients + 1)]
    with pytest.raises(ValueError, match="capacity"):
        bin_pack_placement(too_many, [MachineSpec(name="a", nic="snic")],
                           testbed)


def test_round_robin_cycles_machines_in_order():
    tenants = [_client(f"c{i}", seed=i) for i in range(6)]
    where = round_robin_placement(tenants, _MACHINES, paper_testbed())
    assert [where[f"c{i}"] for i in range(6)] == ["a", "b", "c"] * 2
    # Bulk tenants skip the RNIC machine but keep the cursor moving.
    mixed = [_bulk("bulk0"), _bulk("bulk1"), _bulk("bulk2")]
    where = round_robin_placement(mixed, _MACHINES, paper_testbed())
    assert where["bulk0"] == "a"
    assert where["bulk1"] == "c"      # hopped over the RNIC machine
    assert where["bulk2"] == "a"


# -- the migration controller ------------------------------------------------

_TOPO = ShardTopology(shards=("m0", "m1", "lb"), link_latency_ns=25_000.0,
                      overrides={("lb", "m0"): 5_000.0,
                                 ("m0", "lb"): 5_000.0,
                                 ("lb", "m1"): 5_000.0,
                                 ("m1", "lb"): 5_000.0},
                      lb="lb")


def _controller(**kwargs):
    spec = TenantSpec(name="tenant", payload=4096, interval_ns=500.0,
                      requests=100, mix=OpMix(read=0.0, write=1.0),
                      slo=SloSpec(p99_ns=5_000.0, deadline_ns=200_000.0),
                      working_set_bytes=32 * GB)
    calm = _client("calm")
    kwargs.setdefault("patience", 1)
    kwargs.setdefault("cooldown_windows", 3)
    kwargs.setdefault("min_samples", 1)
    return ClusterScheduler(specs={"tenant": spec, "calm": calm},
                            home={"tenant": "m0", "calm": "m1"},
                            topology=_TOPO, **kwargs)


def _beats(digest=None):
    return {"m0": {"load": (0, 0, 0, 0.0),
                   "windows": {"tenant": digest} if digest else {}},
            "m1": {"load": (0, 0, 0, 0.0), "windows": {}}}


def test_quiet_heartbeats_emit_nothing():
    ctrl = _controller()
    assert ctrl.observe(1, 25_000.0, _beats(), {}) == []
    assert ctrl.ctl_sent == 0 and not ctrl.decisions


def test_breach_streak_triggers_one_offload_with_cooldown():
    ctrl = _controller()
    breaching = (0, 10, 9_000.0, 0, 1)       # p99 9 µs > 5 µs SLO
    messages = ctrl.observe(1, 25_000.0, _beats(breaching), {})
    assert len(messages) == 1
    (msg,) = messages
    assert msg.kind == "ctl" and msg.src == "lb" and msg.dst == "m0"
    assert msg.note == "serve-on:m1"
    assert msg.deliver_ns == 25_000.0 + 5_000.0     # the LB hop, not 25 µs
    assert ctrl.remote == {"tenant": "m1"}
    assert ctrl.offloads == 1 and ctrl.ctl_sent == 1
    # Cooldown: the same breach one window later moves nothing.
    again = ctrl.observe(2, 50_000.0, _beats((1, 10, 9_000.0, 0, 1)), {})
    assert again == [] and ctrl.offloads == 1


def test_rejections_count_as_breaching_regardless_of_p99():
    ctrl = _controller()
    rejected = (0, 2, 1_000.0, 5, 0)         # p99 fine, queue overflowed
    assert len(ctrl.observe(1, 25_000.0, _beats(rejected), {})) == 1


def test_done_target_returns_tenant_home():
    ctrl = _controller()
    ctrl.observe(1, 25_000.0, _beats((0, 10, 9_000.0, 0, 1)), {})
    assert ctrl.remote == {"tenant": "m1"}
    messages = ctrl.observe(2, 50_000.0, _beats(), {"m1": True})
    assert len(messages) == 1
    assert messages[0].note == "serve-local"
    assert ctrl.remote == {} and ctrl.returns == 1


def test_short_deadline_tenants_never_offload():
    import dataclasses
    ctrl = _controller()
    # Deadline below the relay cost × slack: not a donor.
    ctrl.specs["tenant"] = dataclasses.replace(
        ctrl.specs["tenant"],
        slo=SloSpec(p99_ns=5_000.0, deadline_ns=40_000.0))
    assert ctrl.observe(1, 25_000.0,
                        _beats((0, 10, 9_000.0, 0, 1)), {}) == []


def test_fingerprint_tracks_policy():
    assert _controller().fingerprint() == _controller().fingerprint()
    assert (_controller(patience=2).fingerprint()
            != _controller(patience=1).fingerprint())
