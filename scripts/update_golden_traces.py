#!/usr/bin/env python
"""Regenerate the golden span-tree JSONs under tests/trace/golden/.

The ONLY sanctioned way to update the golden traces: run it, eyeball
the diff (every changed number is a span-timing change on the simulated
datapath), and commit the result together with whatever DES change
caused it.

Usage::

    PYTHONPATH=src python scripts/update_golden_traces.py
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)

from tests.trace.golden_cases import (CASES, GOLDEN_DIR,  # noqa: E402
                                      golden_file, render)


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for case in CASES:
        text = render(case, seed=0)
        if render(case, seed=7) != text:
            print(f"error: {case.slug} is seed-dependent; refusing to "
                  "write a non-deterministic golden", file=sys.stderr)
            return 1
        target = golden_file(case)
        previous = None
        if os.path.exists(target):
            with open(target) as handle:
                previous = handle.read()
        with open(target, "w") as handle:
            handle.write(text)
        state = ("unchanged" if previous == text
                 else "updated" if previous is not None else "created")
        print(f"{state}: {os.path.relpath(target, REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
