#!/usr/bin/env python
"""Track the cost trajectory of the figure sweeps.

Runs a fixed smoke workload — representative Fig 4 / Fig 8 sweeps cold
and warm, a DES hot-loop microbench, the serving-engine comparison
(pure DES vs the analytic/DES hybrid on the same adaptive scenario),
the canonical declarative rack at growing machine counts,
and (optionally) the full pytest-benchmark suite — and writes
``BENCH_sweep.json``: wall-clock, DES events/sec, the hybrid speedup,
and cache hit rates, next to the recorded seed baseline.  Intended to
run in CI so performance regressions show up in the artifact diff, not
in reviewers' patience.

Usage::

    PYTHONPATH=src python scripts/bench_trajectory.py [--no-suite]
        [--out BENCH_sweep.json] [--check] [--reps N]

``--check`` re-runs the smoke workload and fails (exit 1) when any
recorded bar regressed: cold smoke wall-time more than
``BENCH_CHECK_TOLERANCE`` (default 0.25, i.e. 25 %) over the recorded
``BENCH_sweep.json``, DES events/sec below the record by the same
tolerance, or the hybrid serving speedup below
``BENCH_CHECK_HYBRID_MIN`` (default 10x, the hybrid layer's acceptance
bar) or diverging from pure-DES counts, the sharded lockstep engine
diverging from its in-process reference, or (on machines with >= 2
cores) the ``jobs=2`` shard speedup below ``BENCH_CHECK_SHARD_MIN``
(default 1.3x; skipped with a note on single-core machines).  The file
is not rewritten; CI runs the check before regenerating the record.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.batch import BatchSolver, numpy_available    # noqa: E402
from repro.core.harness import LatencyBench, ThroughputBench   # noqa: E402
from repro.faults.bench import faulted_sweep                 # noqa: E402
from repro.core.cache import clear_all, registered_caches    # noqa: E402
from repro.core.paths import CommPath, Opcode                # noqa: E402
from repro.core.sweeps import SweepRunner                    # noqa: E402
from repro.core.throughput import (                          # noqa: E402
    Flow,
    Scenario,
    ThroughputSolver,
    configure_result_cache,
)
from repro.net.topology import paper_testbed                 # noqa: E402
from repro.sim import Simulator                              # noqa: E402
from repro.units import KB, MB                               # noqa: E402

#: Benchmark-suite wall-clock of the growth seed (single-process, no
#: caches, pytest-benchmark defaults), measured on the reference
#: container.  The acceptance bar for this perf layer was >= 3x.
SEED_BASELINE = {
    "bench_suite_wall_s": 17.4,
    "note": "seed: serial sweeps, no result caches, 1 s sampling "
            "budget per bench",
}

FIG4_PAYLOADS = [64, 256, 1024, 4 * KB, 16 * KB, 64 * KB]
FIG8_PAYLOADS = [64 * KB, 256 * KB, 1 * MB, 2 * MB, 4 * MB, 8 * MB]
PATHS = [CommPath.RNIC1, CommPath.SNIC1, CommPath.SNIC2]

#: The vector-engine acceptance grid: a dense Fig-4 payload ramp
#: (0 plus a geometric 64 B .. 1 MB sweep) across four paths and three
#: verbs — 384 single-flow points.
VECTOR_PATHS = [CommPath.RNIC1, CommPath.SNIC1, CommPath.SNIC2,
                CommPath.SNIC3_H2S]
VECTOR_OPS = [Opcode.READ, Opcode.WRITE, Opcode.SEND]


def vector_payloads(n: int = 32) -> list:
    vals = {0}
    step = (1 * MB) ** (1.0 / (n - 2))
    x = 64.0
    while len(vals) < n:
        vals.add(int(x))
        x *= step
    return sorted(vals)[:n]


def smoke_sweep(testbed) -> int:
    """The fixed workload; returns the number of points evaluated."""
    runner = SweepRunner(testbed)
    tp = ThroughputBench(testbed, runner)
    lat = LatencyBench(testbed, runner)
    points = 0
    for path in PATHS:
        for op in (Opcode.READ, Opcode.WRITE):
            tp.payload_sweep(path, op, FIG4_PAYLOADS, requesters=11)
            lat.payload_sweep(path, op, FIG4_PAYLOADS)
            points += 2 * len(FIG4_PAYLOADS)
        tp.payload_sweep(path, Opcode.READ, FIG8_PAYLOADS,
                         requesters=11, metric="gbps")
        points += len(FIG8_PAYLOADS)
    return points


def vector_sweep(testbed, reps: int = 5) -> dict:
    """Scalar vs vector cold wall-time over the 384-point Fig-4 grid.

    Both engines run against cleared caches each repetition; the best
    (minimum) time of ``reps`` repetitions is recorded, the standard
    way to strip scheduler noise from a microbenchmark.
    """
    grid = [[Flow(path=path, op=op, payload=payload, requesters=11)]
            for path in VECTOR_PATHS for op in VECTOR_OPS
            for payload in vector_payloads()]
    if not numpy_available():
        return {"points": len(grid), "skipped": "numpy not installed"}

    solver = ThroughputSolver()
    batch = BatchSolver()

    def best(fn) -> float:
        low = float("inf")
        for _ in range(reps):
            clear_all()
            start = time.perf_counter()
            fn()
            low = min(low, time.perf_counter() - start)
        return low

    scalar_s = best(lambda: [solver.solve(Scenario(testbed, flows))
                             for flows in grid])
    vector_s = best(lambda: batch.solve(testbed, grid))

    clear_all()
    batch.solve(testbed, grid)           # fill the result cache
    start = time.perf_counter()
    batch.solve(testbed, grid)
    warm_s = time.perf_counter() - start

    return {
        "points": len(grid),
        "scalar_cold_s": round(scalar_s, 4),
        "vector_cold_s": round(vector_s, 4),
        "vector_warm_s": round(warm_s, 4),
        "vector_points_per_sec": round(len(grid) / vector_s),
        "speedup_vs_scalar": round(scalar_s / vector_s, 2),
    }


def des_microbench(processes: int = 100, rounds: int = 200) -> dict:
    """Events/sec of the DES hot loop (timeout-driven coroutines)."""
    sim = Simulator()

    def ticker():
        for _ in range(rounds):
            yield sim.timeout(1.0)

    for _ in range(processes):
        sim.process(ticker())
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return {
        "events": sim.events_executed,
        "wall_s": round(wall, 4),
        "events_per_sec": round(sim.events_executed / wall),
    }


#: Arrival-window length of the serving benchmark.  Long enough that
#: the hybrid engine's guard phase (real DES until the steadiness
#: predicate holds) amortizes and the analytic fast-forward dominates.
SERVING_DURATION_NS = 6_000_000.0


def serving_bench() -> dict:
    """Wall-clock of the mixed-tenant serving run: pure DES vs hybrid.

    Both engines run the same adaptive scheduler scenario; the hybrid
    engine must reproduce the DES completion/rejection/loss counts
    *exactly* (its faithfulness contract — see docs/performance.md and
    ``python -m repro crosscheck``), so the recorded speedup is a
    same-answer speedup, not an approximation trade.
    """
    from repro.sched.serve import ServeSession, mixed_tenant_workload

    def run(engine):
        session = ServeSession(
            mixed_tenant_workload(duration_ns=SERVING_DURATION_NS, seed=0),
            engine=engine)
        start = time.perf_counter()
        session.run_to_completion()
        wall = time.perf_counter() - start
        return session.finalize(), wall, session.cluster.sim.events_executed

    des_report, des_s, des_events = run("event")
    hyb_report, hyb_s, hyb_events = run("hybrid")
    counts = lambda r: {name: (t.completed, t.rejected, t.lost)  # noqa: E731
                        for name, t in r.tenants.items()}
    totals = counts(des_report)
    return {
        "des_serving": {
            "duration_ns": SERVING_DURATION_NS,
            "wall_s": round(des_s, 4),
            "events": des_events,
            "events_per_sec": round(des_events / des_s),
            "completed": sum(c for c, _r, _l in totals.values()),
            "rejected": sum(r for _c, r, _l in totals.values()),
        },
        "hybrid_serving": {
            "wall_s": round(hyb_s, 4),
            "events": hyb_events,
            "speedup_vs_des": round(des_s / hyb_s, 2),
            "counts_match_des": counts(hyb_report) == totals,
            "stats": hyb_report.hybrid_stats,
        },
    }


#: Arrival-window length per machine of the shard-scaling benchmark.
SHARD_DURATION_NS = 1_200_000.0
#: Worker-process counts swept by the scaling benchmark; the plan has
#: ``max(SHARD_JOBS)`` machines, each exporting bulk traffic to the
#: next over the cross-shard fabric.
SHARD_JOBS = (1, 2, 4)


def shard_scaling_bench(duration_ns: float = SHARD_DURATION_NS,
                        jobs: tuple = SHARD_JOBS) -> dict:
    """Wall-clock scaling of lockstep sharding with cross-shard traffic.

    ``jobs=1`` is the in-process reference; every multiprocess point
    must reproduce its merged counts and decision log bit-exactly
    (the one-window delivery contract of ``repro.sim.shard``).  Real
    wall-clock scaling needs >= 2 cores — the recorded ``cores`` field
    says what this run had, and the ``--check`` gate skips the speedup
    bar (with a note) on single-core machines.
    """
    from dataclasses import replace

    from repro.sched.serve import mixed_tenant_workload
    from repro.sim.shard import ShardPlan, ShardSpec, run_sharded
    from repro.sim.xshard import CrossTraffic

    n_shards = max(jobs)

    def plan() -> ShardPlan:
        names = [f"m{i}" for i in range(n_shards)]
        shards = []
        for i in range(n_shards):
            tenants = tuple(
                replace(t, name=f"{t.name}-{i}", seed=t.seed + 37 * i)
                for t in mixed_tenant_workload(duration_ns=duration_ns,
                                               seed=0))
            exports = tuple(
                CrossTraffic(t.name, names[(i + 1) % n_shards], "bulk")
                for t in tenants if t.bulk)
            shards.append(ShardSpec(name=names[i], tenants=tenants,
                                    exports=exports))
        return ShardPlan(shards=tuple(shards))

    def key(report):
        return (sorted((t.name, t.completed, t.rejected, t.lost)
                       for t in report.tenants.values()),
                [d.as_tuple() for d in report.decisions])

    def run(n_jobs):
        start = time.perf_counter()
        report = run_sharded(plan(), jobs=n_jobs)
        return report, time.perf_counter() - start

    reference, ref_s = run(1)
    ref_key = key(reference)
    points = {"1": {"wall_s": round(ref_s, 4), "speedup_vs_jobs1": 1.0,
                    "bit_identical": True}}
    for n_jobs in jobs:
        if n_jobs == 1:
            continue
        report, wall = run(n_jobs)
        points[str(n_jobs)] = {
            "wall_s": round(wall, 4),
            "speedup_vs_jobs1": round(ref_s / wall, 2),
            "bit_identical": key(report) == ref_key,
        }
    return {
        "duration_ns": duration_ns,
        "shards": n_shards,
        "cores": os.cpu_count(),
        "cross_shard_msgs": int(reference.counters.get("xshard.sent", 0)),
        "jobs": points,
    }


#: Machine counts for the rack-scaling record.  6 is the floor the
#: canonical population fits under the 20-clients-per-machine cap;
#: 12 is the rack as ``examples/rack_scenario.json`` describes it.
CLUSTER_MACHINES = (6, 12)


def cluster_scaling_bench(machines: tuple = CLUSTER_MACHINES) -> dict:
    """Wall-clock and headline metrics of the canonical rack scenario.

    Runs ``examples/rack_scenario.json`` (112 population tenants,
    ~1.09M simulated users) at each machine count, and re-runs the
    smallest rack at ``jobs=2`` to record that the declarative cluster
    path keeps the lockstep bit-identity contract end to end
    (placement, LB ingress, cluster scheduler and all).
    """
    from repro.cluster import run_cluster

    doc = os.path.join(REPO_ROOT, "examples", "rack_scenario.json")

    def digest(report):
        return (sorted((t.name, t.completed, t.rejected, t.lost)
                       for t in report.tenants.values()),
                [d.as_tuple() for d in report.cluster_decisions])

    racks = {}
    reference = None
    for count in machines:
        start = time.perf_counter()
        report = run_cluster(doc, jobs=1, machines=count)
        wall = time.perf_counter() - start
        if count == min(machines):
            reference = report
        racks[str(count)] = {
            "wall_s": round(wall, 4),
            "tenants": len(report.tenants),
            "users": report.total_users,
            "slo_goodput_gbps": round(report.total_slo_goodput_gbps, 2),
            "slo_attainment": round(report.slo_attainment, 4),
            "cluster_moves": len(report.cluster_decisions),
        }
    many = run_cluster(doc, jobs=2, machines=min(machines))
    return {
        "scenario": "examples/rack_scenario.json",
        "machines": racks,
        "jobs2_bit_identical": digest(many) == digest(reference),
    }


#: Replicates and window length of the CI half-width record.  The
#: duration is longer than the validate default so the window archive
#: holds enough warm windows for a meaningful batch-means interval.
STATS_CI_SEEDS = 3
STATS_CI_DURATION_NS = 2_400_000.0


def stats_ci_bench() -> dict:
    """Cross-seed + within-run CI half-widths of the adaptive scenario.

    Records, per tenant, the warm-up-truncated batch-means estimate of
    windowed p99 and goodput (mean, CI half-width, warm window count)
    plus the cross-seed half-width of the SLO-goodput headline.  The
    point of keeping these in ``BENCH_sweep.json`` is trend tracking:
    a half-width that suddenly grows means the simulator got noisier
    (or a seed stopped being absorbed), which no mean-only record
    would catch.  Zero cross-seed half-width is expected — the serving
    families are seed-invariant (docs/validation.md).
    """
    from repro.stats.replicate import replicate

    rep = replicate("adaptive", seeds=STATS_CI_SEEDS,
                    duration_ns=STATS_CI_DURATION_NS)
    tenants = {}
    for name in rep.tenant_names():
        p99 = rep.within_run(name, field="p99_ns")
        goodput = rep.within_run(name, field="goodput_gbps")
        tenants[name] = {
            "p99_ns": {"mean": round(p99.mean, 1),
                       "half_width": round(p99.half_width, 1),
                       "windows": p99.n},
            "goodput_gbps": {"mean": round(goodput.mean, 4),
                             "half_width": round(goodput.half_width, 4),
                             "windows": goodput.n},
        }
    total = rep.total_slo_goodput()
    return {
        "family": "adaptive",
        "seeds": STATS_CI_SEEDS,
        "duration_ns": STATS_CI_DURATION_NS,
        "confidence": 0.95,
        "tenants": tenants,
        "slo_goodput_gbps": {
            "mean": round(total.mean, 4),
            "cross_seed_half_width": round(total.half_width, 4),
        },
    }


def time_suite() -> float:
    """Wall-clock of the full pytest-benchmark suite, seconds."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "-q"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    wall = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit("benchmark suite failed")
    return wall


def timed_smoke(testbed, reps: int = 1):
    """(points, best cold seconds, warm seconds) of the smoke workload."""
    points = 0
    cold_s = float("inf")
    for _ in range(reps):
        clear_all()
        start = time.perf_counter()
        points = smoke_sweep(testbed)
        cold_s = min(cold_s, time.perf_counter() - start)
    start = time.perf_counter()
    smoke_sweep(testbed)
    warm_s = time.perf_counter() - start
    return points, cold_s, warm_s


def check_regression(recorded_path: str, cold_s: float, des_eps: float,
                     serving: dict) -> int:
    """Exit status: 1 when any recorded performance bar regressed.

    Three gates, all against the recorded ``BENCH_sweep.json``:

    * cold smoke-sweep wall-time within ``BENCH_CHECK_TOLERANCE``;
    * DES hot-loop events/sec monotone (no worse than the record,
      minus the same tolerance);
    * the hybrid serving engine at least ``BENCH_CHECK_HYBRID_MIN``
      (default 10) times faster than pure DES *while reproducing its
      counts exactly* — the acceptance bar of the hybrid layer.
    """
    tolerance = float(os.environ.get("BENCH_CHECK_TOLERANCE", "0.25"))
    hybrid_min = float(os.environ.get("BENCH_CHECK_HYBRID_MIN", "10.0"))
    try:
        with open(recorded_path) as handle:
            recorded = json.load(handle)
        baseline = float(recorded["smoke_sweep"]["cold_s"])
    except (OSError, ValueError, KeyError) as exc:
        print(f"bench check skipped: no usable baseline in "
              f"{recorded_path} ({exc})")
        return 0
    failures = 0

    limit = baseline * (1.0 + tolerance)
    verdict = "OK" if cold_s <= limit else "REGRESSED"
    failures += cold_s > limit
    print(f"bench check: cold smoke sweep {cold_s:.4f} s vs recorded "
          f"{baseline:.4f} s (limit {limit:.4f} s, "
          f"tolerance {tolerance:.0%}) -> {verdict}")

    recorded_eps = float(recorded.get("des", {}).get("events_per_sec", 0.0))
    if recorded_eps:
        floor = recorded_eps * (1.0 - tolerance)
        verdict = "OK" if des_eps >= floor else "REGRESSED"
        failures += des_eps < floor
        print(f"bench check: DES hot loop {des_eps:,.0f} events/s vs "
              f"recorded {recorded_eps:,.0f} (floor {floor:,.0f}) "
              f"-> {verdict}")

    hybrid = serving["hybrid_serving"]
    speedup = hybrid["speedup_vs_des"]
    verdict = "OK" if speedup >= hybrid_min else "REGRESSED"
    failures += speedup < hybrid_min
    print(f"bench check: hybrid serving {speedup:.1f}x vs pure DES "
          f"(floor {hybrid_min:.1f}x) -> {verdict}")
    if not hybrid["counts_match_des"]:
        failures += 1
        print("bench check: hybrid serving counts DIVERGED from pure DES "
              "-> FAITHFULNESS BROKEN")

    failures += check_shard_scaling(shard_scaling_bench())

    return 1 if failures else 0


def check_shard_scaling(shard: dict) -> int:
    """Shard-scaling gate: bit-identity always; speedup when cores allow.

    Every multiprocess point must merge bit-identically with the
    in-process reference.  The ``jobs=2`` wall-clock speedup must reach
    ``BENCH_CHECK_SHARD_MIN`` (default 1.3x) when the machine has at
    least 2 cores; on single-core machines the speedup bar is skipped
    with a note (lockstep over pipes cannot beat in-process there).
    """
    shard_min = float(os.environ.get("BENCH_CHECK_SHARD_MIN", "1.3"))
    failures = 0
    for n_jobs, point in sorted(shard["jobs"].items()):
        if not point["bit_identical"]:
            failures += 1
            print(f"bench check: sharded jobs={n_jobs} DIVERGED from the "
                  "in-process reference -> LOCKSTEP BROKEN")
    cores = shard.get("cores") or 1
    speedup = shard["jobs"].get("2", {}).get("speedup_vs_jobs1", 0.0)
    if cores >= 2:
        verdict = "OK" if speedup >= shard_min else "REGRESSED"
        failures += speedup < shard_min
        print(f"bench check: sharded jobs=2 {speedup:.2f}x vs jobs=1 "
              f"(floor {shard_min:.1f}x, {cores} cores) -> {verdict}")
    else:
        print(f"bench check: sharded jobs=2 {speedup:.2f}x vs jobs=1 "
              f"-> SKIPPED (single-core machine; bit-identity still "
              "checked)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_sweep.json"))
    parser.add_argument("--no-suite", action="store_true",
                        help="skip timing the full pytest-benchmark "
                             "suite (smoke sweep + DES only)")
    parser.add_argument("--check", action="store_true",
                        help="compare the cold smoke sweep against the "
                             "recorded --out file and exit 1 on a "
                             ">BENCH_CHECK_TOLERANCE regression; does "
                             "not rewrite the file")
    parser.add_argument("--reps", type=int, default=None,
                        help="cold-sweep repetitions, best-of (default: "
                             "1, or 3 with --check)")
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (3 if args.check else 1)

    testbed = paper_testbed()
    configure_result_cache(enabled=True, disk_dir=None)

    points, cold_s, warm_s = timed_smoke(testbed, reps=reps)
    if args.check:
        return check_regression(args.out, cold_s,
                                des_microbench()["events_per_sec"],
                                serving_bench())

    caches = {
        cache.name: {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 4),
        }
        for cache in registered_caches()
    }

    report = {
        "generated_by": "scripts/bench_trajectory.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "seed_baseline": SEED_BASELINE,
        "smoke_sweep": {
            "points": points,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 1) if warm_s else None,
            "caches": caches,
        },
        "vector_sweep": vector_sweep(testbed),
        "des": des_microbench(),
        # Pure DES vs the hybrid analytic/DES serving engine on the
        # same adaptive multi-tenant scenario (same-answer speedup).
        **serving_bench(),
        # Goodput under injected packet loss (DES + RC retransmission);
        # the 0.0 row doubles as the pay-as-you-go reference.
        "faulted_sweep": faulted_sweep(rates=(0.0, 0.001, 0.01)),
        # Multiprocess lockstep scaling with cross-shard bulk traffic
        # (jobs=1 in-process reference; bit-identity always enforced).
        "shard_scaling": shard_scaling_bench(),
        # The canonical declarative rack (112 tenants, ~1.09M users)
        # at growing machine counts, with the jobs=2 identity check.
        "cluster_scaling": cluster_scaling_bench(),
        # Confidence-interval half-widths of the headline serving
        # metrics (repro.stats batch-means over the window archive);
        # tracked so noise growth shows up in the artifact diff.
        "stats_ci": stats_ci_bench(),
    }

    if not args.no_suite:
        wall = time_suite()
        report["bench_suite"] = {
            "wall_s": round(wall, 2),
            "speedup_vs_seed": round(
                SEED_BASELINE["bench_suite_wall_s"] / wall, 2),
        }

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
