#!/usr/bin/env python
"""Track the cost trajectory of the figure sweeps.

Runs a fixed smoke workload — representative Fig 4 / Fig 8 sweeps cold
and warm, a DES hot-loop microbench, and (optionally) the full
pytest-benchmark suite — and writes ``BENCH_sweep.json``: wall-clock,
DES events/sec, and cache hit rates, next to the recorded seed
baseline.  Intended to run in CI so performance regressions show up in
the artifact diff, not in reviewers' patience.

Usage::

    PYTHONPATH=src python scripts/bench_trajectory.py [--no-suite]
        [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.bench import LatencyBench, ThroughputBench   # noqa: E402
from repro.core.cache import clear_all, registered_caches    # noqa: E402
from repro.core.paths import CommPath, Opcode                # noqa: E402
from repro.core.sweeps import SweepRunner                    # noqa: E402
from repro.core.throughput import configure_result_cache     # noqa: E402
from repro.net.topology import paper_testbed                 # noqa: E402
from repro.sim import Simulator                              # noqa: E402
from repro.units import KB, MB                               # noqa: E402

#: Benchmark-suite wall-clock of the growth seed (single-process, no
#: caches, pytest-benchmark defaults), measured on the reference
#: container.  The acceptance bar for this perf layer was >= 3x.
SEED_BASELINE = {
    "bench_suite_wall_s": 17.4,
    "note": "seed: serial sweeps, no result caches, 1 s sampling "
            "budget per bench",
}

FIG4_PAYLOADS = [64, 256, 1024, 4 * KB, 16 * KB, 64 * KB]
FIG8_PAYLOADS = [64 * KB, 256 * KB, 1 * MB, 2 * MB, 4 * MB, 8 * MB]
PATHS = [CommPath.RNIC1, CommPath.SNIC1, CommPath.SNIC2]


def smoke_sweep(testbed) -> int:
    """The fixed workload; returns the number of points evaluated."""
    runner = SweepRunner(testbed)
    tp = ThroughputBench(testbed, runner)
    lat = LatencyBench(testbed, runner)
    points = 0
    for path in PATHS:
        for op in (Opcode.READ, Opcode.WRITE):
            tp.payload_sweep(path, op, FIG4_PAYLOADS, requesters=11)
            lat.payload_sweep(path, op, FIG4_PAYLOADS)
            points += 2 * len(FIG4_PAYLOADS)
        tp.payload_sweep(path, Opcode.READ, FIG8_PAYLOADS,
                         requesters=11, metric="gbps")
        points += len(FIG8_PAYLOADS)
    return points


def des_microbench(processes: int = 100, rounds: int = 200) -> dict:
    """Events/sec of the DES hot loop (timeout-driven coroutines)."""
    sim = Simulator()

    def ticker():
        for _ in range(rounds):
            yield sim.timeout(1.0)

    for _ in range(processes):
        sim.process(ticker())
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return {
        "events": sim.events_executed,
        "wall_s": round(wall, 4),
        "events_per_sec": round(sim.events_executed / wall),
    }


def time_suite() -> float:
    """Wall-clock of the full pytest-benchmark suite, seconds."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "-q"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    wall = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit("benchmark suite failed")
    return wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_sweep.json"))
    parser.add_argument("--no-suite", action="store_true",
                        help="skip timing the full pytest-benchmark "
                             "suite (smoke sweep + DES only)")
    args = parser.parse_args(argv)

    testbed = paper_testbed()
    configure_result_cache(enabled=True, disk_dir=None)

    clear_all()
    start = time.perf_counter()
    points = smoke_sweep(testbed)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    smoke_sweep(testbed)
    warm_s = time.perf_counter() - start

    caches = {
        cache.name: {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 4),
        }
        for cache in registered_caches()
    }

    report = {
        "generated_by": "scripts/bench_trajectory.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "seed_baseline": SEED_BASELINE,
        "smoke_sweep": {
            "points": points,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 1) if warm_s else None,
            "caches": caches,
        },
        "des": des_microbench(),
    }

    if not args.no_suite:
        wall = time_suite()
        report["bench_suite"] = {
            "wall_s": round(wall, 2),
            "speedup_vs_seed": round(
                SEED_BASELINE["bench_suite_wall_s"] / wall, 2),
        }

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
