"""The :class:`Session` facade: one object, the whole toolkit.

A session pins a testbed and a :class:`~repro.core.options.RunOptions`
and exposes every user-facing capability behind short methods, so the
common flows read as one-liners instead of four imports and three
constructors.  Paths and opcodes accept either the enums or their
string spellings (``"snic-1"``, ``"1"``, ``"read"``).
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Sequence, Union

from repro.core.advisor import Advisor, OffloadPlan, WorkloadProfile
from repro.core.harness import LatencyBench, Sweep, ThroughputBench
from repro.core.latency import LatencyBreakdown, LatencyModel
from repro.core.options import RunOptions
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, SolverResult
from repro.net.topology import Testbed, paper_testbed
from repro.units import GB

PathLike = Union[CommPath, str]
OpLike = Union[Opcode, str]

_PATHS: Dict[str, CommPath] = {p.value: p for p in CommPath}
_PATHS.update({p.name.lower(): p for p in CommPath})
_PATHS.update({"1": CommPath.SNIC1, "2": CommPath.SNIC2,
               "3": CommPath.SNIC3_H2S})

#: One-shot latch for the serve_sharded deprecation (module-level, so
#: it fires once per process, not once per Session — mirroring the
#: import-time shim in repro.core.bench).
_SERVE_SHARDED_WARNED = False


def _coerce_path(path: PathLike) -> CommPath:
    if isinstance(path, CommPath):
        return path
    key = str(path).lower().replace("_", "-")
    try:
        return _PATHS[key]
    except KeyError:
        choices = ", ".join(sorted({p.value for p in CommPath}))
        raise ValueError(
            f"unknown path {path!r}; choose from {choices}") from None


def _coerce_op(op: OpLike) -> Opcode:
    if isinstance(op, Opcode):
        return op
    try:
        return Opcode(str(op).lower())
    except ValueError:
        choices = ", ".join(o.value for o in Opcode)
        raise ValueError(
            f"unknown op {op!r}; choose from {choices}") from None


class Session:
    """One facade over models, benches, advisor, tracing and serving.

    All heavy members (benches, the advisor) are built lazily and
    shared, so a session amortizes solver caches across calls; the
    ``options`` run configuration applies to every sweep it runs.
    """

    def __init__(self, testbed: Optional[Testbed] = None,
                 options: Optional[RunOptions] = None):
        self.testbed = testbed or paper_testbed()
        self.options = options or RunOptions()
        self._latency_bench: Optional[LatencyBench] = None
        self._throughput_bench: Optional[ThroughputBench] = None
        self._advisor: Optional[Advisor] = None

    # -- lazy members -------------------------------------------------------

    @property
    def latency_bench(self) -> LatencyBench:
        if self._latency_bench is None:
            self._latency_bench = LatencyBench(self.testbed,
                                               options=self.options)
        return self._latency_bench

    @property
    def throughput_bench(self) -> ThroughputBench:
        if self._throughput_bench is None:
            self._throughput_bench = ThroughputBench(self.testbed,
                                                     options=self.options)
        return self._throughput_bench

    @property
    def advisor(self) -> Advisor:
        if self._advisor is None:
            self._advisor = Advisor(self.testbed)
        return self._advisor

    # -- point queries ------------------------------------------------------

    def latency(self, path: PathLike, op: OpLike,
                payload: int) -> LatencyBreakdown:
        """End-to-end latency breakdown of one request shape."""
        return LatencyModel(self.testbed).latency(
            _coerce_path(path), _coerce_op(op), payload)

    def throughput(self, path: PathLike, op: OpLike, payload: int,
                   requesters: int = 11, range_bytes: float = 10 * GB,
                   doorbell_batch: int = 1) -> SolverResult:
        """Peak throughput (and bottleneck) of one flow."""
        flow = Flow(path=_coerce_path(path), op=_coerce_op(op),
                    payload=payload, requesters=requesters,
                    range_bytes=range_bytes, doorbell_batch=doorbell_batch)
        return self.throughput_bench.solver.solve(
            Scenario(self.testbed, [flow]))

    # -- sweeps -------------------------------------------------------------

    def latency_sweep(self, path: PathLike, op: OpLike,
                      payloads: Sequence[int]) -> Sweep:
        """Latency versus payload, through the session's run options."""
        return self.latency_bench.payload_sweep(
            _coerce_path(path), _coerce_op(op), payloads)

    def throughput_sweep(self, path: PathLike, op: OpLike,
                         payloads: Sequence[int], requesters: int = 11,
                         metric: str = "mrps") -> Sweep:
        """Peak throughput versus payload."""
        return self.throughput_bench.payload_sweep(
            _coerce_path(path), _coerce_op(op), payloads,
            requesters=requesters, metric=metric)

    # -- advice -------------------------------------------------------------

    def advise(self, profile: Optional[WorkloadProfile] = None,
               **profile_kwargs) -> OffloadPlan:
        """Run the offload advisor on a workload profile.

        Pass a ready :class:`WorkloadProfile`, or its fields as
        keyword arguments (``payload=256, read_fraction=0.9, ...``).
        """
        if profile is not None and profile_kwargs:
            raise ValueError("pass a profile or its fields, not both")
        if profile is None:
            profile = WorkloadProfile(**profile_kwargs)
        return self.advisor.plan(profile)

    # -- tracing ------------------------------------------------------------

    def trace(self, path: PathLike, op: OpLike, payload: int,
              count: int = 1, seed: int = 0, telemetry: bool = False):
        """Span-trace verbs through the DES datapath; returns the Tracer."""
        from repro.trace import run_traced_verbs

        return run_traced_verbs(_coerce_path(path), _coerce_op(op), payload,
                                count=count, seed=seed, testbed=self.testbed,
                                telemetry=telemetry)

    # -- serving ------------------------------------------------------------

    def serve(self, tenants, **kwargs):
        """Run the online path scheduler over tenant streams.

        Accepts every :func:`repro.sched.run_serve` keyword
        (``adaptive=``, ``faults=``, ``engine=``, ``trace=`` ...) and
        returns its :class:`~repro.sched.ServeReport`.  When the
        session was built with ``RunOptions(engine="hybrid")`` and no
        explicit ``engine=`` is passed, the serving run uses the
        analytic/DES hybrid engine (docs/performance.md).
        """
        from repro.sched import run_serve

        if "engine" not in kwargs and self.options.engine == "hybrid":
            kwargs["engine"] = "hybrid"
        return run_serve(tenants, testbed=self.testbed, **kwargs)

    # -- validation ---------------------------------------------------------

    def validate(self, families: Optional[Sequence[str]] = None,
                 seeds: int = 3, **kwargs):
        """Run the statistical verification suite (``repro validate``).

        Replicates the scenario families across ``seeds``, audits every
        replicate against the invariant catalog (flow conservation,
        Little's law, utilization bounds), grades DES-vs-hybrid engine
        agreement by CI overlap, and re-derives the Fig-4/9/11 numbers
        with confidence intervals.  Returns a
        :class:`~repro.stats.validate.VerificationReport`; see
        docs/validation.md for how to read it.  Accepts every
        :func:`~repro.stats.validate.run_validation` keyword
        (``duration_ns=``, ``jobs=``, ``confidence=`` ...).
        """
        from repro.stats.validate import run_validation

        return run_validation(families=families, seeds=seeds, **kwargs)

    def serve_cluster(self, scenario, **kwargs):
        """Run a declarative rack-scale cluster scenario.

        ``scenario`` is a :class:`~repro.api.schema.ClusterScenario`
        or a path to its JSON document
        (``examples/rack_scenario.json`` is the canonical one; the CLI
        spelling is ``repro serve --cluster <doc.json>``).  Accepts
        every :func:`repro.cluster.run_cluster` keyword (``jobs=``,
        ``machines=``, ``population_seed=``, ``placement=``,
        ``migrate=``, ``supervisor=``) and returns a
        :class:`~repro.cluster.ClusterReport`.  The session's
        :class:`~repro.core.options.RunOptions` supply defaults for
        ``machines``/``population_seed``/``jobs``/``engine`` when not
        passed explicitly (docs/cluster.md).
        """
        from repro.cluster import run_cluster

        if "engine" not in kwargs and self.options.engine == "hybrid":
            kwargs["engine"] = "hybrid"
        if "machines" not in kwargs and self.options.machines:
            kwargs["machines"] = self.options.machines
        if ("population_seed" not in kwargs
                and self.options.population_seed is not None):
            kwargs["population_seed"] = self.options.population_seed
        if "jobs" not in kwargs and self.options.jobs:
            kwargs["jobs"] = self.options.jobs
        return run_cluster(scenario, testbed=self.testbed, **kwargs)

    def serve_sharded(self, plan, **kwargs):
        """Deprecated: run a raw shard plan (use :meth:`serve_cluster`).

        Hand-built :class:`~repro.sim.shard.ShardPlan` execution
        predates the declarative cluster API; scenarios expressed as
        documents get placement, the LB tier, population traffic and
        cluster scheduling on top of the same lockstep executor.  This
        method remains a thin alias of
        :func:`repro.sim.shard.run_sharded` for plans that need exact
        shard control; it warns once per process.
        """
        from repro.sim.shard import run_sharded

        global _SERVE_SHARDED_WARNED
        if not _SERVE_SHARDED_WARNED:
            _SERVE_SHARDED_WARNED = True
            warnings.warn(
                "Session.serve_sharded is deprecated; describe the rack "
                "as a ClusterScenario and call Session.serve_cluster "
                "(raw ShardPlans can still run via "
                "repro.sim.shard.run_sharded)",
                DeprecationWarning, stacklevel=2)
        if "engine" not in kwargs and self.options.engine == "hybrid":
            kwargs["engine"] = "hybrid"
        return run_sharded(plan, testbed=self.testbed, **kwargs)
