"""The stable public surface of :mod:`repro`.

Everything a typical user needs rides on two names:

* :class:`Session` — one facade over the characterization toolkit:
  latency/throughput queries and sweeps, the offload advisor, span
  tracing and the online serving runtime, all sharing one testbed and
  one set of run options.
* :class:`RunOptions` — execution knobs (engine, jobs, caching,
  profiling) normalized across every bench, the CLI and the facade.

Deeper modules (:mod:`repro.core`, :mod:`repro.sched`, :mod:`repro.rdma`)
remain importable for power users, but their layouts may shift between
releases; this package's exports are snapshot-tested
(``tests/test_public_api.py``) and deprecations go through warning
shims first.

Usage::

    from repro.api import Session

    session = Session()
    print(session.latency("snic-1", "read", 64).total_us)
    report = session.serve(mixed_tenant_workload())
"""

from repro.api.schema import ClusterScenario, MachineDoc, SchedulerDoc, TenantDoc
from repro.api.session import Session
from repro.core.options import RunOptions

__all__ = ["ClusterScenario", "MachineDoc", "RunOptions", "SchedulerDoc",
           "Session", "TenantDoc"]
