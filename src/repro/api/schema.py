"""The declarative cluster-scenario schema: one JSON document → one run.

A *scenario* names everything a rack-scale serving experiment needs —
the machines (with their NIC devices), the tenant population (either
stochastic user cohorts or explicit tenant specs), the load-balancer
tier, the placement/migration policy and an optional fault plan — and
round-trips losslessly through JSON::

    scenario = ClusterScenario.from_file("examples/rack_scenario.json")
    report = Session().serve_cluster(scenario)

``examples/rack_scenario.json`` is the canonical document; the CLI
front door is ``repro serve --cluster <doc.json>``.  Compilation to an
executable :class:`~repro.sim.shard.ShardPlan` lives in
:mod:`repro.cluster.run` — this module is pure description.

Validation errors raise :class:`SchemaError` carrying the JSON path of
the offending field (``machines[2].nic``), so a typo in a 300-line
document is a one-line fix, not a stack trace safari.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.machine import MachineSpec
from repro.faults.plan import FaultPlan
from repro.sched.tenant import SloSpec, TenantSpec
from repro.units import GB
from repro.workloads import OpMix
from repro.workloads.population import PopulationSpec

_ENGINES = ("event", "des-heap", "hybrid")
_PLACEMENTS = ("binpack", "round-robin")


class SchemaError(ValueError):
    """A scenario document failed validation, with the JSON path."""

    def __init__(self, path: str, problem: str):
        self.path = path
        super().__init__(f"{path}: {problem}")


def _require(raw: dict, path: str, key: str):
    if key not in raw:
        raise SchemaError(f"{path}.{key}", "required field missing")
    return raw[key]


def _check_keys(raw: dict, path: str, allowed: Tuple[str, ...]) -> None:
    unknown = sorted(set(raw) - set(allowed))
    if unknown:
        raise SchemaError(f"{path}.{unknown[0]}",
                          f"unknown field; expected one of {sorted(allowed)}")


@dataclass(frozen=True)
class MachineDoc:
    """One machine — or, with ``count``, a homogeneous group.

    ``{"name": "web", "nic": "snic", "count": 9}`` expands to machines
    ``web00`` … ``web08``; ``count=1`` keeps the bare name.
    """

    name: str
    nic: str = "snic"
    count: int = 1

    def __post_init__(self):
        if not self.name:
            raise SchemaError("machines[].name", "machine needs a name")
        if self.count < 1:
            raise SchemaError(f"machines[{self.name}].count",
                              f"count must be >= 1: {self.count}")

    def expand(self) -> Tuple[MachineSpec, ...]:
        if self.count == 1:
            return (MachineSpec(name=self.name, nic=self.nic),)
        return tuple(MachineSpec(name=f"{self.name}{i:02d}", nic=self.nic)
                     for i in range(self.count))

    def to_dict(self) -> dict:
        out = {"name": self.name, "nic": self.nic}
        if self.count != 1:
            out["count"] = self.count
        return out

    @classmethod
    def from_dict(cls, raw: dict, path: str = "machines[]") -> "MachineDoc":
        _check_keys(raw, path, ("name", "nic", "count"))
        try:
            return cls(name=_require(raw, path, "name"),
                       nic=raw.get("nic", "snic"),
                       count=int(raw.get("count", 1)))
        except ValueError as exc:
            if isinstance(exc, SchemaError):
                raise
            raise SchemaError(path, str(exc))


@dataclass(frozen=True)
class SchedulerDoc:
    """Cluster placement and migration policy knobs."""

    placement: str = "binpack"
    migrate: bool = True
    patience: int = 2
    cooldown_windows: int = 6
    min_samples: int = 4
    headroom: float = 0.9

    def __post_init__(self):
        if self.placement not in _PLACEMENTS:
            raise SchemaError("scheduler.placement",
                              f"unknown placement {self.placement!r}; "
                              f"expected one of {_PLACEMENTS}")
        if not 0.0 < self.headroom <= 1.0:
            raise SchemaError("scheduler.headroom",
                              f"headroom must be in (0, 1]: {self.headroom}")

    def to_dict(self) -> dict:
        return {"placement": self.placement, "migrate": self.migrate,
                "patience": self.patience,
                "cooldown_windows": self.cooldown_windows,
                "min_samples": self.min_samples, "headroom": self.headroom}

    @classmethod
    def from_dict(cls, raw: dict, path: str = "scheduler") -> "SchedulerDoc":
        _check_keys(raw, path, ("placement", "migrate", "patience",
                                "cooldown_windows", "min_samples",
                                "headroom"))
        try:
            return cls(placement=raw.get("placement", "binpack"),
                       migrate=bool(raw.get("migrate", True)),
                       patience=int(raw.get("patience", 2)),
                       cooldown_windows=int(raw.get("cooldown_windows", 6)),
                       min_samples=int(raw.get("min_samples", 4)),
                       headroom=float(raw.get("headroom", 0.9)))
        except ValueError as exc:
            if isinstance(exc, SchemaError):
                raise
            raise SchemaError(path, str(exc))


@dataclass(frozen=True)
class TenantDoc:
    """One explicitly-specified tenant (versus a stochastic cohort).

    The knobs mirror :class:`~repro.sched.tenant.TenantSpec`;
    ``machine`` optionally pins the tenant to a named machine (the
    placement policies seed pins first and pack around them).
    """

    name: str
    payload: int
    interval_ns: float
    requests: int
    read_fraction: float = 1.0
    send_fraction: float = 0.0
    bulk: bool = False
    slo_p99_ns: float = 50_000.0
    working_set_bytes: float = 1 * GB
    hot_range_bytes: Optional[float] = None
    workers: int = 4
    queue_limit: int = 32
    seed: int = 0
    machine: Optional[str] = None

    def to_spec(self, ingress_ns: float = 0.0) -> TenantSpec:
        one_sided = max(0.0, 1.0 - self.send_fraction)
        return TenantSpec(
            name=self.name, payload=self.payload,
            interval_ns=self.interval_ns, requests=self.requests,
            mix=OpMix(read=one_sided * self.read_fraction,
                      write=one_sided * (1.0 - self.read_fraction),
                      send=self.send_fraction),
            slo=SloSpec(p99_ns=self.slo_p99_ns),
            bulk=self.bulk, hot_range_bytes=self.hot_range_bytes,
            working_set_bytes=self.working_set_bytes, workers=self.workers,
            queue_limit=self.queue_limit, seed=self.seed,
            ingress_ns=0.0 if self.bulk else ingress_ns)

    def to_dict(self) -> dict:
        out = {"name": self.name, "payload": self.payload,
               "interval_ns": self.interval_ns, "requests": self.requests,
               "read_fraction": self.read_fraction,
               "send_fraction": self.send_fraction, "bulk": self.bulk,
               "slo_p99_ns": self.slo_p99_ns,
               "working_set_bytes": self.working_set_bytes,
               "workers": self.workers, "queue_limit": self.queue_limit,
               "seed": self.seed}
        if self.hot_range_bytes is not None:
            out["hot_range_bytes"] = self.hot_range_bytes
        if self.machine is not None:
            out["machine"] = self.machine
        return out

    @classmethod
    def from_dict(cls, raw: dict, path: str = "tenants[]") -> "TenantDoc":
        _check_keys(raw, path, ("name", "payload", "interval_ns",
                                "requests", "read_fraction",
                                "send_fraction", "bulk", "slo_p99_ns",
                                "working_set_bytes", "hot_range_bytes",
                                "workers", "queue_limit", "seed", "machine"))
        try:
            return cls(
                name=_require(raw, path, "name"),
                payload=int(_require(raw, path, "payload")),
                interval_ns=float(_require(raw, path, "interval_ns")),
                requests=int(_require(raw, path, "requests")),
                read_fraction=float(raw.get("read_fraction", 1.0)),
                send_fraction=float(raw.get("send_fraction", 0.0)),
                bulk=bool(raw.get("bulk", False)),
                slo_p99_ns=float(raw.get("slo_p99_ns", 50_000.0)),
                working_set_bytes=float(raw.get("working_set_bytes",
                                                1 * GB)),
                hot_range_bytes=raw.get("hot_range_bytes"),
                workers=int(raw.get("workers", 4)),
                queue_limit=int(raw.get("queue_limit", 32)),
                seed=int(raw.get("seed", 0)),
                machine=raw.get("machine"))
        except ValueError as exc:
            if isinstance(exc, SchemaError):
                raise
            raise SchemaError(path, str(exc))


@dataclass(frozen=True)
class ClusterScenario:
    """The whole experiment, declaratively.

    * ``machines`` — the rack (:class:`MachineDoc`, expandable groups).
    * ``populations`` — stochastic user cohorts
      (:class:`~repro.workloads.population.PopulationSpec`), sampled
      open-loop into concrete tenants by ``population_seed``.
    * ``tenants`` — explicit tenants (:class:`TenantDoc`), optionally
      pinned to machines; may be combined with populations.
    * ``lb_latency_ns`` — the load-balancer hop; request latencies gain
      one LB round trip (``2 × lb_latency_ns``) of ingress.  Must not
      exceed ``link_latency_ns``: the fabric's fault timeout is derived
      from the *worst* link, and a slower LB hop would widen it and
      perturb runs that never touch the LB.
    * ``scheduler`` — placement policy + migration knobs.
    * ``faults`` — optional cluster-scope chaos plan
      (:class:`~repro.faults.plan.FaultPlan`).
    """

    name: str
    duration_ns: float
    machines: Tuple[MachineDoc, ...]
    populations: Tuple[PopulationSpec, ...] = ()
    tenants: Tuple[TenantDoc, ...] = ()
    population_seed: int = 0
    link_latency_ns: float = 25_000.0
    lb_latency_ns: float = 5_000.0
    lb_name: str = "lb"
    engine: str = "event"
    scheduler: SchedulerDoc = field(default_factory=SchedulerDoc)
    faults: Optional[FaultPlan] = None

    def __post_init__(self):
        if not self.name:
            raise SchemaError("name", "scenario needs a name")
        if self.duration_ns <= 0:
            raise SchemaError("duration_ns",
                              f"must be positive: {self.duration_ns}")
        if not self.machines:
            raise SchemaError("machines", "need at least one machine")
        if not self.populations and not self.tenants:
            raise SchemaError("populations",
                              "need populations or tenants (or both)")
        if self.engine not in _ENGINES:
            raise SchemaError("engine", f"unknown engine {self.engine!r}; "
                                        f"expected one of {_ENGINES}")
        if self.link_latency_ns <= 0:
            raise SchemaError("link_latency_ns",
                              f"must be positive: {self.link_latency_ns}")
        if not 0 < self.lb_latency_ns <= self.link_latency_ns:
            raise SchemaError(
                "lb_latency_ns",
                f"must be in (0, link_latency_ns]: {self.lb_latency_ns} "
                f"(link {self.link_latency_ns})")
        if not self.lb_name:
            raise SchemaError("lb_name", "load balancer needs a name")
        specs = self.machine_specs()
        names = [m.name for m in specs]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise SchemaError("machines",
                              f"expanded machine names collide: {dupes}")
        if self.lb_name in names:
            raise SchemaError("lb_name",
                              f"{self.lb_name!r} collides with a machine")
        known = set(names)
        for i, doc in enumerate(self.tenants):
            if doc.machine is not None and doc.machine not in known:
                raise SchemaError(f"tenants[{i}].machine",
                                  f"unknown machine {doc.machine!r}")
        tenant_names = [d.name for d in self.tenants]
        dupes = sorted({n for n in tenant_names if tenant_names.count(n) > 1})
        if dupes:
            raise SchemaError("tenants", f"duplicate tenant names: {dupes}")
        pop_names = [p.name for p in self.populations]
        dupes = sorted({n for n in pop_names if pop_names.count(n) > 1})
        if dupes:
            raise SchemaError("populations",
                              f"duplicate cohort names: {dupes}")

    def machine_specs(self) -> Tuple[MachineSpec, ...]:
        """The rack, with machine groups expanded to individuals."""
        return tuple(spec for doc in self.machines
                     for spec in doc.expand())

    @property
    def ingress_ns(self) -> float:
        """Per-request network overhead outside the machine: one LB
        round trip."""
        return 2.0 * self.lb_latency_ns

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "duration_ns": self.duration_ns,
            "machines": [m.to_dict() for m in self.machines],
            "population_seed": self.population_seed,
            "link_latency_ns": self.link_latency_ns,
            "lb_latency_ns": self.lb_latency_ns,
            "lb_name": self.lb_name,
            "engine": self.engine,
            "scheduler": self.scheduler.to_dict(),
        }
        if self.populations:
            out["populations"] = [p.to_dict() for p in self.populations]
        if self.tenants:
            out["tenants"] = [t.to_dict() for t in self.tenants]
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "ClusterScenario":
        _check_keys(raw, "scenario",
                    ("name", "duration_ns", "machines", "populations",
                     "tenants", "population_seed", "link_latency_ns",
                     "lb_latency_ns", "lb_name", "engine", "scheduler",
                     "faults"))
        machines = tuple(
            MachineDoc.from_dict(m, path=f"machines[{i}]")
            for i, m in enumerate(raw.get("machines", ())))
        populations = []
        for i, p in enumerate(raw.get("populations", ())):
            try:
                populations.append(PopulationSpec.from_dict(p))
            except (ValueError, KeyError) as exc:
                raise SchemaError(f"populations[{i}]", str(exc))
        tenants = tuple(
            TenantDoc.from_dict(t, path=f"tenants[{i}]")
            for i, t in enumerate(raw.get("tenants", ())))
        faults = None
        if raw.get("faults") is not None:
            try:
                faults = FaultPlan.from_dict(raw["faults"])
            except (ValueError, KeyError, TypeError) as exc:
                raise SchemaError("faults", str(exc))
        try:
            return cls(
                name=_require(raw, "scenario", "name"),
                duration_ns=float(_require(raw, "scenario", "duration_ns")),
                machines=machines,
                populations=tuple(populations),
                tenants=tenants,
                population_seed=int(raw.get("population_seed", 0)),
                link_latency_ns=float(raw.get("link_latency_ns", 25_000.0)),
                lb_latency_ns=float(raw.get("lb_latency_ns", 5_000.0)),
                lb_name=raw.get("lb_name", "lb"),
                engine=raw.get("engine", "event"),
                scheduler=SchedulerDoc.from_dict(raw.get("scheduler", {})),
                faults=faults)
        except ValueError as exc:
            if isinstance(exc, SchemaError):
                raise
            raise SchemaError("scenario", str(exc))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ClusterScenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "ClusterScenario":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
