"""Warm-up (initialization-transient) detection for serving series.

The serving simulations start cold: queues empty, adaptive placement
undecided, hybrid engine still in its guard phase.  Averaging those
early windows into a steady-state estimate biases it, so every series
the validation layer consumes is first truncated with MSER (Minimum
Standard Error Rule) on fixed-size batches — MSER-5 by default, the
variant the simulation-methodology literature recommends for
automated pipelines (White & Spratt; Law, *Simulation Modeling and
Analysis*).

MSER picks the truncation point ``d`` minimizing the standard error of
the remaining data, ``sum((y_i - mean_d)^2) / (n - d)^2`` over the
suffix ``y_d..y_{n-1}``.  The cut is capped at ``max_fraction`` of the
series so a drifting series can never be truncated to nothing; ties
keep the smallest ``d`` (discard the least data).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["WarmupResult", "apply_warmup", "mser_truncation"]


@dataclass(frozen=True)
class WarmupResult:
    """Outcome of transient detection on one series."""

    truncate: int          # raw observations to drop from the front
    total: int             # raw series length
    batch: int             # MSER batch size used
    stat: float            # the minimized MSER statistic
    capped: bool           # True when the cap bound the choice

    @property
    def fraction(self) -> float:
        return self.truncate / self.total if self.total else 0.0


def mser_truncation(series: Sequence[float], batch: int = 5,
                    max_fraction: float = 0.5) -> WarmupResult:
    """MSER-``batch`` truncation point for ``series``.

    Returns the number of *raw* observations to drop from the front
    (always a multiple of ``batch``, always ``<= max_fraction *
    len(series)``).  Series too short to batch are returned untouched.
    """
    if batch < 1:
        raise ValueError(f"batch size must be >= 1: {batch}")
    if not 0.0 <= max_fraction < 1.0:
        raise ValueError(f"max_fraction must be in [0, 1): {max_fraction}")
    values = list(series)
    n = len(values)
    k = n // batch
    if k < 2:
        return WarmupResult(truncate=0, total=n, batch=batch,
                            stat=float("nan"), capped=False)
    means = [math.fsum(values[i * batch:(i + 1) * batch]) / batch
             for i in range(k)]
    # Largest candidate cut (in batches) the cap allows, and never the
    # whole series: at least one batch must survive.
    d_cap = min(int(max_fraction * n) // batch, k - 1)
    best_d, best_stat = 0, float("inf")
    capped = False
    # Suffix sums from the back so each candidate is O(1).
    suf = suf_sq = 0.0
    stats = [0.0] * k
    for i in range(k - 1, -1, -1):
        suf += means[i]
        suf_sq += means[i] * means[i]
        remaining = k - i
        mean_d = suf / remaining
        stats[i] = max(suf_sq - remaining * mean_d * mean_d, 0.0) / (remaining * remaining)
    for d in range(0, d_cap + 1):
        if stats[d] < best_stat - 1e-18:
            best_d, best_stat = d, stats[d]
    # Did the cap hide a better cut past it?
    if d_cap < k - 1:
        tail_best = min(stats[d_cap + 1:k - 1] or [float("inf")])
        capped = tail_best < best_stat - 1e-18
    return WarmupResult(truncate=best_d * batch, total=n, batch=batch,
                        stat=best_stat, capped=capped)


def apply_warmup(series: Sequence[float], batch: int = 5,
                 max_fraction: float = 0.5,
                 ) -> Tuple[list, WarmupResult]:
    """Truncate the detected transient; returns ``(warm, result)``."""
    result = mser_truncation(series, batch=batch, max_fraction=max_fraction)
    values = list(series)
    return values[result.truncate:], result
