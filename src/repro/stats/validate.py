"""``repro validate``: the auto-verification report.

One entry point, :func:`run_validation`, sweeps the scenario families
and the Tier-1 figure reproductions through the statistical machinery
and grades every clause into a :class:`ValidationRow`:

* **serving families** (the :func:`~repro.sim.crosscheck.
  standard_scenarios` catalog) — replicated across seeds, each
  replicate audited by the full invariant catalog, headline metrics
  quoted as mean ± CI, and DES-vs-hybrid engine agreement graded by
  CI-overlap (:func:`~repro.sim.crosscheck.ci_agreement`) with exact
  counts.
* **figure families** — the paper's Fig 4 (DES-vs-model DMA
  agreement), Fig 9 (path-③ S2H bandwidth plateau and HoL collapse)
  and Fig 11 (concurrent 195/157/210 Mrps partition) reproductions,
  each quoted with an interval instead of a bare point.
* **broken-counter** (opt-in, never part of ``all``) — the injected
  violation: its rows must come out FAIL, proving the harness can
  actually fail.  CI runs it and asserts the non-zero exit.

The report renders to byte-stable markdown (fixed seeds in → identical
bytes out: no wall-clock, no timestamps, no environment) and to JSON
for machine consumption; both are uploaded as CI artifacts by the
``stats-validation`` workflow leg.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.stats.invariants import InvariantResult
from repro.stats.kernels import Estimate, mean_estimate
from repro.stats.replicate import Replication, replicate

__all__ = ["ValidationRow", "VerificationReport", "run_validation",
           "validation_families"]

PASS, FAIL = "PASS", "FAIL"

#: Figure-family gates (relative): Fig-4 DES-vs-model mean DMA error,
#: Fig-9 plateau/collapse targets, Fig-11 concurrent partition.
#: Mean relative DES-vs-model error over the small-payload grid where
#: the closed-form segment model is stated to hold (the same 64 B–4 KB
#: band ``tests/integration/test_des_vs_model.py`` pins at 15% per
#: point on total latency; segment-level errors run slightly wider).
FIG4_DMA_TOL = 0.20
FIG4_RATIO_BOUNDS = (1.6, 2.4)         # READ ≈ 2× WRITE (round trip)
FIG9_PLATEAU_GBPS, FIG9_PLATEAU_TOL = 204.0, 0.02
FIG9_COLLAPSE_GBPS, FIG9_COLLAPSE_TOL = 100.0, 0.15
FIG11_TOTAL_MRPS, FIG11_TOTAL_TOL = 210.0, 0.02
FIG11_SOLO_MRPS = {"snic-1": 195.0, "snic-2": 157.0}

SERVING_FAMILIES = ("adaptive", "static", "soc-crash", "crash-recover",
                    "packet-loss", "fault-transient")
FIGURE_FAMILIES = ("fig4-dma", "fig9-bandwidth", "fig11-partition")
#: Opt-in only: the harness's proof-of-failure scenario.
INJECTED_FAMILIES = ("broken-counter",)


def validation_families(include_injected: bool = False) -> Tuple[str, ...]:
    """Every family ``repro validate`` accepts (``all`` = the default)."""
    families = SERVING_FAMILIES + FIGURE_FAMILIES
    if include_injected:
        families += INJECTED_FAMILIES
    return families


@dataclass(frozen=True)
class ValidationRow:
    """One graded clause of the verification report."""

    family: str
    check: str
    value: str
    expected: str
    verdict: str    # PASS or FAIL
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.verdict == PASS


@dataclass(frozen=True)
class VerificationReport:
    """Every row, plus the parameters that produced them."""

    rows: Tuple[ValidationRow, ...]
    families: Tuple[str, ...]
    seeds: Tuple[int, ...]
    duration_ns: float
    confidence: float

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def failures(self) -> Tuple[ValidationRow, ...]:
        return tuple(row for row in self.rows if not row.ok)

    def to_markdown(self) -> str:
        """Byte-stable markdown: fixed inputs produce identical bytes."""
        lines = [
            "# Verification report",
            "",
            f"Families: {', '.join(self.families)}.",
            f"Replication: seeds {list(self.seeds)}, serving duration "
            f"{self.duration_ns:.0f} ns, "
            f"{self.confidence:.0%} confidence intervals "
            "(Student-t, batch-means over MSER-truncated windows; "
            "see docs/validation.md).",
            "",
            "| family | check | value | expected | verdict |",
            "|---|---|---|---|---|",
        ]
        for row in self.rows:
            lines.append(f"| {row.family} | {row.check} | {row.value} "
                         f"| {row.expected} | {row.verdict} |")
        failures = self.failures()
        lines.append("")
        if failures:
            lines.append(f"**{len(failures)} of {len(self.rows)} checks "
                         "FAILED:**")
            lines.append("")
            for row in failures:
                lines.append(f"- `{row.family}/{row.check}`: {row.detail}")
        else:
            lines.append(f"All {len(self.rows)} checks passed.")
        lines.append("")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "families": list(self.families),
            "seeds": list(self.seeds),
            "duration_ns": self.duration_ns,
            "confidence": self.confidence,
            "ok": self.ok,
            "rows": [
                {"family": r.family, "check": r.check, "value": r.value,
                 "expected": r.expected, "verdict": r.verdict,
                 "detail": r.detail}
                for r in self.rows],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def table(self) -> str:
        from repro.core.report import format_table

        rows = [(r.family, r.check, r.value, r.expected, r.verdict)
                for r in self.rows]
        return format_table(
            ["family", "check", "value", "expected", "verdict"], rows,
            title=f"repro validate ({len(self.seeds)} seeds)")


def _verdict(ok: bool) -> str:
    return PASS if ok else FAIL


# -- serving families ---------------------------------------------------------


def _measure_rows(family: str, rep: Replication,
                  confidence: float) -> List[ValidationRow]:
    rows = []
    for tenant in rep.tenant_names():
        est = rep.within_run(tenant, "p99_ns", confidence=confidence)
        formed = est.n >= 2 and math.isfinite(est.half_width)
        rows.append(ValidationRow(
            family=family, check=f"p99[{tenant}]",
            value=est.fmt("ns", precision=0),
            expected="batch-means CI formed",
            verdict=_verdict(formed),
            detail=f"{est.n} batch means over warm windows of "
                   f"replicate seed{rep.seeds[0]}"))
    total = rep.total_slo_goodput(confidence=confidence)
    # A single replicate legitimately has an unbounded interval; only
    # multi-seed replications must produce a finite CI.
    ok = total.mean > 0 and (total.n < 2
                             or math.isfinite(total.half_width))
    rows.append(ValidationRow(
        family=family, check="slo-goodput",
        value=total.fmt("Gbps"),
        expected="cross-seed CI formed, > 0",
        verdict=_verdict(ok),
        detail=f"{total.n} seed replicates "
               f"{list(rep.seeds)}; zero half-width means the family "
               "is seed-invariant"))
    return rows


def _invariant_rows(family: str, rep: Replication) -> List[ValidationRow]:
    results = rep.invariants()
    by_name: Dict[str, List[InvariantResult]] = {}
    for res in results:
        by_name.setdefault(res.name, []).append(res)
    rows = []
    for name in sorted(by_name):
        checks = by_name[name]
        bad = [c for c in checks if not c.ok]
        detail = ("; ".join(f"{c.subject}: {c.detail}" for c in bad[:3])
                  if bad else f"{len(checks)} subjects clean across "
                              f"{rep.n} replicates")
        rows.append(ValidationRow(
            family=family, check=f"invariant:{name}",
            value=f"{len(bad)}/{len(checks)} violations",
            expected="0 violations",
            verdict=_verdict(not bad), detail=detail))
    return rows


def _engine_rows(family: str, des: Replication, hyb: Replication,
                 confidence: float) -> List[ValidationRow]:
    from repro.sim.crosscheck import ci_agreement

    worst: Dict[str, Tuple] = {}
    all_ok: Dict[str, bool] = {}
    for des_report, hyb_report in zip(des.reports, hyb.reports):
        for row in ci_agreement(des_report, hyb_report,
                                confidence=confidence):
            all_ok[row.metric] = all_ok.get(row.metric, True) and row.ok
            gap = abs(row.des.mean - row.hybrid.mean)
            if row.metric not in worst or gap > worst[row.metric][0]:
                worst[row.metric] = (gap, row)
    rows = []
    for metric in ("counts", "p50_ns", "p99_ns", "goodput_gbps"):
        if metric not in worst:
            continue
        _gap, sample = worst[metric]
        if metric == "counts":
            value = f"exact ({sample.detail.split(': ')[-1]})"
            expected = "completed/rejected/lost identical"
        else:
            value = f"{sample.des.fmt()} vs {sample.hybrid.fmt()}"
            expected = "CIs overlap (or within engine tolerance)"
        rows.append(ValidationRow(
            family=family, check=f"engine:{metric}",
            value=value, expected=expected,
            verdict=_verdict(all_ok[metric]),
            detail=f"worst pair tenant {sample.tenant!r} across "
                   f"{des.n} seed(s): {sample.detail}"))
    return rows


def _serving_family_rows(family: str, seeds: Sequence[int],
                         duration_ns: float, jobs: int,
                         confidence: float) -> List[ValidationRow]:
    des = replicate(family, seeds=seeds, duration_ns=duration_ns,
                    engine="event", jobs=jobs)
    rows = _measure_rows(family, des, confidence)
    rows += _invariant_rows(family, des)
    if family not in INJECTED_FAMILIES:
        hyb = replicate(family, seeds=seeds, duration_ns=duration_ns,
                        engine="hybrid", jobs=jobs)
        rows += _engine_rows(family, des, hyb, confidence)
    return rows


# -- figure families ----------------------------------------------------------


def _fig4_rows(confidence: float) -> List[ValidationRow]:
    from repro.core.harness import LatencyBench
    from repro.core.paths import CommPath, Opcode
    from repro.net.topology import paper_testbed
    from repro.units import KB

    bench = LatencyBench(paper_testbed())
    payloads = [64, 256, 1 * KB, 4 * KB]
    rows = []
    for op in (Opcode.READ, Opcode.WRITE):
        est = bench.dma_model_agreement(CommPath.SNIC1, op, payloads,
                                        confidence=confidence)
        ok = est.mean <= FIG4_DMA_TOL
        rows.append(ValidationRow(
            family="fig4-dma", check=f"des-vs-model[{op.value}]",
            value=f"rel err {est.mean:.1%} ± {est.half_width:.1%}",
            expected=f"mean <= {FIG4_DMA_TOL:.0%}",
            verdict=_verdict(ok),
            detail=f"responder DMA, {len(payloads)} payloads 64 B–4 KB "
                   "on path ② (the band the segment model is stated "
                   "for; cf. tests/integration/test_des_vs_model.py)"))
    read_ns = bench.simulate_dma_latency(CommPath.SNIC1, Opcode.READ, 64)
    write_ns = bench.simulate_dma_latency(CommPath.SNIC1, Opcode.WRITE, 64)
    ratio = read_ns / max(write_ns, 1e-9)
    lo, hi = FIG4_RATIO_BOUNDS
    rows.append(ValidationRow(
        family="fig4-dma", check="read/write ratio",
        value=f"{ratio:.2f}",
        expected=f"in [{lo}, {hi}] (READ round-trips)",
        verdict=_verdict(lo <= ratio <= hi),
        detail=f"DES 64 B DMA: READ {read_ns:.1f} ns, "
               f"WRITE {write_ns:.1f} ns"))
    return rows


def _fig9_rows(confidence: float) -> List[ValidationRow]:
    from repro.core.harness import ThroughputBench
    from repro.core.paths import CommPath, Opcode
    from repro.net.topology import paper_testbed
    from repro.units import KB, MB

    bench = ThroughputBench(paper_testbed())
    plateau_payloads = [64 * KB, 256 * KB, 1 * MB]
    collapse_payloads = [4 * MB, 16 * MB]
    sweep = bench.payload_sweep(CommPath.SNIC3_S2H, Opcode.WRITE,
                                plateau_payloads + collapse_payloads,
                                requesters=8, metric="gbps")
    plateau = mean_estimate([sweep.value_at(p) for p in plateau_payloads],
                            confidence=confidence)
    collapse = mean_estimate([sweep.value_at(p) for p in collapse_payloads],
                             confidence=confidence)
    rows = [
        ValidationRow(
            family="fig9-bandwidth", check="s2h plateau",
            value=plateau.fmt("Gbps"),
            expected=f"{FIG9_PLATEAU_GBPS:.0f} Gbps "
                     f"± {FIG9_PLATEAU_TOL:.0%}",
            verdict=_verdict(
                abs(plateau.mean - FIG9_PLATEAU_GBPS) / FIG9_PLATEAU_GBPS
                <= FIG9_PLATEAU_TOL),
            detail="64 KB–1 MB S2H WRITE, 8 requesters (Fig 9a)"),
        ValidationRow(
            family="fig9-bandwidth", check="s2h hol collapse",
            value=collapse.fmt("Gbps"),
            expected=f"{FIG9_COLLAPSE_GBPS:.0f} Gbps "
                     f"± {FIG9_COLLAPSE_TOL:.0%}",
            verdict=_verdict(
                abs(collapse.mean - FIG9_COLLAPSE_GBPS)
                / FIG9_COLLAPSE_GBPS <= FIG9_COLLAPSE_TOL),
            detail="4–16 MB S2H WRITE: head-of-line collapse past the "
                   "write-buffer threshold (S3.3 Advice 3)"),
        ValidationRow(
            family="fig9-bandwidth", check="plateau > collapse",
            value=f"{plateau.mean / max(collapse.mean, 1e-9):.2f}x",
            expected=">= 1.8x drop",
            verdict=_verdict(plateau.mean
                             >= 1.8 * max(collapse.mean, 1e-9)),
            detail="the collapse must be a cliff, not a slope"),
    ]
    return rows


def _fig11_rows(confidence: float) -> List[ValidationRow]:
    from repro.core.flows import ConcurrencyAnalyzer
    from repro.core.paths import Opcode
    from repro.net.topology import paper_testbed

    analyzer = ConcurrencyAnalyzer(paper_testbed())
    # Three independent evaluations: the partition must be exactly
    # reproducible (zero half-width), the figure-level statement of
    # seed-invariance.
    totals, budget_sets = [], []
    for _ in range(3):
        budgets = analyzer.concurrent_endpoint_budgets(Opcode.READ)
        budget_sets.append({p.value: v for p, v in budgets.items()})
        totals.append(sum(budgets.values()))
    total = mean_estimate(totals, confidence=confidence)
    rows = [ValidationRow(
        family="fig11-partition", check="concurrent total",
        value=total.fmt("Mrps"),
        expected=f"{FIG11_TOTAL_MRPS:.0f} Mrps ± {FIG11_TOTAL_TOL:.0%}, "
                 "zero width",
        verdict=_verdict(
            abs(total.mean - FIG11_TOTAL_MRPS) / FIG11_TOTAL_MRPS
            <= FIG11_TOTAL_TOL and total.half_width == 0.0),
        detail="①+② concurrent READ budgets, 3 repeated evaluations "
               "(half-width 0 proves determinism)")]
    for path, solo in sorted(FIG11_SOLO_MRPS.items()):
        values = [bs.get(path, 0.0) for bs in budget_sets]
        est = mean_estimate(values, confidence=confidence)
        ok = est.mean < solo * 1.01 and est.half_width == 0.0
        rows.append(ValidationRow(
            family="fig11-partition", check=f"budget[{path}]",
            value=est.fmt("Mrps"),
            expected=f"< solo peak {solo:.0f} Mrps",
            verdict=_verdict(ok),
            detail="concurrent share must sit below the solo peak — "
                   "a solo-peak planner double-books the shared cores"))
    return rows


# -- entry point --------------------------------------------------------------


def run_validation(families: Optional[Sequence[str]] = None,
                   seeds: int = 3, duration_ns: float = 400_000.0,
                   jobs: int = 0, confidence: float = 0.95,
                   base_seed: int = 0) -> VerificationReport:
    """Grade ``families`` (default: all standard) into a report.

    ``families`` accepts the serving families, the figure families,
    ``"all"`` (everything standard), and — only when explicitly named —
    ``"broken-counter"``, whose rows are *expected* to FAIL.
    """
    known = validation_families(include_injected=True)
    if not families or "all" in families:
        selected: Tuple[str, ...] = validation_families()
    else:
        unknown = set(families) - set(known)
        if unknown:
            raise ValueError(f"unknown validation family(s) "
                             f"{sorted(unknown)}; choose from "
                             f"{list(known) + ['all']}")
        selected = tuple(dict.fromkeys(families))

    seed_list = tuple(range(base_seed, base_seed + seeds))
    rows: List[ValidationRow] = []
    for family in selected:
        if family == "fig4-dma":
            rows += _fig4_rows(confidence)
        elif family == "fig9-bandwidth":
            rows += _fig9_rows(confidence)
        elif family == "fig11-partition":
            rows += _fig11_rows(confidence)
        else:
            rows += _serving_family_rows(family, seed_list, duration_ns,
                                         jobs, confidence)
    return VerificationReport(rows=tuple(rows), families=selected,
                              seeds=seed_list, duration_ns=duration_ns,
                              confidence=confidence)
