"""``repro.stats``: the statistical rigor layer.

Four pieces, layered so the rest of the toolkit can depend on the
kernels without dragging in the serving stack:

* :mod:`repro.stats.kernels` — :class:`Estimate` (mean ± CI),
  Student-t quantiles, batch-means intervals, order-statistic
  quantiles.  Pure stdlib, no repro imports.
* :mod:`repro.stats.warmup` — MSER initialization-transient
  truncation for window series.
* :mod:`repro.stats.invariants` — the machine-checked catalog: flow
  conservation, Little's law, utilization ≤ capacity, report sanity.
* :mod:`repro.stats.replicate` / :mod:`repro.stats.validate` —
  cross-seed replication (pooled + cached) and the ``repro validate``
  verification report.  Imported lazily (PEP 562) because they reach
  into :mod:`repro.sched` and :mod:`repro.sim`, which themselves use
  the kernels.
"""

from repro.stats.invariants import InvariantResult, check_report, violations
from repro.stats.kernels import (
    Estimate,
    agreement,
    batch_means,
    mean_estimate,
    quantile,
    student_t_cdf,
    student_t_ppf,
)
from repro.stats.warmup import WarmupResult, apply_warmup, mser_truncation

__all__ = [
    "Estimate",
    "InvariantResult",
    "Replication",
    "ValidationRow",
    "VerificationReport",
    "WarmupResult",
    "agreement",
    "apply_warmup",
    "batch_means",
    "check_report",
    "mean_estimate",
    "mser_truncation",
    "quantile",
    "replicate",
    "report_estimate",
    "run_validation",
    "student_t_cdf",
    "student_t_ppf",
    "violations",
]

_LAZY = {
    "Replication": "repro.stats.replicate",
    "replicate": "repro.stats.replicate",
    "report_estimate": "repro.stats.replicate",
    "ValidationRow": "repro.stats.validate",
    "VerificationReport": "repro.stats.validate",
    "run_validation": "repro.stats.validate",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.stats' has no attribute "
                             f"{name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
