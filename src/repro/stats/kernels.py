"""Statistical kernels: Student-t intervals, batch means, quantiles.

Everything the validation layer estimates funnels through this module,
so the numerics live in exactly one place and carry their own tests
(``tests/stats/test_kernels.py`` checks the t quantiles against known
table values and the estimators against synthetic streams with known
means).  Pure stdlib — no scipy, no numpy — because the toolkit's only
hard dependency is CPython.

The central type is :class:`Estimate`: a ``(mean, half_width)`` pair
with its sample size and confidence level attached.  APIs that used to
return a bare point now return (or are paired with) an ``Estimate`` so
headline numbers ship with their uncertainty instead of as single-run
points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "Estimate",
    "batch_means",
    "mean_estimate",
    "normal_ppf",
    "quantile",
    "student_t_cdf",
    "student_t_ppf",
]


# ---------------------------------------------------------------------------
# Student-t quantiles (regularized incomplete beta + bisection)
# ---------------------------------------------------------------------------


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-12:
            break
    return h


def _betai(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log(1.0 - x))
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """P(T <= t) for Student's t with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive: {df}")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * _betai(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def normal_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1): {p}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                 * q + c[5])
                / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0))
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                  * q + c[5])
                 / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0))
    q = p - 0.5
    r = q * q
    return ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
             * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4])
               * r + 1.0))


def student_t_ppf(p: float, df: float) -> float:
    """Inverse Student-t CDF, by bisection on :func:`student_t_cdf`.

    Above ~200 degrees of freedom the t distribution is
    indistinguishable from the normal at the precision the reports
    quote, so the normal quantile is returned directly.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1): {p}")
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive: {df}")
    if df > 200:
        return normal_ppf(p)
    if p == 0.5:
        return 0.0
    # Bracket around the normal quantile, widened for fat t tails.
    hi = max(1.0, abs(normal_ppf(p))) * 2.0
    while student_t_cdf(hi, df) < max(p, 1.0 - p):
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - defensive
            break
    lo = -hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


# ---------------------------------------------------------------------------
# Estimates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Estimate:
    """A mean with its confidence half-width — never a bare point.

    ``half_width`` is ``inf`` when one sample cannot bound the mean
    (n < 2), and exactly ``0.0`` for degenerate (deterministic)
    replicates, which is how the verification report proves a quantity
    is seed-invariant.
    """

    mean: float
    half_width: float
    n: int
    confidence: float = 0.95
    sd: float = 0.0

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def overlaps(self, other: "Estimate") -> bool:
        """True when the two confidence intervals intersect."""
        return self.lo <= other.hi and other.lo <= self.hi

    def rel_half_width(self) -> float:
        """Half-width as a fraction of the mean (inf for mean 0)."""
        if self.mean == 0.0:
            return 0.0 if self.half_width == 0.0 else float("inf")
        return abs(self.half_width / self.mean)

    def fmt(self, unit: str = "", precision: int = 1) -> str:
        hw = ("inf" if math.isinf(self.half_width)
              else f"{self.half_width:.{precision}f}")
        text = f"{self.mean:.{precision}f} ± {hw}"
        return f"{text} {unit}".rstrip()

    def as_dict(self) -> dict:
        return {"mean": self.mean, "half_width": self.half_width,
                "n": self.n, "confidence": self.confidence, "sd": self.sd}


def mean_estimate(values: Sequence[float],
                  confidence: float = 0.95) -> Estimate:
    """Sample mean with a Student-t confidence interval.

    For independent replicates (cross-seed replication, batch means)
    this is the textbook ``x̄ ± t_{1-α/2, n-1} · s/√n``.  A single
    value yields an infinite half-width — one run bounds nothing,
    which is the whole point of the validation layer.
    """
    values = list(values)
    if not values:
        raise ValueError("cannot estimate from an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence}")
    n = len(values)
    mean = math.fsum(values) / n
    if n < 2:
        return Estimate(mean=mean, half_width=float("inf"), n=n,
                        confidence=confidence, sd=0.0)
    if all(v == values[0] for v in values):
        # Identical replicates get an *exactly* zero width — the
        # seed-invariance signature must not be blurred by the
        # round-off of mean subtraction at large magnitudes.
        return Estimate(mean=values[0], half_width=0.0, n=n,
                        confidence=confidence, sd=0.0)
    var = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
    sd = math.sqrt(max(var, 0.0))
    t = student_t_ppf(0.5 + confidence / 2.0, n - 1)
    return Estimate(mean=mean, half_width=t * sd / math.sqrt(n), n=n,
                    confidence=confidence, sd=sd)


def batch_means(series: Sequence[float], batches: int = 10,
                confidence: float = 0.95) -> Estimate:
    """Batch-means confidence interval over one (warm) time series.

    The series is cut into ``batches`` contiguous batches of equal
    size (a short remainder at the *front* is dropped — the residually
    least-steady side), and the batch means are treated as approximate
    i.i.d. replicates.  With fewer than ``2 * batches`` points the
    batch count degrades gracefully down to 2.
    """
    series = list(series)
    if not series:
        raise ValueError("cannot batch an empty series")
    if batches < 2:
        raise ValueError(f"need at least 2 batches: {batches}")
    n = len(series)
    batches = min(batches, max(2, n // 2)) if n >= 4 else 2
    size = n // batches
    if size == 0:
        return mean_estimate(series, confidence=confidence)
    trimmed = series[n - size * batches:]
    means = [math.fsum(trimmed[i * size:(i + 1) * size]) / size
             for i in range(batches)]
    return mean_estimate(means, confidence=confidence)


def quantile(values: Sequence[float], q: float) -> float:
    """Order-statistic quantile, matching the serving layer's pick.

    ``sorted(values)[min(n - 1, int(q * n))]`` — the same convention
    :class:`~repro.sched.serve.TenantReport` uses for p99, so the
    validation layer's quantiles agree bit-for-bit with the report's.
    """
    if not values:
        raise ValueError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def paired_gap(a: Estimate, b: Estimate) -> float:
    """Relative gap between two estimates' means (floor-scaled)."""
    scale = max(abs(b.mean), 1e-9)
    return abs(a.mean - b.mean) / scale


def agreement(a: Estimate, b: Estimate, tolerance: float) -> Tuple[bool, str]:
    """The CI-overlap agreement gate used by ``repro validate``.

    Two measurements of the same quantity *agree* when their
    confidence intervals overlap, or — for degenerate near-zero-width
    intervals — when the relative gap between the means is within
    ``tolerance``.  Returns ``(ok, detail)``.
    """
    gap = paired_gap(a, b)
    if a.overlaps(b):
        return True, f"CIs overlap (gap {gap:.1%})"
    if gap <= tolerance:
        return True, f"gap {gap:.1%} <= tol {tolerance:.0%}"
    return False, (f"CIs disjoint and gap {gap:.1%} > tol "
                   f"{tolerance:.0%}: {a.fmt()} vs {b.fmt()}")
