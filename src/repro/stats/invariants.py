"""Machine-checked invariants over serving reports.

Every quantity the toolkit reports is tied to others by operational
laws that hold regardless of workload, seed, engine or fault plan.
This module asserts them over a finished :class:`~repro.sched.serve.
ServeReport` (duck-typed — anything with ``tenants``, ``windows``,
``conservation``, ``path_gbps`` and ``elapsed_ns`` works, including the
merged report of a sharded run):

* **flow-conservation** — every arrival is accounted for exactly once:
  ``arrivals = completed + rejected + lost + in_flight``, and nothing
  is in flight once the run has drained.  This generalizes the sharded
  supervisor's per-window :class:`~repro.sim.supervise.
  ConservationWatchdog` audit to unsharded runs, using the same
  heartbeat terms.
* **littles-law** — time-average occupancy equals arrival rate times
  mean sojourn time, ``L = λ·W``.  ``L`` and ``W`` come from the
  window archive's latency sums while ``λ`` comes from the tracker's
  completion *counter*, so the identity only closes when the counter
  agrees with the archived events — a tampered or drifted counter
  breaks it.
* **utilization** — delivered bandwidth cannot exceed capacity: the
  network paths (①/②) together stay within the 200 Gbps fabric, and
  each PCIe-only path-③ direction within the 256 Gbps root complex.
* **cluster-flow** — sharded/rack runs only: every message put onto
  the cross-shard fabric (``xshard.sent`` plus the cluster scheduler's
  ``clustersched.ctl_sent`` directives) is delivered to some shard or
  accounted dropped by the fault injector, ``sent + injected =
  delivered + dropped``.  Skipped when the report carries no fabric
  counters.
* **sanity** — per-tenant report algebra: SLO-goodput ≤ goodput,
  p50 ≤ p99, attainment in [0, 1], counters non-negative.

``check_report`` returns one :class:`InvariantResult` per (invariant,
subject) pair; ``repro validate`` turns each into a report row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["InvariantResult", "check_report", "violations"]

#: Relative slack on capacity bounds — delivered rates are measured
#: over finite spans, so allow rounding at the margin but nothing real.
_CAPACITY_SLACK = 5e-3
#: Relative tolerance on the Little's-law closure.  The identity is
#: exact when counters and archive agree; anything beyond float noise
#: means a counter was mutated or an event went unarchived.
_LITTLE_TOL = 1e-9


@dataclass(frozen=True)
class InvariantResult:
    """One invariant evaluated for one subject (tenant or path)."""

    name: str       # e.g. "flow-conservation"
    subject: str    # tenant name, path name, or "*"
    ok: bool
    detail: str

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "VIOLATED"
        return f"{self.name}[{self.subject}]: {verdict} — {self.detail}"


def _check_conservation(report) -> List[InvariantResult]:
    results = []
    for name, terms in sorted(report.conservation.items()):
        arrivals, completed, rejected, lost, in_flight = terms
        balance = completed + rejected + lost + in_flight
        ok = arrivals == balance and in_flight == 0
        detail = (f"arrivals {arrivals} vs completed {completed} + "
                  f"rejected {rejected} + lost {lost} + "
                  f"in-flight {in_flight} = {balance}")
        results.append(InvariantResult(
            name="flow-conservation", subject=name, ok=ok, detail=detail))
    return results


def _check_little(report) -> List[InvariantResult]:
    results = []
    elapsed = report.elapsed_ns or 1.0
    for name in sorted(report.windows):
        windows = report.windows[name]
        archived = sum(w.count for w in windows)
        latency_sum = math.fsum(w.latency_sum_ns for w in windows)
        if archived == 0:
            continue
        completed = report.tenants[name].completed
        occupancy = latency_sum / elapsed                    # L
        rate = completed / elapsed                           # λ (counter)
        sojourn = latency_sum / archived                     # W (archive)
        predicted = rate * sojourn
        gap = abs(occupancy - predicted) / max(occupancy, 1e-12)
        ok = gap <= _LITTLE_TOL
        detail = (f"L {occupancy:.6f} vs λW {predicted:.6f} "
                  f"(λ from counter {completed}, W from {archived} "
                  f"archived events; gap {gap:.2e})")
        results.append(InvariantResult(
            name="littles-law", subject=name, ok=ok, detail=detail))
    return results


def _check_utilization(report, network_gbps: float,
                       pcie_gbps: float) -> List[InvariantResult]:
    from repro.core.paths import CommPath

    results = []
    net_total = 0.0
    for path in CommPath:
        gbps = report.path_gbps.get(path.value, 0.0)
        if path.uses_network:
            net_total += gbps
        else:
            cap = pcie_gbps * (1 + _CAPACITY_SLACK)
            results.append(InvariantResult(
                name="utilization", subject=path.value, ok=gbps <= cap,
                detail=f"delivered {gbps:.1f} Gbps <= PCIe "
                       f"{pcie_gbps:.0f} Gbps"))
    cap = network_gbps * (1 + _CAPACITY_SLACK)
    results.insert(0, InvariantResult(
        name="utilization", subject="network", ok=net_total <= cap,
        detail=f"network paths deliver {net_total:.1f} Gbps <= fabric "
               f"{network_gbps:.0f} Gbps"))
    return results


def _check_cluster_flow(report) -> List[InvariantResult]:
    """Cluster-level message conservation for sharded/rack runs.

    Every message put onto the cross-shard fabric — by a shard's
    channel (``xshard.sent``) or injected by the cluster scheduler
    (``clustersched.ctl_sent``) — must end up delivered to some shard
    (``xshard.delivered``) or accounted dropped by the fault injector
    (``cluster.dropped``).  The per-window
    :class:`~repro.sim.supervise.ConservationWatchdog` audits the same
    balance live (with the router's pending count as the in-flight
    term); here the run has drained, so pending must be zero and the
    totals must close exactly.  Reports without fabric counters (an
    unsharded run) have nothing to check.
    """
    counters = getattr(report, "counters", None) or {}
    sent = counters.get("xshard.sent")
    delivered = counters.get("xshard.delivered")
    if sent is None and delivered is None:
        return []
    sent = sent or 0
    delivered = delivered or 0
    injected = counters.get("clustersched.ctl_sent", 0)
    dropped = counters.get("cluster.dropped", 0)
    ok = sent + injected == delivered + dropped
    detail = (f"sent {sent:.0f} + injected {injected:.0f} vs "
              f"delivered {delivered:.0f} + dropped {dropped:.0f}")
    return [InvariantResult(name="cluster-flow", subject="fabric",
                            ok=ok, detail=detail)]


def _check_sanity(report) -> List[InvariantResult]:
    results = []
    for name in sorted(report.tenants):
        t = report.tenants[name]
        problems = []
        if t.slo_goodput_gbps > t.goodput_gbps * (1 + 1e-9) + 1e-9:
            problems.append(
                f"slo-goodput {t.slo_goodput_gbps:.2f} > "
                f"goodput {t.goodput_gbps:.2f}")
        if t.p50_ns > t.p99_ns:
            problems.append(f"p50 {t.p50_ns:.0f} > p99 {t.p99_ns:.0f}")
        if not 0.0 <= t.slo_attainment <= 1.0:
            problems.append(f"attainment {t.slo_attainment:.3f} not in "
                            "[0, 1]")
        if min(t.completed, t.rejected, t.lost) < 0:
            problems.append("negative counter")
        results.append(InvariantResult(
            name="sanity", subject=name, ok=not problems,
            detail="; ".join(problems) or
                   f"p50 {t.p50_ns:.0f} <= p99 {t.p99_ns:.0f}, "
                   f"attainment {t.slo_attainment:.2f}"))
    return results


def check_report(report, testbed=None) -> List[InvariantResult]:
    """Evaluate the full invariant catalog against one serving report.

    ``testbed`` supplies the capacity bounds; ``None`` uses the paper
    testbed (200 Gbps fabric, 256 Gbps PCIe root complex).
    """
    if testbed is None:
        from repro.net.topology import paper_testbed
        testbed = paper_testbed()
    from repro.units import to_gbps
    network_gbps = to_gbps(testbed.snic.spec.cores.network_bandwidth)
    pcie_gbps = to_gbps(testbed.snic.spec.pcie_bandwidth)

    results: List[InvariantResult] = []
    results.extend(_check_conservation(report))
    results.extend(_check_little(report))
    results.extend(_check_utilization(report, network_gbps, pcie_gbps))
    results.extend(_check_cluster_flow(report))
    results.extend(_check_sanity(report))
    return results


def violations(results: List[InvariantResult],
               ) -> List[InvariantResult]:
    """The failing subset, for error messages and exit codes."""
    return [r for r in results if not r.ok]
