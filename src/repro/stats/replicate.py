"""Cross-seed replication of serving scenarios, pooled and cached.

``replicate("adaptive", seeds=5)`` runs the named scenario family once
per seed — serially, or fanned out over the same process-pool
machinery :class:`~repro.core.sweeps.SweepRunner` uses for solver
sweeps — and wraps the reports in a :class:`Replication` that answers
the statistical questions: the cross-seed mean ± CI of any per-tenant
metric, the warm-up-truncated batch-means CI within one run, and the
invariant verdicts over every replicate.

Results are memoised in a registered :class:`~repro.core.cache.
LRUCache` keyed by ``(family, seed, duration, engine)``, so
``repro validate`` re-running a family it already measured (or the
same family under a second metric) is a dictionary lookup, and the
cache counters show up in ``--cache-stats`` like every other cache.

The special family ``"broken-counter"`` is the harness's proof that it
can fail: a normal adaptive run whose completion counter is mutated
mid-run, which must trip the flow-conservation and Little's-law
invariants (see ``tests/stats/test_validate.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.cache import LRUCache
from repro.stats.invariants import InvariantResult, check_report
from repro.stats.kernels import Estimate, batch_means, mean_estimate
from repro.stats.warmup import apply_warmup

__all__ = ["REPLICATE_CACHE", "Replication", "replicate",
           "replicate_families", "report_estimate"]

REPLICATE_CACHE = LRUCache(maxsize=256, name="replicate")

#: Per-tenant report metrics :meth:`Replication.estimate` accepts.
METRICS = ("p50_ns", "p99_ns", "goodput_gbps", "slo_goodput_gbps",
           "slo_attainment", "completed", "rejected", "lost")

#: The saboteur's bump — any non-zero value breaks conservation.
_SABOTAGE_BUMP = 7


def replicate_families(duration_ns: float = 600_000.0,
                       seed: int = 0) -> Tuple[str, ...]:
    """Every family :func:`replicate` accepts (standard + injected)."""
    from repro.sim.crosscheck import standard_scenarios

    names = tuple(standard_scenarios(duration_ns=duration_ns, seed=seed))
    return names + ("broken-counter",)


def _run_one(family: str, seed: int, duration_ns: float, engine: str):
    from repro.sched.serve import (ServeSession, mixed_tenant_workload,
                                   run_serve)
    from repro.sim.crosscheck import standard_scenarios

    if family == "broken-counter":
        tenants = mixed_tenant_workload(duration_ns=duration_ns, seed=seed)
        session = ServeSession(tenants, adaptive=True, engine=engine)
        session.advance(duration_ns / 2)
        # The injected violation: a completion counter drifts from the
        # event stream.  Flow conservation and Little's law must both
        # catch this; if they ever stop doing so the harness is blind.
        session.tracker.completed["alpha"] += _SABOTAGE_BUMP
        session.run_to_completion()
        return session.finalize()

    families = standard_scenarios(duration_ns=duration_ns, seed=seed)
    if family not in families:
        raise ValueError(f"unknown scenario family {family!r}; choose "
                         f"from {sorted(families) + ['broken-counter']}")
    kwargs = dict(families[family])
    factory = kwargs.pop("factory")
    return run_serve(factory(), engine=engine, **kwargs)


# -- pool plumbing (module-level so it pickles) -------------------------------


def _pool_replicate(tasks: Sequence[Tuple[str, int, float, str]]):
    from repro.core.sweeps import _counter_delta, _counter_state

    before = _counter_state()
    reports = [_run_one(*task) for task in tasks]
    return reports, _counter_delta(before)


def report_estimate(report, tenant: str, field: str = "p99_ns",
                    confidence: float = 0.95,
                    warmup_batch: int = 5,
                    max_warmup_fraction: float = 0.5) -> Estimate:
    """Within-run batch-means estimate of one tenant's windowed metric.

    Reads the fixed-window archive (``report.windows``), drops the
    MSER-detected initialization transient, and forms a batch-means CI
    over the warm windows.  ``field`` is any :class:`~repro.sched.slo.
    RawWindow` attribute (``p99_ns``, ``p50_ns``, ``goodput_gbps``,
    ``mean_latency_ns``, ...).
    """
    series = [getattr(w, field) for w in report.windows.get(tenant, ())
              if w.count > 0]
    if not series:
        return Estimate(mean=0.0, half_width=float("inf"), n=0,
                        confidence=confidence)
    warm, _result = apply_warmup(series, batch=warmup_batch,
                                 max_fraction=max_warmup_fraction)
    return batch_means(warm, confidence=confidence)


@dataclass(frozen=True)
class Replication:
    """N independent replicates of one scenario family."""

    family: str
    duration_ns: float
    engine: str
    seeds: Tuple[int, ...]
    reports: Tuple

    def __post_init__(self):
        if len(self.seeds) != len(self.reports):
            raise ValueError("one report per seed required")

    @property
    def n(self) -> int:
        return len(self.reports)

    def tenant_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.reports[0].tenants))

    def values(self, tenant: str, metric: str) -> List[float]:
        """The per-seed values of one tenant metric."""
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; choose from "
                             f"{METRICS}")
        return [float(getattr(r.tenants[tenant], metric))
                for r in self.reports]

    def estimate(self, tenant: str, metric: str,
                 confidence: float = 0.95) -> Estimate:
        """Cross-seed mean ± t-CI of one per-tenant report metric."""
        return mean_estimate(self.values(tenant, metric),
                             confidence=confidence)

    def total_slo_goodput(self, confidence: float = 0.95) -> Estimate:
        """Cross-seed CI on the aggregate SLO-goodput headline."""
        return mean_estimate(
            [r.total_slo_goodput_gbps for r in self.reports],
            confidence=confidence)

    def within_run(self, tenant: str, field: str = "p99_ns",
                   confidence: float = 0.95) -> Estimate:
        """Warm-up-truncated batch-means CI inside the first replicate."""
        return report_estimate(self.reports[0], tenant, field=field,
                               confidence=confidence)

    def invariants(self, testbed=None) -> List[InvariantResult]:
        """The invariant catalog evaluated over every replicate.

        Subjects are qualified with the seed (``alpha@seed1``) so a
        violation names the exact run that produced it.
        """
        out: List[InvariantResult] = []
        for seed, report in zip(self.seeds, self.reports):
            for res in check_report(report, testbed=testbed):
                out.append(InvariantResult(
                    name=res.name, subject=f"{res.subject}@seed{seed}",
                    ok=res.ok, detail=res.detail))
        return out


def replicate(family: str, seeds: Union[int, Sequence[int]] = 3,
              duration_ns: float = 600_000.0, engine: str = "event",
              jobs: int = 0, base_seed: int = 0,
              use_cache: bool = True,
              testbed=None) -> Replication:
    """Run ``family`` once per seed and wrap the runs for estimation.

    ``seeds`` is either a count (replicates at ``base_seed ..
    base_seed + N - 1``) or an explicit sequence.  ``jobs > 1`` fans
    uncached replicates out over a process pool (the
    :class:`~repro.core.sweeps.SweepRunner` machinery: chunked
    ``Executor.map``, worker cache counters absorbed back into the
    parent).  Replicates are cached under ``(family, seed, duration,
    engine)`` — cross-seed estimates over a family already validated
    cost nothing.
    """
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError(f"need at least one replicate: {seeds}")
        seed_list = tuple(range(base_seed, base_seed + seeds))
    else:
        seed_list = tuple(seeds)
        if not seed_list:
            raise ValueError("need at least one replicate seed")

    keys = {seed: ("replicate", family, seed, duration_ns, engine)
            for seed in seed_list}
    reports: Dict[int, object] = {}
    if use_cache and testbed is None:
        for seed, key in keys.items():
            hit = REPLICATE_CACHE.get(key)
            if hit is not None:
                reports[seed] = hit
    missing = [seed for seed in seed_list if seed not in reports]

    if missing and testbed is not None:
        # Custom testbeds bypass the pool + cache (not content-keyed).
        from repro.sim.crosscheck import standard_scenarios
        from repro.sched.serve import run_serve
        for seed in missing:
            families = standard_scenarios(duration_ns=duration_ns,
                                          seed=seed)
            kwargs = dict(families[family])
            factory = kwargs.pop("factory")
            reports[seed] = run_serve(factory(), engine=engine,
                                      testbed=testbed, **kwargs)
        missing = []

    if missing:
        tasks = [(family, seed, duration_ns, engine) for seed in missing]
        if jobs > 1 and len(tasks) > 1:
            from repro.core.sweeps import SweepRunner
            from repro.net.topology import paper_testbed

            runner = SweepRunner(paper_testbed(), jobs=jobs, chunk_size=1)
            fresh = runner._map(_pool_replicate, tasks)
        else:
            fresh = [_run_one(*task) for task in tasks]
        for seed, report in zip(missing, fresh):
            reports[seed] = report
            if use_cache:
                REPLICATE_CACHE.put(keys[seed], report)

    return Replication(family=family, duration_ns=duration_ns,
                       engine=engine, seeds=seed_list,
                       reports=tuple(reports[seed] for seed in seed_list))
