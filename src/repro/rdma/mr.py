"""Protection domains and registered memory regions.

A :class:`MemoryRegion` owns a real ``bytearray`` — applications built
on the stack (the KV store, the RPC server) move actual data.  Remote
access is checked against the region's rkey and bounds, mirroring the
RNIC's protection checks.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.cluster import Node


class AccessError(Exception):
    """A remote or local access violated an MR's bounds or key."""


class MemoryRegion:
    """A registered, remotely accessible buffer on one node."""

    _keys = itertools.count(0x1000)

    def __init__(self, node: "Node", length: int):
        if length <= 0:
            raise ValueError(f"MR length must be positive: {length}")
        self.node = node
        self.length = length
        self.buffer = bytearray(length)
        self.lkey = next(self._keys)
        self.rkey = next(self._keys)

    # -- local access ------------------------------------------------------------

    def write_local(self, offset: int, data: bytes) -> None:
        """CPU store into the region."""
        self._check(offset, len(data))
        self.buffer[offset:offset + len(data)] = data

    def read_local(self, offset: int, length: int) -> bytes:
        """CPU load from the region."""
        self._check(offset, length)
        return bytes(self.buffer[offset:offset + length])

    # -- remote (DMA) access -------------------------------------------------------

    def dma_write(self, offset: int, data: bytes, rkey: int) -> None:
        """Inbound DMA write, rkey-checked."""
        self._check_key(rkey)
        self._check(offset, len(data))
        self.buffer[offset:offset + len(data)] = data
        self._trace_access("memory_write", "write", len(data))

    def dma_read(self, offset: int, length: int, rkey: int) -> bytes:
        """Inbound DMA read, rkey-checked."""
        self._check_key(rkey)
        self._check(offset, length)
        data = bytes(self.buffer[offset:offset + length])
        self._trace_access("memory_read", "read", length)
        return data

    def _trace_access(self, name: str, op: str, nbytes: int) -> None:
        """Instant "memory" annotation: the moment bytes touch DRAM/LLC.

        Zero-duration (the transfer time lives in the surrounding DMA
        span), so it is excluded from the span-tiling invariant.
        """
        cluster = self.node.cluster
        if cluster is None:
            return
        tracer = cluster.sim.tracer
        if tracer is None:
            return
        attrs = {"node": self.node.name, "bytes": nbytes}
        subsystem = cluster.memory_subsystem_of(self.node)
        if subsystem is not None:
            attrs.update(subsystem.span_attrs(op, nbytes))
        tracer.instant(name, "memory", **attrs)

    # -- checks ---------------------------------------------------------------------

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.length:
            raise AccessError(
                f"access [{offset}, {offset + length}) outside MR of "
                f"{self.length} bytes on {self.node.name}")

    def _check_key(self, rkey: int) -> None:
        if rkey != self.rkey:
            raise AccessError(
                f"bad rkey {rkey:#x} for MR on {self.node.name}")


class ProtectionDomain:
    """Groups the MRs of one node; hands out registrations."""

    def __init__(self, node: "Node"):
        self.node = node
        self.regions: Dict[int, MemoryRegion] = {}
        self._registered = 0

    def reg_mr(self, length: int) -> MemoryRegion:
        """Register a fresh region, enforcing the node's memory budget."""
        if self._registered + length > self.node.memory_bytes:
            raise MemoryError(
                f"{self.node.name}: registering {length} B exceeds "
                f"{self.node.memory_bytes} B of node memory")
        region = MemoryRegion(self.node, length)
        self.regions[region.rkey] = region
        self._registered += length
        return region

    def dereg_mr(self, region: MemoryRegion) -> None:
        if region.rkey not in self.regions:
            raise AccessError("MR not registered in this PD")
        del self.regions[region.rkey]
        self._registered -= region.length

    def lookup(self, rkey: int) -> Optional[MemoryRegion]:
        return self.regions.get(rkey)
