"""Work-request opcodes and completion statuses."""

from __future__ import annotations

from enum import Enum


class WorkOpcode(Enum):
    """The verbs this stack implements."""

    READ = "read"      # one-sided RDMA READ (RC only)
    WRITE = "write"    # one-sided RDMA WRITE (RC only)
    SEND = "send"      # two-sided send
    RECV = "recv"      # receive-buffer post

    @property
    def one_sided(self) -> bool:
        return self in (WorkOpcode.READ, WorkOpcode.WRITE)


class CompletionStatus(Enum):
    """Completion outcomes (a subset of ibv_wc_status)."""

    SUCCESS = "success"
    LOCAL_PROTECTION_ERROR = "local-protection-error"
    REMOTE_ACCESS_ERROR = "remote-access-error"
    FLUSH_ERROR = "work-request-flushed"
    NOT_READY = "not-ready"
    RETRY_EXC_ERR = "transport-retry-exceeded"
    RNR_RETRY_EXC_ERR = "rnr-retry-exceeded"
