"""Doorbell batching at the posting layer (§3.3 Advice #4).

Without batching every work request pays the full posting latency.  A
:class:`DoorbellBatcher` queues work and flushes it with one MMIO plus a
NIC DMA fetch of the WQE list; the amortized per-request posting delay
follows the side-specific :class:`~repro.nic.specs.DoorbellCosts` —
a large win on the SoC side, a small loss on the host side.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.nic.specs import DoorbellCosts
from repro.rdma.qp import QueuePair
from repro.sim.process import Process


class DoorbellBatcher:
    """Queues posts against one QP and flushes them as one doorbell."""

    def __init__(self, qp: QueuePair, costs: Optional[DoorbellCosts] = None,
                 max_batch: int = 128):
        if max_batch < 1:
            raise ValueError(f"max batch must be >= 1: {max_batch}")
        self.qp = qp
        self.costs = costs or self._default_costs()
        self.max_batch = max_batch
        self._pending: List[Callable[[float], Process]] = []
        self.flushes = 0
        self.posted = 0

    def _default_costs(self) -> DoorbellCosts:
        node = self.qp.node
        cluster = node.cluster
        if node.kind == "client":
            return cluster.testbed.client_doorbell
        snic = cluster.server_of(node).snic
        if node.kind == "soc":
            return snic.soc.doorbell
        if snic is not None:
            # Host posting to the SmartNIC: the Fig 10b host-side costs.
            return snic.spec.host_doorbell
        # A host posting to its directly attached RNIC.
        return cluster.testbed.client_doorbell

    def __len__(self) -> int:
        return len(self._pending)

    # -- queuing ---------------------------------------------------------------

    def queue_read(self, wr_id: int, local_mr, remote_mr, length: int,
                   **kwargs) -> None:
        self._queue(lambda delay: self.qp.post_read(
            wr_id, local_mr, remote_mr, length,
            posting_delay=delay, **kwargs))

    def queue_write(self, wr_id: int, local_mr, remote_mr, length: int,
                    **kwargs) -> None:
        self._queue(lambda delay: self.qp.post_write(
            wr_id, local_mr, remote_mr, length,
            posting_delay=delay, **kwargs))

    def queue_send(self, wr_id: int, data: bytes, **kwargs) -> None:
        self._queue(lambda delay: self.qp.post_send(
            wr_id, data, posting_delay=delay, **kwargs))

    def _queue(self, poster: Callable[[float], Process]) -> None:
        if len(self._pending) >= self.max_batch:
            raise OverflowError(
                f"doorbell batch full ({self.max_batch}); flush() first")
        self._pending.append(poster)

    # -- flushing --------------------------------------------------------------

    def flush(self) -> List[Process]:
        """Ring one doorbell for everything queued.

        Each request is issued with the amortized posting delay for the
        achieved batch size; requests are staggered by the per-WQE fetch
        cost, as the NIC consumes the WQE list sequentially.
        """
        if not self._pending:
            return []
        batch = len(self._pending)
        amortized = self.costs.batched_cost_per_request(batch)
        processes = []
        for i, poster in enumerate(self._pending):
            processes.append(poster(amortized * (i + 1)))
        self._pending.clear()
        self.flushes += 1
        self.posted += batch
        return processes

    def amortized_cost(self, batch: Optional[int] = None) -> float:
        """Per-request posting cost (ns) at a given batch size."""
        batch = len(self._pending) if batch is None else batch
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return self.costs.batched_cost_per_request(batch)
