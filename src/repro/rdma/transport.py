"""Transport processes: how a verb physically executes on the cluster.

Each helper is a generator meant to run inside the simulation; it yields
channel transfers and DMA processes in the order the hardware would
issue them (Fig 3), and moves the actual bytes at the right instant.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.nic.core import Endpoint
from repro.sim.links import LOST

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.cluster import Node, SimCluster


def network_wire_bytes(payload: int, cluster: "SimCluster") -> int:
    """Wire bytes of a network message carrying ``payload``."""
    spec = cluster.server_cores
    packets = max(1, math.ceil(payload / spec.network_mtu))
    return payload + packets * spec.net_header_bytes


def network_transfer(cluster: "SimCluster", src: "Node", dst: "Node",
                     payload: int):
    """Move a message between two nodes over the fabric (a process)."""
    wire = network_wire_bytes(payload, cluster)
    tracer = cluster.sim.tracer
    net = (tracer.begin("network", "net", src=src.name, dst=dst.name,
                        payload=payload, wire_bytes=wire)
           if tracer is not None else None)
    # Convention: forward = toward the switch on client links, toward
    # the server on server links.  A leg poisoned by a fault injector
    # resolves to LOST; the message then never reaches the second leg.
    leg = (tracer.begin("wire", "wire", link=cluster.channel(src).name)
           if tracer is not None else None)
    if src.kind == "client":
        got = yield cluster.channel(src).send(wire, forward=True)
    else:
        got = yield cluster.channel(src).send(wire, forward=False)
    if tracer is not None:
        tracer.end(leg)
    if got is LOST:
        if tracer is not None:
            tracer.end(net)
        return LOST
    leg = (tracer.begin("wire", "wire", link=cluster.channel(dst).name)
           if tracer is not None else None)
    if dst.kind == "client":
        got = yield cluster.channel(dst).send(wire, forward=False)
    else:
        got = yield cluster.channel(dst).send(wire, forward=True)
    if tracer is not None:
        tracer.end(leg)
        tracer.end(net)
    if got is LOST:
        return LOST
    return payload


def nic_pipeline_delay(cluster: "SimCluster", node: "Node") -> float:
    """Per-request NIC pipeline time at a node's NIC."""
    if node.on_server:
        return cluster.server_of(node).cores.pipeline_ns
    return cluster.testbed.client_nic.cores.pipeline_ns


def server_nic_stage(cluster: "SimCluster", node: "Node" = None):
    """One verb's trip through a server NIC's processing pipeline.

    Occupies one of the NIC's processing units for the per-op service
    time (so concurrent load saturates at the spec's verb rate), then
    spends the remaining pipeline latency unoccupied.  ``node`` selects
    the server (any of its nodes); default is server 0.
    """
    server = (cluster.server_of(node) if node is not None
              else cluster.servers["server0"])
    service = server.service_ns
    sim = cluster.sim
    tracer = sim.tracer
    span = (tracer.begin("nic_pipeline", "nic", server=server.name)
            if tracer is not None else None)
    submitted = sim.now
    grant = server.pipeline.request()
    yield grant
    if span is not None:
        # Time spent waiting for a free processing unit (queueing under
        # load); the span itself stays gap-free for the tiling invariant.
        span.attrs["queued_ns"] = sim.now - submitted
    try:
        yield sim.timeout(service)
    finally:
        server.pipeline.release()
    remaining = server.cores.pipeline_ns - service
    if remaining > 0:
        yield sim.timeout(remaining)
    if tracer is not None:
        tracer.end(span)
    return None


def server_dma_read(cluster: "SimCluster", target, length: int):
    """A server NIC DMA-reads ``length`` bytes from ``target`` memory.

    ``target`` is a server-side node or (single-server shorthand) an
    endpoint resolved on server 0.
    """
    if length == 0:
        return 0
    engine, route, mps = cluster.dma_route(target)
    got = yield engine.dma_read(route, length, mps)
    if got is LOST:
        return LOST
    return length


def server_dma_write(cluster: "SimCluster", target, length: int):
    """A server NIC DMA-writes ``length`` bytes into ``target`` memory."""
    if length == 0:
        return 0
    engine, route, mps = cluster.dma_route(target)
    got = yield engine.dma_write(route, length, mps)
    if got is LOST:
        return LOST
    return length


def intra_machine_transfer(cluster: "SimCluster", source: "Node",
                           sink: "Node", length: int):
    """Path ③ data movement: fetch from ``source``, deliver to ``sink``.

    Both legs run through the same server's NIC, crossing its PCIe1
    twice in total (§3.3).  ``source``/``sink`` are that server's host
    and SoC nodes (either order); endpoint shorthands resolve on
    server 0.
    """
    from repro.nic.core import Endpoint as _Endpoint

    source_end = source if isinstance(source, _Endpoint) else source.endpoint
    sink_end = sink if isinstance(sink, _Endpoint) else sink.endpoint
    if source_end is sink_end:
        raise ValueError("path-3 transfer needs distinct endpoints")
    if length:
        got = yield from server_dma_read(cluster, source, length)
        if got is LOST:
            return LOST
        got = yield from server_dma_write(cluster, sink, length)
        if got is LOST:
            return LOST
    return length
