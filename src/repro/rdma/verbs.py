"""The top-level verbs facade: device/PD/QP management per cluster."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.net.cluster import Node, SimCluster
from repro.rdma.cq import CompletionQueue
from repro.rdma.mr import MemoryRegion, ProtectionDomain
from repro.rdma.qp import QPError, QPType, QueuePair
from repro.rdma.srq import SharedReceiveQueue


class RdmaContext:
    """Opens the cluster's RDMA devices and manages PDs, CQs and QPs."""

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster
        self._pds: Dict[str, ProtectionDomain] = {}

    # -- memory ----------------------------------------------------------------

    def pd(self, node_name: str) -> ProtectionDomain:
        """The protection domain of a node (created on first use)."""
        if node_name not in self._pds:
            self._pds[node_name] = ProtectionDomain(
                self.cluster.node(node_name))
        return self._pds[node_name]

    def reg_mr(self, node_name: str, length: int) -> MemoryRegion:
        """Register a buffer on a node."""
        return self.pd(node_name).reg_mr(length)

    # -- queue pairs --------------------------------------------------------------

    def create_cq(self, node_name: str, depth: int = 4096) -> CompletionQueue:
        self.cluster.node(node_name)  # validates the name
        return CompletionQueue(self.cluster.sim, depth)

    def create_qp(self, node_name: str, qp_type: QPType = QPType.RC,
                  send_cq: Optional[CompletionQueue] = None,
                  recv_cq: Optional[CompletionQueue] = None,
                  srq: Optional[SharedReceiveQueue] = None) -> QueuePair:
        node = self.cluster.node(node_name)
        # Explicit None checks: an empty CompletionQueue is falsy
        # (len() == 0), so ``or`` would silently replace a caller's CQ.
        if send_cq is None:
            send_cq = CompletionQueue(self.cluster.sim)
        if recv_cq is None:
            recv_cq = CompletionQueue(self.cluster.sim)
        return QueuePair(node, qp_type, send_cq, recv_cq, srq=srq)

    def create_srq(self, node_name: str, max_wr: int = 4096) -> SharedReceiveQueue:
        """A shared receive queue on a node."""
        return SharedReceiveQueue(self.cluster.node(node_name), max_wr)

    def connect_rc(self, requester: str,
                   responder: str) -> Tuple[QueuePair, QueuePair]:
        """Create and connect an RC pair; returns (requester_qp, responder_qp)."""
        qp_a = self.create_qp(requester, QPType.RC)
        qp_b = self.create_qp(responder, QPType.RC)
        qp_a.connect(qp_b)
        return qp_a, qp_b

    def create_ud_pair(self, requester: str,
                       responder: str) -> Tuple[QueuePair, QueuePair]:
        """Two unconnected UD QPs (requester addresses responder explicitly)."""
        return (self.create_qp(requester, QPType.UD),
                self.create_qp(responder, QPType.UD))

    def rebind_rc(self, qp: QueuePair,
                  responder: str) -> Tuple[QueuePair, QueuePair]:
        """Re-bind an RC flow to a new responder node.

        RC connections are point-to-point and immutable once at RTS, so
        "moving" a flow means a fresh pair: the old pair is left alone
        to drain (or flush, if its responder crashed) while the returned
        pair — same requester node, new responder — is immediately
        usable.  This is the primitive behind the path scheduler's
        migration decisions.
        """
        if qp.qp_type is not QPType.RC:
            raise QPError("only RC flows can be re-bound")
        if qp.peer is None:
            raise QPError("cannot re-bind an unconnected QP")
        return self.connect_rc(qp.node.name, responder)
