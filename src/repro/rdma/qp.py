"""Queue pairs: RC for one-sided verbs, UD for datagram SEND/RECV.

A queue pair belongs to one node.  Posting a verb starts a discrete-event
process that replays the hardware's execution flow — posting cost at the
requester CPU, NIC pipelines, network channels, and the responder-side
DMA over the SmartNIC's internal fabric — then delivers a completion.
"""

from __future__ import annotations

import itertools
from collections import deque
from enum import Enum
from typing import Deque, Optional, Tuple, TYPE_CHECKING

from repro.rdma import transport
from repro.rdma.cq import Completion, CompletionQueue
from repro.rdma.mr import AccessError, MemoryRegion
from repro.rdma.opcodes import CompletionStatus, WorkOpcode
from repro.rdma.srq import SharedReceiveQueue
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.cluster import Node


class QPType(Enum):
    RC = "rc"   # reliable connection: READ/WRITE/SEND
    UD = "ud"   # unreliable datagram: SEND/RECV only


class QPState(Enum):
    """The ibv_qp_state subset the stack models.

    RC QPs walk RESET -> INIT -> RTR -> RTS (or take the
    :meth:`QueuePair.connect` shortcut); UD QPs are created ready.
    A remote access error moves the QP to ERROR, after which posts
    flush with :attr:`CompletionStatus.FLUSH_ERROR`.
    """

    RESET = "reset"
    INIT = "init"
    RTR = "rtr"    # ready to receive
    RTS = "rts"    # ready to send
    ERROR = "error"


# Legal forward transitions (plus anything -> ERROR / RESET).
_TRANSITIONS = {
    QPState.RESET: {QPState.INIT},
    QPState.INIT: {QPState.RTR},
    QPState.RTR: {QPState.RTS},
    QPState.RTS: set(),
    QPState.ERROR: set(),
}


class QPError(Exception):
    """QP misuse: wrong type, wrong state, not connected, bad sizes."""


class QueuePair:
    """One queue pair plus its execution engine."""

    _qpns = itertools.count(100)
    _registry: dict = {}

    def __init__(self, node: "Node", qp_type: QPType,
                 send_cq: CompletionQueue, recv_cq: CompletionQueue,
                 max_inline: int = 188, max_send_wr: int = 1024,
                 max_recv_wr: int = 4096, srq: "SharedReceiveQueue" = None):
        if max_send_wr < 1 or max_recv_wr < 1:
            raise QPError("queue depths must be >= 1")
        self.node = node
        self.qp_type = qp_type
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_inline = max_inline
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        self.srq = srq
        if srq is not None and srq.node is not node:
            raise QPError("SRQ belongs to another node")
        self.qpn = next(self._qpns)
        self.peer: Optional["QueuePair"] = None
        self._recv_queue: Deque[Tuple[int, MemoryRegion, int, int]] = deque()
        self.dropped_receives = 0
        self.outstanding_sends = 0
        # UD QPs are usable immediately; RC must connect (or modify_qp).
        self.state = QPState.RTS if qp_type is QPType.UD else QPState.RESET
        # Source addressing for UD replies (like the src fields of a wc).
        self.inbound_sources: Deque[int] = deque()
        QueuePair._registry[self.qpn] = self

    @classmethod
    def by_qpn(cls, qpn: int) -> "QueuePair":
        """Resolve a QP number (e.g. a completion's source) to its QP."""
        try:
            return cls._registry[qpn]
        except KeyError:
            raise QPError(f"unknown QPN {qpn}") from None

    # -- connection management ------------------------------------------------------

    def modify_qp(self, new_state: QPState) -> None:
        """Walk the QP state machine (ibv_modify_qp).

        ERROR and RESET are reachable from anywhere; other transitions
        must follow RESET -> INIT -> RTR -> RTS.
        """
        if new_state in (QPState.ERROR, QPState.RESET):
            self.state = new_state
            return
        if new_state not in _TRANSITIONS[self.state]:
            raise QPError(
                f"illegal transition {self.state.value} -> {new_state.value}")
        self.state = new_state

    def connect(self, peer: "QueuePair") -> None:
        """Bring an RC pair to RTS; both ends become connected."""
        if self.qp_type is not QPType.RC:
            raise QPError("only RC QPs are connected")
        if peer.qp_type is not QPType.RC:
            raise QPError("peer is not an RC QP")
        if self.peer is not None or peer.peer is not None:
            raise QPError("QP already connected")
        for qp in (self, peer):
            if qp.state is not QPState.RESET:
                raise QPError(f"cannot connect a QP in state {qp.state.value}")
        self.peer = peer
        peer.peer = self
        for qp in (self, peer):
            qp.state = QPState.RTS

    def _require_peer(self) -> "QueuePair":
        if self.peer is None:
            raise QPError("RC QP is not connected")
        return self.peer

    @property
    def cluster(self):
        return self.node.cluster

    @property
    def sim(self):
        return self.node.cluster.sim

    # -- receive side ---------------------------------------------------------------

    def post_recv(self, wr_id: int, mr: MemoryRegion, offset: int = 0,
                  length: Optional[int] = None) -> None:
        """Queue a receive buffer for inbound SENDs."""
        if self.srq is not None:
            raise QPError("QP uses an SRQ; post receives there")
        if self.state is QPState.RESET:
            raise QPError("cannot post receives on a RESET QP")
        if mr.node is not self.node:
            raise AccessError("recv MR belongs to another node")
        length = mr.length - offset if length is None else length
        if length <= 0 or offset < 0 or offset + length > mr.length:
            raise QPError(f"bad recv buffer [{offset}, {offset + length})")
        if len(self._recv_queue) >= self.max_recv_wr:
            raise QPError(f"receive queue full ({self.max_recv_wr})")
        self._recv_queue.append((wr_id, mr, offset, length))

    @property
    def recv_queue_depth(self) -> int:
        if self.srq is not None:
            return len(self.srq)
        return len(self._recv_queue)

    # -- send side --------------------------------------------------------------------

    def post_read(self, wr_id: int, local_mr: MemoryRegion,
                  remote_mr: MemoryRegion, length: int,
                  local_offset: int = 0, remote_offset: int = 0,
                  rkey: Optional[int] = None, signaled: bool = True,
                  posting_delay: Optional[float] = None) -> Process:
        """One-sided READ: pull remote bytes into the local buffer."""
        self._check_one_sided(local_mr, length)
        if not self._admit_send(wr_id, WorkOpcode.READ):
            return self._flushed()
        rkey = remote_mr.rkey if rkey is None else rkey
        return self.sim.process(self._run_one_sided(
            WorkOpcode.READ, wr_id, local_mr, local_offset, remote_mr,
            remote_offset, length, rkey, signaled, posting_delay))

    def post_write(self, wr_id: int, local_mr: MemoryRegion,
                   remote_mr: MemoryRegion, length: int,
                   local_offset: int = 0, remote_offset: int = 0,
                   rkey: Optional[int] = None, signaled: bool = True,
                   posting_delay: Optional[float] = None) -> Process:
        """One-sided WRITE: push local bytes into the remote buffer."""
        self._check_one_sided(local_mr, length)
        if not self._admit_send(wr_id, WorkOpcode.WRITE):
            return self._flushed()
        rkey = remote_mr.rkey if rkey is None else rkey
        return self.sim.process(self._run_one_sided(
            WorkOpcode.WRITE, wr_id, local_mr, local_offset, remote_mr,
            remote_offset, length, rkey, signaled, posting_delay))

    def post_send(self, wr_id: int, data: bytes,
                  dest: Optional["QueuePair"] = None, signaled: bool = True,
                  posting_delay: Optional[float] = None) -> Process:
        """Two-sided SEND of ``data`` to the peer (RC) or ``dest`` (UD)."""
        if self.qp_type is QPType.RC:
            if dest is not None and dest is not self.peer:
                raise QPError("RC SEND goes to the connected peer")
            target = self._require_peer()
        else:
            if dest is None:
                raise QPError("UD SEND needs an explicit destination QP")
            target = dest
        if not self._admit_send(wr_id, WorkOpcode.SEND):
            return self._flushed()
        return self.sim.process(self._run_send(
            wr_id, data, target, signaled, posting_delay))

    # -- checks -----------------------------------------------------------------------

    def _check_one_sided(self, local_mr: MemoryRegion, length: int) -> None:
        if self.qp_type is not QPType.RC:
            raise QPError("one-sided verbs need an RC QP")
        self._require_peer()
        if local_mr.node is not self.node:
            raise AccessError("local MR belongs to another node")
        if length < 0:
            raise QPError(f"negative length: {length}")

    def _admit_send(self, wr_id: int, opcode: WorkOpcode) -> bool:
        """Send-queue admission: depth limit and error-state flushing.

        Returns False when the WR must flush instead of executing.
        """
        if self.state is QPState.ERROR:
            self.send_cq.push(Completion(
                wr_id=wr_id, opcode=opcode,
                status=CompletionStatus.FLUSH_ERROR, byte_len=0,
                timestamp=self.sim.now))
            return False
        if self.state is not QPState.RTS:
            raise QPError(f"cannot post sends in state {self.state.value}")
        if self.outstanding_sends >= self.max_send_wr:
            raise QPError(f"send queue full ({self.max_send_wr})")
        self.outstanding_sends += 1
        return True

    def _flushed(self) -> Process:
        """A no-op process standing in for a flushed work request."""
        def nothing():
            return None
            yield  # pragma: no cover - makes this a generator
        return self.sim.process(nothing())

    def _posting(self, posting_delay: Optional[float]) -> float:
        if posting_delay is not None:
            return posting_delay
        return self.node.cpu.posting_latency()

    def _complete(self, wr_id: int, opcode: WorkOpcode, nbytes: int,
                  signaled: bool,
                  status: CompletionStatus = CompletionStatus.SUCCESS) -> None:
        self.outstanding_sends = max(0, self.outstanding_sends - 1)
        if status is CompletionStatus.REMOTE_ACCESS_ERROR:
            # A fatal RC error wedges the QP (ibv semantics).
            self.state = QPState.ERROR
        if signaled or status is not CompletionStatus.SUCCESS:
            self.send_cq.push(Completion(wr_id=wr_id, opcode=opcode,
                                         status=status, byte_len=nbytes,
                                         timestamp=self.sim.now))

    # -- execution processes -------------------------------------------------------------

    def _run_one_sided(self, opcode: WorkOpcode, wr_id: int,
                       local_mr: MemoryRegion, local_offset: int,
                       remote_mr: MemoryRegion, remote_offset: int,
                       length: int, rkey: int, signaled: bool,
                       posting_delay: Optional[float]):
        cluster = self.cluster
        peer = self._require_peer()
        yield self.sim.timeout(self._posting(posting_delay))

        requester, responder = self.node, peer.node
        # Path-3 semantics apply only within one server; host/SoC pairs
        # on different servers are ordinary remote peers over the fabric.
        intra = requester.same_server_as(responder)
        if intra:
            # The requester-side processing happens on the (shared)
            # server NIC pipeline.
            yield from transport.server_nic_stage(cluster, requester)
        else:
            yield self.sim.timeout(
                transport.nic_pipeline_delay(cluster, self.node))
        try:
            if intra:
                yield from self._one_sided_intra(
                    opcode, local_mr, local_offset, remote_mr,
                    remote_offset, length, rkey)
            else:
                yield from self._one_sided_network(
                    opcode, local_mr, local_offset, remote_mr,
                    remote_offset, length, rkey, responder)
        except AccessError:
            self._complete(wr_id, opcode, 0, True,
                           CompletionStatus.REMOTE_ACCESS_ERROR)
            return
        if intra:
            yield self.sim.timeout(
                transport.nic_pipeline_delay(cluster, self.node))
        self._complete(wr_id, opcode, length, signaled)

    def _one_sided_network(self, opcode, local_mr, local_offset, remote_mr,
                           remote_offset, length, rkey, responder):
        cluster = self.cluster
        if opcode is WorkOpcode.READ:
            # Request packet over, DMA read at the server, data back.
            yield from transport.network_transfer(cluster, self.node,
                                                  responder, 0)
            yield from transport.server_nic_stage(cluster, responder)
            yield from transport.server_dma_read(cluster, responder, length)
            data = remote_mr.dma_read(remote_offset, length, rkey)
            yield from transport.network_transfer(cluster, responder,
                                                  self.node, length)
            local_mr.write_local(local_offset, data)
        else:
            # Data over, posted DMA write at the server, ack back.
            data = local_mr.read_local(local_offset, length)
            yield from transport.network_transfer(cluster, self.node,
                                                  responder, length)
            yield from transport.server_nic_stage(cluster, responder)
            yield from transport.server_dma_write(cluster, responder, length)
            remote_mr.dma_write(remote_offset, data, rkey)
            yield from transport.network_transfer(cluster, responder,
                                                  self.node, 0)

    def _one_sided_intra(self, opcode, local_mr, local_offset, remote_mr,
                         remote_offset, length, rkey):
        """Path ③: host <-> SoC through the internal fabric only.

        On top of the data legs, the doorbell MMIO crosses the fabric to
        the NIC (posted: half a traversal latency-visible) and the CQE
        crosses back to the requester's memory.
        """
        cluster = self.cluster
        local_node = self.node
        remote_node = self.peer.node
        snic = cluster.server_of(local_node).snic
        crossing = snic.crossing_latency(local_node.endpoint)
        yield self.sim.timeout(0.5 * crossing)  # doorbell to the NIC
        if opcode is WorkOpcode.READ:
            data = remote_mr.dma_read(remote_offset, length, rkey)
            yield from transport.intra_machine_transfer(
                cluster, remote_node, local_node, length)
            local_mr.write_local(local_offset, data)
        else:
            data = local_mr.read_local(local_offset, length)
            yield from transport.intra_machine_transfer(
                cluster, local_node, remote_node, length)
            remote_mr.dma_write(remote_offset, data, rkey)
        yield self.sim.timeout(crossing)  # CQE back to requester memory

    def _run_send(self, wr_id: int, data: bytes, target: "QueuePair",
                  signaled: bool, posting_delay: Optional[float]):
        cluster = self.cluster
        yield self.sim.timeout(self._posting(posting_delay))
        yield self.sim.timeout(transport.nic_pipeline_delay(cluster, self.node))
        responder = target.node
        if self.node.same_server_as(responder):
            yield from transport.intra_machine_transfer(
                cluster, self.node, responder, len(data))
        else:
            yield from transport.network_transfer(cluster, self.node,
                                                  responder, len(data))
            if responder.on_server:
                yield from transport.server_nic_stage(cluster, responder)
                yield from transport.server_dma_write(
                    cluster, responder, len(data))
        target._deliver(data, self.qpn)
        self._complete(wr_id, WorkOpcode.SEND, len(data), signaled)

    def _deliver(self, data: bytes, src_qpn: int) -> None:
        """Land an inbound SEND in the next posted receive buffer."""
        queue = self._recv_queue if self.srq is None else self.srq.queue
        if not queue:
            self.dropped_receives += 1
            return
        wr_id, mr, offset, capacity = queue.popleft()
        if len(data) > capacity:
            self.dropped_receives += 1
            self.recv_cq.push(Completion(
                wr_id=wr_id, opcode=WorkOpcode.RECV,
                status=CompletionStatus.LOCAL_PROTECTION_ERROR,
                byte_len=0, timestamp=self.sim.now))
            return
        mr.write_local(offset, data)
        self.inbound_sources.append(src_qpn)
        self.recv_cq.push(Completion(
            wr_id=wr_id, opcode=WorkOpcode.RECV,
            status=CompletionStatus.SUCCESS, byte_len=len(data),
            timestamp=self.sim.now))
