"""Queue pairs: RC for one-sided verbs, UD for datagram SEND/RECV.

A queue pair belongs to one node.  Posting a verb starts a discrete-event
process that replays the hardware's execution flow — posting cost at the
requester CPU, NIC pipelines, network channels, and the responder-side
DMA over the SmartNIC's internal fabric — then delivers a completion.

RC QPs implement the reliability protocol: each work request carries a
packet sequence number, and any leg of its execution poisoned by a fault
injector (see :mod:`repro.faults`) resolves to :data:`~repro.sim.LOST`.
The requester then waits an ack-timeout with exponential backoff and
retransmits, up to ``retry_cnt`` times before wedging the QP with
``RETRY_EXC_ERR``.  An RC SEND that finds no receive buffer posted draws
an RNR NAK and is retried after ``rnr_timer_ns``, up to ``rnr_retry``
times.  Fault-free runs never enter any of these paths and execute the
exact event sequence of the unmodified stack.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, Optional, Set, Tuple, TYPE_CHECKING

from repro.rdma import transport
from repro.rdma.cq import Completion, CompletionQueue
from repro.rdma.mr import AccessError, MemoryRegion
from repro.rdma.opcodes import CompletionStatus, WorkOpcode
from repro.rdma.srq import SharedReceiveQueue
from repro.sim.links import LOST
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.cluster import Node


class QPType(Enum):
    RC = "rc"   # reliable connection: READ/WRITE/SEND
    UD = "ud"   # unreliable datagram: SEND/RECV only


class QPState(Enum):
    """The ibv_qp_state subset the stack models.

    RC QPs walk RESET -> INIT -> RTR -> RTS (or take the
    :meth:`QueuePair.connect` shortcut); UD QPs are created ready.
    A fatal error (remote access fault, retry exhaustion) moves the QP
    to ERROR, after which posts flush with
    :attr:`CompletionStatus.FLUSH_ERROR` until the owner recycles it
    through RESET back up to RTS (see :meth:`QueuePair.recover`).
    """

    RESET = "reset"
    INIT = "init"
    RTR = "rtr"    # ready to receive
    RTS = "rts"    # ready to send
    ERROR = "error"


# Legal forward transitions (plus anything -> ERROR / RESET).
_TRANSITIONS = {
    QPState.RESET: {QPState.INIT},
    QPState.INIT: {QPState.RTR},
    QPState.RTR: {QPState.RTS},
    QPState.RTS: set(),
    QPState.ERROR: set(),
}

# Completion statuses that wedge the QP (ibv semantics).
_FATAL_STATUSES = frozenset({
    CompletionStatus.REMOTE_ACCESS_ERROR,
    CompletionStatus.RETRY_EXC_ERR,
    CompletionStatus.RNR_RETRY_EXC_ERR,
})

# Attempt outcomes of the RC reliability loop (LOST is the third).
_OK = object()
_RNR = object()


class QPError(Exception):
    """QP misuse: wrong type, wrong state, not connected, bad sizes."""


class QueuePair:
    """One queue pair plus its execution engine."""

    def __init__(self, node: "Node", qp_type: QPType,
                 send_cq: CompletionQueue, recv_cq: CompletionQueue,
                 max_inline: int = 188, max_send_wr: int = 1024,
                 max_recv_wr: int = 4096, srq: "SharedReceiveQueue" = None):
        if max_send_wr < 1 or max_recv_wr < 1:
            raise QPError("queue depths must be >= 1")
        if node.cluster is None:
            raise QPError(
                f"node {node.name!r} is not attached to a cluster; QPs can "
                "only be created on nodes owned by a SimCluster")
        self.node = node
        self.qp_type = qp_type
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_inline = max_inline
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        self.srq = srq
        if srq is not None and srq.node is not node:
            raise QPError("SRQ belongs to another node")
        self.qpn = node.cluster.register_qp(self)
        self.peer: Optional["QueuePair"] = None
        self._recv_queue: Deque[Tuple[int, MemoryRegion, int, int]] = deque()
        self.dropped_receives = 0
        self.outstanding_sends = 0
        # UD QPs are usable immediately; RC must connect (or modify_qp).
        self.state = QPState.RTS if qp_type is QPType.UD else QPState.RESET
        # Source addressing for UD replies (like the src fields of a wc).
        self.inbound_sources: Deque[int] = deque()
        # -- RC reliability protocol (ibv_qp_attr knobs) -----------------
        self.retry_cnt = 7            # transport retries before RETRY_EXC_ERR
        self.rnr_retry = 7            # RNR retries before RNR_RETRY_EXC_ERR
        self.timeout_ns = 16_000.0    # initial ack timeout
        self.max_timeout_ns = 256_000.0   # backoff cap
        self.rnr_timer_ns = 10_000.0  # wait after an RNR NAK
        self.sq_psn = 0               # next packet sequence number
        # PSNs whose payload this QP already applied (responder-side
        # dedup of retransmits whose ack was lost); only populated when
        # a fault injector is installed.
        self._seen_psns: Set[int] = set()
        self._needs_recovery = False

    # -- connection management ------------------------------------------------------

    def modify_qp(self, new_state: QPState) -> None:
        """Walk the QP state machine (ibv_modify_qp).

        ERROR and RESET are reachable from anywhere; other transitions
        must follow RESET -> INIT -> RTR -> RTS.  Moving to RESET wipes
        queued receives and sequence state; reaching RTS again after an
        ERROR counts one ``qp.recoveries``.
        """
        if new_state is QPState.ERROR:
            self.state = new_state
            self._needs_recovery = True
            return
        if new_state is QPState.RESET:
            self.state = new_state
            self._recv_queue.clear()
            self.inbound_sources.clear()
            self._seen_psns.clear()
            self.sq_psn = 0
            self.outstanding_sends = 0
            return
        if new_state not in _TRANSITIONS[self.state]:
            raise QPError(
                f"illegal transition {self.state.value} -> {new_state.value}")
        self.state = new_state
        if new_state is QPState.RTS and self._needs_recovery:
            self._needs_recovery = False
            self.node.cluster.bump("qp.recoveries")

    def recover(self) -> None:
        """Recycle an errored QP: ERROR -> RESET -> INIT -> RTR -> RTS.

        The RC connection (``peer``) is retained; receives must be
        reposted by the owner afterwards.
        """
        for state in (QPState.RESET, QPState.INIT, QPState.RTR, QPState.RTS):
            self.modify_qp(state)

    def connect(self, peer: "QueuePair") -> None:
        """Bring an RC pair to RTS; both ends become connected."""
        if self.qp_type is not QPType.RC:
            raise QPError("only RC QPs are connected")
        if peer.qp_type is not QPType.RC:
            raise QPError("peer is not an RC QP")
        if self.peer is not None or peer.peer is not None:
            raise QPError("QP already connected")
        for qp in (self, peer):
            if qp.state is not QPState.RESET:
                raise QPError(f"cannot connect a QP in state {qp.state.value}")
        self.peer = peer
        peer.peer = self
        for qp in (self, peer):
            qp.state = QPState.RTS

    def _require_peer(self) -> "QueuePair":
        if self.peer is None:
            raise QPError("RC QP is not connected")
        return self.peer

    @property
    def cluster(self):
        return self.node.cluster

    @property
    def sim(self):
        return self.node.cluster.sim

    # -- receive side ---------------------------------------------------------------

    def post_recv(self, wr_id: int, mr: MemoryRegion, offset: int = 0,
                  length: Optional[int] = None) -> None:
        """Queue a receive buffer for inbound SENDs."""
        if self.srq is not None:
            raise QPError("QP uses an SRQ; post receives there")
        if self.state is QPState.RESET:
            raise QPError("cannot post receives on a RESET QP")
        if mr.node is not self.node:
            raise AccessError("recv MR belongs to another node")
        length = mr.length - offset if length is None else length
        if length <= 0 or offset < 0 or offset + length > mr.length:
            raise QPError(f"bad recv buffer [{offset}, {offset + length})")
        if len(self._recv_queue) >= self.max_recv_wr:
            raise QPError(f"receive queue full ({self.max_recv_wr})")
        self._recv_queue.append((wr_id, mr, offset, length))

    @property
    def recv_queue_depth(self) -> int:
        if self.srq is not None:
            return len(self.srq)
        return len(self._recv_queue)

    # -- send side --------------------------------------------------------------------

    def post_read(self, wr_id: int, local_mr: MemoryRegion,
                  remote_mr: MemoryRegion, length: int,
                  local_offset: int = 0, remote_offset: int = 0,
                  rkey: Optional[int] = None, signaled: bool = True,
                  posting_delay: Optional[float] = None) -> Process:
        """One-sided READ: pull remote bytes into the local buffer."""
        self._check_one_sided(local_mr, length)
        if not self._admit_send(wr_id, WorkOpcode.READ):
            return self._flushed()
        rkey = remote_mr.rkey if rkey is None else rkey
        gen = self._run_one_sided(
            WorkOpcode.READ, wr_id, local_mr, local_offset, remote_mr,
            remote_offset, length, rkey, signaled, posting_delay)
        return self.sim.process(self._traced(gen, WorkOpcode.READ,
                                             length, wr_id))

    def post_write(self, wr_id: int, local_mr: MemoryRegion,
                   remote_mr: MemoryRegion, length: int,
                   local_offset: int = 0, remote_offset: int = 0,
                   rkey: Optional[int] = None, signaled: bool = True,
                   posting_delay: Optional[float] = None) -> Process:
        """One-sided WRITE: push local bytes into the remote buffer."""
        self._check_one_sided(local_mr, length)
        if not self._admit_send(wr_id, WorkOpcode.WRITE):
            return self._flushed()
        rkey = remote_mr.rkey if rkey is None else rkey
        gen = self._run_one_sided(
            WorkOpcode.WRITE, wr_id, local_mr, local_offset, remote_mr,
            remote_offset, length, rkey, signaled, posting_delay)
        return self.sim.process(self._traced(gen, WorkOpcode.WRITE,
                                             length, wr_id))

    def post_send(self, wr_id: int, data: bytes,
                  dest: Optional["QueuePair"] = None, signaled: bool = True,
                  posting_delay: Optional[float] = None) -> Process:
        """Two-sided SEND of ``data`` to the peer (RC) or ``dest`` (UD)."""
        if self.qp_type is QPType.RC:
            if dest is not None and dest is not self.peer:
                raise QPError("RC SEND goes to the connected peer")
            target = self._require_peer()
        else:
            if dest is None:
                raise QPError("UD SEND needs an explicit destination QP")
            target = dest
        if not self._admit_send(wr_id, WorkOpcode.SEND):
            return self._flushed()
        gen = self._run_send(wr_id, data, target, signaled, posting_delay)
        return self.sim.process(self._traced(gen, WorkOpcode.SEND,
                                             len(data), wr_id,
                                             responder=target.node))

    # -- checks -----------------------------------------------------------------------

    def _check_one_sided(self, local_mr: MemoryRegion, length: int) -> None:
        if self.qp_type is not QPType.RC:
            raise QPError("one-sided verbs need an RC QP")
        self._require_peer()
        if local_mr.node is not self.node:
            raise AccessError("local MR belongs to another node")
        if length < 0:
            raise QPError(f"negative length: {length}")

    def _admit_send(self, wr_id: int, opcode: WorkOpcode) -> bool:
        """Send-queue admission: depth limit and error-state flushing.

        Returns False when the WR must flush instead of executing.
        """
        if self.state is QPState.ERROR:
            self.send_cq.push(Completion(
                wr_id=wr_id, opcode=opcode,
                status=CompletionStatus.FLUSH_ERROR, byte_len=0,
                timestamp=self.sim.now))
            return False
        if self.state is not QPState.RTS:
            raise QPError(f"cannot post sends in state {self.state.value}")
        if self.outstanding_sends >= self.max_send_wr:
            raise QPError(f"send queue full ({self.max_send_wr})")
        self.outstanding_sends += 1
        return True

    def _traced(self, gen, opcode: WorkOpcode, nbytes: int, wr_id: int,
                responder: Optional["Node"] = None):
        """Wrap an execution generator in a root span when tracing.

        A no-op pass-through (same generator object) on untraced runs,
        so the event sequence is untouched.
        """
        tracer = self.sim.tracer
        if tracer is None:
            return gen
        if responder is None:
            responder = self._require_peer().node
        return tracer.trace_verb(gen, requester=self.node,
                                 responder=responder,
                                 verb=opcode.name.lower(), payload=nbytes,
                                 wr_id=wr_id, qpn=self.qpn,
                                 qp_type=self.qp_type.value)

    def _flushed(self) -> Process:
        """A no-op process standing in for a flushed work request."""
        def nothing():
            return None
            yield  # pragma: no cover - makes this a generator
        return self.sim.process(nothing())

    def _posting(self, posting_delay: Optional[float]) -> float:
        base = (posting_delay if posting_delay is not None
                else self.node.cpu.posting_latency())
        injector = self.cluster.fault_injector
        if injector is not None:
            base *= injector.cpu_factor(self.node, self.sim.now)
        return base

    def _complete(self, wr_id: int, opcode: WorkOpcode, nbytes: int,
                  signaled: bool,
                  status: CompletionStatus = CompletionStatus.SUCCESS) -> None:
        self.outstanding_sends = max(0, self.outstanding_sends - 1)
        if status in _FATAL_STATUSES:
            # A fatal RC error wedges the QP (ibv semantics).
            self.state = QPState.ERROR
            self._needs_recovery = True
        if signaled or status is not CompletionStatus.SUCCESS:
            self.send_cq.push(Completion(wr_id=wr_id, opcode=opcode,
                                         status=status, byte_len=nbytes,
                                         timestamp=self.sim.now))

    # -- RC reliability -------------------------------------------------------------

    def _with_reliability(self, wr_id: int, opcode: WorkOpcode, nbytes: int,
                          signaled: bool, attempt):
        """Drive ``attempt(psn)`` to completion under the RC retry rules.

        ``attempt`` is a generator function executing one transmission of
        the work request; it returns ``_OK``, ``_RNR``, or ``LOST``.  On
        a fault-free run the loop body executes exactly once and adds no
        simulation events of its own.
        """
        cluster = self.cluster
        psn = self.sq_psn
        self.sq_psn += 1
        transport_retries = self.retry_cnt
        rnr_retries = self.rnr_retry
        timeout = self.timeout_ns
        while True:
            if self.state is QPState.ERROR:
                # Wedged while queued/retrying (e.g. a crash injector
                # errored the QP): flush instead of transmitting.
                self._complete(wr_id, opcode, 0, True,
                               CompletionStatus.FLUSH_ERROR)
                return
            try:
                outcome = yield from attempt(psn)
            except AccessError:
                self._complete(wr_id, opcode, 0, True,
                               CompletionStatus.REMOTE_ACCESS_ERROR)
                return
            if outcome is _RNR:
                cluster.bump("rdma.rnr_naks")
                if rnr_retries <= 0:
                    self._complete(wr_id, opcode, 0, True,
                                   CompletionStatus.RNR_RETRY_EXC_ERR)
                    return
                rnr_retries -= 1
                tracer = self.sim.tracer
                span = (tracer.begin("rnr_backoff", "rdma",
                                     wait_ns=self.rnr_timer_ns)
                        if tracer is not None else None)
                yield self.sim.timeout(self.rnr_timer_ns)
                if tracer is not None:
                    tracer.end(span)
                continue
            if outcome is LOST:
                if transport_retries <= 0:
                    self._complete(wr_id, opcode, 0, True,
                                   CompletionStatus.RETRY_EXC_ERR)
                    return
                transport_retries -= 1
                cluster.bump("rdma.retransmits")
                tracer = self.sim.tracer
                span = (tracer.begin("retry_backoff", "rdma",
                                     wait_ns=timeout)
                        if tracer is not None else None)
                yield self.sim.timeout(timeout)
                if tracer is not None:
                    tracer.end(span)
                timeout = min(timeout * 2, self.max_timeout_ns)
                continue
            if self.state is QPState.ERROR:
                self._complete(wr_id, opcode, 0, True,
                               CompletionStatus.FLUSH_ERROR)
                return
            self._complete(wr_id, opcode, nbytes, signaled)
            return

    # -- execution processes -------------------------------------------------------------

    def _run_one_sided(self, opcode: WorkOpcode, wr_id: int,
                       local_mr: MemoryRegion, local_offset: int,
                       remote_mr: MemoryRegion, remote_offset: int,
                       length: int, rkey: int, signaled: bool,
                       posting_delay: Optional[float]):
        cluster = self.cluster
        peer = self._require_peer()
        tracer = self.sim.tracer
        span = (tracer.begin("post", "cpu", node=self.node.name)
                if tracer is not None else None)
        yield self.sim.timeout(self._posting(posting_delay))
        if tracer is not None:
            tracer.end(span)

        requester, responder = self.node, peer.node
        # Path-3 semantics apply only within one server; host/SoC pairs
        # on different servers are ordinary remote peers over the fabric.
        intra = requester.same_server_as(responder)

        def attempt(psn):
            tracer = self.sim.tracer
            # Retransmits re-enter the NIC pipeline, like the hardware.
            if intra:
                yield from transport.server_nic_stage(cluster, requester)
            else:
                span = (tracer.begin("nic_pipeline", "nic",
                                     node=self.node.name)
                        if tracer is not None else None)
                yield self.sim.timeout(
                    transport.nic_pipeline_delay(cluster, self.node))
                if tracer is not None:
                    tracer.end(span)
            if intra:
                outcome = yield from self._one_sided_intra(
                    opcode, local_mr, local_offset, remote_mr,
                    remote_offset, length, rkey, psn)
            else:
                outcome = yield from self._one_sided_network(
                    opcode, local_mr, local_offset, remote_mr,
                    remote_offset, length, rkey, responder, psn)
            if outcome is LOST:
                return LOST
            if intra:
                span = (tracer.begin("nic_pipeline", "nic",
                                     node=self.node.name)
                        if tracer is not None else None)
                yield self.sim.timeout(
                    transport.nic_pipeline_delay(cluster, self.node))
                if tracer is not None:
                    tracer.end(span)
            return _OK

        yield from self._with_reliability(wr_id, opcode, length, signaled,
                                          attempt)

    def _apply_write(self, remote_mr: MemoryRegion, remote_offset: int,
                     data: bytes, rkey: int, psn: int) -> None:
        """Responder-side WRITE apply with retransmit dedup.

        A retransmit whose original data landed but whose ack was lost
        arrives with an already-seen PSN; it is counted, not re-applied.
        Fault-free runs skip the bookkeeping entirely.
        """
        if self.cluster.fault_injector is None:
            remote_mr.dma_write(remote_offset, data, rkey)
            return
        peer = self.peer
        if psn in peer._seen_psns:
            self.cluster.bump("rdma.duplicates")
            return
        remote_mr.dma_write(remote_offset, data, rkey)
        peer._seen_psns.add(psn)

    def _one_sided_network(self, opcode, local_mr, local_offset, remote_mr,
                           remote_offset, length, rkey, responder, psn):
        cluster = self.cluster
        if opcode is WorkOpcode.READ:
            # Request packet over, DMA read at the server, data back.
            got = yield from transport.network_transfer(cluster, self.node,
                                                        responder, 0)
            if got is LOST or responder.crashed:
                return LOST
            yield from transport.server_nic_stage(cluster, responder)
            got = yield from transport.server_dma_read(cluster, responder,
                                                       length)
            if got is LOST:
                return LOST
            data = remote_mr.dma_read(remote_offset, length, rkey)
            got = yield from transport.network_transfer(cluster, responder,
                                                        self.node, length)
            if got is LOST:
                return LOST
            local_mr.write_local(local_offset, data)
        else:
            # Data over, posted DMA write at the server, ack back.
            data = local_mr.read_local(local_offset, length)
            got = yield from transport.network_transfer(cluster, self.node,
                                                        responder, length)
            if got is LOST or responder.crashed:
                return LOST
            yield from transport.server_nic_stage(cluster, responder)
            got = yield from transport.server_dma_write(cluster, responder,
                                                        length)
            if got is LOST:
                return LOST
            self._apply_write(remote_mr, remote_offset, data, rkey, psn)
            # The ack can be lost too; the data stays applied and the
            # retransmit is deduplicated by PSN at the responder.
            got = yield from transport.network_transfer(cluster, responder,
                                                        self.node, 0)
            if got is LOST:
                return LOST
        return None

    def _one_sided_intra(self, opcode, local_mr, local_offset, remote_mr,
                         remote_offset, length, rkey, psn):
        """Path ③: host <-> SoC through the internal fabric only.

        On top of the data legs, the doorbell MMIO crosses the fabric to
        the NIC (posted: half a traversal latency-visible) and the CQE
        crosses back to the requester's memory.
        """
        cluster = self.cluster
        local_node = self.node
        remote_node = self.peer.node
        snic = cluster.server_of(local_node).snic
        crossing = snic.crossing_latency(local_node.endpoint)
        tracer = self.sim.tracer
        span = (tracer.begin("doorbell_mmio", "mmio",
                             endpoint=local_node.endpoint.value)
                if tracer is not None else None)
        yield self.sim.timeout(snic.doorbell_latency(local_node.endpoint))
        if tracer is not None:
            tracer.end(span)
        if remote_node.crashed:
            return LOST
        if opcode is WorkOpcode.READ:
            data = remote_mr.dma_read(remote_offset, length, rkey)
            got = yield from transport.intra_machine_transfer(
                cluster, remote_node, local_node, length)
            if got is LOST:
                return LOST
            local_mr.write_local(local_offset, data)
        else:
            data = local_mr.read_local(local_offset, length)
            got = yield from transport.intra_machine_transfer(
                cluster, local_node, remote_node, length)
            if got is LOST:
                return LOST
            self._apply_write(remote_mr, remote_offset, data, rkey, psn)
        span = (tracer.begin("cqe_delivery", "mmio",
                             endpoint=local_node.endpoint.value)
                if tracer is not None else None)
        yield self.sim.timeout(crossing)  # CQE back to requester memory
        if tracer is not None:
            tracer.end(span)
        return None

    def _run_send(self, wr_id: int, data: bytes, target: "QueuePair",
                  signaled: bool, posting_delay: Optional[float]):
        cluster = self.cluster
        tracer = self.sim.tracer
        span = (tracer.begin("post", "cpu", node=self.node.name)
                if tracer is not None else None)
        yield self.sim.timeout(self._posting(posting_delay))
        if tracer is not None:
            tracer.end(span)
        responder = target.node

        def attempt(psn):
            tracer = self.sim.tracer
            span = (tracer.begin("nic_pipeline", "nic", node=self.node.name)
                    if tracer is not None else None)
            yield self.sim.timeout(
                transport.nic_pipeline_delay(cluster, self.node))
            if tracer is not None:
                tracer.end(span)
            if self.node.same_server_as(responder):
                got = yield from transport.intra_machine_transfer(
                    cluster, self.node, responder, len(data))
                if got is LOST or responder.crashed:
                    return LOST
            else:
                got = yield from transport.network_transfer(
                    cluster, self.node, responder, len(data))
                if got is LOST or responder.crashed:
                    return LOST
                if responder.on_server:
                    yield from transport.server_nic_stage(cluster, responder)
                    got = yield from transport.server_dma_write(
                        cluster, responder, len(data))
                    if got is LOST:
                        return LOST
            if not target._deliver(data, self.qpn):
                if self.qp_type is QPType.RC:
                    return _RNR
                # UD: receiver not ready means the datagram is dropped.
                target.dropped_receives += 1
            return _OK

        if self.qp_type is QPType.RC:
            yield from self._with_reliability(wr_id, WorkOpcode.SEND,
                                              len(data), signaled, attempt)
        else:
            # UD is fire-and-forget: a lost datagram is dropped silently
            # and the sender still completes successfully.
            yield from attempt(0)
            self._complete(wr_id, WorkOpcode.SEND, len(data), signaled)

    def _deliver(self, data: bytes, src_qpn: int) -> bool:
        """Land an inbound SEND in the next posted receive buffer.

        Returns False when no buffer is posted — an RC sender treats
        that as an RNR NAK; a UD sender just drops the datagram.
        """
        queue = self._recv_queue if self.srq is None else self.srq.queue
        if not queue:
            return False
        wr_id, mr, offset, capacity = queue.popleft()
        if len(data) > capacity:
            self.dropped_receives += 1
            self.recv_cq.push(Completion(
                wr_id=wr_id, opcode=WorkOpcode.RECV,
                status=CompletionStatus.LOCAL_PROTECTION_ERROR,
                byte_len=0, timestamp=self.sim.now))
            return True
        mr.write_local(offset, data)
        self.inbound_sources.append(src_qpn)
        self.recv_cq.push(Completion(
            wr_id=wr_id, opcode=WorkOpcode.RECV,
            status=CompletionStatus.SUCCESS, byte_len=len(data),
            timestamp=self.sim.now))
        return True
