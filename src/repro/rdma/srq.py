"""Shared receive queues (SRQ).

A pool of receive buffers shared by many QPs — the standard way RDMA
servers avoid per-connection receive provisioning.  QPs created with
``srq=...`` consume buffers from the shared pool in arrival order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple, TYPE_CHECKING

from repro.rdma.mr import AccessError, MemoryRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.cluster import Node


class SharedReceiveQueue:
    """A node-local pool of posted receive buffers."""

    def __init__(self, node: "Node", max_wr: int = 4096):
        if max_wr < 1:
            raise ValueError(f"SRQ depth must be >= 1: {max_wr}")
        self.node = node
        self.max_wr = max_wr
        self.queue: Deque[Tuple[int, MemoryRegion, int, int]] = deque()

    def __len__(self) -> int:
        return len(self.queue)

    def post_recv(self, wr_id: int, mr: MemoryRegion, offset: int = 0,
                  length: Optional[int] = None) -> None:
        """Add one receive buffer to the shared pool."""
        if mr.node is not self.node:
            raise AccessError("SRQ buffer belongs to another node")
        length = mr.length - offset if length is None else length
        if length <= 0 or offset < 0 or offset + length > mr.length:
            raise ValueError(f"bad SRQ buffer [{offset}, {offset + length})")
        if len(self.queue) >= self.max_wr:
            raise OverflowError(f"SRQ full ({self.max_wr})")
        self.queue.append((wr_id, mr, offset, length))
