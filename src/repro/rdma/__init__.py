"""A verbs-style RDMA stack over the simulated cluster.

API shape follows libibverbs: protection domains, registered memory
regions with rkeys, queue pairs (RC for one-sided READ/WRITE, UD for
two-sided SEND/RECV), completion queues, and doorbell batching.  Verbs
execute as discrete-event processes over the cluster's channels and the
SmartNIC's internal PCIe fabric, moving real bytes between real buffers.

Quick tour::

    cluster = SimCluster(paper_testbed())
    ctx = RdmaContext(cluster)
    server_mr = ctx.reg_mr("soc", 1 << 20)
    qp = ctx.connect_rc("client0", "soc")
    done = qp.post_read(wr_id=1, remote_mr=server_mr, remote_offset=0,
                        length=64)
    cluster.sim.run()
    completion = qp.send_cq.poll()[0]
"""

from repro.rdma.opcodes import WorkOpcode, CompletionStatus
from repro.rdma.mr import MemoryRegion, ProtectionDomain, AccessError
from repro.rdma.cq import CompletionQueue, Completion
from repro.rdma.qp import QueuePair, QPType, QPState, QPError
from repro.rdma.srq import SharedReceiveQueue
from repro.rdma.doorbell import DoorbellBatcher
from repro.rdma.verbs import RdmaContext

__all__ = [
    "WorkOpcode",
    "CompletionStatus",
    "MemoryRegion",
    "ProtectionDomain",
    "AccessError",
    "CompletionQueue",
    "Completion",
    "QueuePair",
    "QPType",
    "QPState",
    "QPError",
    "SharedReceiveQueue",
    "DoorbellBatcher",
    "RdmaContext",
]
