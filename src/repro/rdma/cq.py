"""Completion queues."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, TYPE_CHECKING

from repro.rdma.opcodes import CompletionStatus, WorkOpcode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator
    from repro.sim.events import Event


@dataclass(frozen=True)
class Completion:
    """One completion entry (ibv_wc)."""

    wr_id: int
    opcode: WorkOpcode
    status: CompletionStatus
    byte_len: int
    timestamp: float  # simulated ns at which the CQE was written

    @property
    def ok(self) -> bool:
        return self.status is CompletionStatus.SUCCESS


class CompletionQueue:
    """A polled completion queue with optional blocking waits."""

    def __init__(self, sim: "Simulator", depth: int = 4096):
        if depth < 1:
            raise ValueError(f"CQ depth must be >= 1: {depth}")
        self.sim = sim
        self.depth = depth
        self._entries: Deque[Completion] = deque()
        self._waiters: Deque["Event"] = deque()
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, completion: Completion) -> None:
        """NIC-side: append a CQE (drops and counts on overflow)."""
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("cqe", "cq", wr_id=completion.wr_id,
                           status=completion.status.value,
                           byte_len=completion.byte_len)
        if len(self._entries) >= self.depth:
            self.overflows += 1
            return
        self._entries.append(completion)
        while self._waiters and self._entries:
            self._waiters.popleft().succeed(self._entries.popleft())

    def poll(self, max_entries: int = 16) -> List[Completion]:
        """Non-blocking poll of up to ``max_entries`` CQEs."""
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        polled: List[Completion] = []
        while self._entries and len(polled) < max_entries:
            polled.append(self._entries.popleft())
        return polled

    def wait(self) -> "Event":
        """An event that fires with the next CQE (for processes)."""
        from repro.sim.events import Event

        waiter = Event(self.sim)
        if self._entries:
            waiter.succeed(self._entries.popleft())
        else:
            self._waiters.append(waiter)
        return waiter

    def cancel(self, waiter: "Event") -> None:
        """Abandon an un-fired :meth:`wait` (e.g. a client-side timeout).

        A no-op if the waiter already fired or was never queued.
        """
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass
