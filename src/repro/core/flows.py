"""Concurrent communication-path analysis (Fig 5 and §4).

Answers the paper's combination questions: which direction pairings
multiplex on the full-duplex links (READ+WRITE reaching ~2x a single
direction on paths ① and ②, but not on ③), how concurrently using the
host and SoC endpoints unlocks reserved NIC cores, and how much path-③
bandwidth fits beside saturated inter-machine traffic (the
``B③ <= P - N`` rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, SolverResult, ThroughputSolver
from repro.net.topology import Testbed
from repro.units import KB, gbps, to_gbps


@dataclass(frozen=True)
class FlowPattern:
    """A named combination of concurrent flows."""

    name: str
    flows: Sequence[Flow]

    def __post_init__(self):
        if not self.flows:
            raise ValueError("pattern needs at least one flow")


class ConcurrencyAnalyzer:
    """Runs flow combinations through the throughput solver.

    ``engine`` selects the solver backend for batched combination
    queries (see :meth:`combine_all`): ``"auto"`` (the default) solves
    every named combination as one numpy demand tensor when numpy is
    installed — concurrent-flow proportional scaling happens inside the
    same tensor — and falls back to the scalar per-combination solver
    otherwise.
    """

    def __init__(self, testbed: Testbed,
                 solver: Optional[ThroughputSolver] = None,
                 engine: str = "auto"):
        self.testbed = testbed
        self.solver = solver or ThroughputSolver()
        self.engine = engine

    def combine(self, flows: Sequence[Flow]) -> SolverResult:
        """Solve an arbitrary combination of flows."""
        return self.solver.solve(Scenario(self.testbed, flows))

    def combine_all(self, named: Dict[str, Sequence[Flow]]
                    ) -> Dict[str, SolverResult]:
        """Solve several named combinations, batched when possible.

        With the vector engine all combinations share one demand
        tensor; with the scalar engine each is solved in turn.  Both
        give the same numbers — the batch is purely a wall-time win
        for wide comparison grids.
        """
        results = Scenario.solve_batch(self.testbed, list(named.values()),
                                       engine=self.engine)
        return dict(zip(named.keys(), results))

    # -- Fig 5: direction combinations per path ------------------------------------

    def direction_combinations(self, path: CommPath, payload: int = 4 * KB,
                               requesters: int = 12) -> Dict[str, SolverResult]:
        """The Fig 5(b) bars for one path: READ, WRITE, READ+WRITE.

        Each combination dedicates ``requesters`` machines (or threads,
        for path ③) per flow, mirroring the paper's two-requester setup.
        """
        def flow(op: Opcode) -> Flow:
            return Flow(path=path, op=op, payload=payload,
                        requesters=requesters)

        return self.combine_all({
            "READ": [flow(Opcode.READ)],
            "WRITE": [flow(Opcode.WRITE)],
            "READ+WRITE": [flow(Opcode.READ), flow(Opcode.WRITE)],
        })

    # -- §4: concurrent endpoints (①+②) --------------------------------------------

    def concurrent_endpoints(self, op: Opcode, payload: int = 0,
                             requesters_each: int = 6) -> Dict[str, SolverResult]:
        """Path ① and path ② alone versus concurrently (the Fig 11 setup)."""
        flow1 = Flow(path=CommPath.SNIC1, op=op,
                     payload=payload, requesters=requesters_each)
        flow2 = Flow(path=CommPath.SNIC2, op=op,
                     payload=payload, requesters=requesters_each)
        return self.combine_all({
            "SNIC1 alone": [flow1],
            "SNIC2 alone": [flow2],
            "SNIC1+2": [flow1, flow2],
        })

    def concurrent_endpoint_budgets(self, op: Opcode, payload: int = 0,
                                    requesters_each: int = 6
                                    ) -> Dict[CommPath, float]:
        """Per-path Mrps budgets when ① and ② run concurrently.

        This is the Fig 11 partition: host- and SoC-terminated traffic
        share one NIC-core pool, so the concurrent aggregate (~210 Mrps
        on the paper's testbed) sits a few percent above the best single
        path — far below the 352 Mrps sum of the solo peaks.  A planner
        that books each path at its solo peak double-counts the shared
        cores; these budgets are what each path actually gets.
        """
        flow1 = Flow(path=CommPath.SNIC1, op=op, payload=payload,
                     requesters=requesters_each)
        flow2 = Flow(path=CommPath.SNIC2, op=op, payload=payload,
                     requesters=requesters_each)
        result = self.combine([flow1, flow2])
        return {CommPath.SNIC1: result.mrps_of(0),
                CommPath.SNIC2: result.mrps_of(1)}

    # -- §4: inter- + intra-machine (①+③) --------------------------------------------

    def path3_interference(self, op: Opcode, payload: int = 64,
                           client_machines: int = 5,
                           host_threads: int = 24) -> Dict[str, SolverResult]:
        """Path ① alone versus path ① with concurrent H2S traffic."""
        # The NIC arbitrates in favour of inter-machine traffic; the
        # intra-machine flow grows at a fraction of the rate (calibrated
        # against the 7-15 % READ interference of S4).
        inter = Flow(path=CommPath.SNIC1, op=op, payload=payload,
                     requesters=client_machines)
        intra = Flow(path=CommPath.SNIC3_H2S, op=op, payload=payload,
                     requesters=host_threads, weight=0.2)
        return self.combine_all({
            "SNIC1 alone": [inter],
            "SNIC1 + SNIC3(H2S)": [inter, intra],
        })

    # -- §4: the bandwidth partitioning rule -----------------------------------------

    def path3_budget_gbps(self) -> float:
        """The nominal spare budget for path ③: ``P - N`` Gbps (§4).

        ``P`` is the internal PCIe per-direction limit, ``N`` the network
        limit; on the paper's testbed 256 - 200 = 56 Gbps.
        """
        spec = self.testbed.snic.spec
        pcie = to_gbps(spec.pcie_bandwidth)
        network = to_gbps(spec.cores.network_bandwidth)
        return max(0.0, pcie - network)

    def aggregate_with_budgeted_path3(self, path3_gbps: Optional[float] = None,
                                      payload: int = 4 * KB) -> SolverResult:
        """§4's 456 Gbps experiment: ① READ + ① WRITE saturating the NIC
        in both directions, plus path ③ admission-limited to its budget.
        """
        if path3_gbps is None:
            path3_gbps = self.path3_budget_gbps()
        if path3_gbps < 0:
            raise ValueError(f"negative budget: {path3_gbps}")
        flows: List[Flow] = [
            Flow(path=CommPath.SNIC1, op=Opcode.READ, payload=payload,
                 requesters=10),
            Flow(path=CommPath.SNIC1, op=Opcode.WRITE, payload=payload,
                 requesters=10),
        ]
        if path3_gbps > 0:
            cap = gbps(path3_gbps) / payload  # requests/ns
            flows.append(Flow(path=CommPath.SNIC3_H2S, op=Opcode.WRITE,
                              payload=payload, requesters=24,
                              rate_cap=cap))
        return self.combine(flows)
