"""Content-keyed result caching for the solver and latency models.

Every figure sweep re-solves the operational-law model over a dense
(payload x path x verb x requesters) grid, and many points repeat across
benchmarks, CLI invocations and pytest-benchmark rounds.  This module
keys results by *content* — a recursive fingerprint of the testbed's
frozen spec dataclasses plus the flow tuple — so a repeated point is a
dictionary lookup regardless of which objects carry it.

Layers:

* :func:`fingerprint` — a hashable tuple describing any spec object
  (frozen dataclasses, enums, NIC wrappers) by value;
* :class:`ScenarioKey` — (testbed fingerprint, flow fingerprints), the
  solver cache key, with a stable hex digest for on-disk filenames;
* :class:`LRUCache` — bounded in-memory memo with hit/miss counters;
* :class:`SolverCache` — an :class:`LRUCache` with an optional on-disk
  JSON layer so repeated points are free across *processes* too.

Counters from every registered cache are aggregated by
:func:`counter_snapshot`, which :mod:`repro.telemetry` surfaces next to
the simulated hardware counters.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import weakref
from collections import OrderedDict
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Every cache created with ``register=True`` reports into
#: :func:`counter_snapshot` under its ``name``.
_REGISTRY: "List[LRUCache]" = []


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _field_names(cls: type) -> Tuple[str, ...]:
    """Dataclass field names, resolved once per type (hot path)."""
    return tuple(f.name for f in dataclasses.fields(cls))


def fingerprint(obj: Any) -> Any:
    """A hashable, content-based description of a spec object.

    Frozen dataclasses are walked field by field, enums collapse to
    their value, and NIC wrapper objects (``SmartNIC``/``RNIC``) are
    described by their ``spec`` plus ``host_memory`` — the only state
    the analytic models read.  Unknown object types raise ``TypeError``
    rather than silently keying on identity.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, enum.Enum):
        return (type(obj).__name__, obj.value)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return (cls.__name__,) + tuple(
            fingerprint(getattr(obj, name)) for name in _field_names(cls))
    if isinstance(obj, (list, tuple)):
        return tuple(fingerprint(item) for item in obj)
    if isinstance(obj, dict):
        return tuple(sorted((k, fingerprint(v)) for k, v in obj.items()))
    # NIC wrappers: analytic behaviour is fully determined by the spec
    # sheet and the host memory subsystem they were built with.
    spec = getattr(obj, "spec", None)
    if spec is not None:
        return (type(obj).__name__, fingerprint(spec),
                fingerprint(getattr(obj, "host_memory", None)))
    raise TypeError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")


class _Interned:
    """A fingerprint wrapper whose hash is computed once.

    Testbed fingerprints are deep tuples with hundreds of atoms;
    hashing one costs microseconds and every cache get re-hashes the
    key.  Wrapping the tuple caches the hash while keeping equality
    and ``repr`` (the disk-digest input) identical to the raw value.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: Any):
        self.value = value
        self._hash = hash(value)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if self is other:
            return True
        if isinstance(other, _Interned):
            return self.value == other.value
        return self.value == other

    def __repr__(self) -> str:
        return repr(self.value)

    def __getstate__(self):
        # Never ship the cached hash across processes: string hashes
        # are salted per interpreter (PYTHONHASHSEED).
        return self.value

    def __setstate__(self, value) -> None:
        self.value = value
        self._hash = hash(value)


_TESTBED_FPS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def testbed_fingerprint(testbed: Any) -> Any:
    """Fingerprint of a testbed, memoized (with its hash) per object."""
    try:
        return _TESTBED_FPS[testbed]
    except KeyError:
        fp = _Interned(fingerprint(testbed))
        _TESTBED_FPS[testbed] = fp
        return fp
    except TypeError:  # unhashable / non-weakref-able: compute directly
        return _Interned(fingerprint(testbed))


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


#: Flow objects are frozen dataclasses (hashable by content), so their
#: fingerprints memoize directly — wide sweeps reuse a handful of flow
#: shapes thousands of times.  Bounded by periodic reset, not LRU: the
#: working set per sweep is tiny and eviction bookkeeping would cost
#: more than it saves.
_FLOW_FPS: Dict[Any, Any] = {}
_FLOW_FPS_LIMIT = 1 << 16


def _flow_fingerprint(flow: Any) -> Any:
    try:
        fp = _FLOW_FPS.get(flow)
    except TypeError:  # unhashable flow-like object
        return fingerprint(flow)
    if fp is None:
        fp = fingerprint(flow)
        if len(_FLOW_FPS) >= _FLOW_FPS_LIMIT:
            _FLOW_FPS.clear()
        _FLOW_FPS[flow] = fp
    return fp


@dataclasses.dataclass(frozen=True, eq=True)
class ScenarioKey:
    """Cache key for one solver invocation: testbed content + flows."""

    testbed: Any
    flows: Tuple[Any, ...]

    def __hash__(self) -> int:
        # Cache the deep-tuple hash: every cache get/put rehashes the
        # key, and CPython does not memoize tuple hashes.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.testbed, self.flows))
            object.__setattr__(self, "_hash", h)
        return h

    @classmethod
    def of(cls, testbed: Any, flows) -> "ScenarioKey":
        return cls(testbed=testbed_fingerprint(testbed),
                   flows=tuple(_flow_fingerprint(flow) for flow in flows))

    @property
    def digest(self) -> str:
        """A stable hex digest, suitable as an on-disk filename."""
        raw = repr((self.testbed, self.flows)).encode()
        return hashlib.sha256(raw).hexdigest()


# ---------------------------------------------------------------------------
# In-memory LRU
# ---------------------------------------------------------------------------


class LRUCache:
    """A bounded memo dict with hit/miss accounting."""

    def __init__(self, maxsize: int = 4096, name: str = "cache",
                 register: bool = True):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1: {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict" = OrderedDict()
        if register:
            _REGISTRY.append(self)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        """The cached value, or ``None`` (which is never a valid value)."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        if value is None:
            raise ValueError("cannot cache None")
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def absorb(self, hits: int = 0, misses: int = 0,
               disk_hits: int = 0) -> None:
        """Fold counter deltas from another process into this cache.

        Sweep worker processes each hold their own cache instances;
        the parent adds their per-chunk hit/miss deltas here so
        ``--cache-stats`` reflects work done anywhere.  ``disk_hits``
        is accepted (and ignored) for cache types without a disk layer.
        """
        self.hits += hits
        self.misses += misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, float]:
        return {f"{self.name}.hits": self.hits,
                f"{self.name}.misses": self.misses,
                f"{self.name}.entries": len(self._data)}


def memoized(cache: LRUCache, key, compute: Callable[[], Any]):
    """``cache[key]`` or ``compute()`` stored under ``key``."""
    value = cache.get(key)
    if value is None:
        value = compute()
        cache.put(key, value)
    return value


# ---------------------------------------------------------------------------
# Solver cache: LRU + optional disk layer
# ---------------------------------------------------------------------------


class SolverCache(LRUCache):
    """Memoized solver results with an optional on-disk JSON layer.

    ``encode``/``decode`` translate a result to/from a JSON-compatible
    object; they are injected by :mod:`repro.core.throughput` to keep
    this module free of model imports.  JSON float round-trips are exact
    (shortest-repr), so disk hits are bit-identical to cold solves.
    """

    def __init__(self, maxsize: int = 8192, name: str = "solver",
                 disk_dir: Optional[str] = None,
                 encode: Optional[Callable[[Any], Any]] = None,
                 decode: Optional[Callable[[Any], Any]] = None,
                 register: bool = True):
        super().__init__(maxsize=maxsize, name=name, register=register)
        self.disk_dir = disk_dir
        self.encode = encode
        self.decode = decode
        self.disk_hits = 0

    def _disk_path(self, key: ScenarioKey) -> str:
        return os.path.join(self.disk_dir, f"{key.digest}.json")

    def get(self, key):
        value = super().get(key)
        if value is not None:
            return value
        if self.disk_dir and self.decode is not None:
            try:
                with open(self._disk_path(key)) as handle:
                    value = self.decode(json.load(handle))
            except (OSError, ValueError, KeyError):
                return None
            self.disk_hits += 1
            self.misses -= 1  # count the disk hit as a hit, not a miss
            self.hits += 1
            super().put(key, value)
            return value
        return None

    def put(self, key, value) -> None:
        super().put(key, value)
        if self.disk_dir and self.encode is not None:
            try:
                os.makedirs(self.disk_dir, exist_ok=True)
                path = self._disk_path(key)
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w") as handle:
                    json.dump(self.encode(value), handle)
                os.replace(tmp, path)
            except OSError:
                pass  # disk layer is best-effort

    def absorb(self, hits: int = 0, misses: int = 0,
               disk_hits: int = 0) -> None:
        super().absorb(hits, misses)
        self.disk_hits += disk_hits

    def counters(self) -> Dict[str, float]:
        out = super().counters()
        out[f"{self.name}.disk_hits"] = self.disk_hits
        return out


# ---------------------------------------------------------------------------
# Telemetry surface
# ---------------------------------------------------------------------------


def counter_snapshot() -> Dict[str, float]:
    """Hit/miss/entry counters of every registered cache."""
    counters: Dict[str, float] = {}
    for cache in _REGISTRY:
        counters.update(cache.counters())
    return counters


def registered_caches() -> Tuple[LRUCache, ...]:
    return tuple(_REGISTRY)


def clear_all() -> None:
    """Empty every registered cache (used by tests and benchmarks)."""
    for cache in _REGISTRY:
        cache.clear()
