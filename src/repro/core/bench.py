"""Deprecated alias of :mod:`repro.core.harness`.

The measurement harnesses moved to ``repro.core.harness`` when the
``repro.api`` facade was introduced; this shim keeps older imports
working.  Importing it emits a :class:`DeprecationWarning` once per
process (module imports are cached).
"""

from __future__ import annotations

import warnings

from repro.core.harness import (
    LatencyBench,
    Measurement,
    Sweep,
    ThroughputBench,
)

warnings.warn(
    "repro.core.bench is deprecated; import from repro.core.harness "
    "(or drive the benches through repro.api.Session)",
    DeprecationWarning, stacklevel=2)

__all__ = ["Measurement", "Sweep", "LatencyBench", "ThroughputBench"]
