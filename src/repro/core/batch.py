"""Vectorized batch solver: numpy demand tensors + array water-filling.

Every figure artifact is a *sweep* over the operational-law solver, and
the methodology is matrix arithmetic over per-resource demand vectors —
exactly the shape numpy was built for.  This module solves an entire
sweep grid at once:

1. **Demand tensor assembly.**  Points are grouped by *shape* — (path,
   opcode, flow slot, duplex flag, admission-cap presence) — and each
   group's demand columns are computed as elementwise array expressions
   over the group's payload / requester / range / doorbell arrays,
   mirroring the scalar builders in :mod:`repro.core.throughput`
   term for term.  A :class:`ResourceRegistry` assigns every resource
   key a stable column index, replacing per-point string-keyed dicts
   with one dense ``(points x flows x resources)`` tensor.

2. **Array water-filling.**  Max-min fair-share growth runs across all
   points simultaneously: per-point saturating resources fall out of an
   ``argmin`` over headroom/load rows, flows touching them freeze via
   boolean masks, and the loop ends when every point has frozen (at
   most ``max flows per point`` iterations, regardless of grid size).

The scalar solver remains the reference implementation and the
automatic fallback: numpy is an *optional* dependency (the ``[fast]``
extra), imported lazily and never required.  Where the scalar solver
breaks delta ties by hash order and the vector engine by column order,
solved rates still agree (tied resources saturate together); everything
else is the same IEEE-754 arithmetic, elementwise.  The equivalence is
enforced to 1e-9 relative by hypothesis tests in
``tests/core/test_batch.py``.
"""

from __future__ import annotations

import operator
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.paths import CommPath, Opcode
from repro.core.throughput import _CTL_WIRE, Flow, Scenario, SolverResult
from repro.hw.pcie.tlp import TLP_HEADER_BYTES as HDR
from repro.net.topology import Testbed
from repro.nic.core import Endpoint

# ---------------------------------------------------------------------------
# Optional numpy (the [fast] extra) — imported lazily, never required.
# ---------------------------------------------------------------------------

_NUMPY: Any = None
_NUMPY_CHECKED = False


def _load_numpy():
    """The numpy module, or ``None`` when it is not installed."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:
            _NUMPY = None
        _NUMPY_CHECKED = True
    return _NUMPY


def _reset_numpy_cache() -> None:
    """Forget the cached import probe (test hook for the no-numpy path)."""
    global _NUMPY, _NUMPY_CHECKED
    _NUMPY = None
    _NUMPY_CHECKED = False


def numpy_available() -> bool:
    """True when the vector engine can run in this interpreter."""
    return _load_numpy() is not None


def require_numpy():
    np = _load_numpy()
    if np is None:
        raise ValueError(
            "the vector engine needs numpy (pip install 'repro[fast]'); "
            "use engine='scalar' or engine='auto' to fall back")
    return np


# ---------------------------------------------------------------------------
# Engine telemetry
# ---------------------------------------------------------------------------


class EngineStats:
    """Per-engine point counts and solve wall-time, for telemetry."""

    def __init__(self):
        self.points: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}
        self.batches: Dict[str, int] = {}

    def record(self, engine: str, points: int, seconds: float) -> None:
        self.points[engine] = self.points.get(engine, 0) + points
        self.seconds[engine] = self.seconds.get(engine, 0.0) + seconds
        self.batches[engine] = self.batches.get(engine, 0) + 1

    def clear(self) -> None:
        self.points.clear()
        self.seconds.clear()
        self.batches.clear()

    def counters(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for engine in sorted(self.points):
            out[f"engine.{engine}.points"] = self.points[engine]
            out[f"engine.{engine}.batches"] = self.batches[engine]
            out[f"engine.{engine}.solve_s"] = round(self.seconds[engine], 6)
        return out


#: Shared per-process engine accounting, surfaced by repro.telemetry.
ENGINE_STATS = EngineStats()


# ---------------------------------------------------------------------------
# Resource registry and the demand tensor
# ---------------------------------------------------------------------------


class ResourceRegistry:
    """Stable resource-key -> column-index mapping for one tensor.

    Indices are assigned in first-seen order, so the same grid always
    produces the same layout; unseen keys simply extend the registry.
    This is the substrate later what-if grids reuse: a column index is
    meaningful across every point of a batch.
    """

    def __init__(self):
        self.index: Dict[str, int] = {}
        self.names: List[str] = []

    def __len__(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        idx = self.index.get(name)
        if idx is None:
            idx = len(self.names)
            self.index[name] = idx
            self.names.append(name)
        return idx


@dataclass
class DemandTensor:
    """A whole sweep grid as dense arrays.

    ``demand[p, f, r]`` is flow ``f``-of-point-``p``'s service demand on
    resource ``r`` (ns per request); absent resources are 0, which the
    water-filling treats identically to a missing dict key.  ``valid``
    masks real flow slots (points may have fewer flows than the widest
    point in the batch).
    """

    demand: Any                  # float64 (points, flows, resources)
    weights: Any                 # float64 (points, flows)
    valid: Any                   # bool    (points, flows)
    registry: ResourceRegistry
    scenarios: List[Scenario] = field(default_factory=list)

    @property
    def resources(self) -> List[str]:
        return self.registry.names


# ---------------------------------------------------------------------------
# Vectorized demand construction
# ---------------------------------------------------------------------------

#: Group signature: everything that selects a code path (and therefore a
#: fixed resource-key set) in the scalar builders.
_GroupSig = Tuple[CommPath, Opcode, int, bool, bool]


class _Columns(dict):
    """Demand columns for one group: resource key -> float64 array."""

    def __init__(self, np, size: int):
        super().__init__()
        self._np = np
        self._size = size

    def add(self, key: str, value) -> None:
        np = self._np
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim == 0:
            arr = np.full(self._size, float(arr))
        if key in self:
            self[key] = self[key] + arr
        else:
            self[key] = arr


class _VecCounts:
    """Array-valued :class:`~repro.core.packets.PathPacketCounts`."""

    __slots__ = ("pcie1_to_nic", "pcie1_to_switch", "pcie0_to_host",
                 "pcie0_to_switch", "pcie1_to_nic_bytes",
                 "pcie1_to_switch_bytes", "pcie0_to_host_bytes",
                 "pcie0_to_switch_bytes")

    def __init__(self, z, **fields):
        for name in self.__slots__:
            setattr(self, name, fields.get(name, z))

    def __add__(self, other: "_VecCounts") -> "_VecCounts":
        out = _VecCounts.__new__(_VecCounts)
        for name in self.__slots__:
            setattr(out, name, getattr(self, name) + getattr(other, name))
        return out

    @property
    def pcie1_total(self):
        return self.pcie1_to_nic + self.pcie1_to_switch

    @property
    def pcie0_total(self):
        return self.pcie0_to_host + self.pcie0_to_switch


class VectorDemandBuilder:
    """Array mirror of ``Scenario``'s per-flow demand builders.

    Every expression matches the scalar code in
    :mod:`repro.core.throughput` term for term (same operations, same
    association), evaluated elementwise over a group's points, so the
    resulting columns are numerically interchangeable with the scalar
    dicts.  Demand semantics are documented there; this class only
    changes the evaluation shape.
    """

    def __init__(self, testbed: Testbed):
        self.testbed = testbed
        self.np = require_numpy()

    # .. shared helpers .......................................................

    def _net_packets(self, payload, cores_spec):
        np = self.np
        return np.maximum(1.0, np.ceil(payload / cores_spec.network_mtu))

    def _net_wire(self, payload, cores_spec):
        return payload + self._net_packets(payload, cores_spec) \
            * cores_spec.net_header_bytes

    def _post_cost(self, doorbell, batch):
        np = self.np
        return np.where(batch <= 1, doorbell.per_request,
                        doorbell.batch_fixed / batch + doorbell.per_wqe)

    def _client_side(self, op: Opcode, idx: int, cols: _Columns, nic_cores,
                     prefix: str, duplex: bool, requesters, batch,
                     payload) -> None:
        np = self.np
        testbed = self.testbed
        machines = np.minimum(requesters, float(testbed.n_clients))
        cost = self._post_cost(testbed.client_doorbell, batch)
        issue = machines * testbed.client_cpu.total_cores / cost
        cols.add(f"issue:clients:{idx}", 1.0 / issue)

        wire = self._net_wire(payload, nic_cores)
        if op is Opcode.READ:
            c2s, s2c = float(_CTL_WIRE), wire
        elif op is Opcode.WRITE:
            c2s, s2c = wire, float(_CTL_WIRE)
        else:  # SEND echo: payload out, small reply back
            c2s, s2c = wire, float(2 * _CTL_WIRE)
        net_cap = nic_cores.network_bandwidth * nic_cores.link_efficiency
        if duplex:
            net_cap *= nic_cores.duplex_derate
        cols.add(f"{prefix}net:c2s", c2s / net_cap)
        cols.add(f"{prefix}net:s2c", s2c / net_cap)

        per_client = min(testbed.client_nic.cores.network_bandwidth,
                         testbed.fabric.port_bandwidth)
        client_cap = machines * per_client
        cols.add(f"clientnet:{idx}:c2s", c2s / client_cap)
        cols.add(f"clientnet:{idx}:s2c", s2c / client_cap)

    def _verb_demand(self, op: Opcode, cols: _Columns,
                     endpoint: Optional[Endpoint], prefix: str, payload,
                     ops_factor: float = 1.0) -> None:
        spec = (self.testbed.rnic.spec.cores if prefix == "r"
                else self.testbed.snic.spec.cores)
        ops = self._net_packets(payload, spec) * ops_factor
        if op is Opcode.SEND:
            ops = ops * 2
        pool = "read" if op is Opcode.READ else "write"
        if prefix == "r":
            rate = (spec.verb_rate_host_only if pool == "read"
                    else spec.verb_rate_write_host)
            cols.add(f"rverbs:{pool}", ops / rate)
            return
        if pool == "read":
            rates = {"host": spec.verb_rate_host_only,
                     "soc": spec.verb_rate_soc_only,
                     "total": spec.verb_rate_concurrent}
        else:
            rates = {"host": spec.verb_rate_write_host,
                     "soc": spec.verb_rate_write_soc,
                     "total": spec.verb_rate_write_concurrent}
        if endpoint is not None:
            key = "host" if endpoint is Endpoint.HOST else "soc"
            cols.add(f"verbs:{pool}:{key}", ops / rates[key])
        cols.add(f"verbs:{pool}:total", ops / rates["total"])

    # .. packet counts (array mirror of PacketCountModel) .....................

    def _leg(self, endpoint: Endpoint, mem_op: str, nbytes) -> _VecCounts:
        np = self.np
        spec = self.testbed.snic.spec
        z = np.zeros_like(nbytes)
        read_chunk = spec.cores.max_read_request
        if endpoint is Endpoint.HOST:
            if mem_op == "read":
                reqs = np.ceil(nbytes / read_chunk)
                cpls = np.ceil(nbytes / spec.host_mps)
                cpl_bytes = nbytes + cpls * HDR
                return _VecCounts(
                    z, pcie1_to_nic=cpls, pcie1_to_switch=reqs,
                    pcie0_to_host=reqs, pcie0_to_switch=cpls,
                    pcie1_to_nic_bytes=cpl_bytes,
                    pcie1_to_switch_bytes=reqs * HDR,
                    pcie0_to_host_bytes=reqs * HDR,
                    pcie0_to_switch_bytes=cpl_bytes)
            tlps = np.ceil(nbytes / spec.host_mps)
            wire = nbytes + tlps * HDR
            return _VecCounts(z, pcie1_to_switch=tlps, pcie0_to_host=tlps,
                              pcie1_to_switch_bytes=wire,
                              pcie0_to_host_bytes=wire)
        if mem_op == "read":
            reqs = np.ceil(nbytes / read_chunk)
            cpls = np.ceil(nbytes / spec.soc_mps)
            return _VecCounts(z, pcie1_to_nic=cpls, pcie1_to_switch=reqs,
                              pcie1_to_nic_bytes=nbytes + cpls * HDR,
                              pcie1_to_switch_bytes=reqs * HDR)
        tlps = np.ceil(nbytes / spec.soc_mps)
        return _VecCounts(z, pcie1_to_switch=tlps,
                          pcie1_to_switch_bytes=nbytes + tlps * HDR)

    def _counts(self, path: CommPath, op: Opcode, nbytes) -> _VecCounts:
        """Per-request TLPs/wire bytes, elementwise over ``nbytes``.

        Matches ``PacketCountModel._compute_counts`` with
        ``include_requests=True``; zero payloads yield all-zero rows
        without a special case (every term is ``ceil(0/x) = 0``).
        """
        np = self.np
        spec = self.testbed.snic.spec
        z = np.zeros_like(nbytes)
        mem_op = op.memory_op
        if path is CommPath.RNIC1:
            if mem_op == "read":
                reqs = np.ceil(nbytes / spec.cores.max_read_request)
                cpls = np.ceil(nbytes / spec.host_mps)
                return _VecCounts(z, pcie0_to_host=reqs, pcie0_to_switch=cpls,
                                  pcie0_to_host_bytes=reqs * HDR,
                                  pcie0_to_switch_bytes=nbytes + cpls * HDR)
            tlps = np.ceil(nbytes / spec.host_mps)
            return _VecCounts(z, pcie0_to_host=tlps,
                              pcie0_to_host_bytes=nbytes + tlps * HDR)
        responder = path.ends.responder
        if not path.intra_machine:
            return self._leg(responder, mem_op, nbytes)
        requester_end = (Endpoint.HOST if path is CommPath.SNIC3_H2S
                         else Endpoint.SOC)
        if op is Opcode.READ:
            source, sink = responder, requester_end
        else:
            source, sink = requester_end, responder
        return self._leg(source, "read", nbytes) \
            + self._leg(sink, "write", nbytes)

    def _pcie_wire_demand(self, cols: _Columns, counts: _VecCounts) -> None:
        spec = self.testbed.snic.spec
        cap1 = spec.pcie1.bandwidth * spec.switch_derate
        cap0 = spec.pcie0.bandwidth * spec.switch_derate
        cols.add("pcie1:to_nic", counts.pcie1_to_nic_bytes / cap1)
        cols.add("pcie1:to_switch", counts.pcie1_to_switch_bytes / cap1)
        cols.add("pcie0:to_host", counts.pcie0_to_host_bytes / cap0)
        cols.add("pcie0:to_switch", counts.pcie0_to_switch_bytes / cap0)

    # .. memory / stall / DMA-engine mirrors ..................................

    def _mem_access_latency(self, memory, mem_op: str, range_bytes):
        np = self.np
        base = 50.0 if mem_op == "read" else 15.0
        if memory.ddio and memory.llc is not None:
            return np.where(range_bytes <= memory.llc.ddio_capacity,
                            memory.llc.hit_latency, base)
        return base

    def _mem_request_capacity(self, memory, mem_op: str, payload,
                              range_bytes):
        np = self.np
        safe_payload = np.where(payload > 0, payload, 1.0)
        cfg = memory.dram
        covered = np.ceil(range_bytes / cfg.bank_stripe)
        banks = np.maximum(1.0, np.minimum(float(cfg.total_banks), covered))
        bank_rate = (cfg.bank_read_rate if mem_op == "read"
                     else cfg.bank_write_rate)
        rate = banks * bank_rate
        channels = np.minimum(float(cfg.channels), banks)
        bandwidth = cfg.peak_bandwidth * channels
        if mem_op == "write":
            bandwidth = bandwidth * cfg.write_bandwidth_factor
        dram = np.where(payload > 0,
                        np.minimum(rate, bandwidth / safe_payload), rate)
        if memory.ddio and memory.llc is not None:
            llc = memory.llc
            llc_rate = (llc.dma_read_rate if mem_op == "read"
                        else llc.dma_write_rate)
            llc_cap = np.where(
                payload > 0,
                np.minimum(llc_rate, llc.bandwidth / safe_payload), llc_rate)
            return np.where(range_bytes <= llc.ddio_capacity, llc_cap, dram)
        return dram

    def _stall_windows(self, cols: _Columns, payload, range_bytes,
                       read_from: Optional[Endpoint],
                       write_to: Optional[Endpoint], prefix: str) -> None:
        np = self.np
        testbed = self.testbed
        mask = payload > 0
        if prefix == "r":
            cores = testbed.rnic.spec.cores
            crossing = {Endpoint.HOST: testbed.rnic.spec.host_link_latency}
            memory = {Endpoint.HOST: testbed.rnic.host_memory}
        else:
            snic = testbed.snic
            cores = snic.spec.cores
            crossing = {e: snic.crossing_latency(e) for e in Endpoint}
            memory = {e: snic.memory_of(e) for e in Endpoint}
        if read_from is not None:
            holding = (2 * crossing[read_from] + cores.nic_base_ns
                       + self._mem_access_latency(memory[read_from], "read",
                                                  range_bytes))
            cols.add(f"{prefix}dma:read_slots",
                     np.where(mask, holding / cores.read_slots, 0.0))
        if write_to is not None:
            holding = (crossing[write_to] + cores.nic_base_ns
                       + self._mem_access_latency(memory[write_to], "write",
                                                  range_bytes))
            cols.add(f"{prefix}dma:write_buffers",
                     np.where(mask, holding / cores.write_buffers, 0.0))

    def _dma_engine_demand(self, cols: _Columns, counts: _VecCounts,
                           payload, transactions: int, nonposted: bool,
                           min_mps: int, intra: bool, s2h: bool,
                           prefix: str) -> None:
        np = self.np
        cores = (self.testbed.rnic.spec.cores if prefix == "r"
                 else self.testbed.snic.spec.cores)
        mask = payload > 0
        ops_rate = (cores.dma_ops_soc if min_mps <= 128 and not intra
                    else cores.dma_ops_host)
        cols.add(f"{prefix}dma:ops",
                 np.where(mask, transactions / ops_rate, 0.0))
        hol_exposed = nonposted and min_mps <= 128
        threshold = cores.hol_threshold_s2h if s2h else cores.hol_threshold
        if hol_exposed:
            pps_cap = np.where(payload > threshold, cores.hol_pps,
                               cores.pcie_pps)
        else:
            pps_cap = cores.pcie_pps
        nic_tlps = (counts.pcie0_total if prefix == "r"
                    else counts.pcie1_total)
        cols.add(f"{prefix}dma:tlps",
                 np.where(mask, nic_tlps / pps_cap, 0.0))

    def _memory_demand(self, cols: _Columns, payload, range_bytes,
                       endpoint: Endpoint, mem_op: str, prefix: str) -> None:
        np = self.np
        mask = payload > 0
        if prefix == "r":
            memory = self.testbed.rnic.host_memory
            key = "rmem:host"
        else:
            memory = self.testbed.snic.memory_of(endpoint)
            key = f"mem:{'host' if endpoint is Endpoint.HOST else 'soc'}"
        cap = self._mem_request_capacity(memory, mem_op, payload, range_bytes)
        cols.add(key, np.where(mask, 1.0 / cap, 0.0))

    def _echo_demand(self, op: Opcode, cols: _Columns, endpoint: Endpoint,
                     prefix: str) -> None:
        if op is not Opcode.SEND:
            return
        testbed = self.testbed
        if prefix == "r":
            cols.add("rcpu:echo:host", 1.0 / testbed.host_cpu.echo_capacity())
            return
        snic_spec = testbed.snic.spec
        if endpoint is Endpoint.HOST:
            cap = (testbed.host_cpu.echo_capacity()
                   * snic_spec.cores.send_derate_snic)
            cols.add("cpu:host", 1.0 / cap)
        else:
            cols.add("cpu:soc", 1.0 / testbed.snic.soc.echo_capacity())

    # .. per-path group builders ..............................................

    def build(self, sig: _GroupSig, flows: Sequence[Flow]) -> Dict[str, Any]:
        """Demand columns for one group of same-shaped flows."""
        np = self.np
        path, op, idx, duplex, has_cap = sig
        payload = np.array([f.payload for f in flows], dtype=np.float64)
        requesters = np.array([f.requesters for f in flows],
                              dtype=np.float64)
        range_bytes = np.array([f.range_bytes for f in flows],
                               dtype=np.float64)
        batch = np.array([f.doorbell_batch for f in flows],
                         dtype=np.float64)
        cols = _Columns(np, len(flows))
        with np.errstate(divide="ignore", invalid="ignore"):
            if path is CommPath.RNIC1:
                self._build_rnic(op, idx, duplex, cols, payload, requesters,
                                 range_bytes, batch)
            elif path.intra_machine:
                self._build_path3(path, op, cols, payload, requesters,
                                  range_bytes, batch)
            else:
                self._build_client_snic(path, op, idx, duplex, cols, payload,
                                        requesters, range_bytes, batch)
        if has_cap:
            cap = np.array([f.rate_cap for f in flows], dtype=np.float64)
            cols[f"cap:{idx}"] = 1.0 / cap
        return cols

    def _build_rnic(self, op, idx, duplex, cols, payload, requesters,
                    range_bytes, batch) -> None:
        spec = self.testbed.rnic.spec
        self._client_side(op, idx, cols, spec.cores, "r", duplex, requesters,
                          batch, payload)
        self._verb_demand(op, cols, None, "r", payload)
        counts = self._counts(CommPath.RNIC1, op, payload)
        cap = spec.host_link.bandwidth
        cols.add("rpcie:to_host", counts.pcie0_to_host_bytes / cap)
        cols.add("rpcie:to_nic", counts.pcie0_to_switch_bytes / cap)
        nonposted = op is Opcode.READ
        transactions = 2 if nonposted else 1
        self._dma_engine_demand(cols, counts, payload, transactions,
                                nonposted, spec.host_mps, False, False, "r")
        mem_op = op.memory_op
        self._stall_windows(
            cols, payload, range_bytes,
            read_from=Endpoint.HOST if mem_op == "read" else None,
            write_to=Endpoint.HOST if mem_op == "write" else None,
            prefix="r")
        self._memory_demand(cols, payload, range_bytes, Endpoint.HOST,
                            mem_op, "r")
        self._echo_demand(op, cols, Endpoint.HOST, "r")

    def _build_client_snic(self, path, op, idx, duplex, cols, payload,
                           requesters, range_bytes, batch) -> None:
        snic = self.testbed.snic
        endpoint = path.ends.responder
        self._client_side(op, idx, cols, snic.spec.cores, "", duplex,
                          requesters, batch, payload)
        self._verb_demand(op, cols, endpoint, "", payload)
        counts = self._counts(path, op, payload)
        self._pcie_wire_demand(cols, counts)
        nonposted = op is Opcode.READ
        transactions = 2 if nonposted else 1
        self._dma_engine_demand(cols, counts, payload, transactions,
                                nonposted, snic.mps_for(endpoint), False,
                                False, "")
        mem_op = op.memory_op
        self._stall_windows(
            cols, payload, range_bytes,
            read_from=endpoint if mem_op == "read" else None,
            write_to=endpoint if mem_op == "write" else None,
            prefix="")
        self._memory_demand(cols, payload, range_bytes, endpoint, mem_op, "")
        self._echo_demand(op, cols, endpoint, "")

    def _build_path3(self, path, op, cols, payload, requesters, range_bytes,
                     batch) -> None:
        np = self.np
        testbed = self.testbed
        snic = testbed.snic
        h2s = path is CommPath.SNIC3_H2S

        if h2s:
            cost = self._post_cost(snic.spec.host_doorbell, batch)
            threads = np.minimum(requesters,
                                 float(testbed.host_cpu.total_cores))
            issue = threads / cost
            cols.add("issue:host", 1.0 / issue)
            cols.add("cpu:host", 0.5 / issue)
        else:
            cost = self._post_cost(snic.soc.doorbell, batch)
            threads = np.minimum(requesters,
                                 float(snic.soc.cpu.total_cores))
            issue = threads / cost
            cols.add("issue:soc", 1.0 / issue)
            cols.add("cpu:soc", 0.5 / issue)

        spec = snic.spec
        cap1 = spec.pcie1.bandwidth * spec.switch_derate
        cap0 = spec.pcie0.bandwidth * spec.switch_derate
        if h2s:
            for key, cap in (("pcie0:to_switch", cap0), ("pcie1:to_nic", cap1),
                             ("pcie1:to_switch", cap1), ("pcie0:to_host", cap0)):
                cols.add(key, 88.0 / cap)
        else:
            cols.add("pcie1:to_nic", 88.0 / cap1)
            cols.add("pcie1:to_switch", 88.0 / cap1)

        endpoint = path.ends.responder
        self._verb_demand(op, cols, None, "", payload, ops_factor=0.7)

        counts = self._counts(path, op, payload)
        self._pcie_wire_demand(cols, counts)
        requester_end = Endpoint.HOST if h2s else Endpoint.SOC
        if op is Opcode.READ:
            source, sink = endpoint, requester_end
        else:
            source, sink = requester_end, endpoint
        s2h_data = source is Endpoint.SOC
        self._dma_engine_demand(cols, counts, payload, 3, True, 128, True,
                                s2h_data, "")
        self._stall_windows(cols, payload, range_bytes, read_from=source,
                            write_to=sink, prefix="")
        self._memory_demand(cols, payload, range_bytes, source, "read", "")
        self._memory_demand(cols, payload, range_bytes, sink, "write", "")
        self._echo_demand(op, cols, endpoint, "")


# ---------------------------------------------------------------------------
# Tensor assembly
# ---------------------------------------------------------------------------


def assemble_demand_tensor(testbed: Testbed,
                           scenarios: Sequence[Scenario]) -> DemandTensor:
    """Build the dense ``(points x flows x resources)`` demand tensor.

    Flows are grouped by shape signature so each group's demand columns
    are produced by a handful of array expressions instead of
    ``len(group)`` scalar dict builds.
    """
    np = require_numpy()
    scenarios = list(scenarios)
    groups: Dict[_GroupSig, List[Tuple[int, Flow]]] = {}
    for p_idx, scenario in enumerate(scenarios):
        duplex = scenario._network_duplex_loaded()
        for s_idx, flow in enumerate(scenario.flows):
            sig = (flow.path, flow.op, s_idx, duplex,
                   flow.rate_cap is not None)
            groups.setdefault(sig, []).append((p_idx, flow))

    builder = VectorDemandBuilder(testbed)
    registry = ResourceRegistry()
    built = []
    for sig, members in groups.items():
        cols = builder.build(sig, [flow for _p, flow in members])
        for name in cols:
            registry.index_of(name)
        built.append((sig, members, cols))

    n_points = len(scenarios)
    max_flows = max(len(s.flows) for s in scenarios)
    demand = np.zeros((n_points, max_flows, len(registry)), dtype=np.float64)
    weights = np.zeros((n_points, max_flows), dtype=np.float64)
    valid = np.zeros((n_points, max_flows), dtype=bool)
    for sig, members, cols in built:
        slot = sig[2]
        points = np.fromiter((p for p, _f in members), dtype=np.intp,
                             count=len(members))
        for name, arr in cols.items():
            demand[points, slot, registry.index[name]] = arr
        weights[points, slot] = [flow.weight for _p, flow in members]
        valid[points, slot] = True
    return DemandTensor(demand=demand, weights=weights, valid=valid,
                        registry=registry, scenarios=scenarios)


# ---------------------------------------------------------------------------
# Array water-filling
# ---------------------------------------------------------------------------


def waterfill(tensor: DemandTensor):
    """Max-min water-filling over every point of the tensor at once.

    Returns ``(rates, bottlenecks, usage)`` arrays of shapes
    ``(points, flows)``, ``(points, flows)`` (column index, -1 = none)
    and ``(points, resources)``.  The grow-freeze iteration runs at most
    ``max flows per point`` times: every round each unfinished point
    saturates one resource (argmin over headroom/load) and freezes the
    flows that touch it.
    """
    np = require_numpy()
    demand, weights, valid = tensor.demand, tensor.weights, tensor.valid
    n_points, n_flows, _n_res = demand.shape
    rates = np.zeros((n_points, n_flows))
    usage = np.zeros(demand.shape[::2])
    bottlenecks = np.full((n_points, n_flows), -1, dtype=np.intp)
    active = valid.copy()
    alive = active.any(axis=1)
    rows = np.arange(n_points)
    for _ in range(n_flows + 1):
        if not alive.any():
            return rates, bottlenecks, usage
        grown_weight = np.where(active, weights, 0.0)
        load = np.einsum("pf,pfr->pr", grown_weight, demand)
        headroom = np.maximum(0.0, 1.0 - usage)
        with np.errstate(divide="ignore", invalid="ignore"):
            delta = np.where(load > 0.0, headroom / load, np.inf)
        best = np.argmin(delta, axis=1)
        best_delta = delta[rows, best]
        # A point with no loadable resource mirrors the scalar ``break``.
        grow = alive & np.isfinite(best_delta)
        step = np.where(grow, best_delta, 0.0)
        rates += grown_weight * step[:, None]
        usage += step[:, None] * load
        best_demand = demand[rows, :, best]
        freeze = active & (best_demand > 0.0) & grow[:, None]
        bottlenecks = np.where(freeze, best[:, None], bottlenecks)
        active &= ~freeze
        alive = grow & active.any(axis=1)
    raise RuntimeError("water-filling failed to converge")  # pragma: no cover


# ---------------------------------------------------------------------------
# The batch solver
# ---------------------------------------------------------------------------


class BatchSolver:
    """Solve many scenarios as one demand tensor.

    Consults (and refills) the same content-keyed ``RESULT_CACHE`` as
    the scalar solver, so engines interoperate: a point solved by either
    engine is a dictionary lookup for both afterwards.
    """

    def solve(self, testbed: Testbed, flow_sets: Sequence,
              use_cache: bool = True, timings=None) -> List[SolverResult]:
        np = require_numpy()
        from contextlib import nullcontext

        from repro.core import throughput

        scenarios = [flows if isinstance(flows, Scenario)
                     else Scenario(testbed, list(flows))
                     for flows in flow_sets]
        results: List[Optional[SolverResult]] = [None] * len(scenarios)
        cache_on = use_cache and throughput._cache_enabled
        if cache_on:
            self._prime_keys(testbed, scenarios)
            cache_get = throughput.RESULT_CACHE.get
            for i, scenario in enumerate(scenarios):
                results[i] = cache_get(scenario.key)
        todo = [i for i, result in enumerate(results) if result is None]
        if not todo:
            return results

        def stage(name):
            return timings.stage(name) if timings is not None \
                else nullcontext()

        start = time.perf_counter()
        with stage("demand_assembly"):
            tensor = assemble_demand_tensor(
                testbed, [scenarios[i] for i in todo])
        self._check_bounded(np, tensor)
        with stage("solve"):
            rates, bottlenecks, usage = waterfill(tensor)
        names = tensor.resources
        # Bulk ndarray -> Python conversions: one pass over the whole
        # grid instead of per-point numpy calls (the per-point loop
        # dominated cold wall-time on wide sweeps).  Points in one
        # sweep share a handful of touched-resource patterns, so the
        # (getter, name-tuple) selector per pattern is built once.
        touched = (tensor.demand > 0).any(axis=1)
        packed = np.packbits(touched, axis=1)
        row_width = packed.shape[1]
        packed_bytes = packed.tobytes()
        selectors: Dict[bytes, Tuple[Any, Tuple[str, ...]]] = {}

        def selector_for(j: int) -> Tuple[Any, Tuple[str, ...]]:
            cols = np.nonzero(touched[j])[0].tolist()
            if not cols:  # unreachable: _check_bounded guards demand
                return (lambda row: (), ())  # pragma: no cover
            if len(cols) == 1:
                getter = operator.itemgetter(cols[0])
                return (lambda row, g=getter: (g(row),), (names[cols[0]],))
            return (operator.itemgetter(*cols),
                    tuple(names[c] for c in cols))

        rates_rows = rates.tolist()
        # Resolve bottleneck indices to names in one fancy-index pass;
        # the -1 "unfrozen" sentinel picks the trailing "" entry.
        name_lookup = np.array(names + [""], dtype=object)
        bneck_rows = name_lookup[bottlenecks].tolist()
        usage_rows = usage.tolist()
        width = rates.shape[1]
        cache_put = throughput.RESULT_CACHE.put
        for j, i in enumerate(todo):
            scenario = scenarios[i]
            n = len(scenario.flows)
            pattern = packed_bytes[j * row_width:(j + 1) * row_width]
            selector = selectors.get(pattern)
            if selector is None:
                selector = selectors[pattern] = selector_for(j)
            getter, touched_names = selector
            result = SolverResult(
                flows=list(scenario.flows),
                rates=rates_rows[j] if n == width else rates_rows[j][:n],
                bottlenecks=(bneck_rows[j] if n == width
                             else bneck_rows[j][:n]),
                utilization=dict(zip(touched_names, getter(usage_rows[j]))))
            if cache_on:
                cache_put(scenario.key, result)
            results[i] = result
        ENGINE_STATS.record("vector", len(todo),
                            time.perf_counter() - start)
        return results

    @staticmethod
    def _prime_keys(testbed: Testbed, scenarios: Sequence[Scenario]) -> None:
        """Fill each scenario's memoized cache key with shared lookups.

        Equivalent to touching ``scenario.key`` per point, but the
        testbed fingerprint is resolved once for the whole batch
        instead of through a weakref lookup per scenario.
        """
        from repro.core.cache import (ScenarioKey, _flow_fingerprint,
                                      testbed_fingerprint)

        tb_fp = testbed_fingerprint(testbed)
        for scenario in scenarios:
            if scenario._key is None and scenario.testbed is testbed:
                scenario._key = ScenarioKey(
                    testbed=tb_fp,
                    flows=tuple(_flow_fingerprint(flow)
                                for flow in scenario.flows))

    @staticmethod
    def _check_bounded(np, tensor: DemandTensor) -> None:
        """Mirror the scalar guard: every flow must demand something."""
        bounded = (tensor.demand > 0).any(axis=2)
        bad = tensor.valid & ~bounded
        if bad.any():
            point, slot = (int(x) for x in np.argwhere(bad)[0])
            flow = tensor.scenarios[point].flows[slot]
            raise ValueError(f"flow {flow.name!r} has no demand; "
                             "cannot bound its rate")
