"""Detectors for the four performance anomalies the paper uncovers.

Each detector inspects a workload (as :class:`~repro.core.throughput.Flow`
objects) against a testbed and returns an :class:`Anomaly` when the
workload would trip the corresponding hazard:

* **skew** — one-sided accesses to SoC memory over a narrow range
  (no DDIO; Advice #1),
* **hol** — oversized requests with a non-posted small-MTU DMA leg
  (Advice #2 / #3),
* **pcie-underutilization** — intra-machine traffic stealing PCIe1 from
  inter-machine communication (§3.3 / §4),
* **doorbell** — doorbell batching enabled on the host side of path ③
  at regressing batch sizes (Advice #4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, ThroughputSolver
from repro.net.topology import Testbed
from repro.nic.core import Endpoint
from repro.units import fmt_size


@dataclass(frozen=True)
class Anomaly:
    """One detected hazard.

    ``severity`` is the predicted throughput ratio (degraded / healthy);
    lower is worse.  ``advice`` names the paper's remedy.
    """

    kind: str
    flow: Optional[Flow]
    severity: float
    description: str
    advice: str

    def __post_init__(self):
        if not 0 <= self.severity <= 1.0000001:
            raise ValueError(f"severity must be in [0, 1]: {self.severity}")


@dataclass(frozen=True)
class AnomalyReport:
    """All anomalies found in a workload."""

    anomalies: List[Anomaly]

    def __len__(self) -> int:
        return len(self.anomalies)

    def __iter__(self):
        return iter(self.anomalies)

    @property
    def clean(self) -> bool:
        return not self.anomalies

    def of_kind(self, kind: str) -> List[Anomaly]:
        return [a for a in self.anomalies if a.kind == kind]


def detect_skew_vulnerability(testbed: Testbed, flow: Flow) -> Optional[Anomaly]:
    """Advice #1: narrow address ranges on the DDIO-less SoC endpoint."""
    if flow.path.uses_smartnic is False or not flow.op.one_sided:
        return None
    responder = flow.path.ends.responder
    memory = testbed.snic.memory_of(responder)
    if memory.ddio or flow.payload == 0:
        return None
    op = flow.op.memory_op
    narrow = memory.dma_request_capacity(op, flow.payload, flow.range_bytes)
    wide_range = max(flow.range_bytes,
                     memory.dram.bank_stripe * memory.dram.total_banks)
    wide = memory.dma_request_capacity(op, flow.payload, wide_range)
    severity = narrow / wide if wide > 0 else 1.0
    if severity >= 0.95:
        return None
    return Anomaly(
        kind="skew",
        flow=flow,
        severity=min(1.0, severity),
        description=(
            f"{op.upper()}s to SoC memory over a {fmt_size(flow.range_bytes)} "
            f"range engage too few DRAM banks (no DDIO on the SoC): "
            f"expect ~{severity:.0%} of wide-range throughput"),
        advice="Advice #1: avoid skewed memory accesses on the SoC",
    )


def detect_hol_collapse(testbed: Testbed, flow: Flow) -> Optional[Anomaly]:
    """Advice #2/#3: oversized requests with a non-posted small-MTU leg."""
    if not flow.path.uses_smartnic:
        return None
    cores = testbed.snic.cores
    if flow.path.intra_machine:
        nonposted = True
        min_mps = testbed.snic.spec.soc_mps
        s2h = flow.path is CommPath.SNIC3_S2H
    else:
        nonposted = flow.op is Opcode.READ
        min_mps = testbed.snic.mps_for(flow.path.ends.responder)
        s2h = False
    exposed = nonposted and min_mps <= 128
    if not exposed or not cores.hol_collapsed(flow.payload, True, s2h):
        return None
    severity = cores.spec.hol_pps / cores.spec.pcie_pps
    threshold = (cores.spec.hol_threshold_s2h if s2h
                 else cores.spec.hol_threshold)
    return Anomaly(
        kind="hol",
        flow=flow,
        severity=severity,
        description=(
            f"{fmt_size(flow.payload)} {flow.op.value.upper()}s on "
            f"{flow.path.label} exceed the {fmt_size(threshold)} head-of-line "
            f"threshold: the DMA engine collapses to "
            f"{severity:.0%} of its packet rate"),
        advice=("Advice #2/#3: segment large transfers into requests below "
                f"{fmt_size(threshold)}"),
    )


def detect_pcie_underutilization(testbed: Testbed,
                                 flows: Sequence[Flow]) -> Optional[Anomaly]:
    """§4: uncontrolled path-③ traffic throttles inter-machine paths."""
    inter = [f for f in flows if f.path.uses_network and f.path.uses_smartnic]
    intra = [f for f in flows if f.path.intra_machine]
    if not inter or not intra:
        return None
    solver = ThroughputSolver()
    alone = solver.solve(Scenario(testbed, inter))
    mixed = solver.solve(Scenario(testbed, list(flows)))
    inter_indices = [i for i, f in enumerate(flows) if not f.path.intra_machine]
    inter_mixed = sum(mixed.rates[i] for i in inter_indices)
    severity = inter_mixed / alone.total_rate if alone.total_rate > 0 else 1.0
    if severity >= 0.97:
        return None
    return Anomaly(
        kind="pcie-underutilization",
        flow=None,
        severity=min(1.0, severity),
        description=(
            f"host-SoC traffic crosses PCIe1 twice and costs inter-machine "
            f"paths {1 - severity:.0%} of their throughput"),
        advice=("§4: budget path-3 bandwidth to at most P - N "
                "(PCIe minus network limit) and use spare resources only"),
    )


def detect_doorbell_regression(testbed: Testbed, flow: Flow) -> Optional[Anomaly]:
    """Advice #4: DB on the host side of path ③ can reduce throughput."""
    if flow.doorbell_batch <= 1:
        return None
    if flow.path is CommPath.SNIC3_H2S:
        doorbell = testbed.snic.spec.host_doorbell
        side = "host"
    elif flow.path is CommPath.SNIC3_S2H:
        doorbell = testbed.snic.soc.doorbell
        side = "SoC"
    else:
        doorbell = testbed.client_doorbell
        side = "client"
    speedup = doorbell.speedup(flow.doorbell_batch)
    if speedup >= 1.0:
        return None
    return Anomaly(
        kind="doorbell",
        flow=flow,
        severity=speedup,
        description=(
            f"doorbell batching (batch={flow.doorbell_batch}) at the {side} "
            f"side posts {1 - speedup:.0%} slower than per-request MMIO "
            f"(the NIC DMA-reads WQE lists from host memory slowly)"),
        advice="Advice #4: enable doorbell batching carefully (SoC side only)",
    )


def detect_all(testbed: Testbed, flows: Sequence[Flow]) -> AnomalyReport:
    """Run every detector over a workload."""
    anomalies: List[Anomaly] = []
    for flow in flows:
        for detector in (detect_skew_vulnerability, detect_hol_collapse,
                         detect_doorbell_regression):
            found = detector(testbed, flow)
            if found is not None:
                anomalies.append(found)
    shared = detect_pcie_underutilization(testbed, flows)
    if shared is not None:
        anomalies.append(shared)
    return AnomalyReport(anomalies)
