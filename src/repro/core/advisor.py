"""The offloading advisor: turns the paper's lessons into a plan.

Given a :class:`WorkloadProfile` describing what a distributed system
wants from the SmartNIC, the advisor applies the paper's guidance —
Advice #1 through #4 plus the §4 bandwidth-partitioning rule — and emits
an :class:`OffloadPlan`: which path each class of traffic should take,
how large requests must be segmented, whether doorbell batching should
be on at each side, and how much host<->SoC bandwidth is safe to use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional

from repro.core.flows import ConcurrencyAnalyzer
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, ThroughputSolver
from repro.net.topology import Testbed
from repro.units import GB, KB, MB, fmt_size


@dataclass(frozen=True)
class WorkloadProfile:
    """What the distributed system asks of the SmartNIC.

    * ``payload`` — typical request payload in bytes.
    * ``read_fraction`` — share of one-sided READs (rest are WRITEs).
    * ``two_sided_fraction`` — share of RPC-style SEND/RECV traffic.
    * ``hot_range_bytes`` — the address range hot requests concentrate
      in (skew).  ``None`` means uniform over ``working_set_bytes``.
    * ``working_set_bytes`` — total responder state.
    * ``host_soc_transfer`` — whether the offloaded code must move bulk
      data between host and SoC (path ③).
    """

    payload: int
    read_fraction: float = 0.5
    two_sided_fraction: float = 0.0
    hot_range_bytes: Optional[float] = None
    working_set_bytes: float = 10 * GB
    host_soc_transfer: bool = False

    def __post_init__(self):
        if self.payload < 0:
            raise ValueError(f"negative payload: {self.payload}")
        if not 0 <= self.read_fraction <= 1:
            raise ValueError("read fraction must be in [0, 1]")
        if not 0 <= self.two_sided_fraction <= 1:
            raise ValueError("two-sided fraction must be in [0, 1]")
        if self.working_set_bytes <= 0:
            raise ValueError("working set must be positive")


@dataclass(frozen=True)
class Advice:
    """One actionable recommendation, referencing the paper's advice ids."""

    ref: str          # e.g. "advice-1", "rule-p-minus-n"
    summary: str
    rationale: str


@dataclass(frozen=True)
class OffloadPlan:
    """The advisor's output.

    ``path_budgets_mrps`` is populated when the plan terminates traffic
    on *both* server endpoints (host and SoC): per-path request-rate
    budgets from the Fig 11 concurrent solve, which partition the shared
    NIC-core pool instead of double-booking each path's solo peak.
    Empty when a single endpoint carries everything.
    """

    one_sided_path: CommPath
    two_sided_path: CommPath
    segment_bytes: Optional[int]          # None = no segmentation needed
    doorbell_batching_soc_side: bool
    doorbell_batching_host_side: bool
    path3_budget_gbps: float
    advice: List[Advice] = field(default_factory=list)
    path_budgets_mrps: Dict[CommPath, float] = field(default_factory=dict)

    def advice_refs(self) -> List[str]:
        return [a.ref for a in self.advice]

    def diff(self, other: Optional["OffloadPlan"]) -> List[str]:
        """Names of the actionable fields that differ from ``other``.

        The incremental re-plan contract: advice prose is excluded, so
        an empty diff means "nothing to enact" and callers can skip the
        migration machinery entirely.
        """
        if other is None:
            return [f.name for f in fields(self) if f.name != "advice"]
        return [f.name for f in fields(self)
                if f.name != "advice"
                and getattr(self, f.name) != getattr(other, f.name)]


class Advisor:
    """Applies the paper's guidance to a workload profile."""

    # Keep segments comfortably below the 9 MB collapse threshold.
    SEGMENT_TARGET = 1 * MB

    def __init__(self, testbed: Testbed):
        self.testbed = testbed
        self.analyzer = ConcurrencyAnalyzer(testbed)
        self.solver = ThroughputSolver()

    def plan(self, profile: WorkloadProfile) -> OffloadPlan:
        """Produce an offloading plan for ``profile``."""
        advice: List[Advice] = []
        snic = self.testbed.snic

        one_sided_path = self._pick_one_sided_path(profile, advice)
        two_sided_path = self._pick_two_sided_path(profile, advice)
        segment = self._segmentation(profile, one_sided_path, advice)
        budget = self.analyzer.path3_budget_gbps()
        path_budgets = self._partition_budgets(
            profile, one_sided_path, two_sided_path, advice)

        if profile.host_soc_transfer:
            advice.append(Advice(
                ref="rule-p-minus-n",
                summary=(f"cap host-SoC transfers at {budget:.0f} Gbps"),
                rationale=(
                    "path 3 crosses PCIe1 twice; beyond P - N it throttles "
                    "inter-machine traffic (S4)"),
            ))
            advice.append(Advice(
                ref="advice-4",
                summary="enable doorbell batching on the SoC side only",
                rationale=(
                    "DB is 2.7-4.6x at the SoC side but loses 6-9 % at the "
                    "host side for small batches (Fig 10b)"),
            ))

        return OffloadPlan(
            one_sided_path=one_sided_path,
            two_sided_path=two_sided_path,
            segment_bytes=segment,
            doorbell_batching_soc_side=True,
            doorbell_batching_host_side=False,
            path3_budget_gbps=budget if profile.host_soc_transfer else 0.0,
            advice=advice,
            path_budgets_mrps=path_budgets,
        )

    def replan(self, profile: WorkloadProfile,
               previous: Optional[OffloadPlan] = None,
               soc_available: bool = True) -> OffloadPlan:
        """Incremental re-planning for an online control loop.

        Recomputes the plan for ``profile``; when the SoC is unavailable
        (crashed, draining) every SoC-terminated assignment fails
        host-ward and path ③ is zero-budgeted.  If nothing actionable
        changed relative to ``previous`` (see :meth:`OffloadPlan.diff`),
        ``previous`` itself is returned, so callers can detect a no-op
        re-plan by identity and skip migrations.
        """
        plan = self.plan(profile)
        if not soc_available:
            advice = [a for a in plan.advice
                      if a.ref not in ("path-2", "fig11-partition")]
            advice.append(Advice(
                ref="failover",
                summary="SoC unavailable: terminate all traffic on the host",
                rationale=("a crashed SoC black-holes paths 2 and 3; the "
                           "host endpoint is the only serving option"),
            ))
            plan = replace(
                plan,
                one_sided_path=CommPath.SNIC1,
                two_sided_path=(CommPath.SNIC1
                                if plan.two_sided_path is CommPath.SNIC2
                                else plan.two_sided_path),
                path3_budget_gbps=0.0,
                path_budgets_mrps={},
                advice=advice,
            )
        if previous is not None and not plan.diff(previous):
            return previous
        return plan

    # -- internals ---------------------------------------------------------------

    def _partition_budgets(self, profile: WorkloadProfile,
                           one_sided_path: CommPath,
                           two_sided_path: CommPath,
                           advice: List[Advice]) -> Dict[CommPath, float]:
        """The Fig 11 budgets when the plan splits host/SoC endpoints.

        Historically the advisor placed one-sided traffic on ② and
        two-sided on ① and implicitly granted each its solo peak — a
        combined budget the shared NIC cores cannot deliver (195 + 157
        vs ~210 Mrps concurrent on the paper's testbed).  Routing the
        mixed plan through the :class:`ConcurrencyAnalyzer` yields the
        real concurrent partition.
        """
        one_sided_share = 1.0 - profile.two_sided_fraction
        endpoints = set()
        if one_sided_share > 0:
            endpoints.add(one_sided_path)
        if profile.two_sided_fraction > 0:
            endpoints.add(two_sided_path)
        if endpoints != {CommPath.SNIC1, CommPath.SNIC2}:
            return {}
        op = Opcode.READ if profile.read_fraction >= 0.5 else Opcode.WRITE
        budgets = self.analyzer.concurrent_endpoint_budgets(
            op, payload=profile.payload)
        total = sum(budgets.values())
        advice.append(Advice(
            ref="fig11-partition",
            summary=(f"budget concurrent paths 1+2 at "
                     f"{budgets[CommPath.SNIC1]:.0f} + "
                     f"{budgets[CommPath.SNIC2]:.0f} = {total:.0f} Mrps"),
            rationale=("host- and SoC-terminated flows share one NIC-core "
                       "pool; the concurrent aggregate sits slightly above "
                       "the best single path, not at the sum of the solo "
                       "peaks (Fig 11, S4)"),
        ))
        return budgets

    def _pick_one_sided_path(self, profile: WorkloadProfile,
                             advice: List[Advice]) -> CommPath:
        """SoC memory is faster for one-sided ops unless skew or capacity
        rules it out (§3.2)."""
        snic = self.testbed.snic
        hot = profile.hot_range_bytes
        skew_hostile = False
        if hot is not None and profile.payload > 0:
            soc_mem = snic.soc.memory
            op = "read" if profile.read_fraction >= 0.5 else "write"
            narrow = soc_mem.dma_request_capacity(op, profile.payload, hot)
            wide = soc_mem.dma_request_capacity(
                op, profile.payload, profile.working_set_bytes)
            skew_hostile = narrow < 0.8 * wide
        too_big = profile.working_set_bytes > snic.soc.dram_bytes

        if skew_hostile:
            advice.append(Advice(
                ref="advice-1",
                summary="keep skewed one-sided traffic on host memory",
                rationale=(
                    f"hot range {fmt_size(hot)} engages too few SoC DRAM "
                    "banks and the A72 has no DDIO (Fig 7)"),
            ))
            return CommPath.SNIC1
        if too_big:
            advice.append(Advice(
                ref="capacity",
                summary="working set exceeds SoC DRAM; keep data on host",
                rationale=(
                    f"{fmt_size(profile.working_set_bytes)} > "
                    f"{fmt_size(snic.soc.dram_bytes)} of SoC memory"),
            ))
            return CommPath.SNIC1
        advice.append(Advice(
            ref="path-2",
            summary="serve one-sided requests from SoC memory",
            rationale=("the SoC is closer to the NIC: READ/WRITE on path 2 "
                       "run 1.08-1.48x path 1 for small payloads (S3.2)"),
        ))
        return CommPath.SNIC2

    def _pick_two_sided_path(self, profile: WorkloadProfile,
                             advice: List[Advice]) -> CommPath:
        if profile.two_sided_fraction == 0:
            return CommPath.SNIC1
        advice.append(Advice(
            ref="wimpy-soc",
            summary="terminate SEND/RECV traffic on the host",
            rationale=("the 8 A72 cores serve up to 64 % fewer two-sided "
                       "messages than the host CPU (S3.2)"),
        ))
        return CommPath.SNIC1

    def _segmentation(self, profile: WorkloadProfile, path: CommPath,
                      advice: List[Advice]) -> Optional[int]:
        cores = self.testbed.snic.spec.cores
        threshold = (cores.hol_threshold_s2h if profile.host_soc_transfer
                     else cores.hol_threshold)
        if profile.payload <= threshold and not (
                profile.host_soc_transfer
                and profile.payload > cores.hol_threshold_s2h):
            return None
        segment = min(self.SEGMENT_TARGET, threshold)
        advice.append(Advice(
            ref="advice-2-3",
            summary=f"segment {fmt_size(profile.payload)} transfers into "
                    f"{fmt_size(segment)} requests",
            rationale=("large requests with a non-posted 128 B-MTU leg "
                       "collapse the DMA engine to 120 Mpps (Fig 8/9)"),
        ))
        return segment
