"""The offloading advisor: turns the paper's lessons into a plan.

Given a :class:`WorkloadProfile` describing what a distributed system
wants from the SmartNIC, the advisor applies the paper's guidance —
Advice #1 through #4 plus the §4 bandwidth-partitioning rule — and emits
an :class:`OffloadPlan`: which path each class of traffic should take,
how large requests must be segmented, whether doorbell batching should
be on at each side, and how much host<->SoC bandwidth is safe to use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.flows import ConcurrencyAnalyzer
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, ThroughputSolver
from repro.net.topology import Testbed
from repro.units import GB, KB, MB, fmt_size


@dataclass(frozen=True)
class WorkloadProfile:
    """What the distributed system asks of the SmartNIC.

    * ``payload`` — typical request payload in bytes.
    * ``read_fraction`` — share of one-sided READs (rest are WRITEs).
    * ``two_sided_fraction`` — share of RPC-style SEND/RECV traffic.
    * ``hot_range_bytes`` — the address range hot requests concentrate
      in (skew).  ``None`` means uniform over ``working_set_bytes``.
    * ``working_set_bytes`` — total responder state.
    * ``host_soc_transfer`` — whether the offloaded code must move bulk
      data between host and SoC (path ③).
    """

    payload: int
    read_fraction: float = 0.5
    two_sided_fraction: float = 0.0
    hot_range_bytes: Optional[float] = None
    working_set_bytes: float = 10 * GB
    host_soc_transfer: bool = False

    def __post_init__(self):
        if self.payload < 0:
            raise ValueError(f"negative payload: {self.payload}")
        if not 0 <= self.read_fraction <= 1:
            raise ValueError("read fraction must be in [0, 1]")
        if not 0 <= self.two_sided_fraction <= 1:
            raise ValueError("two-sided fraction must be in [0, 1]")
        if self.working_set_bytes <= 0:
            raise ValueError("working set must be positive")


@dataclass(frozen=True)
class Advice:
    """One actionable recommendation, referencing the paper's advice ids."""

    ref: str          # e.g. "advice-1", "rule-p-minus-n"
    summary: str
    rationale: str


@dataclass(frozen=True)
class OffloadPlan:
    """The advisor's output."""

    one_sided_path: CommPath
    two_sided_path: CommPath
    segment_bytes: Optional[int]          # None = no segmentation needed
    doorbell_batching_soc_side: bool
    doorbell_batching_host_side: bool
    path3_budget_gbps: float
    advice: List[Advice] = field(default_factory=list)

    def advice_refs(self) -> List[str]:
        return [a.ref for a in self.advice]


class Advisor:
    """Applies the paper's guidance to a workload profile."""

    # Keep segments comfortably below the 9 MB collapse threshold.
    SEGMENT_TARGET = 1 * MB

    def __init__(self, testbed: Testbed):
        self.testbed = testbed
        self.analyzer = ConcurrencyAnalyzer(testbed)
        self.solver = ThroughputSolver()

    def plan(self, profile: WorkloadProfile) -> OffloadPlan:
        """Produce an offloading plan for ``profile``."""
        advice: List[Advice] = []
        snic = self.testbed.snic

        one_sided_path = self._pick_one_sided_path(profile, advice)
        two_sided_path = self._pick_two_sided_path(profile, advice)
        segment = self._segmentation(profile, one_sided_path, advice)
        budget = self.analyzer.path3_budget_gbps()

        if profile.host_soc_transfer:
            advice.append(Advice(
                ref="rule-p-minus-n",
                summary=(f"cap host-SoC transfers at {budget:.0f} Gbps"),
                rationale=(
                    "path 3 crosses PCIe1 twice; beyond P - N it throttles "
                    "inter-machine traffic (S4)"),
            ))
            advice.append(Advice(
                ref="advice-4",
                summary="enable doorbell batching on the SoC side only",
                rationale=(
                    "DB is 2.7-4.6x at the SoC side but loses 6-9 % at the "
                    "host side for small batches (Fig 10b)"),
            ))

        return OffloadPlan(
            one_sided_path=one_sided_path,
            two_sided_path=two_sided_path,
            segment_bytes=segment,
            doorbell_batching_soc_side=True,
            doorbell_batching_host_side=False,
            path3_budget_gbps=budget if profile.host_soc_transfer else 0.0,
            advice=advice,
        )

    # -- internals ---------------------------------------------------------------

    def _pick_one_sided_path(self, profile: WorkloadProfile,
                             advice: List[Advice]) -> CommPath:
        """SoC memory is faster for one-sided ops unless skew or capacity
        rules it out (§3.2)."""
        snic = self.testbed.snic
        hot = profile.hot_range_bytes
        skew_hostile = False
        if hot is not None and profile.payload > 0:
            soc_mem = snic.soc.memory
            op = "read" if profile.read_fraction >= 0.5 else "write"
            narrow = soc_mem.dma_request_capacity(op, profile.payload, hot)
            wide = soc_mem.dma_request_capacity(
                op, profile.payload, profile.working_set_bytes)
            skew_hostile = narrow < 0.8 * wide
        too_big = profile.working_set_bytes > snic.soc.dram_bytes

        if skew_hostile:
            advice.append(Advice(
                ref="advice-1",
                summary="keep skewed one-sided traffic on host memory",
                rationale=(
                    f"hot range {fmt_size(hot)} engages too few SoC DRAM "
                    "banks and the A72 has no DDIO (Fig 7)"),
            ))
            return CommPath.SNIC1
        if too_big:
            advice.append(Advice(
                ref="capacity",
                summary="working set exceeds SoC DRAM; keep data on host",
                rationale=(
                    f"{fmt_size(profile.working_set_bytes)} > "
                    f"{fmt_size(snic.soc.dram_bytes)} of SoC memory"),
            ))
            return CommPath.SNIC1
        advice.append(Advice(
            ref="path-2",
            summary="serve one-sided requests from SoC memory",
            rationale=("the SoC is closer to the NIC: READ/WRITE on path 2 "
                       "run 1.08-1.48x path 1 for small payloads (S3.2)"),
        ))
        return CommPath.SNIC2

    def _pick_two_sided_path(self, profile: WorkloadProfile,
                             advice: List[Advice]) -> CommPath:
        if profile.two_sided_fraction == 0:
            return CommPath.SNIC1
        advice.append(Advice(
            ref="wimpy-soc",
            summary="terminate SEND/RECV traffic on the host",
            rationale=("the 8 A72 cores serve up to 64 % fewer two-sided "
                       "messages than the host CPU (S3.2)"),
        ))
        return CommPath.SNIC1

    def _segmentation(self, profile: WorkloadProfile, path: CommPath,
                      advice: List[Advice]) -> Optional[int]:
        cores = self.testbed.snic.spec.cores
        threshold = (cores.hol_threshold_s2h if profile.host_soc_transfer
                     else cores.hol_threshold)
        if profile.payload <= threshold and not (
                profile.host_soc_transfer
                and profile.payload > cores.hol_threshold_s2h):
            return None
        segment = min(self.SEGMENT_TARGET, threshold)
        advice.append(Advice(
            ref="advice-2-3",
            summary=f"segment {fmt_size(profile.payload)} transfers into "
                    f"{fmt_size(segment)} requests",
            rationale=("large requests with a non-posted 128 B-MTU leg "
                       "collapse the DMA engine to 120 Mpps (Fig 8/9)"),
        ))
        return segment
