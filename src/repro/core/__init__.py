"""The paper's contribution: the SmartNIC communication-path
characterization framework.

Public surface:

* :class:`~repro.core.paths.CommPath` / :class:`~repro.core.paths.Opcode`
  — the communication paths of Fig 2 and the verbs studied.
* :mod:`repro.core.packets` — the Table-3 closed-form PCIe packet model.
* :mod:`repro.core.throughput` — operational-law peak-throughput solver.
* :mod:`repro.core.latency` — end-to-end latency composition (Fig 4 upper).
* :mod:`repro.core.flows` — concurrent-flow scenarios (Fig 5, §4).
* :mod:`repro.core.anomalies` — detectors for the four anomalies.
* :mod:`repro.core.advisor` — the offloading advice engine (Advice #1-4).
* :mod:`~repro.core.harness` — measurement harness driving solver and DES
  (``repro.core.bench`` remains as a deprecated alias).
* :mod:`repro.core.options` — the shared :class:`RunOptions` knobs.
"""

from repro.core.paths import CommPath, Opcode, PathEnds
from repro.core.packets import PacketCountModel, PathPacketCounts
from repro.core.throughput import (
    Flow,
    Scenario,
    SolverResult,
    ThroughputSolver,
)
from repro.core.batch import (
    BatchSolver,
    DemandTensor,
    ResourceRegistry,
    numpy_available,
)
from repro.core.options import RunOptions
from repro.core.sweeps import StageTimings, SweepRunner
from repro.core.latency import LatencyModel, LatencyBreakdown
from repro.core.flows import FlowPattern, ConcurrencyAnalyzer
from repro.core.anomalies import (
    Anomaly,
    AnomalyReport,
    detect_all,
    detect_skew_vulnerability,
    detect_hol_collapse,
    detect_pcie_underutilization,
    detect_doorbell_regression,
)
from repro.core.advisor import Advisor, Advice, OffloadPlan, WorkloadProfile
from repro.core.harness import Measurement, Sweep, LatencyBench, ThroughputBench
from repro.core.whatif import (
    CxlPath3Model,
    bluefield3_testbed,
    speed_ratios,
    with_cci_soc,
)
from repro.core.loaded import LoadedLatencyModel, LoadedPoint
from repro.core.plot import ascii_plot, plot_sweeps

__all__ = [
    "CommPath",
    "Opcode",
    "PathEnds",
    "PacketCountModel",
    "PathPacketCounts",
    "Flow",
    "Scenario",
    "SolverResult",
    "ThroughputSolver",
    "BatchSolver",
    "DemandTensor",
    "ResourceRegistry",
    "numpy_available",
    "RunOptions",
    "StageTimings",
    "SweepRunner",
    "LatencyModel",
    "LatencyBreakdown",
    "FlowPattern",
    "ConcurrencyAnalyzer",
    "Anomaly",
    "AnomalyReport",
    "detect_all",
    "detect_skew_vulnerability",
    "detect_hol_collapse",
    "detect_pcie_underutilization",
    "detect_doorbell_regression",
    "Advisor",
    "Advice",
    "OffloadPlan",
    "WorkloadProfile",
    "Measurement",
    "Sweep",
    "LatencyBench",
    "ThroughputBench",
    "CxlPath3Model",
    "bluefield3_testbed",
    "speed_ratios",
    "with_cci_soc",
    "LoadedLatencyModel",
    "LoadedPoint",
    "ascii_plot",
    "plot_sweeps",
]
