"""The sweep engine: evaluate many model points fast, optionally in parallel.

Every figure reproduction is a dense parameter sweep — payload, address
range, doorbell batch or requester count against the latency model or
the throughput solver.  :class:`SweepRunner` is the shared backend:

* **serial** mode evaluates points in order through the content-keyed
  result caches (:mod:`repro.core.cache`), so any point seen before —
  in this run, an earlier benchmark, or (with the disk cache) an
  earlier process — is a dictionary lookup;
* **vector** mode hands the whole point list to the numpy batch solver
  (:mod:`repro.core.batch`): one process, one demand tensor, no pool.
  Selected automatically (``engine="auto"``) whenever numpy is
  importable; solver-only sweeps then skip the process pool entirely;
* **parallel** mode fans chunks of points out to a
  ``concurrent.futures`` process pool.  Chunking and ``Executor.map``
  preserve submission order, so results are returned in exactly the
  serial order, and each point is solved by the same pure arithmetic —
  parallel, vector and serial sweeps are numerically identical.

Worker processes receive the testbed once (via the pool initializer),
not once per point.  Results computed in workers are folded back into
the parent's caches — and so are the workers' cache hit/miss counters,
so ``--cache-stats`` accounts for work wherever it happened.

Pass a :class:`StageTimings` to collect a per-stage wall-time breakdown
(grid build / demand assembly / solve / aggregate) — the ``sweep
--profile`` measurement hook.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager, nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import batch as batch_engine
from repro.core.cache import registered_caches
from repro.core.latency import LatencyBreakdown, LatencyModel
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import (
    Flow,
    RESULT_CACHE,
    Scenario,
    SolverResult,
    ThroughputSolver,
)
from repro.net.topology import Testbed

#: A latency sweep point: (path, op, payload, range_bytes).
LatencyPoint = Tuple[CommPath, Opcode, int, float]

#: ``scalar``/``vector``/``auto`` pick the solver backend; ``hybrid``
#: additionally selects the analytic/DES serving engine in
#: :meth:`repro.api.Session.serve` (solver sweeps treat it as ``auto``).
ENGINES = ("scalar", "vector", "auto", "hybrid")


class StageTimings:
    """Accumulated wall-time per named sweep stage.

    Stages nest per call site, not per hierarchy: each ``stage(name)``
    context adds its elapsed time to ``name``'s bucket, so repeated
    sweeps through the same runner accumulate.
    """

    def __init__(self):
        self.seconds: "OrderedDict[str, float]" = OrderedDict()
        self.calls: Dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> str:
        """A fixed-width per-stage table for ``sweep --profile``."""
        lines = [f"{'stage':<18} {'ms':>10} {'calls':>7} {'share':>7}"]
        total = self.total
        for name, seconds in self.seconds.items():
            share = f"{seconds / total:6.1%}" if total > 0 else "     -"
            lines.append(f"{name:<18} {seconds * 1e3:>10.3f} "
                         f"{self.calls[name]:>7} {share:>7}")
        lines.append(f"{'total':<18} {total * 1e3:>10.3f}")
        return "\n".join(lines)


# -- pool worker plumbing (module-level so it pickles) ------------------------

_WORKER: dict = {}


def _counter_state() -> Dict[str, Tuple[int, int, int]]:
    return {cache.name: (cache.hits, cache.misses,
                         getattr(cache, "disk_hits", 0))
            for cache in registered_caches()}


def _counter_delta(before: Dict[str, Tuple[int, int, int]]
                   ) -> Dict[str, Tuple[int, int, int]]:
    return {name: tuple(now - then for now, then in zip(counters, before[name]))
            for name, counters in _counter_state().items()
            if name in before}


def _absorb_counters(delta: Dict[str, Tuple[int, int, int]]) -> None:
    for cache in registered_caches():
        counts = delta.get(cache.name)
        if counts and any(counts):
            cache.absorb(*counts)


def _pool_init(testbed: Testbed) -> None:
    _WORKER["testbed"] = testbed
    _WORKER["solver"] = ThroughputSolver()
    _WORKER["latency"] = LatencyModel(testbed)


def _pool_solve(flows: Sequence[Flow]):
    testbed, solver = _WORKER["testbed"], _WORKER["solver"]
    before = _counter_state()
    results = [solver.solve(Scenario(testbed, [flow])) for flow in flows]
    return results, _counter_delta(before)


def _pool_latency(points: Sequence[LatencyPoint]):
    model = _WORKER["latency"]
    before = _counter_state()
    results = [model.latency(path, op, payload, range_bytes)
               for path, op, payload, range_bytes in points]
    return results, _counter_delta(before)


def _chunks(items: Sequence, size: int) -> List[Sequence]:
    return [items[i:i + size] for i in range(0, len(items), size)]


class SweepRunner:
    """Evaluates sweep points serially, vectorized, or on a process pool.

    ``engine`` selects the solver backend: ``"scalar"`` keeps the
    per-point reference path (eligible for the ``jobs`` process pool),
    ``"vector"`` solves the whole point list as one numpy demand tensor
    (raising ``ValueError`` when numpy is missing), and ``"auto"`` —
    the default — picks vector when numpy is importable and the sweep
    has at least two points, scalar otherwise.  ``"hybrid"`` behaves
    like ``"auto"`` for solver work — it exists so one
    :class:`~repro.core.options.RunOptions` can also select the
    analytic/DES serving engine (see docs/performance.md).
    ``vectorized=True`` is
    accepted as a deprecated alias for ``engine="vector"`` (it warns;
    use ``engine=`` or :class:`~repro.core.options.RunOptions`).  All
    backends return
    numerically identical results in identical order.

    ``jobs <= 1`` keeps scalar evaluation in-process (what the
    cache-correctness guarantees are stated against); ``jobs > 1``
    spreads scalar points over that many worker processes.  The vector
    engine never uses the pool — one process, one tensor.
    """

    def __init__(self, testbed: Testbed, jobs: int = 0,
                 chunk_size: Optional[int] = None, engine: str = "auto",
                 vectorized: Optional[bool] = None,
                 timings: Optional[StageTimings] = None):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0: {jobs}")
        if vectorized is not None:
            import warnings

            warnings.warn(
                "SweepRunner(vectorized=...) is deprecated; pass "
                "engine='vector'/'scalar' (or a RunOptions)",
                DeprecationWarning, stacklevel=2)
            engine = "vector" if vectorized else "scalar"
        if engine not in ENGINES:
            raise ValueError(f"unknown engine: {engine!r} "
                             f"(expected one of {ENGINES})")
        if engine == "vector":
            batch_engine.require_numpy()
        self.testbed = testbed
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.engine = engine
        self.timings = timings
        self.solver = ThroughputSolver()
        self._latency_model = LatencyModel(testbed)

    # -- public API ---------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def stage(self, name: str):
        """A timing context for ``name`` (no-op without timings)."""
        if self.timings is None:
            return nullcontext()
        return self.timings.stage(name)

    def engine_for(self, n_points: int) -> str:
        """The backend a solver sweep of ``n_points`` will use."""
        if self.engine == "vector":
            return "vector"
        if (self.engine in ("auto", "hybrid") and n_points >= 2
                and batch_engine.numpy_available()):
            return "vector"
        return "scalar"

    def solve_flows(self, flows: Sequence[Flow]) -> List[SolverResult]:
        """One single-flow scenario per entry, in order."""
        flows = list(flows)
        if self.engine_for(len(flows)) == "vector":
            return batch_engine.BatchSolver().solve(
                self.testbed, [[flow] for flow in flows],
                timings=self.timings)
        start = time.perf_counter()
        if not self.parallel or len(flows) < 2 * self.jobs:
            testbed = self.testbed
            with self.stage("solve"):
                results = [self.solver.solve(Scenario(testbed, [flow]))
                           for flow in flows]
        else:
            with self.stage("solve"):
                results = self._map(_pool_solve, flows)
            # Fold worker results into the parent cache: later serial
            # queries of the same points become lookups.
            for flow, result in zip(flows, results):
                key = Scenario(self.testbed, [flow]).key
                if RESULT_CACHE.get(key) is None:
                    RESULT_CACHE.put(key, result)
        batch_engine.ENGINE_STATS.record("scalar", len(flows),
                                         time.perf_counter() - start)
        return results

    def solve_scenarios(self, flow_sets: Sequence) -> List[SolverResult]:
        """Multi-flow scenarios (one per entry), batched when possible."""
        flow_sets = list(flow_sets)
        engine = self.engine_for(len(flow_sets))
        return Scenario.solve_batch(self.testbed, flow_sets, engine=engine,
                                    timings=self.timings)

    def latencies(self, points: Sequence[LatencyPoint]
                  ) -> List[LatencyBreakdown]:
        """Latency breakdowns for (path, op, payload, range) points."""
        points = list(points)
        if not self.parallel or len(points) < 2 * self.jobs:
            model = self._latency_model
            with self.stage("solve"):
                return [model.latency(path, op, payload, range_bytes)
                        for path, op, payload, range_bytes in points]
        with self.stage("solve"):
            return self._map(_pool_latency, points)

    # -- plumbing -----------------------------------------------------------

    def _map(self, worker, items: Sequence) -> List:
        size = self.chunk_size or max(1, math.ceil(len(items)
                                                   / (self.jobs * 4)))
        with ProcessPoolExecutor(max_workers=self.jobs,
                                 initializer=_pool_init,
                                 initargs=(self.testbed,)) as pool:
            nested = list(pool.map(worker, _chunks(items, size)))
        results: List = []
        for chunk_results, counter_delta in nested:
            results.extend(chunk_results)
            _absorb_counters(counter_delta)
        return results
