"""The sweep engine: evaluate many model points fast, optionally in parallel.

Every figure reproduction is a dense parameter sweep — payload, address
range, doorbell batch or requester count against the latency model or
the throughput solver.  :class:`SweepRunner` is the shared backend:

* **serial** mode evaluates points in order through the content-keyed
  result caches (:mod:`repro.core.cache`), so any point seen before —
  in this run, an earlier benchmark, or (with the disk cache) an
  earlier process — is a dictionary lookup;
* **parallel** mode fans chunks of points out to a
  ``concurrent.futures`` process pool.  Chunking and ``Executor.map``
  preserve submission order, so results are returned in exactly the
  serial order, and each point is solved by the same pure arithmetic —
  parallel and serial sweeps are numerically identical.

Worker processes receive the testbed once (via the pool initializer),
not once per point.  Results computed in workers are folded back into
the parent's caches, so a parallel warm-up accelerates later serial
queries too.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.core.latency import LatencyBreakdown, LatencyModel
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import (
    Flow,
    RESULT_CACHE,
    Scenario,
    SolverResult,
    ThroughputSolver,
)
from repro.net.topology import Testbed

#: A latency sweep point: (path, op, payload, range_bytes).
LatencyPoint = Tuple[CommPath, Opcode, int, float]

# -- pool worker plumbing (module-level so it pickles) ------------------------

_WORKER: dict = {}


def _pool_init(testbed: Testbed) -> None:
    _WORKER["testbed"] = testbed
    _WORKER["solver"] = ThroughputSolver()
    _WORKER["latency"] = LatencyModel(testbed)


def _pool_solve(flows: Sequence[Flow]) -> List[SolverResult]:
    testbed, solver = _WORKER["testbed"], _WORKER["solver"]
    return [solver.solve(Scenario(testbed, [flow])) for flow in flows]


def _pool_latency(points: Sequence[LatencyPoint]) -> List[LatencyBreakdown]:
    model = _WORKER["latency"]
    return [model.latency(path, op, payload, range_bytes)
            for path, op, payload, range_bytes in points]


def _chunks(items: Sequence, size: int) -> List[Sequence]:
    return [items[i:i + size] for i in range(0, len(items), size)]


class SweepRunner:
    """Evaluates sweep points serially or on a process pool.

    ``jobs <= 1`` keeps everything in-process (the default, and what
    the cache-correctness guarantees are stated against).  ``jobs > 1``
    spreads points over that many worker processes; ordering and
    numerical results are identical to the serial path.
    """

    def __init__(self, testbed: Testbed, jobs: int = 0,
                 chunk_size: Optional[int] = None):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0: {jobs}")
        self.testbed = testbed
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.solver = ThroughputSolver()
        self._latency_model = LatencyModel(testbed)

    # -- public API ---------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def solve_flows(self, flows: Sequence[Flow]) -> List[SolverResult]:
        """One single-flow scenario per entry, in order."""
        flows = list(flows)
        if not self.parallel or len(flows) < 2 * self.jobs:
            testbed = self.testbed
            return [self.solver.solve(Scenario(testbed, [flow]))
                    for flow in flows]
        results = self._map(_pool_solve, flows)
        # Fold worker results into the parent cache: later serial
        # queries of the same points become lookups.
        for flow, result in zip(flows, results):
            key = Scenario(self.testbed, [flow]).key
            if RESULT_CACHE.get(key) is None:
                RESULT_CACHE.put(key, result)
        return results

    def latencies(self, points: Sequence[LatencyPoint]
                  ) -> List[LatencyBreakdown]:
        """Latency breakdowns for (path, op, payload, range) points."""
        points = list(points)
        if not self.parallel or len(points) < 2 * self.jobs:
            model = self._latency_model
            return [model.latency(path, op, payload, range_bytes)
                    for path, op, payload, range_bytes in points]
        return self._map(_pool_latency, points)

    # -- plumbing -----------------------------------------------------------

    def _map(self, worker, items: Sequence) -> List:
        size = self.chunk_size or max(1, math.ceil(len(items)
                                                   / (self.jobs * 4)))
        with ProcessPoolExecutor(max_workers=self.jobs,
                                 initializer=_pool_init,
                                 initargs=(self.testbed,)) as pool:
            nested = list(pool.map(worker, _chunks(items, size)))
        return [result for chunk in nested for result in chunk]
