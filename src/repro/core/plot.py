"""Terminal line plots for sweep results.

The benchmarks print paper-style tables; for shape-at-a-glance the same
series can be rendered as an ASCII chart (log-x friendly, multiple
series, no dependencies).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

_MARKS = "*o+x#@%&"


def ascii_plot(series: Dict[str, Sequence[Tuple[float, float]]],
               width: int = 64, height: int = 16, log_x: bool = False,
               title: str = "", y_label: str = "") -> str:
    """Render named (x, y) series as a character plot.

    Each series gets a marker from ``*o+x...``; later series overwrite
    earlier ones where they collide.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("plot too small")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    if log_x:
        if x_lo <= 0:
            raise ValueError("log_x requires positive x values")
        x_lo, x_hi = math.log10(x_lo), math.log10(x_hi)

    def col(x: float) -> int:
        if log_x:
            x = math.log10(x)
        if x_hi == x_lo:
            return 0
        return round((x - x_lo) / (x_hi - x_lo) * (width - 1))

    def row(y: float) -> int:
        if y_hi == y_lo:
            return height - 1
        return height - 1 - round((y - y_lo) / (y_hi - y_lo) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in pts:
            grid[row(y)][col(x)] = mark

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    gutter = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for r, cells in enumerate(grid):
        if r == 0:
            label = top_label
        elif r == height - 1:
            label = bottom_label
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(label.rjust(gutter) + " |" + "".join(cells))
    axis_lo = f"{10 ** x_lo:g}" if log_x else f"{x_lo:g}"
    axis_hi = f"{10 ** x_hi:g}" if log_x else f"{x_hi:g}"
    lines.append(" " * gutter + " +" + "-" * width)
    lines.append(" " * gutter + f"  {axis_lo}{'(log)' if log_x else ''}"
                 + axis_hi.rjust(width - len(axis_lo)
                                 - (5 if log_x else 0)))
    legend = "   ".join(f"{_MARKS[i % len(_MARKS)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)


def plot_sweeps(sweeps: Dict[str, "object"], log_x: bool = True,
                title: str = "", y_label: str = "") -> str:
    """Plot :class:`~repro.core.harness.Sweep` objects by name."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for name, sweep in sweeps.items():
        series[name] = list(zip(sweep.xs(), sweep.values()))
    return ascii_plot(series, log_x=log_x, title=title, y_label=y_label)
