"""Plain-text table formatting for the benchmark harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table (paper-style)."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
