"""One shared spelling for the measurement-run knobs.

Every harness historically grew its own option names: ``SweepRunner``
took ``jobs=``/``engine=``/``vectorized=``, the benches took a
``runner=`` injection, the CLI spelled the same things ``--jobs`` /
``--engine`` / ``--no-cache`` / ``--disk-cache`` / ``--profile``, and
cache configuration lived in yet another function.  :class:`RunOptions`
is the single normalized form: build one, hand it to
:class:`~repro.core.harness.LatencyBench` /
:class:`~repro.core.harness.ThroughputBench` /
:class:`~repro.api.Session`, or parse it straight off an argparse
namespace with :meth:`RunOptions.from_args`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from repro.core.sweeps import ENGINES, StageTimings, SweepRunner
from repro.net.topology import Testbed


@dataclass(frozen=True)
class RunOptions:
    """Normalized evaluation options for model sweeps and benches.

    * ``engine`` — solver backend: ``"scalar"``, ``"vector"`` or
      ``"auto"`` (pick vector when numpy is importable).  ``"hybrid"``
      solves like ``"auto"`` and additionally switches
      :meth:`repro.api.Session.serve` to the analytic/DES hybrid
      serving engine (see docs/performance.md).
    * ``jobs`` — scalar-engine process-pool width (0/1 = in-process).
    * ``chunk_size`` — points per pool task (None = auto).
    * ``cache`` — use the content-keyed solver result cache.
    * ``disk_cache`` — directory for the persistent cache layer.
    * ``profile`` — collect per-stage wall-time (``StageTimings``).
    * ``machines`` — cluster-scenario machine-count override
      (0 = use the scenario document's rack as written).
    * ``population_seed`` — override the scenario's population
      sampling seed (None = use the document's).
    """

    engine: str = "auto"
    jobs: int = 0
    chunk_size: Optional[int] = None
    cache: bool = True
    disk_cache: Optional[str] = None
    profile: bool = False
    machines: int = 0
    population_seed: Optional[int] = None

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine: {self.engine!r} "
                             f"(expected one of {ENGINES})")
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0: {self.jobs}")
        if self.machines < 0:
            raise ValueError(f"machines must be >= 0: {self.machines}")

    # -- consumers -----------------------------------------------------------

    def runner(self, testbed: Testbed,
               timings: Optional[StageTimings] = None) -> SweepRunner:
        """A :class:`SweepRunner` configured from these options.

        Also applies the cache configuration, so building a runner is
        enough to honour ``cache``/``disk_cache``.  When ``profile`` is
        set (and no ``timings`` is passed) the runner gets a fresh
        :class:`StageTimings`; read it back from ``runner.timings``.
        """
        self.apply_caches()
        if timings is None and self.profile:
            timings = StageTimings()
        return SweepRunner(testbed, jobs=self.jobs,
                           chunk_size=self.chunk_size, engine=self.engine,
                           timings=timings)

    def apply_caches(self) -> None:
        """Configure the process-wide solver result caches."""
        from repro.core.throughput import configure_result_cache

        configure_result_cache(enabled=self.cache, disk_dir=self.disk_cache)

    # -- argparse bridge -----------------------------------------------------

    @staticmethod
    def add_arguments(parser: argparse.ArgumentParser) -> None:
        """Install the shared option flags on an argparse parser."""
        parser.add_argument(
            "--jobs", type=int, default=0,
            help="evaluate sweep points on N worker processes "
                 "(0/1 = in-process; results are identical)")
        parser.add_argument(
            "--engine", choices=list(ENGINES), default="auto",
            help="solver backend: 'vector' batches the whole grid "
                 "through the numpy demand tensor, 'scalar' solves "
                 "per point, 'auto' (default) picks vector when "
                 "numpy is installed; 'hybrid' solves like 'auto' "
                 "and makes Session.serve use the analytic/DES "
                 "hybrid serving engine")
        parser.add_argument(
            "--profile", action="store_true",
            help="append a per-stage wall-time breakdown "
                 "(grid build / demand assembly / solve / aggregate)")
        parser.add_argument(
            "--no-cache", action="store_true",
            help="disable the content-keyed solver result cache")
        parser.add_argument(
            "--disk-cache", metavar="DIR", default=None,
            help="persist solver results under DIR so repeated "
                 "points are free across invocations")
        parser.add_argument(
            "--machines", type=int, default=0,
            help="override a cluster scenario's machine count "
                 "(0 = run the rack as the document describes it)")
        parser.add_argument(
            "--population-seed", type=int, default=None,
            help="override a cluster scenario's population sampling "
                 "seed (resamples every cohort deterministically)")

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "RunOptions":
        """Build options from a namespace produced by
        :meth:`add_arguments` (missing attributes keep their defaults)."""
        return cls(
            engine=getattr(args, "engine", "auto"),
            jobs=getattr(args, "jobs", 0),
            cache=not getattr(args, "no_cache", False),
            disk_cache=getattr(args, "disk_cache", None),
            profile=getattr(args, "profile", False),
            machines=getattr(args, "machines", 0) or 0,
            population_seed=getattr(args, "population_seed", None),
        )
