"""What-if analysis: the §5 vendor suggestions and next-gen hardware.

The paper closes with two suggestions and a generalization claim; this
module makes each one a concrete, solvable configuration:

* **CXL for host<->SoC** — data no longer bounces through the NIC cores:
  one switch traversal, host-class MTU, no double PCIe1 crossing.  The
  path-③ anomalies (under-utilization, early HOL collapse) should
  disappear.
* **CCI / DDIO-equivalent on the SoC** — inbound DMA may hit the SoC's
  LLC, so the Fig 7 write-skew anomaly should vanish.
* **Bluefield-3** — same architecture, faster parts (400 Gbps NIC,
  PCIe 5.0); the methodology and models carry over unchanged, only the
  constants move (§5 "Other SmartNICs").
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict

from repro.hw.memory import LLCConfig, MemorySubsystem
from repro.hw.pcie.tlp import TLP_HEADER_BYTES
from repro.net.topology import Testbed
from repro.nic.rnic import RNIC
from repro.nic.smartnic import SmartNIC
from repro.nic.specs import BLUEFIELD3, SmartNICSpec
from repro.units import MB, mrps


def with_cci_soc(testbed: Testbed) -> Testbed:
    """A testbed whose SoC supports a DDIO-equivalent (ARM CCI).

    Inbound DMA to SoC memory may allocate into an SoC LLC slice, so
    narrow-range accesses no longer collapse onto single DRAM banks.
    """
    soc_llc = LLCConfig(size=6 * MB, ddio_way_fraction=0.5,
                        dma_read_rate=mrps(300.0), dma_write_rate=mrps(300.0),
                        bandwidth=40.0, hit_latency=30.0)
    old_spec = testbed.snic.spec
    new_memory = MemorySubsystem(dram=old_spec.soc_memory.dram, llc=soc_llc,
                                 ddio=True, name="soc+cci")
    new_spec = replace(old_spec, soc_memory=new_memory,
                       name=old_spec.name + "+cci")
    return replace(testbed, snic=SmartNIC(new_spec,
                                          host_memory=testbed.snic.host_memory))


def bluefield3_testbed(testbed: Testbed) -> Testbed:
    """The same cluster with the SmartNIC swapped for a Bluefield-3."""
    return replace(testbed, snic=SmartNIC(
        BLUEFIELD3, host_memory=testbed.snic.host_memory))


class CxlPath3Model:
    """Path ③ over CXL instead of RDMA-through-the-NIC (§5 suggestion).

    With CXL.mem the host and SoC exchange data through the switch
    directly: one traversal of each relevant link, host-class flit
    efficiency, and no NIC-core involvement.  This is an analytic model
    (no SmartNIC ships CXL yet — the paper says so too); it answers how
    much of the path-③ gap the suggestion closes.
    """

    CXL_FLIT_BYTES = 64
    CXL_FLIT_OVERHEAD = 6  # 64 B flits carry ~58 B of payload equivalent

    def __init__(self, spec: SmartNICSpec):
        self.spec = spec

    def efficiency(self) -> float:
        """Payload fraction of the CXL flit stream."""
        return (self.CXL_FLIT_BYTES - self.CXL_FLIT_OVERHEAD) / self.CXL_FLIT_BYTES

    def bandwidth(self) -> float:
        """Achievable host<->SoC goodput over CXL, bytes/ns.

        One direction of PCIe0 and the switch; PCIe1 and the NIC cores
        stay out of the path entirely.
        """
        raw = self.spec.pcie0.bandwidth * self.spec.switch_derate
        return raw * self.efficiency()

    def rdma_path3_bandwidth(self, payload: int) -> float:
        """Today's RDMA path-③ ceiling for comparison (the PCIe1
        double-crossing at the SoC's 128 B MTU)."""
        mps = self.spec.soc_mps
        tlps = math.ceil(payload / mps)
        wire = payload + tlps * TLP_HEADER_BYTES
        cap = self.spec.pcie1.bandwidth * self.spec.switch_derate
        return cap * payload / wire

    def improvement(self, payload: int) -> float:
        """CXL bandwidth relative to the RDMA path-③ ceiling."""
        return self.bandwidth() / self.rdma_path3_bandwidth(payload)

    def frees_nic_for_network(self) -> bool:
        """CXL removes path ③'s PCIe1 usage, so the §4 budget rule no
        longer binds — host<->SoC traffic stops competing with clients."""
        return True


def speed_ratios(base: Testbed, upgraded: Testbed) -> Dict[str, float]:
    """Headline hardware ratios between two testbeds (for reports)."""
    b, u = base.snic.spec, upgraded.snic.spec
    return {
        "network": (u.cores.network_bandwidth / b.cores.network_bandwidth),
        "pcie": u.pcie_bandwidth / b.pcie_bandwidth,
        "verb_rate": (u.cores.verb_rate_host_only
                      / b.cores.verb_rate_host_only),
    }
