"""The communication paths of Fig 2 and the RDMA verbs studied.

Path numbering follows the paper:

* ``RNIC1``     — client -> host through a plain RNIC (the baseline).
* ``SNIC1``     — client -> host through the SmartNIC (path ①).
* ``SNIC2``     — client -> SoC through the SmartNIC (path ②).
* ``SNIC3_H2S`` — host -> SoC, intra-machine, bridged by the NIC (path ③).
* ``SNIC3_S2H`` — SoC -> host, intra-machine, bridged by the NIC (path ③).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.nic.core import Endpoint


class Opcode(Enum):
    """The RDMA verbs the paper measures (Fig 4)."""

    READ = "read"
    WRITE = "write"
    SEND = "send"   # two-sided SEND/RECV over UD, echo-server responder

    @property
    def one_sided(self) -> bool:
        return self is not Opcode.SEND

    @property
    def memory_op(self) -> str:
        """What the responder's memory sees for this verb."""
        return "read" if self is Opcode.READ else "write"


class CommPath(Enum):
    """A (requester, responder) pair across a NIC (see module docstring)."""

    RNIC1 = "rnic-1"
    SNIC1 = "snic-1"
    SNIC2 = "snic-2"
    SNIC3_H2S = "snic-3-h2s"
    SNIC3_S2H = "snic-3-s2h"

    @property
    def uses_smartnic(self) -> bool:
        return self is not CommPath.RNIC1

    @property
    def intra_machine(self) -> bool:
        """True for path ③: requester and responder share the server."""
        return self in (CommPath.SNIC3_H2S, CommPath.SNIC3_S2H)

    @property
    def uses_network(self) -> bool:
        """Paths ① and ② traverse the InfiniBand fabric; ③ does not."""
        return not self.intra_machine

    @property
    def ends(self) -> "PathEnds":
        return _ENDS[self]

    @property
    def label(self) -> str:
        """Paper-style display label."""
        return _LABELS[self]


@dataclass(frozen=True)
class PathEnds:
    """Who issues requests and which memory endpoint answers them.

    ``requester`` is ``"client"``, ``"host"`` or ``"soc"``; ``responder``
    is the NIC-visible memory endpoint the DMA terminates in.
    """

    requester: str
    responder: Endpoint

    def __post_init__(self):
        if self.requester not in ("client", "host", "soc"):
            raise ValueError(f"unknown requester: {self.requester}")


_ENDS = {
    CommPath.RNIC1: PathEnds("client", Endpoint.HOST),
    CommPath.SNIC1: PathEnds("client", Endpoint.HOST),
    CommPath.SNIC2: PathEnds("client", Endpoint.SOC),
    CommPath.SNIC3_H2S: PathEnds("host", Endpoint.SOC),
    CommPath.SNIC3_S2H: PathEnds("soc", Endpoint.HOST),
}

_LABELS = {
    CommPath.RNIC1: "RNIC ①",
    CommPath.SNIC1: "SNIC ①",
    CommPath.SNIC2: "SNIC ②",
    CommPath.SNIC3_H2S: "SNIC ③ H2S",
    CommPath.SNIC3_S2H: "SNIC ③ S2H",
}
