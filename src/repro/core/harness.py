"""Measurement harnesses: parameter sweeps over the models and the DES.

These drive the same experiments the paper runs: latency per payload and
path (Fig 4 upper), peak throughput per payload (Fig 4 lower), address-
range sweeps (Fig 7), payload sweeps into the collapse region (Fig 8/9),
doorbell-batch sweeps (Fig 10b) and requester scaling (Fig 11).

This module is the canonical home of the benches; ``repro.core.bench``
is a deprecated alias kept for older imports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.latency import LatencyModel
from repro.core.options import RunOptions
from repro.core.packets import PacketCountModel
from repro.core.paths import CommPath, Opcode
from repro.core.report import format_table
from repro.core.sweeps import SweepRunner
from repro.core.throughput import Flow, Scenario, SolverResult, ThroughputSolver
from repro.net.topology import Testbed
from repro.nic.core import Endpoint
from repro.sim import Simulator
from repro.stats.kernels import Estimate, mean_estimate
from repro.units import GB, fmt_size, to_gbps


@dataclass(frozen=True)
class Measurement:
    """One measured point."""

    name: str
    value: float
    unit: str

    def __str__(self) -> str:
        return f"{self.name}: {self.value:g} {self.unit}"


@dataclass
class Sweep:
    """A parameter sweep: (x, measurement) points plus formatting."""

    parameter: str
    unit: str
    points: List[Tuple[float, Measurement]]

    def xs(self) -> List[float]:
        return [x for x, _m in self.points]

    def values(self) -> List[float]:
        return [m.value for _x, m in self.points]

    def value_at(self, x: float) -> float:
        for px, measurement in self.points:
            if px == x:
                return measurement.value
        # Range/ratio sweeps carry computed floats; exact equality on
        # the x-coordinate would raise spurious KeyErrors.
        for px, measurement in self.points:
            if math.isclose(px, x, rel_tol=1e-9, abs_tol=1e-12):
                return measurement.value
        raise KeyError(f"no point at {self.parameter}={x}")

    def table(self, title: str = "") -> str:
        unit = self.points[0][1].unit if self.points else ""
        rows = [(fmt_size(x) if self.unit == "bytes" else x, m.value)
                for x, m in self.points]
        return format_table([self.parameter, unit], rows, title=title)


def _build_runner(testbed: Testbed, runner: Optional[SweepRunner],
                  options: Optional[RunOptions]) -> SweepRunner:
    """Resolve the bench's sweep backend from either spelling."""
    if runner is not None and options is not None:
        raise ValueError("pass either runner= or options=, not both")
    if runner is not None:
        return runner
    return (options or RunOptions()).runner(testbed)


class LatencyBench:
    """Model-based latency sweeps with DES cross-validation."""

    def __init__(self, testbed: Testbed, runner: Optional[SweepRunner] = None,
                 options: Optional[RunOptions] = None):
        self.testbed = testbed
        self.model = LatencyModel(testbed)
        self.runner = _build_runner(testbed, runner, options)

    def payload_sweep(self, path: CommPath, op: Opcode,
                      payloads: Sequence[int]) -> Sweep:
        """End-to-end latency (us) versus payload."""
        with self.runner.stage("grid_build"):
            grid = [(path, op, payload, 10 * GB) for payload in payloads]
        breakdowns = self.runner.latencies(grid)
        with self.runner.stage("aggregate"):
            points = [
                (payload, Measurement(
                    f"{path.label} {op.value}", breakdown.total_us, "us"))
                for payload, breakdown in zip(payloads, breakdowns)]
        return Sweep("payload", "bytes", points)

    def simulate_dma_latency(self, path: CommPath, op: Opcode,
                             payload: int) -> float:
        """DES-measured responder-side DMA time (ns) for cross-checks.

        Replays the Fig 3 execution flow on the instantiated fabric and
        reports how long the DMA engine is occupied.
        """
        sim = Simulator()
        snic = self.testbed.snic.__class__(self.testbed.snic.spec)
        snic.instantiate(sim)
        endpoint = path.ends.responder
        if path.intra_machine:
            route = snic.route_host_to_soc()
            mps = snic.mps_for(Endpoint.SOC)
        else:
            route = snic.route_to(endpoint)
            mps = snic.mps_for(endpoint)
        if op is Opcode.READ:
            done = snic.dma.dma_read(route, payload, mps)
        else:
            done = snic.dma.dma_write(route, payload, mps)
        sim.run()
        assert done.processed
        return sim.now

    def dma_model_agreement(self, path: CommPath, op: Opcode,
                            payloads: Sequence[int],
                            confidence: float = 0.95) -> Estimate:
        """DES-vs-model DMA disagreement across payloads, as mean ± CI.

        For each payload the DES replays the responder's DMA on the
        instantiated fabric (:meth:`simulate_dma_latency`) and is
        compared against the closed-form model's ``responder_dma``
        segment.  Both are deterministic per point, so the statistical
        statement is across the payload grid: the mean relative error
        with a Student-t interval — what ``repro validate`` gates the
        Fig-4 cross-check on, instead of a single-payload point.
        """
        errors = []
        for payload in payloads:
            des_ns = self.simulate_dma_latency(path, op, payload)
            breakdown = self.model.latency(path, op, payload, 10 * GB)
            model_ns = breakdown.as_dict().get("responder_dma", 0.0)
            errors.append(abs(des_ns - model_ns) / max(model_ns, 1e-9))
        return mean_estimate(errors, confidence=confidence)


class ThroughputBench:
    """Solver-based peak-throughput sweeps.

    All sweeps evaluate their points through a :class:`SweepRunner` —
    serial (and content-cached) by default, or fanned out over a
    process pool when the runner was built with ``jobs > 1``.
    """

    def __init__(self, testbed: Testbed, runner: Optional[SweepRunner] = None,
                 options: Optional[RunOptions] = None):
        self.testbed = testbed
        self.runner = _build_runner(testbed, runner, options)
        self.solver = self.runner.solver
        self.packets = PacketCountModel(testbed.snic.spec)

    def _peak(self, flow: Flow) -> SolverResult:
        return self.solver.solve(Scenario(self.testbed, [flow]))

    def _peaks(self, flows: Sequence[Flow]) -> List[SolverResult]:
        return self.runner.solve_flows(flows)

    def payload_sweep(self, path: CommPath, op: Opcode,
                      payloads: Sequence[int], requesters: int = 11,
                      metric: str = "mrps") -> Sweep:
        """Peak throughput versus payload (Fig 4 lower / Fig 8a / 9a).

        ``metric`` is ``"mrps"`` (requests) or ``"gbps"`` (payload
        bandwidth).
        """
        if metric == "mrps":
            unit, value_of = "Mreqs/s", SolverResult.mrps_of
        elif metric == "gbps":
            unit, value_of = "Gbps", SolverResult.gbps_of
        else:
            raise ValueError(f"unknown metric: {metric!r}")
        with self.runner.stage("grid_build"):
            grid = [Flow(path=path, op=op, payload=payload,
                         requesters=requesters) for payload in payloads]
        results = self._peaks(grid)
        with self.runner.stage("aggregate"):
            points = [
                (payload, Measurement(
                    f"{path.label} {op.value}", value_of(result, 0), unit))
                for payload, result in zip(payloads, results)]
        return Sweep("payload", "bytes", points)

    def pps_sweep(self, path: CommPath, op: Opcode,
                  payloads: Sequence[int], requesters: int = 11,
                  scope: str = "nic") -> Sweep:
        """PCIe packet throughput versus payload (Fig 8b / 9b).

        ``scope="nic"`` counts TLPs on the NIC's own PCIe port (the
        Fig 8b metric); ``scope="fabric"`` counts every TLP crossing
        PCIe1 and PCIe0 (the hardware-counter view of Fig 9b).
        """
        if scope not in ("nic", "fabric"):
            raise ValueError(f"unknown scope: {scope!r}")
        with self.runner.stage("grid_build"):
            grid = [Flow(path=path, op=op, payload=payload,
                         requesters=requesters) for payload in payloads]
        results = self._peaks(grid)
        with self.runner.stage("aggregate"):
            points = []
            for payload, result in zip(payloads, results):
                counts = self.packets.counts(path, op, payload)
                if scope == "nic":
                    tlps = (counts.pcie0_total if path is CommPath.RNIC1
                            else counts.pcie1_total)
                else:
                    tlps = counts.total
                mpps = result.rate_of(0) * tlps * 1e3
                points.append((payload, Measurement(
                    f"{path.label} {op.value} PCIe pps", mpps, "Mpps")))
        return Sweep("payload", "bytes", points)

    def range_sweep(self, path: CommPath, op: Opcode, payload: int,
                    ranges: Sequence[float], requesters: int = 11) -> Sweep:
        """Peak request rate versus responder address range (Fig 7)."""
        with self.runner.stage("grid_build"):
            grid = [Flow(path=path, op=op, payload=payload,
                         requesters=requesters, range_bytes=range_bytes)
                    for range_bytes in ranges]
        results = self._peaks(grid)
        with self.runner.stage("aggregate"):
            points = [
                (range_bytes, Measurement(
                    f"{path.label} {op.value}", result.mrps_of(0),
                    "Mreqs/s"))
                for range_bytes, result in zip(ranges, results)]
        return Sweep("range", "bytes", points)

    def requester_sweep(self, path: CommPath, op: Opcode, payload: int,
                        machine_counts: Sequence[int]) -> Sweep:
        """Peak rate versus number of requester machines (Fig 11)."""
        with self.runner.stage("grid_build"):
            grid = [Flow(path=path, op=op, payload=payload,
                         requesters=machines)
                    for machines in machine_counts]
        results = self._peaks(grid)
        with self.runner.stage("aggregate"):
            points = [
                (machines, Measurement(
                    f"{path.label} {op.value}", result.mrps_of(0),
                    "Mreqs/s"))
                for machines, result in zip(machine_counts, results)]
        return Sweep("machines", "count", points)

    def doorbell_sweep(self, path: CommPath, op: Opcode, payload: int,
                       batches: Sequence[int], requesters: int = 24) -> Sweep:
        """Throughput versus doorbell batch size (Fig 10b)."""
        with self.runner.stage("grid_build"):
            grid = [Flow(path=path, op=op, payload=payload,
                         requesters=requesters, doorbell_batch=batch)
                    for batch in batches]
        results = self._peaks(grid)
        with self.runner.stage("aggregate"):
            points = [
                (batch, Measurement(
                    f"{path.label} {op.value} DB={batch}",
                    result.mrps_of(0), "Mreqs/s"))
                for batch, result in zip(batches, results)]
        return Sweep("batch", "count", points)
