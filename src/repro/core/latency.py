"""End-to-end latency composition for each path and verb (Fig 4 upper).

A request's latency is the sum of explicit segments — posting, requester
NIC, network, responder NIC pipeline, the DMA at the responder (where
the SmartNIC "performance tax" lives), the return trip and completion
handling.  The same segments drive both the closed-form model here and
the discrete-event traces, so the two can be cross-checked.

The Fig 3 asymmetry is structural: a READ's DMA is non-posted, so it
waits out the fabric twice (0.6 us extra on Bluefield), while a WRITE's
posted DMA only adds one traversal (0.4 us with the posted-buffer
hand-off; §3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cache import LRUCache, memoized, testbed_fingerprint
from repro.core.paths import CommPath, Opcode
from repro.net.topology import Testbed
from repro.nic.core import Endpoint
from repro.units import GB

# Requester-side completion handling: CQE DMA write + CQ polling.
_COMPLETION_NS = 250.0
# Posted-write hand-off before the responder NIC acks (the 0.1 us that
# makes the paper's WRITE delta 0.4 us rather than one bare traversal).
_POSTED_HANDOFF_NS = 100.0

#: Memoized breakdowns keyed by testbed content — shared across model
#: instances, so rebuilding a ``LatencyModel`` costs nothing.
LATENCY_CACHE = LRUCache(maxsize=1 << 14, name="latency")


@dataclass(frozen=True)
class LatencyBreakdown:
    """A latency total plus its named segments (ns each)."""

    segments: Tuple[Tuple[str, float], ...]

    @property
    def total(self) -> float:
        return sum(value for _name, value in self.segments)

    @property
    def total_us(self) -> float:
        return self.total / 1000.0

    def segment(self, name: str) -> float:
        for seg_name, value in self.segments:
            if seg_name == name:
                return value
        raise KeyError(f"no segment named {name!r}")

    def as_dict(self) -> Dict[str, float]:
        return dict(self.segments)


class LatencyModel:
    """Closed-form end-to-end latency for a testbed."""

    def __init__(self, testbed: Testbed):
        self.testbed = testbed

    # -- public API -----------------------------------------------------------------

    def latency(self, path: CommPath, op: Opcode, payload: int,
                range_bytes: float = 10 * GB) -> LatencyBreakdown:
        """Unloaded end-to-end latency of one request (memoized)."""
        if payload < 0:
            raise ValueError(f"negative payload: {payload}")
        key = (testbed_fingerprint(self.testbed), path, op, payload,
               range_bytes)
        return memoized(LATENCY_CACHE, key,
                        lambda: self._latency_cold(path, op, payload,
                                                   range_bytes))

    def _latency_cold(self, path: CommPath, op: Opcode, payload: int,
                      range_bytes: float) -> LatencyBreakdown:
        if path.intra_machine:
            return self._path3_latency(path, op, payload, range_bytes)
        return self._client_latency(path, op, payload, range_bytes)

    def posting_latency(self, path: CommPath) -> float:
        """Requester posting latency (Fig 10a), ns."""
        testbed = self.testbed
        if path is CommPath.SNIC3_S2H:
            return testbed.snic.soc.cpu.posting_latency()
        if path is CommPath.SNIC3_H2S:
            return testbed.host_cpu.posting_latency()
        return testbed.client_cpu.posting_latency()

    # -- composition pieces ---------------------------------------------------------

    def _network_one_way(self, payload: int, server_cores) -> float:
        fabric = self.testbed.fabric
        bandwidth = min(fabric.port_bandwidth
                        * self.testbed.client_nic.cores.ports,
                        server_cores.network_bandwidth)
        serialization = payload / bandwidth
        return fabric.one_way_latency() + serialization

    def _responder_dma(self, path: CommPath, op: Opcode, payload: int,
                       range_bytes: float) -> float:
        """Time the responder NIC spends moving payload to/from memory."""
        testbed = self.testbed
        if path is CommPath.RNIC1:
            crossing = testbed.rnic.spec.host_link_latency
            memory = testbed.rnic.host_memory
            bandwidth = testbed.rnic.spec.host_link.bandwidth
        else:
            endpoint = path.ends.responder
            crossing = testbed.snic.crossing_latency(endpoint)
            memory = testbed.snic.memory_of(endpoint)
            bandwidth = testbed.snic.spec.pcie_bandwidth
        serialization = payload / bandwidth
        mem_ns = memory.dma_access_latency(op.memory_op, range_bytes)
        if op is Opcode.READ:
            # Non-posted: request over, completions back (Fig 3).
            return 2 * crossing + mem_ns + serialization
        # Posted: one traversal plus the buffer hand-off.
        return crossing + mem_ns + serialization + _POSTED_HANDOFF_NS

    def _echo_service(self, path: CommPath) -> float:
        """Responder CPU time for a two-sided message."""
        if path.ends.responder is Endpoint.SOC:
            cpu = self.testbed.snic.soc.cpu
        else:
            cpu = self.testbed.host_cpu
        return cpu.two_sided_latency_ns

    # -- per-shape builders -----------------------------------------------------------

    def _client_latency(self, path: CommPath, op: Opcode, payload: int,
                        range_bytes: float) -> LatencyBreakdown:
        testbed = self.testbed
        cores = (testbed.rnic.spec.cores if path is CommPath.RNIC1
                 else testbed.snic.spec.cores)
        pipeline = cores.pipeline_ns
        segments: List[Tuple[str, float]] = [
            ("post", testbed.client_cpu.posting_latency()),
            ("requester_nic", pipeline),
        ]
        out_payload = payload if op is not Opcode.READ else 0
        back_payload = payload if op is Opcode.READ else 0
        segments.append(("network_out",
                         self._network_one_way(out_payload, cores)))
        segments.append(("responder_nic", pipeline))
        if op is Opcode.SEND:
            # Payload lands in a receive buffer; delivery overlaps with
            # the CPU wake-up, so only half the posted-write time shows
            # up end to end (the paper's "not significant" SEND tax).
            segments.append(("responder_dma",
                             0.5 * self._responder_dma(path, op, payload,
                                                       range_bytes)))
            segments.append(("echo_cpu", self._echo_service(path)))
        else:
            segments.append(("responder_dma",
                             self._responder_dma(path, op, payload,
                                                 range_bytes)))
        segments.append(("network_back",
                         self._network_one_way(back_payload, cores)))
        segments.append(("completion", _COMPLETION_NS))
        return LatencyBreakdown(tuple(segments))

    def _path3_latency(self, path: CommPath, op: Opcode, payload: int,
                       range_bytes: float) -> LatencyBreakdown:
        testbed = self.testbed
        snic = testbed.snic
        pipeline = snic.spec.cores.pipeline_ns
        h2s = path is CommPath.SNIC3_H2S
        requester_end = Endpoint.HOST if h2s else Endpoint.SOC
        responder_end = path.ends.responder

        # The doorbell crosses the internal fabric, but MMIO writes are
        # posted, so only part of the traversal is latency-visible.
        doorbell_cross = 0.5 * snic.crossing_latency(requester_end)
        segments: List[Tuple[str, float]] = [
            ("post", self.posting_latency(path) + doorbell_cross),
            ("nic_pipeline", pipeline),
        ]
        if op is Opcode.READ:
            source, sink = responder_end, requester_end
        else:
            source, sink = requester_end, responder_end
        fetch = (2 * snic.crossing_latency(source)
                 + snic.memory_of(source).dma_access_latency(
                     "read", range_bytes)
                 + payload / snic.spec.pcie_bandwidth)
        deliver = (snic.crossing_latency(sink)
                   + snic.memory_of(sink).dma_access_latency(
                       "write", range_bytes)
                   + payload / snic.spec.pcie_bandwidth
                   + _POSTED_HANDOFF_NS)
        segments.append(("fetch_dma", fetch))
        segments.append(("deliver_dma", deliver))
        if op is Opcode.SEND:
            segments.append(("echo_cpu", self._echo_service(path)))
        # CQE travels back to the requester's memory.
        segments.append(("completion",
                         snic.crossing_latency(requester_end)
                         + _COMPLETION_NS))
        return LatencyBreakdown(tuple(segments))
