"""Latency under load: the full latency-throughput curve.

The paper reports the two endpoints of the curve — unloaded latency
(Fig 4 upper) and peak throughput (Fig 4 lower).  This extension fills
in the middle: given an offered load, queueing delay accumulates at the
flow's bottleneck resource.  We model the bottleneck as an M/D/1 server
(Poisson arrivals, deterministic service — NIC pipelines are highly
regular), so the waiting time is

    W = rho * s / (2 * (1 - rho))

with ``s`` the effective service time (the reciprocal of the peak rate)
and ``rho`` the utilization.  Mean latency is the unloaded latency plus
``W``; the curve ends at the solver's peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.latency import LatencyModel
from repro.core.throughput import Flow, Scenario, SolverResult, ThroughputSolver
from repro.net.topology import Testbed


@dataclass(frozen=True)
class LoadedPoint:
    """One point on a latency-throughput curve."""

    offered_rate: float     # requests/ns
    utilization: float      # of the bottleneck resource
    latency_ns: float       # mean end-to-end latency
    queueing_ns: float      # the waiting-time component

    @property
    def offered_mrps(self) -> float:
        return self.offered_rate * 1e3

    @property
    def latency_us(self) -> float:
        return self.latency_ns / 1000.0


class LoadedLatencyModel:
    """Latency-throughput curves built on the two base engines."""

    def __init__(self, testbed: Testbed):
        self.testbed = testbed
        self.latency = LatencyModel(testbed)
        self.solver = ThroughputSolver()

    def peak(self, flow: Flow) -> SolverResult:
        return self.solver.solve(Scenario(self.testbed, [flow]))

    def latency_at(self, flow: Flow, offered_rate: float) -> LoadedPoint:
        """Mean latency when the flow offers ``offered_rate`` reqs/ns.

        Raises :class:`ValueError` at or beyond the peak rate (the
        M/D/1 wait diverges there).
        """
        if offered_rate < 0:
            raise ValueError(f"negative offered rate: {offered_rate}")
        peak_rate = self.peak(flow).rates[0]
        rho = offered_rate / peak_rate
        if rho >= 1.0:
            raise ValueError(
                f"offered rate {offered_rate:g} reqs/ns is at or beyond "
                f"the peak {peak_rate:g}; the queue is unstable")
        base = self.latency.latency(flow.path, flow.op, flow.payload,
                                    flow.range_bytes).total
        service = 1.0 / peak_rate
        waiting = rho * service / (2.0 * (1.0 - rho))
        return LoadedPoint(offered_rate=offered_rate, utilization=rho,
                           latency_ns=base + waiting, queueing_ns=waiting)

    def curve(self, flow: Flow, points: int = 10,
              max_utilization: float = 0.95) -> List[LoadedPoint]:
        """``points`` samples from idle to ``max_utilization`` of peak."""
        if points < 2:
            raise ValueError("need at least two points")
        if not 0 < max_utilization < 1:
            raise ValueError("max utilization must be in (0, 1)")
        peak_rate = self.peak(flow).rates[0]
        return [
            self.latency_at(flow, peak_rate * max_utilization * i
                            / (points - 1))
            for i in range(points)
        ]

    def knee(self, flow: Flow,
             latency_budget_factor: float = 2.0) -> LoadedPoint:
        """The operating point where latency reaches ``factor`` x
        unloaded — a classic provisioning rule of thumb.

        Closed form from M/D/1: with ``base = b`` and ``service = s``,
        solve ``b + rho s / (2 (1 - rho)) = factor * b``.
        """
        if latency_budget_factor <= 1.0:
            raise ValueError("budget factor must exceed 1")
        peak_rate = self.peak(flow).rates[0]
        base = self.latency.latency(flow.path, flow.op, flow.payload,
                                    flow.range_bytes).total
        service = 1.0 / peak_rate
        allowance = (latency_budget_factor - 1.0) * base
        # rho * s / (2 (1 - rho)) = allowance  =>  rho = A / (A + s/2)
        rho = allowance / (allowance + service / 2.0)
        return self.latency_at(flow, rho * peak_rate)


def curve_table(model: LoadedLatencyModel, flow: Flow,
                points: int = 8) -> List[Tuple[float, float, float]]:
    """(offered Mrps, utilization, latency us) rows for reports."""
    return [(p.offered_mrps, p.utilization, p.latency_us)
            for p in model.curve(flow, points=points)]
