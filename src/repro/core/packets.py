"""The Table-3 model: PCIe packets needed per RDMA request on each path.

For every path and verb this enumerates the DMA legs the SmartNIC
executes and counts the TLPs each leg pushes across PCIe1 and PCIe0, in
each direction.  Two views are offered:

* :meth:`PacketCountModel.counts` — the full accounting, including
  header-only read-request TLPs;
* :meth:`PacketCountModel.table3_row` — the paper's simplified model
  (data TLPs only, "omits control path packets").

The paper's worked example (§3.3 Advice #3) falls out directly: moving
data from SoC to host at 200 Gbps requires ``25 GB/s / 128 B = 195 Mpps``
into the NIC on PCIe1, ``49 Mpps`` (512 B) back out of PCIe1, and
``49 Mpps`` on PCIe0 — at least 293 Mpps, 6x path ① and 1.5x path ②.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.core.paths import CommPath, Opcode
from repro.hw.pcie.tlp import TLP_HEADER_BYTES as HDR
from repro.nic.core import Endpoint
from repro.nic.specs import SmartNICSpec, BLUEFIELD2


@dataclass(frozen=True)
class PathPacketCounts:
    """TLPs and wire bytes crossing each internal link, per request.

    ``*_bytes`` fields are wire bytes (data payload + TLP headers).  For
    the RNIC baseline the single host link is reported in the ``pcie0``
    fields and ``pcie1`` stays zero.
    """

    pcie1_to_nic: int = 0      # toward the NIC cores
    pcie1_to_switch: int = 0   # away from the NIC cores
    pcie0_to_host: int = 0     # toward host memory
    pcie0_to_switch: int = 0   # away from host memory
    pcie1_to_nic_bytes: int = 0
    pcie1_to_switch_bytes: int = 0
    pcie0_to_host_bytes: int = 0
    pcie0_to_switch_bytes: int = 0

    @property
    def pcie1_total(self) -> int:
        return self.pcie1_to_nic + self.pcie1_to_switch

    @property
    def pcie0_total(self) -> int:
        return self.pcie0_to_host + self.pcie0_to_switch

    @property
    def total(self) -> int:
        """All TLPs the SmartNIC fabric handles for one request."""
        return self.pcie1_total + self.pcie0_total

    def __add__(self, other: "PathPacketCounts") -> "PathPacketCounts":
        return PathPacketCounts(
            self.pcie1_to_nic + other.pcie1_to_nic,
            self.pcie1_to_switch + other.pcie1_to_switch,
            self.pcie0_to_host + other.pcie0_to_host,
            self.pcie0_to_switch + other.pcie0_to_switch,
            self.pcie1_to_nic_bytes + other.pcie1_to_nic_bytes,
            self.pcie1_to_switch_bytes + other.pcie1_to_switch_bytes,
            self.pcie0_to_host_bytes + other.pcie0_to_host_bytes,
            self.pcie0_to_switch_bytes + other.pcie0_to_switch_bytes,
        )


class PacketCountModel:
    """Closed-form per-request TLP counts for a SmartNIC spec."""

    def __init__(self, spec: SmartNICSpec = BLUEFIELD2):
        self.spec = spec
        self.h_mps = spec.host_mps
        self.s_mps = spec.soc_mps
        self.read_chunk = spec.cores.max_read_request

    # -- leg primitives -----------------------------------------------------------

    def _ceil(self, nbytes: int, unit: int) -> int:
        return math.ceil(nbytes / unit)

    def _read_host(self, nbytes: int, include_requests: bool) -> PathPacketCounts:
        """NIC DMA-reads host memory: requests out, completions back."""
        reqs = self._ceil(nbytes, self.read_chunk) if include_requests else 0
        cpls = self._ceil(nbytes, self.h_mps)
        cpl_bytes = nbytes + cpls * HDR
        return PathPacketCounts(
            pcie1_to_nic=cpls, pcie1_to_switch=reqs,
            pcie0_to_host=reqs, pcie0_to_switch=cpls,
            pcie1_to_nic_bytes=cpl_bytes, pcie1_to_switch_bytes=reqs * HDR,
            pcie0_to_host_bytes=reqs * HDR, pcie0_to_switch_bytes=cpl_bytes)

    def _write_host(self, nbytes: int) -> PathPacketCounts:
        """NIC DMA-writes host memory: posted, one direction."""
        tlps = self._ceil(nbytes, self.h_mps)
        wire = nbytes + tlps * HDR
        return PathPacketCounts(pcie1_to_switch=tlps, pcie0_to_host=tlps,
                                pcie1_to_switch_bytes=wire,
                                pcie0_to_host_bytes=wire)

    def _read_soc(self, nbytes: int, include_requests: bool) -> PathPacketCounts:
        """NIC DMA-reads SoC memory (the SoC hangs off the switch)."""
        reqs = self._ceil(nbytes, self.read_chunk) if include_requests else 0
        cpls = self._ceil(nbytes, self.s_mps)
        return PathPacketCounts(pcie1_to_nic=cpls, pcie1_to_switch=reqs,
                                pcie1_to_nic_bytes=nbytes + cpls * HDR,
                                pcie1_to_switch_bytes=reqs * HDR)

    def _write_soc(self, nbytes: int) -> PathPacketCounts:
        tlps = self._ceil(nbytes, self.s_mps)
        return PathPacketCounts(pcie1_to_switch=tlps,
                                pcie1_to_switch_bytes=nbytes + tlps * HDR)

    def _leg_to(self, endpoint: Endpoint, op: str, nbytes: int,
                include_requests: bool) -> PathPacketCounts:
        if endpoint is Endpoint.HOST:
            if op == "read":
                return self._read_host(nbytes, include_requests)
            return self._write_host(nbytes)
        if op == "read":
            return self._read_soc(nbytes, include_requests)
        return self._write_soc(nbytes)

    # -- public API ---------------------------------------------------------------

    def counts(self, path: CommPath, op: Opcode, nbytes: int,
               include_requests: bool = True) -> PathPacketCounts:
        """TLPs per request of ``nbytes`` on ``path`` carrying ``op``.

        Zero-byte requests produce zero TLPs ("return before reaching
        PCIe1", §4).  SEND is accounted like WRITE at the responder
        (same DMA shape for the payload delivery, Fig 8 caption).
        Results are memoized per (spec, path, op, payload) — every
        sweep revisits the same few hundred shapes thousands of times.
        """
        return cached_counts(self.spec, path, op, nbytes, include_requests)

    def _compute_counts(self, path: CommPath, op: Opcode, nbytes: int,
                        include_requests: bool) -> PathPacketCounts:
        if nbytes < 0:
            raise ValueError(f"negative payload: {nbytes}")
        if nbytes == 0:
            return PathPacketCounts()

        responder = path.ends.responder
        mem_op = op.memory_op

        if path is CommPath.RNIC1:
            # Single host link, reported in the pcie0 fields.
            if mem_op == "read":
                reqs = (self._ceil(nbytes, self.read_chunk)
                        if include_requests else 0)
                cpls = self._ceil(nbytes, self.h_mps)
                return PathPacketCounts(
                    pcie0_to_host=reqs, pcie0_to_switch=cpls,
                    pcie0_to_host_bytes=reqs * HDR,
                    pcie0_to_switch_bytes=nbytes + cpls * HDR)
            tlps = self._ceil(nbytes, self.h_mps)
            return PathPacketCounts(pcie0_to_host=tlps,
                                    pcie0_to_host_bytes=nbytes + tlps * HDR)

        if not path.intra_machine:
            # Paths ① and ②: one DMA leg at the responder endpoint.
            return self._leg_to(responder, mem_op, nbytes, include_requests)

        # Path ③: the NIC first reads the data from the requester's
        # memory (non-posted), then writes it to the responder's (§3.3
        # Advice #3) — for READ the roles swap.
        requester_end = (Endpoint.HOST if path is CommPath.SNIC3_H2S
                         else Endpoint.SOC)
        if op is Opcode.READ:
            source, sink = responder, requester_end
        else:
            source, sink = requester_end, responder
        fetch = self._leg_to(source, "read", nbytes, include_requests)
        deliver = self._leg_to(sink, "write", nbytes, include_requests)
        return fetch + deliver

    def table3_row(self, path: CommPath, nbytes: int) -> dict:
        """The paper's simplified Table-3 row: data TLPs per link.

        Direction-agnostic totals, control packets omitted — exactly
        ``ceil(N / MTU)`` terms.
        """
        counts = self.counts(path, Opcode.WRITE, nbytes,
                             include_requests=False)
        return {"pcie1": counts.pcie1_total, "pcie0": counts.pcie0_total}

    def pps_for_bandwidth(self, path: CommPath, op: Opcode,
                          bytes_per_ns: float, nbytes: int,
                          include_requests: bool = False) -> float:
        """Aggregate TLPs/ns the fabric must sustain to carry
        ``bytes_per_ns`` of ``nbytes``-sized requests on ``path``.

        With ``include_requests=False`` this reproduces the paper's
        "at least 293 Mpps for 200 Gbps" arithmetic.
        """
        if bytes_per_ns < 0:
            raise ValueError(f"negative bandwidth: {bytes_per_ns}")
        if nbytes <= 0:
            raise ValueError(f"payload must be positive: {nbytes}")
        per_request = self.counts(path, op, nbytes, include_requests).total
        requests_per_ns = bytes_per_ns / nbytes
        return per_request * requests_per_ns


@lru_cache(maxsize=None)
def _model_for(spec: SmartNICSpec) -> PacketCountModel:
    return PacketCountModel(spec)


@lru_cache(maxsize=1 << 16)
def cached_counts(spec: SmartNICSpec, path: CommPath, op: Opcode,
                  nbytes: int, include_requests: bool = True) -> PathPacketCounts:
    """Memoized :meth:`PacketCountModel.counts` keyed by content.

    ``SmartNICSpec`` is a frozen dataclass, so equal specs hit the same
    entry regardless of which ``PacketCountModel`` instance asks.
    """
    return _model_for(spec)._compute_counts(path, op, nbytes,
                                            include_requests)
