"""Peak-throughput solver: operational laws over per-request demand vectors.

For every flow (a path + verb + payload + requester set) we compute how
long each hardware resource is busy per request — its *service demand*
in ns.  A resource ``r`` with per-request demand ``u_fr`` serving flows
at rates ``X_f`` (requests/ns) obeys ``sum_f X_f * u_fr <= 1``.  Peak
throughput is found by max-min water-filling: all flows grow together
until a resource saturates, flows using it freeze, the rest keep
growing.  This is the same arithmetic the paper uses in its bottleneck
analyses (§3.3 Advice #3, §4), generalized to all resources at once.

Resources modelled per server NIC:

* per-direction network goodput (wire bytes),
* per-direction PCIe1/PCIe0 wire bytes,
* NIC verb pools — READ: host / SoC / combined; WRITE: the same trio
  (the §4 reserved-core effect),
* NIC DMA transaction issue (host- and SoC-target rates),
* NIC DMA TLP processing, with head-of-line collapse for oversized
  requests with a non-posted small-MTU leg,
* outstanding-transaction windows (read slots / posted-write buffers) —
  the §3.1 "NIC cores stall longer" mechanism,
* endpoint memory subsystems (DDIO vs single-channel DRAM),
* requester posting capacity (clients / host / SoC, with doorbell
  batching) and responder echo CPUs for SEND.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.core.cache import (
    LRUCache,
    ScenarioKey,
    SolverCache,
    fingerprint,
    memoized,
    testbed_fingerprint,
)
from repro.core.packets import PacketCountModel, PathPacketCounts
from repro.core.paths import CommPath, Opcode
from repro.net.topology import Testbed
from repro.nic.core import Endpoint
from repro.units import GB, to_gbps

# A direction carrying at least this much payload per request counts as
# "data-loaded" for the full-duplex derating of §3.1/Fig 5.
_DATA_DIRECTION_THRESHOLD = 1024

_CTL_WIRE = 36  # wire bytes of a header-only network packet (req/ack)

#: Memoized per-flow demand vectors, keyed by (testbed fingerprint,
#: flow fingerprint, flow index, duplex flag).  Entries are shared and
#: must be treated as read-only.
DEMAND_CACHE = LRUCache(maxsize=1 << 14, name="demand")


@lru_cache(maxsize=1 << 14)
def _net_segments(payload: int, mtu: int) -> int:
    """Network MTU segmentation, computed once per (payload, MTU)."""
    return max(1, math.ceil(payload / mtu))


@dataclass(frozen=True)
class Flow:
    """One stream of identical RDMA requests on a communication path.

    ``requesters`` counts client *machines* for paths ① and ②, and
    requester *threads* for the intra-machine path ③.  ``range_bytes``
    is the responder-side address range the requests spread over (the
    paper's default is a 10 GB region, §3).
    """

    path: CommPath
    op: Opcode
    payload: int
    requesters: int = 11
    range_bytes: float = 10 * GB
    doorbell_batch: int = 1
    weight: float = 1.0
    rate_cap: Optional[float] = None  # requests/ns; admission-control cap
    label: str = ""

    def __post_init__(self):
        if self.payload < 0:
            raise ValueError(f"negative payload: {self.payload}")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ValueError(f"rate cap must be positive: {self.rate_cap}")
        if self.requesters < 1:
            raise ValueError(f"need >= 1 requester: {self.requesters}")
        if self.range_bytes < max(1, self.payload):
            raise ValueError("address range smaller than one payload")
        if self.doorbell_batch < 1:
            raise ValueError(f"bad doorbell batch: {self.doorbell_batch}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive: {self.weight}")

    @property
    def name(self) -> str:
        return self.label or (
            f"{self.path.label} {self.op.value} {self.payload}B")


class Scenario:
    """A set of flows sharing one testbed's resources.

    Demand vectors are built lazily: a solver-cache hit never touches
    them, and per-flow vectors are memoized by content so a flow shape
    shared between scenarios is only ever priced once.
    """

    def __init__(self, testbed: Testbed, flows: Sequence[Flow]):
        if not flows:
            raise ValueError("scenario needs at least one flow")
        self.testbed = testbed
        self.flows = list(flows)
        self._packets = PacketCountModel(testbed.snic.spec)
        self._demands: Optional[List[Dict[str, float]]] = None
        self._key: Optional[ScenarioKey] = None

    @property
    def key(self) -> ScenarioKey:
        """Content-based cache key: testbed fingerprint + flow tuple."""
        if self._key is None:
            self._key = ScenarioKey.of(self.testbed, self.flows)
        return self._key

    @property
    def demands(self) -> List[Dict[str, float]]:
        if self._demands is None:
            self._demands = self._build_all()
        return self._demands

    @classmethod
    def solve_batch(cls, testbed: Testbed, flow_sets: Sequence,
                    engine: str = "auto", use_cache: bool = True,
                    timings=None) -> List["SolverResult"]:
        """Solve many scenarios at once, one :class:`SolverResult` each.

        ``flow_sets`` is a sequence of flow lists (or prebuilt
        scenarios).  ``engine`` selects the implementation:

        * ``"vector"`` — the numpy demand-tensor engine
          (:mod:`repro.core.batch`); raises ``ValueError`` when numpy
          is not installed,
        * ``"scalar"`` — the per-point reference solver,
        * ``"auto"`` — vector when numpy is importable, else scalar.

        Both engines share :data:`RESULT_CACHE` and agree on every
        solved rate, so the choice only affects wall-time.
        """
        from repro.core import batch

        if engine not in ("scalar", "vector", "auto"):
            raise ValueError(f"unknown engine: {engine!r}")
        if engine == "auto":
            engine = "vector" if batch.numpy_available() else "scalar"
        if engine == "vector":
            return batch.BatchSolver().solve(testbed, flow_sets,
                                             use_cache=use_cache,
                                             timings=timings)
        import time as _time
        from contextlib import nullcontext
        solver = ThroughputSolver()
        scenarios = [flows if isinstance(flows, cls)
                     else cls(testbed, list(flows)) for flows in flow_sets]
        start = _time.perf_counter()
        with (timings.stage("solve") if timings is not None
              else nullcontext()):
            results = [solver.solve(s, use_cache=use_cache)
                       for s in scenarios]
        batch.ENGINE_STATS.record("scalar", len(scenarios),
                                  _time.perf_counter() - start)
        return results

    # -- demand construction ------------------------------------------------------

    def _build_all(self) -> List[Dict[str, float]]:
        duplex = self._network_duplex_loaded()
        tb_fp = testbed_fingerprint(self.testbed)
        demands = []
        for idx, flow in enumerate(self.flows):
            memo_key = (tb_fp, fingerprint(flow), idx, duplex)
            demands.append(memoized(
                DEMAND_CACHE, memo_key,
                lambda f=flow, i=idx: self._build(f, i, duplex)))
        return demands

    def _network_duplex_loaded(self) -> bool:
        """True when client-path data flows load both network directions."""
        loaded_c2s = loaded_s2c = False
        for flow in self.flows:
            if not flow.path.uses_network:
                continue
            if flow.payload < _DATA_DIRECTION_THRESHOLD:
                continue
            if flow.op is Opcode.READ:
                loaded_s2c = True
            else:
                loaded_c2s = True
        return loaded_c2s and loaded_s2c

    def _build(self, flow: Flow, idx: int, duplex: bool) -> Dict[str, float]:
        if flow.path is CommPath.RNIC1:
            demand = self._build_rnic(flow, idx, duplex)
        elif flow.path.intra_machine:
            demand = self._build_path3(flow)
        else:
            demand = self._build_client_snic(flow, idx, duplex)
        if flow.rate_cap is not None:
            # A private resource saturating exactly at the admission cap.
            demand[f"cap:{idx}"] = 1.0 / flow.rate_cap
        return demand

    # .. shared helpers ...........................................................

    def _net_packets(self, payload: int, spec) -> int:
        return _net_segments(payload, spec.network_mtu)

    def _net_wire(self, payload: int, spec) -> float:
        return payload + self._net_packets(payload, spec) * spec.net_header_bytes

    def _add(self, demand: Dict[str, float], key: str, value: float) -> None:
        if value > 0:
            demand[key] = demand.get(key, 0.0) + value

    def _client_side(self, flow: Flow, idx: int, demand: Dict[str, float],
                     nic_spec, prefix: str, duplex: bool) -> None:
        """Requester-side demands for client-driven paths (①, ②)."""
        testbed = self.testbed
        issue = testbed.client_issue_capacity(flow.requesters,
                                              flow.doorbell_batch)
        self._add(demand, f"issue:clients:{idx}", 1.0 / issue)

        wire = self._net_wire(flow.payload, nic_spec)
        if flow.op is Opcode.READ:
            c2s, s2c = _CTL_WIRE, wire
        elif flow.op is Opcode.WRITE:
            c2s, s2c = wire, _CTL_WIRE
        else:  # SEND echo: payload out, small reply back
            c2s, s2c = wire, 2 * _CTL_WIRE
        net_cap = nic_spec.network_bandwidth * nic_spec.link_efficiency
        if duplex:
            net_cap *= nic_spec.duplex_derate
        self._add(demand, f"{prefix}net:c2s", c2s / net_cap)
        self._add(demand, f"{prefix}net:s2c", s2c / net_cap)

        client_cap = testbed.client_network_capacity(flow.requesters)
        self._add(demand, f"clientnet:{idx}:c2s", c2s / client_cap)
        self._add(demand, f"clientnet:{idx}:s2c", s2c / client_cap)

    def _verb_demand(self, flow: Flow, demand: Dict[str, float],
                     endpoint: Optional[Endpoint], prefix: str,
                     ops_factor: float = 1.0) -> None:
        spec = (self.testbed.rnic.spec.cores if prefix == "r"
                else self.testbed.snic.spec.cores)
        ops = self._net_packets(flow.payload, spec) * ops_factor
        if flow.op is Opcode.SEND:
            ops *= 2  # receive processing + response transmission
        pool = "read" if flow.op is Opcode.READ else "write"
        if prefix == "r":
            self._add(demand, f"rverbs:{pool}",
                      ops / self._rnic_pool_rate(pool))
            return
        rates = self._snic_pool_rates(pool)
        if endpoint is not None:
            key = "host" if endpoint is Endpoint.HOST else "soc"
            self._add(demand, f"verbs:{pool}:{key}", ops / rates[key])
        self._add(demand, f"verbs:{pool}:total", ops / rates["total"])

    def _rnic_pool_rate(self, pool: str) -> float:
        cores = self.testbed.rnic.spec.cores
        return (cores.verb_rate_host_only if pool == "read"
                else cores.verb_rate_write_host)

    def _snic_pool_rates(self, pool: str) -> Dict[str, float]:
        cores = self.testbed.snic.spec.cores
        if pool == "read":
            return {"host": cores.verb_rate_host_only,
                    "soc": cores.verb_rate_soc_only,
                    "total": cores.verb_rate_concurrent}
        return {"host": cores.verb_rate_write_host,
                "soc": cores.verb_rate_write_soc,
                "total": cores.verb_rate_write_concurrent}

    def _pcie_wire_demand(self, demand: Dict[str, float],
                          counts: PathPacketCounts) -> None:
        spec = self.testbed.snic.spec
        cap1 = spec.pcie1.bandwidth * spec.switch_derate
        cap0 = spec.pcie0.bandwidth * spec.switch_derate
        self._add(demand, "pcie1:to_nic", counts.pcie1_to_nic_bytes / cap1)
        self._add(demand, "pcie1:to_switch",
                  counts.pcie1_to_switch_bytes / cap1)
        self._add(demand, "pcie0:to_host", counts.pcie0_to_host_bytes / cap0)
        self._add(demand, "pcie0:to_switch",
                  counts.pcie0_to_switch_bytes / cap0)

    def _stall_windows(self, flow: Flow, demand: Dict[str, float],
                       read_from: Optional[Endpoint],
                       write_to: Optional[Endpoint], prefix: str) -> None:
        """Outstanding-transaction occupancy (§3.1 stall mechanism)."""
        if flow.payload == 0:
            return
        testbed = self.testbed
        if prefix == "r":
            cores = testbed.rnic.spec.cores
            crossing = {Endpoint.HOST: testbed.rnic.spec.host_link_latency}
            memory = {Endpoint.HOST: testbed.rnic.host_memory}
        else:
            snic = testbed.snic
            cores = snic.spec.cores
            crossing = {e: snic.crossing_latency(e) for e in Endpoint}
            memory = {e: snic.memory_of(e) for e in Endpoint}
        if read_from is not None:
            holding = (2 * crossing[read_from] + cores.nic_base_ns
                       + memory[read_from].dma_access_latency(
                           "read", flow.range_bytes))
            self._add(demand, f"{prefix}dma:read_slots",
                      holding / cores.read_slots)
        if write_to is not None:
            holding = (crossing[write_to] + cores.nic_base_ns
                       + memory[write_to].dma_access_latency(
                           "write", flow.range_bytes))
            self._add(demand, f"{prefix}dma:write_buffers",
                      holding / cores.write_buffers)

    def _dma_engine_demand(self, flow: Flow, demand: Dict[str, float],
                           counts: PathPacketCounts, transactions: int,
                           nonposted: bool, min_mps: int,
                           s2h: bool, prefix: str) -> None:
        cores = (self.testbed.rnic.spec.cores if prefix == "r"
                 else self.testbed.snic.spec.cores)
        if flow.payload == 0:
            return
        ops_rate = (cores.dma_ops_soc
                    if min_mps <= 128 and not flow.path.intra_machine
                    else cores.dma_ops_host)
        self._add(demand, f"{prefix}dma:ops", transactions / ops_rate)
        hol_exposed = nonposted and min_mps <= 128
        pps_cap = (cores.hol_pps
                   if hol_exposed and flow.payload > (
                       cores.hol_threshold_s2h if s2h else cores.hol_threshold)
                   else cores.pcie_pps)
        # The engine handles the TLPs adjacent to the NIC (its own PCIe
        # port) — pcie1 for the SmartNIC, the host link for the RNIC.
        nic_tlps = (counts.pcie0_total if prefix == "r"
                    else counts.pcie1_total)
        self._add(demand, f"{prefix}dma:tlps", nic_tlps / pps_cap)

    def _memory_demand(self, flow: Flow, demand: Dict[str, float],
                       endpoint: Endpoint, op: str, prefix: str) -> None:
        if flow.payload == 0:
            return
        if prefix == "r":
            memory = self.testbed.rnic.host_memory
            key = "rmem:host"
        else:
            memory = self.testbed.snic.memory_of(endpoint)
            key = f"mem:{'host' if endpoint is Endpoint.HOST else 'soc'}"
        cap = memory.dma_request_capacity(op, flow.payload, flow.range_bytes)
        self._add(demand, key, 1.0 / cap)

    def _echo_demand(self, flow: Flow, demand: Dict[str, float],
                     endpoint: Endpoint, prefix: str) -> None:
        if flow.op is not Opcode.SEND:
            return
        testbed = self.testbed
        if prefix == "r":
            cap = testbed.host_cpu.echo_capacity()
            self._add(demand, "rcpu:echo:host", 1.0 / cap)
            return
        snic_spec = testbed.snic.spec
        if endpoint is Endpoint.HOST:
            cap = (testbed.host_cpu.echo_capacity()
                   * snic_spec.cores.send_derate_snic)
            self._add(demand, "cpu:host", 1.0 / cap)
        else:
            cap = testbed.snic.soc.echo_capacity()
            self._add(demand, "cpu:soc", 1.0 / cap)

    # .. per-path builders ...........................................................

    def _build_rnic(self, flow: Flow, idx: int,
                    duplex: bool) -> Dict[str, float]:
        demand: Dict[str, float] = {}
        spec = self.testbed.rnic.spec
        self._client_side(flow, idx, demand, spec.cores, "r", duplex)
        self._verb_demand(flow, demand, None, "r")
        counts = self._packets.counts(CommPath.RNIC1, flow.op, flow.payload)
        cap = spec.host_link.bandwidth
        self._add(demand, "rpcie:to_host", counts.pcie0_to_host_bytes / cap)
        self._add(demand, "rpcie:to_nic", counts.pcie0_to_switch_bytes / cap)
        nonposted = flow.op is Opcode.READ
        transactions = 2 if nonposted else 1
        self._dma_engine_demand(flow, demand, counts, transactions,
                                nonposted, spec.host_mps, False, "r")
        mem_op = flow.op.memory_op
        self._stall_windows(
            flow, demand,
            read_from=Endpoint.HOST if mem_op == "read" else None,
            write_to=Endpoint.HOST if mem_op == "write" else None,
            prefix="r")
        self._memory_demand(flow, demand, Endpoint.HOST, mem_op, "r")
        self._echo_demand(flow, demand, Endpoint.HOST, "r")
        return demand

    def _build_client_snic(self, flow: Flow, idx: int,
                           duplex: bool) -> Dict[str, float]:
        demand: Dict[str, float] = {}
        snic = self.testbed.snic
        endpoint = flow.path.ends.responder
        self._client_side(flow, idx, demand, snic.spec.cores, "", duplex)
        self._verb_demand(flow, demand, endpoint, "")
        counts = self._packets.counts(flow.path, flow.op, flow.payload)
        self._pcie_wire_demand(demand, counts)
        nonposted = flow.op is Opcode.READ
        transactions = 2 if nonposted else 1
        self._dma_engine_demand(flow, demand, counts, transactions,
                                nonposted, snic.mps_for(endpoint), False, "")
        mem_op = flow.op.memory_op
        self._stall_windows(
            flow, demand,
            read_from=endpoint if mem_op == "read" else None,
            write_to=endpoint if mem_op == "write" else None,
            prefix="")
        self._memory_demand(flow, demand, endpoint, mem_op, "")
        self._echo_demand(flow, demand, endpoint, "")
        return demand

    def _build_path3(self, flow: Flow) -> Dict[str, float]:
        demand: Dict[str, float] = {}
        testbed = self.testbed
        snic = testbed.snic
        h2s = flow.path is CommPath.SNIC3_H2S

        # Requester posting (threads of the host or the SoC).  Posting
        # also steals cycles from whatever else runs on those cores
        # (e.g. an echo server) — the S4 SEND interference; calibrated
        # at half a posting slot of shared-CPU time per request.
        if h2s:
            issue = testbed.host_issue_capacity(flow.requesters,
                                                flow.doorbell_batch)
            self._add(demand, "issue:host", 1.0 / issue)
            self._add(demand, "cpu:host", 0.5 / issue)
        else:
            issue = testbed.soc_issue_capacity(flow.requesters,
                                               flow.doorbell_batch)
            self._add(demand, "issue:soc", 1.0 / issue)
            self._add(demand, "cpu:soc", 0.5 / issue)

        # Doorbell + CQE TLPs between requester and NIC (88 wire bytes
        # each way; routed over the internal fabric).
        spec = snic.spec
        cap1 = spec.pcie1.bandwidth * spec.switch_derate
        cap0 = spec.pcie0.bandwidth * spec.switch_derate
        if h2s:
            for key, cap in (("pcie0:to_switch", cap0), ("pcie1:to_nic", cap1),
                             ("pcie1:to_switch", cap1), ("pcie0:to_host", cap0)):
                self._add(demand, key, 88.0 / cap)
        else:
            self._add(demand, "pcie1:to_nic", 88.0 / cap1)
            self._add(demand, "pcie1:to_switch", 88.0 / cap1)

        # NIC verb processing: path-3 requests occupy a fraction of a
        # shared-pool slot (calibrated: the 7-15 % READ interference of S4).
        endpoint = flow.path.ends.responder
        self._verb_demand(flow, demand, None, "", ops_factor=0.7)

        # Data movement: fetch (non-posted) + deliver legs.
        counts = self._packets.counts(flow.path, flow.op, flow.payload)
        self._pcie_wire_demand(demand, counts)
        requester_end = Endpoint.HOST if h2s else Endpoint.SOC
        if flow.op is Opcode.READ:
            source, sink = endpoint, requester_end
        else:
            source, sink = requester_end, endpoint
        transactions = 3
        s2h_data = source is Endpoint.SOC  # data leaves the SoC first
        self._dma_engine_demand(flow, demand, counts, transactions,
                                True, 128, s2h_data, "")
        self._stall_windows(flow, demand, read_from=source, write_to=sink,
                            prefix="")
        self._memory_demand(flow, demand, source, "read", "")
        self._memory_demand(flow, demand, sink, "write", "")
        self._echo_demand(flow, demand, endpoint, "")
        return demand


@dataclass
class SolverResult:
    """Per-flow peak rates and the resources that pinned them."""

    flows: List[Flow]
    rates: List[float]                      # requests/ns
    bottlenecks: List[str]                  # resource key per flow
    utilization: Dict[str, float] = field(default_factory=dict)

    def rate_of(self, index: int) -> float:
        """Peak request rate of flow ``index``, requests/ns."""
        return self.rates[index]

    def mrps_of(self, index: int) -> float:
        """Peak request rate, millions of requests per second."""
        return self.rates[index] * 1e3

    def goodput_of(self, index: int) -> float:
        """Payload bandwidth of flow ``index``, bytes/ns."""
        return self.rates[index] * self.flows[index].payload

    def gbps_of(self, index: int) -> float:
        """Payload bandwidth of flow ``index`` in Gbps."""
        return to_gbps(self.goodput_of(index))

    @property
    def total_rate(self) -> float:
        return sum(self.rates)

    @property
    def total_mrps(self) -> float:
        return self.total_rate * 1e3

    @property
    def total_goodput(self) -> float:
        return sum(self.goodput_of(i) for i in range(len(self.flows)))

    @property
    def total_gbps(self) -> float:
        return to_gbps(self.total_goodput)


class ThroughputSolver:
    """Max-min water-filling over a scenario's demand vectors.

    ``solve`` consults the module-level :data:`RESULT_CACHE` keyed by
    scenario content; a hit skips demand construction entirely and
    returns the exact ``SolverResult`` of the cold solve (treat it as
    read-only).  Pass ``use_cache=False`` to force a cold solve.
    """

    def __init__(self, tolerance: float = 1e-12):
        self.tolerance = tolerance

    def solve(self, scenario: Scenario,
              use_cache: bool = True) -> SolverResult:
        if use_cache and _cache_enabled:
            key = scenario.key
            result = RESULT_CACHE.get(key)
            if result is None:
                result = self._solve_cold(scenario)
                RESULT_CACHE.put(key, result)
            return result
        return self._solve_cold(scenario)

    def _solve_cold(self, scenario: Scenario) -> SolverResult:
        flows = scenario.flows
        demands = scenario.demands
        n = len(flows)
        for i, demand in enumerate(demands):
            if not demand:
                raise ValueError(f"flow {flows[i].name!r} has no demand; "
                                 "cannot bound its rate")
        rates = [0.0] * n
        bottlenecks = [""] * n
        usage: Dict[str, float] = {}
        active = set(range(n))

        while active:
            best_delta = math.inf
            best_resource = None
            for key in {k for i in active for k in demands[i]}:
                load = sum(flows[i].weight * demands[i].get(key, 0.0)
                           for i in active)
                if load <= 0:
                    continue
                headroom = 1.0 - usage.get(key, 0.0)
                delta = max(0.0, headroom) / load
                if delta < best_delta:
                    best_delta = delta
                    best_resource = key
            if best_resource is None:
                break
            # Grow every active flow by its weighted share.
            for i in active:
                rates[i] += flows[i].weight * best_delta
            for key in set().union(*(demands[i].keys() for i in active)):
                usage[key] = usage.get(key, 0.0) + best_delta * sum(
                    flows[i].weight * demands[i].get(key, 0.0)
                    for i in active)
            # Freeze flows touching the saturated resource.
            frozen = {i for i in active
                      if demands[i].get(best_resource, 0.0) > 0}
            for i in frozen:
                bottlenecks[i] = best_resource
            active -= frozen

        return SolverResult(flows=list(flows), rates=rates,
                            bottlenecks=bottlenecks, utilization=usage)

    def peak(self, testbed: Testbed, flow: Flow) -> SolverResult:
        """Convenience: solve a single-flow scenario."""
        return self.solve(Scenario(testbed, [flow]))


# ---------------------------------------------------------------------------
# Result cache (in-memory LRU + optional disk layer)
# ---------------------------------------------------------------------------


def _flow_to_json(flow: Flow) -> dict:
    return {"path": flow.path.value, "op": flow.op.value,
            "payload": flow.payload, "requesters": flow.requesters,
            "range_bytes": flow.range_bytes,
            "doorbell_batch": flow.doorbell_batch, "weight": flow.weight,
            "rate_cap": flow.rate_cap, "label": flow.label}


def _flow_from_json(obj: dict) -> Flow:
    return Flow(path=CommPath(obj["path"]), op=Opcode(obj["op"]),
                payload=obj["payload"], requesters=obj["requesters"],
                range_bytes=obj["range_bytes"],
                doorbell_batch=obj["doorbell_batch"], weight=obj["weight"],
                rate_cap=obj["rate_cap"], label=obj["label"])


def _result_encode(result: SolverResult) -> dict:
    return {"flows": [_flow_to_json(f) for f in result.flows],
            "rates": result.rates, "bottlenecks": result.bottlenecks,
            "utilization": result.utilization}


def _result_decode(obj: dict) -> SolverResult:
    return SolverResult(flows=[_flow_from_json(f) for f in obj["flows"]],
                        rates=list(obj["rates"]),
                        bottlenecks=list(obj["bottlenecks"]),
                        utilization=dict(obj["utilization"]))


#: Memoized ``SolverResult``s keyed by :class:`ScenarioKey`.
RESULT_CACHE = SolverCache(maxsize=1 << 13, name="solver",
                           encode=_result_encode, decode=_result_decode)

_cache_enabled = True


def configure_result_cache(enabled: bool = True,
                           disk_dir: Optional[str] = None) -> SolverCache:
    """Switch the solver result cache on/off and set its disk layer.

    ``disk_dir`` enables a JSON file per scenario under that directory,
    making repeated points free across processes and CLI invocations.
    """
    global _cache_enabled
    _cache_enabled = enabled
    RESULT_CACHE.disk_dir = disk_dir
    return RESULT_CACHE
