"""Bulk host->SoC offload engine, applying the paper's advice.

An offloaded task (compression, filtering, index building ...) running
on the SoC needs host-resident data.  Moving it naively trips two
anomalies: oversized requests collapse the DMA engine (Advice #3), and
per-request MMIO posting throttles the wimpy SoC cores (Advice #4).
:class:`OffloadEngine` pulls a host region into SoC memory with
configurable segmentation and doorbell batching so both effects can be
measured and compared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

from repro.rdma.doorbell import DoorbellBatcher
from repro.rdma.mr import MemoryRegion
from repro.rdma.verbs import RdmaContext
from repro.sim.events import AllOf
from repro.units import MB


@dataclass(frozen=True)
class OffloadConfig:
    """How the engine moves data.

    * ``segment_bytes`` — request size (Advice #3 says keep it well
      below the head-of-line threshold).
    * ``doorbell_batch`` — WQEs per doorbell at the SoC side (Advice #4
    * says batch there).
    * ``inflight`` — segments kept outstanding.
    """

    segment_bytes: int = 1 * MB
    doorbell_batch: int = 16
    inflight: int = 16

    def __post_init__(self):
        if self.segment_bytes <= 0:
            raise ValueError(f"bad segment size: {self.segment_bytes}")
        if self.doorbell_batch < 1:
            raise ValueError(f"bad batch: {self.doorbell_batch}")
        if self.inflight < 1:
            raise ValueError(f"bad inflight: {self.inflight}")


@dataclass
class OffloadStats:
    """Outcome of one transfer."""

    bytes_moved: int = 0
    segments: int = 0
    doorbells: int = 0
    elapsed_ns: float = 0.0

    @property
    def goodput(self) -> float:
        """Achieved bandwidth, bytes/ns."""
        return self.bytes_moved / self.elapsed_ns if self.elapsed_ns else 0.0


class OffloadEngine:
    """Pulls host memory into SoC memory over path ③ (S2H requests)."""

    def __init__(self, ctx: RdmaContext, config: OffloadConfig = OffloadConfig()):
        self.ctx = ctx
        self.config = config
        self.qp, _ = ctx.connect_rc("soc", "host")
        self.stats = OffloadStats()

    def pull(self, host_mr: MemoryRegion, soc_mr: MemoryRegion,
             nbytes: int) -> Generator:
        """A process generator: copy ``nbytes`` host -> SoC.

        Issues READs from the SoC in segments, ``doorbell_batch`` WQEs
        per doorbell, with at most ``inflight`` segments outstanding.
        """
        if nbytes <= 0:
            raise ValueError(f"nothing to pull: {nbytes}")
        if nbytes > min(host_mr.length, soc_mr.length):
            raise ValueError("transfer larger than a buffer")
        sim = self.ctx.cluster.sim
        config = self.config
        start = sim.now
        batcher = DoorbellBatcher(self.qp, max_batch=config.doorbell_batch)

        total_segments = math.ceil(nbytes / config.segment_bytes)
        issued = 0
        outstanding = []
        while issued < total_segments:
            window = min(config.doorbell_batch,
                         total_segments - issued,
                         config.inflight - len(outstanding))
            for _ in range(window):
                offset = issued * config.segment_bytes
                size = min(config.segment_bytes, nbytes - offset)
                batcher.queue_read(issued, soc_mr, host_mr, size,
                                   local_offset=offset, remote_offset=offset)
                issued += 1
            outstanding.extend(batcher.flush())
            self.stats.doorbells += 1
            if len(outstanding) >= config.inflight:
                yield AllOf(sim, outstanding)
                outstanding = []
        if outstanding:
            yield AllOf(sim, outstanding)

        self.stats.bytes_moved += nbytes
        self.stats.segments += total_segments
        self.stats.elapsed_ns += sim.now - start
        return self.stats
