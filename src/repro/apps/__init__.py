"""Example distributed systems built on the RDMA stack.

* :mod:`repro.apps.kvstore` — the Fig 1 scenario: a distributed
  in-memory key-value store served either with one-sided READs (network
  amplification) or with the index offloaded to the SmartNIC SoC.
* :mod:`repro.apps.rpc` — a two-sided UD echo/RPC server (the Fig 4
  SEND/RECV responder).
* :mod:`repro.apps.offload` — a bulk host->SoC offload engine applying
  Advice #3 (segmentation) and Advice #4 (SoC-side doorbell batching).
* :mod:`repro.apps.logship` — log shipping with a token-bucket budget
  on path ③ (the §4 partitioning rule as an application).
* :mod:`repro.apps.replicated_kv` — a two-server replicated KV store:
  budgeted path-③ shipping, SoC-to-SoC relay, offloaded replica reads.
"""

from repro.apps.kvstore import KVServer, OneSidedKVClient, OffloadedKVClient
from repro.apps.rpc import RpcServer, RpcClient
from repro.apps.offload import OffloadEngine, OffloadConfig, OffloadStats
from repro.apps.logship import (
    LogShipper,
    ShipStats,
    TokenBucket,
    WriterStats,
    client_writer,
)
from repro.apps.replicated_kv import ReplicatedKV, ReplicationStats

__all__ = [
    "KVServer",
    "OneSidedKVClient",
    "OffloadedKVClient",
    "RpcServer",
    "RpcClient",
    "OffloadEngine",
    "OffloadConfig",
    "OffloadStats",
    "LogShipper",
    "ShipStats",
    "TokenBucket",
    "WriterStats",
    "client_writer",
    "ReplicatedKV",
    "ReplicationStats",
]
