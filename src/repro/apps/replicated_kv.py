"""A replicated key-value store across two SmartNIC servers.

The capstone scenario for the paper's advice, combining every path:

* **puts** land in the primary store on server 0's host (path ①-style
  service),
* a **shipper** offloaded to server 0's SoC pulls committed entries
  from host memory over path ③ — budgeted at ``P − N`` per the §4 rule —
  and forwards them to the peer SoC over the fabric,
* an **applier** on server 1's SoC installs entries into a replica
  store living in SoC memory, from which clients read via single-RPC
  offloaded gets (Fig 1(b)).

The replication lag it reports is the end-to-end cost of the pipeline
the advice shapes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.apps.kvstore import KVServer
from repro.apps.logship import TokenBucket
from repro.rdma.verbs import RdmaContext
from repro.sim.monitor import Histogram
from repro.sim.resources import Store
from repro.units import MB, gbps

_ENTRY = struct.Struct("<IIQ")  # key length, value length, put timestamp


class ReplicationLogFullError(Exception):
    """The primary's replication log wrapped into unshipped entries."""


@dataclass
class ReplicationStats:
    puts: int = 0
    shipped: int = 0
    applied: int = 0
    lag: Histogram = field(default_factory=Histogram)

    @property
    def pending(self) -> int:
        return self.puts - self.applied


class ReplicatedKV:
    """Primary on server 0's host, replica on server 1's SoC."""

    def __init__(self, ctx: RdmaContext, log_bytes: int = 4 * MB,
                 budget_gbps: Optional[float] = 56.0,
                 n_buckets: int = 4096):
        cluster = ctx.cluster
        if "soc1" not in cluster.nodes:
            raise ValueError("replicated KV needs a two-server cluster "
                             "(SimCluster(..., n_servers=2))")
        self.ctx = ctx
        self.sim = cluster.sim
        self.primary = KVServer(ctx, "host", n_buckets=n_buckets)
        self.replica = KVServer(ctx, "soc1", n_buckets=n_buckets)
        self.stats = ReplicationStats()

        # The replication log in host memory, pulled by the shipper.
        self.log = ctx.reg_mr("host", log_bytes)
        self._log_head = 0
        self._pending: Store = Store(self.sim)
        self._unshipped_bytes = 0

        # Shipper: server 0's SoC pulls entries over path 3 (budgeted)
        # and relays them to the peer SoC over the fabric.
        self._staging = ctx.reg_mr("soc", 64 << 10)
        self._path3_qp, _ = ctx.connect_rc("soc", "host")
        self._relay_qp, self._applier_qp = ctx.connect_rc("soc", "soc1")
        self._applier_mr = ctx.reg_mr("soc1", 64 << 10)
        self._bucket = (None if budget_gbps is None
                        else TokenBucket(gbps(budget_gbps), burst=8 << 10))
        self.sim.process(self._shipper())
        self.sim.process(self._applier())

    # -- primary-side operations ----------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Apply a put on the primary and queue it for replication."""
        entry = _ENTRY.pack(len(key), len(value), int(self.sim.now)) + key + value
        if self._log_head + len(entry) > self.log.length:
            if self._unshipped_bytes > 0:
                raise ReplicationLogFullError(
                    "log wrapped while entries were still unshipped")
            self._log_head = 0
        self.primary.put(key, value)
        offset = self._log_head
        self.log.write_local(offset, entry)
        self._log_head += len(entry)
        self._unshipped_bytes += len(entry)
        self.stats.puts += 1
        self._pending.put((offset, len(entry), self.sim.now))

    # -- pipeline processes -------------------------------------------------------------

    def _shipper(self) -> Generator:
        wr = 0
        while True:
            offset, length, _put_at = yield self._pending.get()
            if self._bucket is not None:
                delay = self._bucket.delay_for(length, self.sim.now)
                if delay > 0:
                    yield self.sim.timeout(delay)
            wr += 1
            # Path 3: pull the entry from host memory into SoC staging.
            yield self._path3_qp.post_read(wr, self._staging, self.log,
                                           length, local_offset=0,
                                           remote_offset=offset)
            self._unshipped_bytes -= length
            payload = self._staging.read_local(0, length)
            self.stats.shipped += 1
            # Fabric: relay to the peer SoC.
            self._applier_qp.post_recv(wr, self._applier_mr)
            yield self._relay_qp.post_send(wr, payload, signaled=False)

    def _applier(self) -> Generator:
        while True:
            completion = yield self._applier_qp.recv_cq.wait()
            raw = self._applier_mr.read_local(0, completion.byte_len)
            key_len, value_len, put_at = _ENTRY.unpack(raw[:_ENTRY.size])
            body = raw[_ENTRY.size:]
            key = body[:key_len]
            value = body[key_len:key_len + value_len]
            self.replica.put(key, value)
            self.stats.applied += 1
            self.stats.lag.record(self.sim.now - put_at)

    # -- convenience --------------------------------------------------------------------

    def wait_replicated(self) -> Generator:
        """A process generator that returns once the replica caught up."""
        while self.stats.pending > 0:
            yield self.sim.timeout(1000.0)
        return self.stats
