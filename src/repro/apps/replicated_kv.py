"""A replicated key-value store across two SmartNIC servers.

The capstone scenario for the paper's advice, combining every path:

* **puts** land in the primary store on server 0's host (path ①-style
  service),
* a **shipper** offloaded to server 0's SoC pulls committed entries
  from host memory over path ③ — budgeted at ``P − N`` per the §4 rule —
  and forwards them to the peer SoC over the fabric,
* an **applier** on server 1's SoC installs entries into a replica
  store living in SoC memory, from which clients read via single-RPC
  offloaded gets (Fig 1(b)).

The replication lag it reports is the end-to-end cost of the pipeline
the advice shapes.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.apps.kvstore import KVServer
from repro.apps.logship import TokenBucket
from repro.rdma.qp import QPState, QPType
from repro.rdma.verbs import RdmaContext
from repro.sim.monitor import Histogram
from repro.sim.resources import Store
from repro.units import MB, gbps

_ENTRY = struct.Struct("<IIQ")  # key length, value length, put timestamp


class ReplicationLogFullError(Exception):
    """A single entry is larger than the whole replication log."""


@dataclass
class ReplicationStats:
    puts: int = 0
    shipped: int = 0
    applied: int = 0
    backpressured: int = 0   # puts parked while the log was full
    failovers: int = 0       # shipper path-3 -> host-relay switches
    lag: Histogram = field(default_factory=Histogram)
    degraded_lag: Histogram = field(default_factory=Histogram)

    @property
    def pending(self) -> int:
        return self.puts - self.applied


class ReplicatedKV:
    """Primary on server 0's host, replica on server 1's SoC."""

    def __init__(self, ctx: RdmaContext, log_bytes: int = 4 * MB,
                 budget_gbps: Optional[float] = 56.0,
                 n_buckets: int = 4096):
        cluster = ctx.cluster
        if "soc1" not in cluster.nodes:
            raise ValueError("replicated KV needs a two-server cluster "
                             "(SimCluster(..., n_servers=2))")
        self.ctx = ctx
        self.sim = cluster.sim
        self.primary = KVServer(ctx, "host", n_buckets=n_buckets)
        self.replica = KVServer(ctx, "soc1", n_buckets=n_buckets)
        self.stats = ReplicationStats()

        # The replication log in host memory, pulled by the shipper.
        self.log = ctx.reg_mr("host", log_bytes)
        self._log_head = 0
        self._pending: Store = Store(self.sim)
        self._unshipped_bytes = 0
        # Puts parked while the log is full of unshipped entries; the
        # shipper drains them as space frees (backpressure, not errors).
        self._backlog = deque()

        # Shipper: server 0's SoC pulls entries over path 3 (budgeted)
        # and relays them to the peer SoC over the fabric.
        self._staging = ctx.reg_mr("soc", 64 << 10)
        self._path3_qp, _ = ctx.connect_rc("soc", "host")
        self._relay_qp, self._applier_qp = ctx.connect_rc("soc", "soc1")
        self._applier_mr = ctx.reg_mr("soc1", 64 << 10)
        # Which QP the shipper posts replica-side receives on; swapped
        # by a failover together with _relay_qp.
        self._rx_qp = self._applier_qp
        self.degraded = False
        self._bucket = (None if budget_gbps is None
                        else TokenBucket(gbps(budget_gbps), burst=8 << 10))
        self.sim.process(self._shipper())
        self.sim.process(self._applier())

    # -- primary-side operations ----------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Apply a put on the primary and queue it for replication.

        When the log would wrap into unshipped entries the put is
        parked in a backlog (backpressure) and committed by the shipper
        once space frees; only an entry larger than the whole log is an
        error.
        """
        entry_len = _ENTRY.size + len(key) + len(value)
        if entry_len > self.log.length:
            raise ReplicationLogFullError(
                f"entry of {entry_len} B exceeds the {self.log.length} B log")
        self.stats.puts += 1
        if self._backlog or (self._log_head + entry_len > self.log.length
                             and self._unshipped_bytes > 0):
            self._backlog.append((key, value, self.sim.now))
            self.stats.backpressured += 1
            return
        self._commit(key, value, self.sim.now)

    def _commit(self, key: bytes, value: bytes, at: float) -> None:
        """Write a put into the log and hand it to the shipper."""
        entry = _ENTRY.pack(len(key), len(value), int(at)) + key + value
        if self._log_head + len(entry) > self.log.length:
            self._log_head = 0
        self.primary.put(key, value)
        offset = self._log_head
        self.log.write_local(offset, entry)
        self._log_head += len(entry)
        self._unshipped_bytes += len(entry)
        self._pending.put((offset, len(entry), at))

    def _drain_backlog(self) -> None:
        """Commit parked puts into the (now fully shipped) log."""
        self._log_head = 0
        while self._backlog:
            key, value, at = self._backlog[0]
            entry_len = _ENTRY.size + len(key) + len(value)
            if self._log_head + entry_len > self.log.length:
                break  # the rest waits for the next drain
            self._backlog.popleft()
            self._commit(key, value, at)

    # -- failover ----------------------------------------------------------------------

    def _fail_over(self) -> None:
        """Swap the shipper's relay from the dead SoC to the host.

        Degraded mode: the host CPU reads its own log (path ①-style
        service instead of the offloaded path ③) and relays to the peer
        SoC from the host NIC.  The replacement receive QP shares the
        applier's CQ, so the applier keeps draining without restarting.
        """
        if self.degraded:
            return
        self.degraded = True
        self.stats.failovers += 1
        self.ctx.cluster.bump("replicated_kv.failovers")
        host_qp = self.ctx.create_qp("host", QPType.RC)
        rx_qp = self.ctx.create_qp("soc1", QPType.RC,
                                   recv_cq=self._applier_qp.recv_cq)
        host_qp.connect(rx_qp)
        self._relay_qp = host_qp
        self._rx_qp = rx_qp

    def _host_read_ns(self, length: int) -> float:
        """Path ①-style host service for one entry in degraded mode."""
        host = self.ctx.cluster.node("host")
        return host.cpu.two_sided_latency_ns + length / gbps(100.0)

    # -- pipeline processes -------------------------------------------------------------

    def _shipper(self) -> Generator:
        wr = 0
        while True:
            offset, length, _put_at = yield self._pending.get()
            if self._bucket is not None and not self.degraded:
                delay = self._bucket.delay_for(length, self.sim.now)
                if delay > 0:
                    yield self.sim.timeout(delay)
            wr += 1
            if not self.degraded:
                # Path 3: pull the entry from host memory into staging.
                yield self._path3_qp.post_read(wr, self._staging, self.log,
                                               length, local_offset=0,
                                               remote_offset=offset)
                if self._path3_qp.state is QPState.ERROR:
                    # The SoC died under us (or retries exhausted).
                    self._fail_over()
            if self.degraded:
                # Host-side read of its own log: CPU service, no PCIe 3.
                yield self.sim.timeout(self._host_read_ns(length))
                payload = self.log.read_local(offset, length)
            else:
                payload = self._staging.read_local(0, length)
            self._unshipped_bytes -= length
            self.stats.shipped += 1
            if self._unshipped_bytes == 0 and self._backlog:
                self._drain_backlog()
            # Fabric: relay to the peer SoC.
            self._rx_qp.post_recv(wr, self._applier_mr)
            yield self._relay_qp.post_send(wr, payload, signaled=False)
            if self._relay_qp.state is QPState.ERROR:
                # Crashed between read and relay: switch and resend.
                self._fail_over()
                self._rx_qp.post_recv(wr, self._applier_mr)
                yield self._relay_qp.post_send(wr, payload, signaled=False)

    def _applier(self) -> Generator:
        recv_cq = self._applier_qp.recv_cq
        while True:
            completion = yield recv_cq.wait()
            raw = self._applier_mr.read_local(0, completion.byte_len)
            key_len, value_len, put_at = _ENTRY.unpack(raw[:_ENTRY.size])
            body = raw[_ENTRY.size:]
            key = body[:key_len]
            value = body[key_len:key_len + value_len]
            self.replica.put(key, value)
            self.stats.applied += 1
            self.stats.lag.record(self.sim.now - put_at)
            if self.degraded:
                self.stats.degraded_lag.record(self.sim.now - put_at)

    # -- convenience --------------------------------------------------------------------

    def wait_replicated(self) -> Generator:
        """A process generator that returns once the replica caught up."""
        while self.stats.pending > 0:
            yield self.sim.timeout(1000.0)
        return self.stats
