"""A two-sided RPC service over UD QPs (the Fig 4 SEND/RECV responder).

The server posts receive buffers, serves each inbound message after a
CPU service time, and replies to the sender.  The client issues
request-response calls and records latency — the echo microbenchmark of
the paper's two-sided rows.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.rdma.qp import QPType, QueuePair
from repro.rdma.verbs import RdmaContext
from repro.sim.monitor import Histogram

_HEADER = struct.Struct("<I")  # request id


@dataclass
class RpcStats:
    served: int = 0
    calls: int = 0
    latency: Histogram = field(default_factory=Histogram)


class RpcServer:
    """Serves RPCs on one node with a configurable handler."""

    def __init__(self, ctx: RdmaContext, node_name: str,
                 handler: Optional[Callable[[bytes], bytes]] = None,
                 recv_depth: int = 256, buf_bytes: int = 1 << 16):
        self.ctx = ctx
        self.node = ctx.cluster.node(node_name)
        self.qp = ctx.create_qp(node_name, QPType.UD)
        self.mr = ctx.reg_mr(node_name, buf_bytes)
        self.handler = handler or (lambda request: request)  # echo
        self.stats = RpcStats()
        self._service_ns = self.node.cpu.two_sided_latency_ns
        for _ in range(recv_depth):
            self.qp.post_recv(0, self.mr)
        ctx.cluster.sim.process(self._serve())

    @property
    def service_ns(self) -> float:
        """Per-message CPU service time (from the node's CPU model)."""
        return self._service_ns

    def _serve(self) -> Generator:
        sim = self.ctx.cluster.sim
        while True:
            completion = yield self.qp.recv_cq.wait()
            request = self.mr.read_local(0, completion.byte_len)
            source = QueuePair.by_qpn(self.qp.inbound_sources.popleft())
            yield sim.timeout(self._service_ns)
            header, body = request[:_HEADER.size], request[_HEADER.size:]
            response = header + self.handler(body)
            self.qp.post_recv(0, self.mr)
            self.stats.served += 1
            yield self.qp.post_send(0, response, dest=source, signaled=False)


class RpcClient:
    """Issues request-response calls against an :class:`RpcServer`."""

    def __init__(self, ctx: RdmaContext, node_name: str, server: RpcServer,
                 buf_bytes: int = 1 << 16):
        self.ctx = ctx
        self.server = server
        self.qp = ctx.create_qp(node_name, QPType.UD)
        self.mr = ctx.reg_mr(node_name, buf_bytes)
        self.stats = RpcStats()
        self._next_id = 0

    def call(self, payload: bytes) -> Generator:
        """A process generator performing one RPC; returns the response."""
        sim = self.ctx.cluster.sim
        start = sim.now
        self._next_id += 1
        request_id = self._next_id
        self.qp.post_recv(request_id, self.mr)
        message = _HEADER.pack(request_id) + payload
        yield self.qp.post_send(request_id, message, dest=self.server.qp,
                                signaled=False)
        completion = yield self.qp.recv_cq.wait()
        response = self.mr.read_local(0, completion.byte_len)
        (echoed_id,) = _HEADER.unpack(response[:_HEADER.size])
        if echoed_id != request_id:
            raise RuntimeError(
                f"out-of-order RPC response: {echoed_id} != {request_id}")
        self.stats.calls += 1
        self.stats.latency.record(sim.now - start)
        return response[_HEADER.size:]
