"""A two-sided RPC service over UD QPs (the Fig 4 SEND/RECV responder).

The server posts receive buffers, serves each inbound message after a
CPU service time, and replies to the sender.  The client issues
request-response calls and records latency — the echo microbenchmark of
the paper's two-sided rows.

UD is unreliable: under a fault injector, requests and replies can be
lost.  A client constructed with ``timeout_ns`` retries each call with a
capped exponential backoff (up to ``max_retries`` resends) and counts
timeouts; without it the original zero-overhead path runs unchanged.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.rdma.cq import Completion
from repro.rdma.qp import QPType
from repro.rdma.verbs import RdmaContext
from repro.sim.events import AnyOf
from repro.sim.monitor import Histogram

_HEADER = struct.Struct("<I")  # request id


class RpcTimeoutError(Exception):
    """An RPC exhausted its retries without seeing a reply."""


@dataclass
class RpcStats:
    served: int = 0
    calls: int = 0
    timeouts: int = 0
    latency: Histogram = field(default_factory=Histogram)

    @property
    def timeout_rate(self) -> float:
        """Timed-out attempts as a fraction of all reply waits."""
        waits = self.calls + self.timeouts
        return self.timeouts / waits if waits else 0.0


class RpcServer:
    """Serves RPCs on one node with a configurable handler."""

    def __init__(self, ctx: RdmaContext, node_name: str,
                 handler: Optional[Callable[[bytes], bytes]] = None,
                 recv_depth: int = 256, buf_bytes: int = 1 << 16):
        self.ctx = ctx
        self.node = ctx.cluster.node(node_name)
        self.qp = ctx.create_qp(node_name, QPType.UD)
        self.mr = ctx.reg_mr(node_name, buf_bytes)
        self.handler = handler or (lambda request: request)  # echo
        self.stats = RpcStats()
        self._service_ns = self.node.cpu.two_sided_latency_ns
        for _ in range(recv_depth):
            self.qp.post_recv(0, self.mr)
        ctx.cluster.sim.process(self._serve())

    @property
    def service_ns(self) -> float:
        """Per-message CPU service time (from the node's CPU model)."""
        return self._service_ns

    def _serve(self) -> Generator:
        sim = self.ctx.cluster.sim
        while True:
            completion = yield self.qp.recv_cq.wait()
            request = self.mr.read_local(0, completion.byte_len)
            source = self.ctx.cluster.qp_by_qpn(
                self.qp.inbound_sources.popleft())
            yield sim.timeout(self._service_ns)
            header, body = request[:_HEADER.size], request[_HEADER.size:]
            response = header + self.handler(body)
            self.qp.post_recv(0, self.mr)
            self.stats.served += 1
            yield self.qp.post_send(0, response, dest=source, signaled=False)


class RpcClient:
    """Issues request-response calls against an :class:`RpcServer`.

    ``timeout_ns`` arms the retry machinery: a call that sees no reply
    within the (exponentially growing, 8x-capped) timeout is resent up
    to ``max_retries`` times before :class:`RpcTimeoutError`.  With the
    default ``timeout_ns=None`` the client is the original lossless-path
    implementation with no extra simulation events.
    """

    def __init__(self, ctx: RdmaContext, node_name: str,
                 server: Optional[RpcServer] = None, buf_bytes: int = 1 << 16,
                 timeout_ns: Optional[float] = None, max_retries: int = 0,
                 lease=None, servers: Optional[dict] = None):
        if timeout_ns is not None and timeout_ns <= 0:
            raise ValueError(f"timeout must be positive: {timeout_ns}")
        if max_retries < 0:
            raise ValueError(f"negative max_retries: {max_retries}")
        if (lease is None) == (server is None):
            raise ValueError("pass either server= or lease=+servers=")
        if lease is not None and not servers:
            raise ValueError("scheduler-managed mode needs servers=")
        self.ctx = ctx
        # Scheduler-managed mode: ``lease`` (duck-typed: ``responder``
        # attribute) plus ``servers`` mapping node names to RpcServer
        # instances.  UD is connectionless, so following a migration is
        # just re-resolving the destination QP per call.
        self.lease = lease
        self.servers = servers or {}
        self._fixed_server = server
        self.qp = ctx.create_qp(node_name, QPType.UD)
        self.mr = ctx.reg_mr(node_name, buf_bytes)
        self.stats = RpcStats()
        self.timeout_ns = timeout_ns
        self.max_retries = max_retries
        self._next_id = 0

    @property
    def server(self) -> RpcServer:
        """The current destination (lease-resolved when managed)."""
        if self.lease is None:
            return self._fixed_server
        try:
            return self.servers[self.lease.responder]
        except KeyError:
            raise ValueError(
                f"no RPC server on {self.lease.responder!r}; have "
                f"{sorted(self.servers)}") from None

    def call(self, payload: bytes) -> Generator:
        """A process generator performing one RPC; returns the response."""
        sim = self.ctx.cluster.sim
        start = sim.now
        self._next_id += 1
        request_id = self._next_id
        self.qp.post_recv(request_id, self.mr)
        message = _HEADER.pack(request_id) + payload
        if self.timeout_ns is None:
            yield self.qp.post_send(request_id, message, dest=self.server.qp,
                                    signaled=False)
            completion = yield self.qp.recv_cq.wait()
            response = self.mr.read_local(0, completion.byte_len)
            (echoed_id,) = _HEADER.unpack(response[:_HEADER.size])
            if echoed_id != request_id:
                raise RuntimeError(
                    f"out-of-order RPC response: {echoed_id} != {request_id}")
        else:
            response = yield from self._call_with_retries(
                sim, request_id, message)
        self.stats.calls += 1
        self.stats.latency.record(sim.now - start)
        return response[_HEADER.size:]

    def _call_with_retries(self, sim, request_id: int, message: bytes):
        timeout = self.timeout_ns
        cap = self.timeout_ns * 8
        resends_left = self.max_retries
        while True:
            yield self.qp.post_send(request_id, message, dest=self.server.qp,
                                    signaled=False)
            while True:
                waiter = self.qp.recv_cq.wait()
                got = yield AnyOf(sim, [waiter, sim.timeout(timeout)])
                if isinstance(got, Completion):
                    response = self.mr.read_local(0, got.byte_len)
                    (echoed_id,) = _HEADER.unpack(response[:_HEADER.size])
                    if echoed_id == request_id:
                        return response
                    # A straggler reply to an earlier, timed-out attempt.
                    continue
                self.qp.recv_cq.cancel(waiter)
                break
            self.stats.timeouts += 1
            if resends_left <= 0:
                raise RpcTimeoutError(
                    f"rpc {request_id} timed out after "
                    f"{self.max_retries + 1} attempts")
            resends_left -= 1
            timeout = min(timeout * 2, cap)
            # The resend needs its own reply buffer; the original may
            # have been consumed by a straggler.
            self.qp.post_recv(request_id, self.mr)
