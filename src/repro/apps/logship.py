"""Log shipping with a budgeted path ③ — the §4 rule as an application.

A replication pipeline many RDMA systems run: clients stream WRITEs into
a host-resident log (path ①) while an offloaded shipper on the SoC pulls
committed segments into SoC memory (path ③) for compression / remote
replication.  Path ③ crosses PCIe1 twice, so an unthrottled shipper
steals bandwidth from the clients; the §4 rule says to cap it at
``P - N`` (56 Gbps on Bluefield-2).

:class:`LogShipper` implements the pull loop with a token-bucket rate
limiter so both configurations can be measured on the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.rdma.mr import MemoryRegion
from repro.rdma.verbs import RdmaContext
from repro.units import MB, gbps


@dataclass
class ShipStats:
    """Outcome of a shipping run."""

    shipped_bytes: int = 0
    segments: int = 0
    throttle_waits: int = 0

    def goodput(self, elapsed_ns: float) -> float:
        return self.shipped_bytes / elapsed_ns if elapsed_ns else 0.0


class TokenBucket:
    """A byte-rate limiter for simulation processes.

    ``rate`` is bytes/ns; ``burst`` bytes may be consumed instantly.
    ``delay_for(nbytes, now)`` returns how long the caller must wait
    before consuming ``nbytes``.
    """

    def __init__(self, rate: float, burst: int):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._last = 0.0

    def delay_for(self, nbytes: int, now: float) -> float:
        if nbytes < 0:
            raise ValueError(f"negative consumption: {nbytes}")
        elapsed = max(0.0, now - self._last)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = max(now, self._last)
        if nbytes <= self._tokens:
            self._tokens -= nbytes
            return 0.0
        deficit = nbytes - self._tokens
        # The consumption completes after the wait; account the refill
        # up to that instant as spent.  ``_last`` may already sit in the
        # future (reservations by concurrent callers) — the returned wait
        # covers that backlog too, so N processes sharing one bucket are
        # collectively paced at ``rate`` instead of each seeing only the
        # marginal deficit.
        self._tokens = 0.0
        self._last += deficit / self.rate
        return self._last - now


class LogShipper:
    """Pulls host log segments into SoC memory at a budgeted rate."""

    def __init__(self, ctx: RdmaContext, host_log: MemoryRegion,
                 segment_bytes: int = 1 * MB,
                 budget_gbps: Optional[float] = 56.0,
                 compress_ns_per_kb: float = 0.0):
        if segment_bytes <= 0:
            raise ValueError(f"bad segment size: {segment_bytes}")
        if budget_gbps is not None and budget_gbps <= 0:
            raise ValueError(f"bad budget: {budget_gbps}")
        if compress_ns_per_kb < 0:
            raise ValueError("negative compute cost")
        self.ctx = ctx
        self.host_log = host_log
        self.segment_bytes = segment_bytes
        self.compress_ns_per_kb = compress_ns_per_kb
        self.qp, _ = ctx.connect_rc("soc", "host")
        self.staging = ctx.reg_mr("soc", segment_bytes)
        self.stats = ShipStats()
        self._bucket = (None if budget_gbps is None
                        else TokenBucket(gbps(budget_gbps),
                                         burst=segment_bytes))

    def ship(self, nbytes: int) -> Generator:
        """A process generator: ship ``nbytes`` of log, oldest first."""
        if nbytes <= 0:
            raise ValueError(f"nothing to ship: {nbytes}")
        if nbytes > self.host_log.length:
            raise ValueError("shipping more than the log holds")
        sim = self.ctx.cluster.sim
        offset = 0
        wr = 0
        while offset < nbytes:
            size = min(self.segment_bytes, nbytes - offset)
            if self._bucket is not None:
                delay = self._bucket.delay_for(size, sim.now)
                if delay > 0:
                    self.stats.throttle_waits += 1
                    yield sim.timeout(delay)
            wr += 1
            yield self.qp.post_read(wr, self.staging, self.host_log, size,
                                    local_offset=0, remote_offset=offset)
            if self.compress_ns_per_kb:
                yield sim.timeout(self.compress_ns_per_kb * size / 1024)
            self.stats.shipped_bytes += size
            self.stats.segments += 1
            offset += size
        return self.stats


@dataclass
class WriterStats:
    """Client-side accounting for the competing write stream."""

    writes: int = 0
    bytes_written: int = 0

    def goodput(self, elapsed_ns: float) -> float:
        return self.bytes_written / elapsed_ns if elapsed_ns else 0.0


def client_writer(ctx: RdmaContext, client_name: str,
                  host_log: MemoryRegion, payload: int, count: int,
                  stats: WriterStats) -> Generator:
    """A client streaming ``count`` WRITEs of ``payload`` into the log."""
    if payload <= 0 or count <= 0:
        raise ValueError("payload and count must be positive")
    qp, _ = ctx.connect_rc(client_name, "host")
    scratch = ctx.reg_mr(client_name, payload)
    log_slots = host_log.length // payload
    for i in range(count):
        offset = (i % log_slots) * payload
        yield qp.post_write(i, scratch, host_log, payload,
                            remote_offset=offset, signaled=False)
        stats.writes += 1
        stats.bytes_written += payload
