"""A distributed in-memory key-value store (the Fig 1 motivation).

The server lays its state out in one registered region so one-sided
clients can navigate it remotely:

* a hash index of fixed 64 B buckets (key fingerprint, value offset,
  value length), followed by
* a bump-allocated value log.

Two client strategies reproduce Fig 1:

* :class:`OneSidedKVClient` — *(a)*: a ``get`` costs one READ for the
  bucket and a second READ for the value: **network amplification**.
* :class:`OffloadedKVClient` — *(b)*: the store lives in SoC memory and
  a SoC-side handler answers a single RPC per ``get``; one round trip.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.rdma.cq import Completion
from repro.rdma.mr import MemoryRegion
from repro.rdma.qp import QPType
from repro.rdma.verbs import RdmaContext
from repro.sim.events import AnyOf
from repro.sim.monitor import Histogram

# Bucket layout: 8 B key fingerprint | 4 B value offset | 4 B value
# length | 48 B padding (one cache line per bucket).
_BUCKET = struct.Struct("<QII")
BUCKET_BYTES = 64
_FP_EMPTY = 0


def _fingerprint(key: bytes) -> int:
    """A 64-bit non-zero key fingerprint."""
    fp = hash(key) & 0xFFFFFFFFFFFFFFFF
    return fp or 1


class KVStoreFullError(Exception):
    """The value log or index ran out of space."""


class KVTimeoutError(Exception):
    """An offloaded get exhausted its retries without a reply."""


class KVServer:
    """The server-side store living inside one registered region."""

    def __init__(self, ctx: RdmaContext, node_name: str,
                 n_buckets: int = 1024, log_bytes: int = 1 << 20):
        if n_buckets < 1 or n_buckets & (n_buckets - 1):
            raise ValueError(f"n_buckets must be a power of two: {n_buckets}")
        self.ctx = ctx
        self.node_name = node_name
        self.n_buckets = n_buckets
        self.index_bytes = n_buckets * BUCKET_BYTES
        self.mr: MemoryRegion = ctx.reg_mr(node_name,
                                           self.index_bytes + log_bytes)
        self._log_head = self.index_bytes
        self._keys: Dict[bytes, int] = {}   # key -> bucket id (server-side)

    # -- layout helpers ------------------------------------------------------------

    def bucket_offset(self, bucket_id: int) -> int:
        return bucket_id * BUCKET_BYTES

    def bucket_of(self, key: bytes) -> int:
        return _fingerprint(key) & (self.n_buckets - 1)

    # -- server-side operations ------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update a key (executed by the server's CPU)."""
        if not key:
            raise ValueError("empty key")
        if self._log_head + len(value) > self.mr.length:
            raise KVStoreFullError("value log exhausted")
        bucket = self.bucket_of(key)
        existing = self._keys.get(key)
        if existing is not None and existing != bucket:
            raise AssertionError("key moved buckets")  # pragma: no cover
        offset = self._log_head
        self.mr.write_local(offset, value)
        self._log_head += len(value)
        header = _BUCKET.pack(_fingerprint(key), offset, len(value))
        self.mr.write_local(self.bucket_offset(bucket), header)
        self._keys[key] = bucket

    def get_local(self, key: bytes) -> Optional[bytes]:
        """Server-side lookup (used by the SoC handler)."""
        bucket = self.bucket_of(key)
        raw = self.mr.read_local(self.bucket_offset(bucket), _BUCKET.size)
        fp, offset, length = _BUCKET.unpack(raw)
        if fp != _fingerprint(key) or fp == _FP_EMPTY:
            return None
        return self.mr.read_local(offset, length)

    def __len__(self) -> int:
        return len(self._keys)


@dataclass
class GetStats:
    """Client-side accounting of get traffic."""

    gets: int = 0
    misses: int = 0
    network_round_trips: int = 0
    timeouts: int = 0
    latency: Histogram = field(default_factory=Histogram)

    @property
    def round_trips_per_get(self) -> float:
        return self.network_round_trips / self.gets if self.gets else 0.0

    @property
    def timeout_rate(self) -> float:
        """Timed-out reply waits as a fraction of all reply waits."""
        waits = self.gets + self.timeouts
        return self.timeouts / waits if waits else 0.0


class OneSidedKVClient:
    """Fig 1(a): gets via one-sided READs — index READ, then value READ.

    **Scheduler-managed mode**: pass ``lease=`` (a
    :class:`~repro.sched.runtime.PathLease`, duck-typed — anything with
    ``responder`` and ``generation``) plus ``replicas=`` mapping node
    names to :class:`KVServer` replicas.  Each ``get`` resolves the
    server from the lease's current responder and transparently
    reconnects its RC flow when the scheduler bumps the lease
    generation (a migration or failover).  Without a lease the client
    is the original fixed-server implementation.
    """

    def __init__(self, ctx: RdmaContext, client_name: str,
                 server: Optional[KVServer] = None, lease=None,
                 replicas: Optional[Dict[str, KVServer]] = None):
        if (lease is None) == (server is None):
            raise ValueError("pass either server= or lease=+replicas=")
        if lease is not None and not replicas:
            raise ValueError("scheduler-managed mode needs replicas=")
        self.ctx = ctx
        self.client_name = client_name
        self.lease = lease
        self.replicas = replicas or {}
        if lease is None:
            self.server = server
        else:
            self.server = self._replica()
        self.qp, _ = ctx.connect_rc(client_name, self.server.node_name)
        self._generation = getattr(lease, "generation", 0)
        self.scratch = ctx.reg_mr(client_name, 1 << 16)
        self.stats = GetStats()
        self.reconnects = 0
        self._wr = 0

    def _replica(self) -> KVServer:
        try:
            return self.replicas[self.lease.responder]
        except KeyError:
            raise ValueError(
                f"no replica on {self.lease.responder!r}; have "
                f"{sorted(self.replicas)}") from None

    def _refresh(self) -> None:
        """Follow the lease: reconnect if the scheduler moved the flow."""
        if self.lease is None or self.lease.generation == self._generation:
            return
        self.server = self._replica()
        self.qp, _ = self.ctx.connect_rc(self.client_name,
                                         self.server.node_name)
        self._generation = self.lease.generation
        self.reconnects += 1

    def get(self, key: bytes) -> Generator:
        """A process generator: yields until the value is local.

        Returns the value bytes (or ``None`` on miss).  Run it with
        ``cluster.sim.process(client.get(key))``.
        """
        self._refresh()
        sim = self.qp.sim
        start = sim.now
        bucket = self.server.bucket_of(key)
        # Round trip 1: READ the bucket header.
        self._wr += 1
        yield self.qp.post_read(
            self._wr, self.scratch, self.server.mr, _BUCKET.size,
            local_offset=0, remote_offset=self.server.bucket_offset(bucket))
        fp, offset, length = _BUCKET.unpack(
            self.scratch.read_local(0, _BUCKET.size))
        self.stats.network_round_trips += 1
        self.stats.gets += 1
        if fp != _fingerprint(key) or fp == _FP_EMPTY:
            self.stats.misses += 1
            self.stats.latency.record(sim.now - start)
            return None
        # Round trip 2: READ the value.
        self._wr += 1
        yield self.qp.post_read(
            self._wr, self.scratch, self.server.mr, length,
            local_offset=64, remote_offset=offset)
        self.stats.network_round_trips += 1
        self.stats.latency.record(sim.now - start)
        return self.scratch.read_local(64, length)


class OffloadedKVClient:
    """Fig 1(b): gets via a single RPC to a SoC-side handler.

    The handler looks the key up locally in SoC memory and replies with
    the value — one network round trip, no amplification.
    """

    SERVICE_OVERHEAD_NS = 300.0  # SoC handler: parse + hash + reply post

    def __init__(self, ctx: RdmaContext, client_name: str, server: KVServer,
                 timeout_ns: Optional[float] = None, max_retries: int = 0):
        if ctx.cluster.node(server.node_name).kind != "soc":
            raise ValueError("offloaded store must live in SoC memory")
        if timeout_ns is not None and timeout_ns <= 0:
            raise ValueError(f"timeout must be positive: {timeout_ns}")
        self.ctx = ctx
        self.server = server
        self.qp = ctx.create_qp(client_name, QPType.UD)
        self.server_qp = ctx.create_qp(server.node_name, QPType.UD)
        self.recv_mr = ctx.reg_mr(client_name, 1 << 16)
        self.server_recv_mr = ctx.reg_mr(server.node_name, 1 << 16)
        self.stats = GetStats()
        self.timeout_ns = timeout_ns
        self.max_retries = max_retries
        # With retries armed, requests/replies carry a 4 B sequence id
        # so straggler replies to timed-out attempts can be discarded.
        self._reliable = timeout_ns is not None
        self._wr = 0
        self._start_handler()

    def _start_handler(self) -> None:
        sim = self.qp.sim

        def handler():
            while True:
                completion = yield self.server_qp.recv_cq.wait()
                request = self.server_recv_mr.read_local(0, completion.byte_len)
                src = self.ctx.cluster.qp_by_qpn(
                    self.server_qp.inbound_sources.popleft())
                seq, key = (request[:4], request[4:]) if self._reliable \
                    else (b"", request)
                # Local lookup on the SoC cores.
                yield sim.timeout(self.SERVICE_OVERHEAD_NS)
                value = self.server.get_local(key)
                reply = seq + (b"\x00" if value is None else b"\x01" + value)
                self.server_qp.post_recv(0, self.server_recv_mr)
                yield self.server_qp.post_send(0, reply, dest=src,
                                               signaled=False)

        self.server_qp.post_recv(0, self.server_recv_mr)
        sim.process(handler())

    def get(self, key: bytes) -> Generator:
        """A process generator performing one RPC get."""
        sim = self.qp.sim
        start = sim.now
        self._wr += 1
        self.qp.post_recv(self._wr, self.recv_mr)
        if self._reliable:
            payload = yield from self._get_with_retries(sim, key)
        else:
            yield self.qp.post_send(self._wr, key, dest=self.server_qp,
                                    signaled=False)
            completion = yield self.qp.recv_cq.wait()
            payload = self.recv_mr.read_local(0, completion.byte_len)
        self.stats.gets += 1
        self.stats.network_round_trips += 1
        self.stats.latency.record(sim.now - start)
        if payload[:1] == b"\x00":
            self.stats.misses += 1
            return None
        return payload[1:]

    def _get_with_retries(self, sim, key: bytes):
        seq = struct.pack("<I", self._wr & 0xFFFFFFFF)
        message = seq + key
        timeout = self.timeout_ns
        cap = self.timeout_ns * 8
        resends_left = self.max_retries
        while True:
            yield self.qp.post_send(self._wr, message, dest=self.server_qp,
                                    signaled=False)
            while True:
                waiter = self.qp.recv_cq.wait()
                got = yield AnyOf(sim, [waiter, sim.timeout(timeout)])
                if isinstance(got, Completion):
                    reply = self.recv_mr.read_local(0, got.byte_len)
                    if reply[:4] == seq:
                        return reply[4:]
                    continue  # straggler from a timed-out attempt
                self.qp.recv_cq.cancel(waiter)
                break
            self.stats.timeouts += 1
            if resends_left <= 0:
                raise KVTimeoutError(
                    f"get of {key!r} timed out after "
                    f"{self.max_retries + 1} attempts")
            resends_left -= 1
            timeout = min(timeout * 2, cap)
            self.qp.post_recv(self._wr, self.recv_mr)
