"""repro — the off-path SmartNIC characterization study, in simulation.

Reproduces "Characterizing Off-path SmartNIC for Accelerating Distributed
Systems" (OSDI 2023): a component-level model of a Bluefield-2-class
off-path SmartNIC (PCIe fabric, NIC cores, SoC, host memory), a verbs
stack over a discrete-event simulator, and the characterization
framework — latency/throughput models for the three communication paths,
anomaly detectors and the offloading advisor.

Typical entry points::

    from repro import Session          # the one-object facade
    from repro import paper_testbed, Flow, CommPath, Opcode, ThroughputSolver
    from repro.core import LatencyModel, Advisor
    from repro.net.cluster import SimCluster
    from repro.rdma import RdmaContext

:class:`Session` (also at :mod:`repro.api`) is the stable public
surface — see docs/api.md.
"""

from repro.api import RunOptions, Session
from repro.core.paths import CommPath, Opcode
from repro.core.throughput import Flow, Scenario, SolverResult, ThroughputSolver
from repro.core.latency import LatencyModel
from repro.core.packets import PacketCountModel
from repro.core.flows import ConcurrencyAnalyzer
from repro.core.advisor import Advisor, WorkloadProfile
from repro.core.anomalies import detect_all
from repro.net.topology import Testbed, paper_testbed

__version__ = "1.0.0"

__all__ = [
    "Session",
    "RunOptions",
    "CommPath",
    "Opcode",
    "Flow",
    "Scenario",
    "SolverResult",
    "ThroughputSolver",
    "LatencyModel",
    "PacketCountModel",
    "ConcurrencyAnalyzer",
    "Advisor",
    "WorkloadProfile",
    "detect_all",
    "Testbed",
    "paper_testbed",
    "__version__",
]
