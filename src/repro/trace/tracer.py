"""The tracer: span collection wired into the simulation kernel.

Installation puts the tracer on :attr:`Simulator.tracer`; every
instrumentation point on the datapath guards with one ``is not None``
check, so an untraced run executes the exact pre-tracing event sequence
(the hooks add no simulation events, ever — spans only *read* the
clock).

Attribution across interleaved processes works through the process
hooks: each :class:`~repro.sim.process.Process` carries the
:class:`~repro.trace.span.VerbTrace` context it was spawned under, and
the kernel restores that context every time a process resumes.  Spans
emitted anywhere in a verb's call chain — including nested DMA
processes — therefore land in the right tree even with many verbs in
flight.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.trace.span import Span, VerbTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.cluster import Node, SimCluster
    from repro.sim.engine import Simulator
    from repro.sim.process import Process
    from repro.telemetry import Telemetry


class TraceError(Exception):
    """Tracer misuse: double install, emission with no tracer attached."""


def classify_path(cluster: "SimCluster", requester: "Node",
                  responder: "Node") -> str:
    """The Fig 2 path id a (requester, responder) pair executes on.

    Returns one of the :class:`~repro.core.paths.CommPath` values
    (``rnic-1`` / ``snic-1`` / ``snic-2`` / ``snic-3-h2s`` /
    ``snic-3-s2h``) or ``"network"`` for shapes the paper does not
    number (server-to-client replies, cross-server pairs).
    """
    if requester.same_server_as(responder):
        return "snic-3-h2s" if requester.kind == "host" else "snic-3-s2h"
    if requester.kind == "client" and responder.on_server:
        if cluster.server_of(responder).snic is None:
            return "rnic-1"
        return "snic-1" if responder.kind == "host" else "snic-2"
    return "network"


class Tracer:
    """Records a nanosecond span tree per verb executed on a cluster."""

    def __init__(self, telemetry: Optional["Telemetry"] = None):
        self.traces: List[VerbTrace] = []
        self.telemetry = telemetry
        self._sim: Optional["Simulator"] = None
        self._cluster: Optional["SimCluster"] = None
        # The verb context of the currently running process (None while
        # untraced code runs) and the context a just-wrapped verb
        # generator hands to the Process about to be created.
        self._current: Optional[VerbTrace] = None
        self._pending: Optional[VerbTrace] = None

    # -- installation ------------------------------------------------------------

    def install(self, cluster: "SimCluster") -> "Tracer":
        """Attach to a cluster's simulator; returns self."""
        if cluster.sim.tracer is not None:
            raise TraceError("a tracer is already installed on this simulator")
        self._sim = cluster.sim
        self._cluster = cluster
        cluster.sim.tracer = self
        return self

    def uninstall(self) -> None:
        """Detach; subsequent verbs run untraced."""
        if self._sim is not None and self._sim.tracer is self:
            self._sim.tracer = None
        self._current = None
        self._pending = None

    # -- kernel hooks (hot path; called only when installed) -----------------------

    def on_spawn(self, process: "Process") -> None:
        """Bind the new process to the active (or pending) verb context."""
        context = self._pending
        if context is None:
            context = self._current
        else:
            self._pending = None
        process._trace_ctx = context

    def on_resume(self, process: "Process") -> None:
        """Restore the resuming process's verb context."""
        self._current = process._trace_ctx

    # -- span emission -------------------------------------------------------------

    def begin(self, name: str, category: str, **attrs: Any) -> Optional[Span]:
        """Open a child span under the innermost open span.

        Returns None (and records nothing) outside any traced verb, so
        instrumentation points may call it unconditionally once they
        hold a non-None tracer.
        """
        context = self._current
        if context is None:
            return None
        span = Span(name, category, self._sim.now, attrs=attrs or None)
        context.stack[-1].children.append(span)
        context.stack.append(span)
        return span

    def end(self, span: Optional[Span]) -> None:
        """Close a span opened by :meth:`begin` (tolerates None/closed)."""
        if span is None or span.end is not None:
            return
        span.end = self._sim.now
        context = self._current
        if context is None or span not in context.stack:
            return
        # Pop through any children left open (early exits on LOST legs).
        while context.stack:
            popped = context.stack.pop()
            if popped.end is None:
                popped.end = span.end
            if popped is span:
                break

    def point(self, name: str, category: str, start: float, end: float,
              **attrs: Any) -> Optional[Span]:
        """Record a complete span whose end time is already known.

        Used where delivery time is computable at submission (link and
        switch traversals), so no extra event is needed to observe it.
        """
        context = self._current
        if context is None:
            return None
        span = Span(name, category, start, end, attrs=attrs or None)
        context.stack[-1].children.append(span)
        return span

    def instant(self, name: str, category: str, **attrs: Any) -> Optional[Span]:
        """A zero-duration annotation at the current instant."""
        now = self._sim.now
        return self.point(name, category, now, now, **attrs)

    def annotate(self, name: str, category: str = "control",
                 **attrs: Any) -> VerbTrace:
        """Record a standalone control-plane event as its own trace tree.

        Unlike :meth:`begin`/:meth:`instant`, this works *outside* any
        traced verb: scheduler decisions, migrations and failovers
        happen between verbs, from the control loop's own process.  The
        event lands on the same timeline as the datapath spans (one
        zero-duration root at the current simulated instant) so exports
        interleave decisions with the verbs they affected.
        """
        now = self._sim.now if self._sim is not None else 0.0
        meta: Dict[str, Any] = {
            "verb": name,
            "payload": 0,
            "path": attrs.get("to_path", ""),
            "device": "scheduler",
            "requester": attrs.get("tenant", ""),
            "responder": attrs.get("responder", ""),
        }
        root = Span(name, category, now, now, attrs=dict(attrs) or None)
        trace = VerbTrace(root, meta)
        self.traces.append(trace)
        return trace

    # -- generator wrapping ----------------------------------------------------------

    def wrap(self, name: str, category: str, gen: Generator,
             **attrs: Any) -> Generator:
        """Run ``gen`` under a span that closes when it finishes.

        For sub-processes (DMA transactions): the span opens now, the
        wrapped generator becomes the process body, and the span closes
        at process completion — covering queue time and all hops.
        """
        span = self.begin(name, category, **attrs)

        def runner():
            try:
                return (yield from gen)
            finally:
                self.end(span)

        return runner()

    def trace_verb(self, gen: Generator, *, requester: "Node",
                   responder: "Node", verb: str, payload: int,
                   **attrs: Any) -> Generator:
        """Wrap a verb-execution generator in a fresh root span.

        Must be immediately followed by ``sim.process(...)`` on the
        returned generator (the pending context binds to the next
        process spawned).
        """
        cluster = self._cluster
        meta: Dict[str, Any] = {
            "verb": verb,
            "payload": payload,
            "path": classify_path(cluster, requester, responder),
            "device": "rnic" if cluster.nic_mode == "rnic" else "snic",
            "requester": requester.name,
            "responder": responder.name,
        }
        meta.update(attrs)
        root = Span(f"{verb}:{meta['path']}", "verb", self._sim.now,
                    attrs=dict(meta))
        context = VerbTrace(root, meta)
        if self.telemetry is not None:
            context.counters = None
            start_snapshot = self.telemetry.snapshot()
        else:
            start_snapshot = None
        self._pending = context

        def runner():
            try:
                return (yield from gen)
            finally:
                self._finish(context, start_snapshot)

        return runner()

    # -- completion ----------------------------------------------------------------

    def _finish(self, context: VerbTrace, start_snapshot) -> None:
        now = self._sim.now
        for span in reversed(context.stack):
            if span.end is None:
                span.end = now
        del context.stack[1:]
        if start_snapshot is not None:
            delta = self.telemetry.snapshot() - start_snapshot
            context.counters = {key: value
                                for key, value in delta.deltas.items()
                                if value != 0}
        self.traces.append(context)

    # -- convenience -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.traces)

    def last(self) -> VerbTrace:
        if not self.traces:
            raise TraceError("no completed traces recorded")
        return self.traces[-1]

    def clear(self) -> None:
        self.traces.clear()
