"""One-shot traced verb runs (the engine behind ``repro trace``).

Builds the paper testbed as a live cluster, attaches a tracer, executes
a closed loop of verbs on the requested path, and returns the tracer
with its span trees.  Fault-free, single requester — the deterministic
shape the golden traces pin down.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.core.paths import CommPath, Opcode
from repro.net.cluster import SimCluster
from repro.net.topology import Testbed, paper_testbed
from repro.rdma.verbs import RdmaContext
from repro.telemetry import Telemetry
from repro.trace.tracer import Tracer
from repro.units import KB

#: (requester node, responder node) per communication path.
PATH_NODES: Dict[CommPath, Tuple[str, str]] = {
    CommPath.RNIC1: ("client0", "host"),
    CommPath.SNIC1: ("client0", "host"),
    CommPath.SNIC2: ("client0", "soc"),
    CommPath.SNIC3_H2S: ("host", "soc"),
    CommPath.SNIC3_S2H: ("soc", "host"),
}


def run_traced_verbs(path: CommPath, op: Opcode, payload: int,
                     count: int = 1, seed: int = 0,
                     testbed: Optional[Testbed] = None,
                     telemetry: bool = False,
                     tracer: Optional[Tracer] = None) -> Tracer:
    """Execute ``count`` verbs on ``path`` under a tracer; returns it.

    ``seed`` only randomizes the payload *contents* — span timing is
    data-independent, which is exactly what the golden-trace suite
    asserts by capturing under two seeds.
    """
    if payload < 0:
        raise ValueError(f"negative payload: {payload}")
    if count < 1:
        raise ValueError(f"need at least one verb: {count}")
    testbed = testbed or paper_testbed()
    nic = "rnic" if path is CommPath.RNIC1 else "snic"
    cluster = SimCluster(testbed, n_clients=1, nic=nic)
    requester, responder = PATH_NODES[path]
    ctx = RdmaContext(cluster)
    region = max(payload, 64)
    local = ctx.reg_mr(requester, max(region, min(count * region, 64 * KB)))
    remote = ctx.reg_mr(responder, max(region, min(count * region, 64 * KB)))
    qp, peer_qp = ctx.connect_rc(requester, responder)
    if payload:
        data = bytes(random.Random(seed).randrange(256)
                     for _ in range(min(payload, 4096)))
        local.write_local(0, data)
    if op is Opcode.SEND:
        for i in range(count):
            peer_qp.post_recv(1000 + i, remote, 0, max(payload, 1))

    if tracer is None:
        tracer = Tracer(telemetry=Telemetry(cluster) if telemetry else None)
    tracer.install(cluster)
    sim = cluster.sim

    def driver():
        for i in range(count):
            if op is Opcode.READ:
                work = qp.post_read(i + 1, local, remote, payload)
            elif op is Opcode.WRITE:
                work = qp.post_write(i + 1, local, remote, payload)
            else:
                work = qp.post_send(i + 1,
                                    local.read_local(0, payload))
            yield work

    sim.process(driver())
    sim.run()
    tracer.uninstall()
    return tracer
