"""Span tracing and latency attribution for the simulated SNIC datapath.

The paper's anomalies are all "where did the nanoseconds go" stories;
this package answers them span by span: attach a :class:`Tracer` to a
:class:`~repro.net.cluster.SimCluster`, run verbs, and get one
nanosecond-resolution span tree per work request — doorbell MMIO, NIC
pipeline, every PCIe link/switch hop, DMA transactions, wire time, CQE
delivery.  On fault-free runs the spans of each tree exactly tile the
end-to-end latency, which makes the tracer double as the strongest
correctness oracle the DES has (see ``tests/trace/``).

Quick start::

    from repro.core.paths import CommPath, Opcode
    from repro.trace import run_traced_verbs, attribution_report

    tracer = run_traced_verbs(CommPath.SNIC3_H2S, Opcode.WRITE, 4096)
    print(attribution_report(tracer.traces))

Export for chrome://tracing / https://ui.perfetto.dev::

    from repro.trace import write_chrome_trace
    write_chrome_trace(tracer.traces, "trace.json")
"""

from repro.trace.capture import PATH_NODES, run_traced_verbs
from repro.trace.export import (chrome_trace, chrome_trace_json,
                                write_chrome_trace)
from repro.trace.report import (Attribution, attribution_report,
                                span_tree_text)
from repro.trace.span import INSTANT_CATEGORIES, Span, VerbTrace
from repro.trace.tracer import TraceError, Tracer, classify_path

__all__ = [
    "Attribution",
    "INSTANT_CATEGORIES",
    "PATH_NODES",
    "Span",
    "TraceError",
    "Tracer",
    "VerbTrace",
    "attribution_report",
    "chrome_trace",
    "chrome_trace_json",
    "classify_path",
    "run_traced_verbs",
    "span_tree_text",
    "write_chrome_trace",
]
