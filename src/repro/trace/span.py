"""Span trees: the unit of latency attribution.

A :class:`Span` is one component traversal on the simulated datapath —
a doorbell MMIO, a PCIe link crossing, a DMA transaction, wire time on
the InfiniBand fabric — with nanosecond start/end stamps read from the
simulation clock.  Spans nest: a verb's root span contains the posting
span, the NIC pipeline spans, the DMA spans, and so on, and (on
fault-free runs) the children of every span exactly tile their parent.
A :class:`VerbTrace` is the tree for one work request plus its metadata
(verb, payload, path, device).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

#: Categories whose spans are instantaneous annotations (zero duration
#: by construction): they mark *where* something happened on the
#: timeline, not a stretch of time, and are excluded from tiling checks.
INSTANT_CATEGORIES = frozenset({"memory", "cq"})


class Span:
    """One timed component traversal; a node of the span tree."""

    __slots__ = ("name", "category", "start", "end", "attrs", "children")

    def __init__(self, name: str, category: str, start: float,
                 end: Optional[float] = None,
                 attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.category = category
        self.start = start
        self.end = end
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Span length in ns (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def instant(self) -> bool:
        """True for zero-duration annotation spans (memory, CQE)."""
        return self.category in INSTANT_CATEGORIES

    def self_time(self) -> float:
        """Duration not covered by child spans (the span's own cost)."""
        covered = sum(child.duration for child in self.children
                      if not child.instant)
        return max(0.0, self.duration - covered)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """A canonical JSON-ready form (used by the golden traces)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "start_ns": self.start,
            "end_ns": self.end,
            "dur_ns": self.duration,
        }
        if self.attrs:
            out["attrs"] = dict(sorted(self.attrs.items()))
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(data["name"], data["cat"], data["start_ns"],
                   data["end_ns"], dict(data.get("attrs", {})))
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.name} [{self.category}] "
                f"{self.start:.0f}..{self.end if self.end is None else round(self.end)} "
                f"({len(self.children)} children)>")


class VerbTrace:
    """The span tree of one work request, plus posting metadata.

    ``meta`` carries the attribution keys: ``verb``, ``payload``,
    ``path`` (the Fig 2 path id, e.g. ``snic-3-h2s``), ``device``
    (``snic``/``rnic``), ``requester`` and ``responder`` node names.
    ``counters`` (optional) holds the nonzero telemetry counter deltas
    over the verb's lifetime when the tracer was attached with a
    :class:`~repro.telemetry.Telemetry` instance — spans and counter
    movement on one timeline.
    """

    __slots__ = ("root", "meta", "stack", "counters")

    def __init__(self, root: Span, meta: Dict[str, Any]):
        self.root = root
        self.meta = meta
        #: Open spans, innermost last; ``stack[0]`` is the root.
        self.stack: List[Span] = [root]
        self.counters: Optional[Dict[str, float]] = None

    @property
    def duration(self) -> float:
        """End-to-end latency of the verb in ns."""
        return self.root.duration

    def spans(self) -> Iterator[Span]:
        return self.root.walk()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "meta": dict(sorted(self.meta.items())),
            "root": self.root.to_dict(),
        }
        if self.counters is not None:
            out["counters"] = dict(sorted(self.counters.items()))
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerbTrace":
        trace = cls(Span.from_dict(data["root"]), dict(data["meta"]))
        trace.counters = data.get("counters")
        return trace

    def to_json(self, indent: int = 2) -> str:
        """Canonical serialization — bit-identical across runs/seeds."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "VerbTrace":
        return cls.from_dict(json.loads(text))
