"""Latency attribution: where did the nanoseconds go.

Aggregates span self-time by component over one or many traces, grouped
the way the paper argues — per path (①/②/③) and per device (SmartNIC
vs RNIC baseline) — so a path-③ verb can be *shown* spending its budget
crossing PCIe1 twice, not just measured end to end.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Tuple

from repro.core.report import format_table
from repro.trace.span import Span, VerbTrace

#: Human-facing order of the span taxonomy in attribution tables.
CATEGORY_ORDER = ("cpu", "mmio", "nic", "wire", "net", "pcie", "dma",
                  "rdma", "memory", "cq", "verb")


def _category_rank(category: str) -> int:
    try:
        return CATEGORY_ORDER.index(category)
    except ValueError:
        return len(CATEGORY_ORDER)


def self_times_by_category(trace: VerbTrace) -> Dict[str, float]:
    """ns of self-time per category over one trace (sums to the total)."""
    out: Dict[str, float] = {}
    for span in trace.spans():
        if span.instant:
            continue
        out[span.category] = out.get(span.category, 0.0) + span.self_time()
    return out


def self_times_by_component(trace: VerbTrace) -> Dict[Tuple[str, str], float]:
    """ns of self-time per (category, span name) over one trace."""
    out: Dict[Tuple[str, str], float] = {}
    for span in trace.spans():
        if span.instant:
            continue
        key = (span.category, span.name)
        out[key] = out.get(key, 0.0) + span.self_time()
    return out


def _merge(totals: Dict, extra: Dict) -> None:
    for key, value in extra.items():
        totals[key] = totals.get(key, 0.0) + value


class Attribution:
    """Aggregated component self-times over a set of traces."""

    def __init__(self, traces: Iterable[VerbTrace]):
        self.traces: List[VerbTrace] = list(traces)

    @property
    def total_ns(self) -> float:
        return sum(trace.duration for trace in self.traces)

    def by_category(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for trace in self.traces:
            _merge(totals, self_times_by_category(trace))
        return totals

    def by_component(self) -> Dict[Tuple[str, str], float]:
        totals: Dict[Tuple[str, str], float] = {}
        for trace in self.traces:
            _merge(totals, self_times_by_component(trace))
        return totals

    def by_path(self) -> "OrderedDict[str, Attribution]":
        """Split the trace set per communication path id."""
        groups: "OrderedDict[str, List[VerbTrace]]" = OrderedDict()
        for trace in self.traces:
            groups.setdefault(trace.meta.get("path", "?"), []).append(trace)
        return OrderedDict((path, Attribution(traces))
                           for path, traces in groups.items())

    def by_device(self) -> "OrderedDict[str, Attribution]":
        """Split the trace set per device (``snic`` vs ``rnic``)."""
        groups: "OrderedDict[str, List[VerbTrace]]" = OrderedDict()
        for trace in self.traces:
            groups.setdefault(trace.meta.get("device", "?"), []).append(trace)
        return OrderedDict((device, Attribution(traces))
                           for device, traces in groups.items())

    # -- tables ----------------------------------------------------------------------

    def table(self, title: str = "latency attribution") -> str:
        """component | ns | share — ranked by the span taxonomy."""
        total = self.total_ns
        rows = []
        components = sorted(
            self.by_component().items(),
            key=lambda item: (_category_rank(item[0][0]), item[0][1]))
        for (category, name), ns in components:
            if ns <= 0:
                continue
            share = ns / total if total > 0 else 0.0
            rows.append([category, name, f"{ns:.0f}", f"{share:.1%}"])
        rows.append(["", "TOTAL", f"{total:.0f}", "100.0%"])
        return format_table(["category", "component", "ns", "share"],
                            rows, title=title)

    def category_table(self, title: str = "attribution by category") -> str:
        total = self.total_ns
        rows = []
        for category, ns in sorted(self.by_category().items(),
                                   key=lambda kv: (_category_rank(kv[0]),
                                                   kv[0])):
            if ns <= 0:
                continue
            share = ns / total if total > 0 else 0.0
            rows.append([category, f"{ns:.0f}", f"{share:.1%}"])
        rows.append(["TOTAL", f"{total:.0f}", "100.0%"])
        return format_table(["category", "ns", "share"], rows, title=title)


def attribution_report(traces: Iterable[VerbTrace]) -> str:
    """Per-path attribution tables (the ``repro trace --report`` body)."""
    attribution = Attribution(traces)
    parts = []
    for path, group in attribution.by_path().items():
        count = len(group.traces)
        mean_us = group.total_ns / count / 1000.0 if count else 0.0
        parts.append(group.table(
            title=f"path {path}: {count} verb(s), mean {mean_us:.2f} us"))
    return "\n\n".join(parts) if parts else "no traces recorded"


def span_tree_text(span: Span, indent: int = 0) -> str:
    """An ASCII rendering of one span tree (debugging aid)."""
    pad = "  " * indent
    line = (f"{pad}{span.name} [{span.category}] "
            f"{span.start:.0f}..{span.end:.0f} (+{span.duration:.0f} ns)")
    lines = [line]
    for child in span.children:
        lines.append(span_tree_text(child, indent + 1))
    return "\n".join(lines)
