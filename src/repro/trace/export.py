"""Chrome/Perfetto trace-event export.

Serializes :class:`~repro.trace.span.VerbTrace` trees into the Trace
Event Format JSON that ``chrome://tracing`` and https://ui.perfetto.dev
load directly: one complete (``"ph": "X"``) event per span, one track
(tid) per verb, and optional counter (``"ph": "C"``) events from the
telemetry deltas so hardware-counter movement shares the span timeline.

Timestamps: the format wants microseconds; simulated nanoseconds are
divided by 1000 and the exact ns figures are preserved in ``args``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.trace.span import Span, VerbTrace

_PID = 1


def _span_events(span: Span, tid: int) -> List[Dict[str, Any]]:
    args: Dict[str, Any] = {"start_ns": span.start, "dur_ns": span.duration}
    if span.attrs:
        args.update(span.attrs)
    event = {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "pid": _PID,
        "tid": tid,
        "ts": span.start / 1000.0,
        "dur": span.duration / 1000.0,
        "args": args,
    }
    events = [event]
    for child in span.children:
        events.extend(_span_events(child, tid))
    return events


def chrome_trace(traces: Iterable[VerbTrace]) -> Dict[str, Any]:
    """The Trace Event Format document for a set of verb traces."""
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID,
        "args": {"name": "repro-sim"},
    }]
    for tid, trace in enumerate(traces, start=1):
        label = (f"{trace.meta.get('verb', '?')} "
                 f"{trace.meta.get('path', '?')} "
                 f"{trace.meta.get('payload', 0)}B")
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": label},
        })
        events.extend(_span_events(trace.root, tid))
        if trace.counters:
            for key, value in sorted(trace.counters.items()):
                events.append({
                    "name": key, "cat": "counter", "ph": "C",
                    "pid": _PID, "tid": tid,
                    "ts": trace.root.end / 1000.0,
                    "args": {"delta": value},
                })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.trace",
                      "clock": "simulated nanoseconds"},
    }


def chrome_trace_json(traces: Iterable[VerbTrace], indent: int = 2) -> str:
    return json.dumps(chrome_trace(traces), indent=indent, sort_keys=True)


def write_chrome_trace(traces: Iterable[VerbTrace], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(traces))
        handle.write("\n")
